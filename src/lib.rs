//! # ecost — Energy-Efficient Co-Locating and Self-Tuning MapReduce
//!
//! Facade crate for the ECoST reproduction (Malik et al., ICPP 2019). It
//! re-exports the workspace's layers under one roof so downstream users —
//! and the `examples/` directory — need a single dependency:
//!
//! * [`sim`] — hardware substrate: Atom-class node & cluster models, DVFS,
//!   wall-power metering, the AMVA fluid solver;
//! * [`mapreduce`] — the Hadoop/HDFS execution model and co-located node
//!   executor, with synthetic performance counters;
//! * [`apps`] — the 11 studied applications, behaviour classes, input sizes,
//!   and Table 3's workload scenarios;
//! * [`ml`] — from-scratch PCA, clustering, LR, REPTree, MLP, LkT, kNN;
//! * [`core`] — the ECoST controller itself: classification, wait queue,
//!   pairing decision tree, self-tuning prediction, the ILAO/COLAO baselines
//!   and the §8 mapping policies.
//!
//! ## Quickstart
//!
//! ```
//! use ecost::mapreduce::{JobSpec, FrameworkSpec, TuningConfig};
//! use ecost::mapreduce::executor::run_standalone;
//! use ecost::apps::{App, InputSize};
//! use ecost::sim::NodeSpec;
//!
//! let node = NodeSpec::atom_c2758();
//! let cfg = TuningConfig::hadoop_default(node.cores);
//! let out = run_standalone(
//!     &node,
//!     &FrameworkSpec::default(),
//!     JobSpec::new(App::Wc, InputSize::Small, cfg),
//! ).expect("simulation");
//! assert!(out.metrics.exec_time_s > 0.0);
//! ```
//!
//! See `examples/quickstart.rs` for the full classify → pair → tune loop.

pub use ecost_apps as apps;
pub use ecost_core as core;
pub use ecost_mapreduce as mapreduce;
pub use ecost_ml as ml;
pub use ecost_sim as sim;
