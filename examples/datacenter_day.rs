//! A day in the datacenter: run Table 3's mixed workload (WS8) through every
//! §8 mapping policy on a 4-node cluster and print the scoreboard — the
//! Fig 9 experiment as a narrative.
//!
//! Run with: `cargo run --release --example datacenter_day`
//! (set `ECOST_QUICK=1` for a faster, slightly less accurate model fit).

use ecost::apps::{InputSize, WorkloadScenario};
use ecost::core::mapping::{run_policy, ConfiguredPolicy, EcostContext, MappingPolicy};
use ecost::core::pairing::PairingPolicy;

// The bench crate's harness is the canonical way to assemble the offline
// phase; examples keep dependencies minimal and assemble it directly.
use ecost::core::classify::{KnnAppClassifier, RuleClassifier};
use ecost::core::database::ConfigDatabase;
use ecost::core::engine::EvalEngine;
use ecost::core::stp::training::build_training_data;
use ecost::core::stp::MlmStp;
use ecost::ml::{RepTree, RepTreeConfig};

fn main() {
    let eng = EvalEngine::atom();
    let nodes = 4;
    let workload = WorkloadScenario::Ws8.workload(InputSize::Small);
    println!(
        "workload {}: {} jobs, class mix C/H/I/M = {:?}",
        workload.name,
        workload.len(),
        workload.class_mix()
    );

    println!("offline phase: database + REPTree models…");
    let db = ConfigDatabase::build(&eng, 0.03, 42).expect("database build");
    let classifier = RuleClassifier::fit(&db.signatures);
    let knn = KnnAppClassifier::fit(&db.signatures);
    let sigs: Vec<_> = db.solos.iter().map(|s| (s.sig, s.app, s.size)).collect();
    let sig_of = move |app: ecost::apps::App, size: InputSize| {
        sigs.iter()
            .find(|(_, a, s)| *a == app && *s == size)
            .expect("training app in db")
            .0
    };
    let training = build_training_data(&eng, &sig_of, 600, 42).expect("training data");
    let stp = MlmStp::train(&training, knn, "REPTree", || {
        RepTree::new(RepTreeConfig::default())
    });
    let pairing = PairingPolicy::default();
    let ctx = EcostContext {
        db: &db,
        stp: &stp,
        classifier: &classifier,
        pairing: &pairing,
        noise: 0.03,
        seed: 42,
        pairing_mode: ecost::core::pairing::PairingMode::DecisionTree,
    };

    println!("\nrunning the eight mapping policies on {nodes} nodes…\n");
    let idle = eng.idle_w();
    let mut rows: Vec<(&str, f64, f64, f64)> = Vec::new();
    for policy in MappingPolicy::ALL {
        let p = ConfiguredPolicy::new(policy, Some(&ctx)).expect("configured policy");
        let run = run_policy(&eng, nodes, &workload, &p).expect("cluster run");
        rows.push((
            policy.label(),
            run.makespan_s,
            run.energy_dyn_j,
            run.edp_wall(idle),
        ));
        println!("  {} done", policy.label());
    }
    let ub = rows.iter().map(|r| r.3).fold(f64::INFINITY, f64::min);
    println!(
        "\n{:>6} {:>12} {:>12} {:>12} {:>8}",
        "policy", "makespan s", "dyn energy J", "wall EDP", "vs UB"
    );
    for (name, t, e, edp) in rows {
        println!(
            "{name:>6} {t:>12.0} {e:>12.0} {edp:>12.3e} {:>8.2}",
            edp / ub
        );
    }
    let stats = eng.stats();
    println!(
        "\n[engine] {} runs simulated, {:.1}% cache hit rate, {:.1}s simulation time",
        stats.runs_simulated,
        100.0 * stats.hit_rate(),
        stats.wall_seconds
    );
    println!("\nECoST should sit near 1.0 — co-locating and self-tuning recovers");
    println!("most of what an exhaustive brute-force search would find.");
}
