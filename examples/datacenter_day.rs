//! A day in the datacenter: run Table 3's mixed workload (WS8) through every
//! §8 mapping policy on a 4-node cluster and print the scoreboard — the
//! Fig 9 experiment as a narrative.
//!
//! Run with: `cargo run --release --example datacenter_day`
//! (set `ECOST_QUICK=1` for a faster, slightly less accurate model fit).

use ecost::apps::{InputSize, WorkloadScenario};
use ecost::core::mapping::{run_policy, EcostContext, MappingPolicy};
use ecost::core::pairing::PairingPolicy;

// The bench crate's harness is the canonical way to assemble the offline
// phase; examples keep dependencies minimal and assemble it directly.
use ecost::core::classify::{KnnAppClassifier, RuleClassifier};
use ecost::core::database::ConfigDatabase;
use ecost::core::features::Testbed;
use ecost::core::oracle::SweepCache;
use ecost::core::stp::training::build_training_data;
use ecost::core::stp::MlmStp;
use ecost::ml::{RepTree, RepTreeConfig};

fn main() {
    let tb = Testbed::atom();
    let cache = SweepCache::new();
    let nodes = 4;
    let workload = WorkloadScenario::Ws8.workload(InputSize::Small);
    println!(
        "workload {}: {} jobs, class mix C/H/I/M = {:?}",
        workload.name,
        workload.len(),
        workload.class_mix()
    );

    println!("offline phase: database + REPTree models…");
    let db = ConfigDatabase::build(&tb, &cache, 0.03, 42);
    let classifier = RuleClassifier::fit(&db.signatures);
    let knn = KnnAppClassifier::fit(&db.signatures);
    let sigs: Vec<_> = db.solos.iter().map(|s| (s.sig, s.app, s.size)).collect();
    let sig_of = move |app: ecost::apps::App, size: InputSize| {
        sigs.iter()
            .find(|(_, a, s)| *a == app && *s == size)
            .expect("training app in db")
            .0
    };
    let training = build_training_data(&tb, &cache, &sig_of, 600, 42);
    let stp = MlmStp::train(&training, knn, "REPTree", || {
        RepTree::new(RepTreeConfig::default())
    });
    let pairing = PairingPolicy::default();
    let ctx = EcostContext {
        db: &db,
        stp: &stp,
        classifier: &classifier,
        pairing: &pairing,
        cache: &cache,
        noise: 0.03,
        seed: 42,
        pairing_mode: ecost::core::pairing::PairingMode::DecisionTree,
    };

    println!("\nrunning the eight mapping policies on {nodes} nodes…\n");
    let idle = tb.idle_w();
    let mut rows: Vec<(&str, f64, f64, f64)> = Vec::new();
    for policy in MappingPolicy::ALL {
        let run = run_policy(&tb, nodes, &workload, policy, Some(&ctx));
        rows.push((
            policy.label(),
            run.makespan_s,
            run.energy_dyn_j,
            run.edp_wall(idle),
        ));
        println!("  {} done", policy.label());
    }
    let ub = rows
        .iter()
        .map(|r| r.3)
        .fold(f64::INFINITY, f64::min);
    println!("\n{:>6} {:>12} {:>12} {:>12} {:>8}", "policy", "makespan s", "dyn energy J", "wall EDP", "vs UB");
    for (name, t, e, edp) in rows {
        println!("{name:>6} {t:>12.0} {e:>12.0} {edp:>12.3e} {:>8.2}", edp / ub);
    }
    println!("\nECoST should sit near 1.0 — co-locating and self-tuning recovers");
    println!("most of what an exhaustive brute-force search would find.");
}
