//! Power-meter view: record the Wattsup-style 1 Hz trace of a co-located
//! run and print the per-job stage timeline plus an ASCII power plot — the
//! §2.5 measurement methodology turned into a demo.
//!
//! Run with: `cargo run --release --example power_meter`

use ecost::apps::{App, InputSize};
use ecost::mapreduce::{BlockSize, FrameworkSpec, JobSpec, NodeSim, TuningConfig};
use ecost::sim::{trace, Frequency, NodeSpec};

fn main() {
    let spec = NodeSpec::atom_c2758();
    let idle = spec.idle_power_w;
    let mut node = NodeSim::new(spec, FrameworkSpec::default());
    node.enable_power_trace();

    // Co-locate a compute-bound WordCount with an I/O-bound Sort.
    let wc = TuningConfig {
        freq: Frequency::F2_4,
        block: BlockSize::B512,
        mappers: 6,
    };
    let st = TuningConfig {
        freq: Frequency::F2_0,
        block: BlockSize::B512,
        mappers: 2,
    };
    node.submit(JobSpec::new(App::Wc, InputSize::Small, wc))
        .expect("fits");
    node.submit(JobSpec::new(App::St, InputSize::Small, st))
        .expect("fits");
    node.run_to_completion().expect("simulation");

    println!("per-job stage timelines:");
    for out in node.finished() {
        print!("  {:<14}", out.spec.label);
        let mut prev = 0.0;
        for (kind, t) in &out.timeline {
            print!("  {kind:?} {:.0}s–{:.0}s", prev, t);
            prev = *t;
        }
        println!("  (E={:.0} J)", out.usage.energy_j);
    }

    let samples = node.power_trace().expect("trace enabled").to_vec();
    let stats = trace::stats(&samples).expect("non-empty run");
    println!(
        "\ndynamic power: mean {:.1} W, p95 {:.1} W, peak {:.1} W over {} s (idle adds {idle} W)",
        stats.mean_w, stats.p95_w, stats.peak_w, stats.samples
    );
    if let Some((start, avg)) = trace::peak_window(&samples, 30) {
        println!("hottest 30 s window starts at t={start}s, averaging {avg:.1} W");
    }

    // ASCII strip chart, 1 char ≈ bucketed seconds.
    let buckets = 72usize;
    let per = samples.len().div_ceil(buckets).max(1);
    let maxw = stats.peak_w.max(1e-9);
    println!("\npower over time (each column ≈ {per}s, height ∝ W):");
    let rows = 8;
    for row in (1..=rows).rev() {
        let threshold = maxw * row as f64 / rows as f64;
        let line: String = samples
            .chunks(per)
            .map(|c| {
                let avg = c.iter().sum::<f64>() / c.len() as f64;
                if avg >= threshold {
                    '█'
                } else {
                    ' '
                }
            })
            .collect();
        println!("{:5.1}W |{line}", threshold);
    }
    println!("       +{}", "-".repeat(samples.len().div_ceil(per)));
    println!("\nThe high plateau is the map phase of both jobs overlapping;");
    println!("the tail is Sort's I/O-bound reduce running with idle cores.");
}
