//! Quickstart: the ECoST loop on two unknown applications.
//!
//! 1. Profile two incoming ("unknown") applications for a learning period.
//! 2. Classify them from their counter signatures.
//! 3. Predict the energy-optimal co-location configuration with LkT-STP.
//! 4. Run the pair co-located and compare against the untuned default.
//!
//! Run with: `cargo run --release --example quickstart`

use ecost::apps::{App, InputSize};
use ecost::core::classify::RuleClassifier;
use ecost::core::database::ConfigDatabase;
use ecost::core::engine::EvalEngine;
use ecost::core::features::profile_catalog_app;
use ecost::core::stp::{LktStp, Stp};
use ecost::mapreduce::{PairConfig, TuningConfig};

fn main() {
    let eng = EvalEngine::atom();
    let idle = eng.idle_w();

    // --- offline phase (once per cluster): sweep the training apps -------
    println!("building the training database (brute-force sweeps, ~15s)…");
    let db = ConfigDatabase::build(&eng, 0.03, 42).expect("database build");
    let classifier = RuleClassifier::fit(&db.signatures);
    let lkt = LktStp::from_database(&db);

    // --- online phase: two unknown applications arrive -------------------
    let (a, b) = (App::Svm, App::Cf); // never seen during training
    let size = InputSize::Medium;
    let sig_a = profile_catalog_app(&eng, a, size, 0.03, 7).expect("profiling run");
    let sig_b = profile_catalog_app(&eng, b, size, 0.03, 7).expect("profiling run");
    println!(
        "classified {} as {} (truth {}), {} as {} (truth {})",
        a,
        classifier.classify(&sig_a.features),
        a.class(),
        b,
        classifier.classify(&sig_b.features),
        b.class(),
    );

    let cores = eng.testbed().node.cores;
    let tuned = lkt.choose(&sig_a, &sig_b, cores).expect("LkT choice");
    println!("LkT-STP chose: {} ‖ {}", tuned.a, tuned.b);

    // --- compare with an untuned 4+4 co-location -------------------------
    let mb = size.per_node_mb();
    let untuned = PairConfig {
        a: TuningConfig {
            mappers: 4,
            ..TuningConfig::hadoop_default(cores)
        },
        b: TuningConfig {
            mappers: 4,
            ..TuningConfig::hadoop_default(cores)
        },
    };
    let m_tuned = eng
        .pair_metrics(a.profile(), mb, b.profile(), mb, tuned)
        .expect("pair sim");
    let m_untuned = eng
        .pair_metrics(a.profile(), mb, b.profile(), mb, untuned)
        .expect("pair sim");
    println!(
        "untuned 4+4: makespan {:.0}s, EDP {:.3e}",
        m_untuned.makespan_s,
        m_untuned.edp_wall(idle)
    );
    println!(
        "ECoST-tuned: makespan {:.0}s, EDP {:.3e}  ({:.1}% better EDP)",
        m_tuned.makespan_s,
        m_tuned.edp_wall(idle),
        100.0 * (1.0 - m_tuned.edp_wall(idle) / m_untuned.edp_wall(idle))
    );
}
