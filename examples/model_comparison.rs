//! Model comparison: train all four STP techniques and race them on unknown
//! pairs — Table 1 + Table 2 + Fig 8 condensed into one run.
//!
//! Run with: `cargo run --release --example model_comparison`

use ecost::apps::{App, InputSize};
use ecost::core::classify::KnnAppClassifier;
use ecost::core::database::ConfigDatabase;
use ecost::core::engine::EvalEngine;
use ecost::core::features::profile_catalog_app;
use ecost::core::stp::training::build_training_data;
use ecost::core::stp::{LktStp, MlmStp, Stp};
use ecost::ml::{LinearRegression, Mlp, MlpConfig, RepTree, RepTreeConfig};
use std::time::Instant;

fn main() {
    let eng = EvalEngine::atom();

    println!("offline: database…");
    let db = ConfigDatabase::build(&eng, 0.03, 42).expect("database build");
    let knn = KnnAppClassifier::fit(&db.signatures);
    let sigs: Vec<_> = db.solos.iter().map(|s| (s.sig, s.app, s.size)).collect();
    let sig_of = move |app: App, size: InputSize| {
        sigs.iter()
            .find(|(_, a, s)| *a == app && *s == size)
            .expect("training app in db")
            .0
    };
    let training = build_training_data(&eng, &sig_of, 600, 42).expect("training data");

    println!("training the four techniques…");
    let lkt = LktStp::from_database(&db);
    let t0 = Instant::now();
    let lr = MlmStp::train(&training, knn.clone(), "LR", LinearRegression::new);
    let t_lr = t0.elapsed();
    let t0 = Instant::now();
    let tree = MlmStp::train(&training, knn.clone(), "REPTree", || {
        RepTree::new(RepTreeConfig::default())
    });
    let t_tree = t0.elapsed();
    let t0 = Instant::now();
    let mlp = MlmStp::train(&training, knn, "MLP", || {
        Mlp::new(MlpConfig {
            hidden: vec![32, 16],
            epochs: 150,
            ..MlpConfig::default()
        })
    });
    let t_mlp = t0.elapsed();
    println!(
        "train times: database {:.1}s | LR {:.2}s | REPTree {:.2}s | MLP {:.1}s",
        db.build_seconds,
        t_lr.as_secs_f64(),
        t_tree.as_secs_f64(),
        t_mlp.as_secs_f64()
    );

    // Race on unknown pairs.
    let pairs = [(App::Svm, App::Cf), (App::Pr, App::Cf), (App::Nb, App::St)];
    let size = InputSize::Medium;
    let idle = eng.idle_w();
    let cores = eng.testbed().node.cores;
    let stps: [&dyn Stp; 4] = [&lkt, &lr, &tree, &mlp];
    println!(
        "\n{:>10} {:>10} {:>12} {:>10}",
        "pair", "technique", "EDP vs oracle", "decide ms"
    );
    for (a, b) in pairs {
        let mb = size.per_node_mb();
        let oracle = eng
            .best_pair(a.profile(), mb, b.profile(), mb)
            .expect("pair sweep")
            .metrics
            .edp_wall(idle);
        let sa = profile_catalog_app(&eng, a, size, 0.03, 7).expect("profiling run");
        let sb = profile_catalog_app(&eng, b, size, 0.03, 7).expect("profiling run");
        for stp in stps {
            let t0 = Instant::now();
            let cfg = stp.choose(&sa, &sb, cores).expect("stp choice");
            let ms = 1e3 * t0.elapsed().as_secs_f64();
            let edp = eng
                .pair_metrics(a.profile(), mb, b.profile(), mb, cfg)
                .expect("pair sim")
                .edp_wall(idle);
            println!(
                "{:>10} {:>10} {:>11.2}% {:>10.2}",
                format!("{a}-{b}"),
                stp.name(),
                100.0 * (edp - oracle) / oracle,
                ms
            );
        }
    }
    println!("\nExpected shape (paper §7): REPTree/MLP within a few percent of the");
    println!("oracle, LkT mid-single digits, LR the clear outlier — while LkT");
    println!("decides fastest and MLP slowest.");
}
