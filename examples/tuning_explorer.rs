//! Tuning explorer: sweep the three knobs for one application and print the
//! EDP surface — the §4.1 analysis as an interactive tool.
//!
//! Usage: `cargo run --release --example tuning_explorer [app] [gb-per-node]`
//! e.g. `cargo run --release --example tuning_explorer st 5`

use ecost::apps::{App, InputSize};
use ecost::core::engine::EvalEngine;
use ecost::mapreduce::{BlockSize, TuningConfig};
use ecost::sim::Frequency;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args
        .get(1)
        .and_then(|s| App::from_name(s))
        .unwrap_or(App::St);
    let size = match args.get(2).map(String::as_str) {
        Some("1") => InputSize::Small,
        Some("10") => InputSize::Large,
        _ => InputSize::Medium,
    };
    let eng = EvalEngine::atom();
    let idle = eng.idle_w();
    let cores = eng.testbed().node.cores;
    let mb = size.per_node_mb();

    println!(
        "EDP surface for {app} [{}] at {size} per node (wall EDP, s²·W)",
        app.class()
    );
    println!("rows: block size × frequency; columns: mappers 1..8\n");

    let mut best: Option<(TuningConfig, f64)> = None;
    let mut worst: Option<(TuningConfig, f64)> = None;
    for block in BlockSize::ALL {
        for freq in Frequency::ALL {
            print!("h={block:>7} f={freq}  ");
            for mappers in 1..=cores {
                let cfg = TuningConfig {
                    freq,
                    block,
                    mappers,
                };
                let edp = eng
                    .solo_metrics(app.profile(), mb, cfg)
                    .expect("solo sim")
                    .edp_wall(idle);
                if best.as_ref().is_none_or(|(_, e)| edp < *e) {
                    best = Some((cfg, edp));
                }
                if worst.as_ref().is_none_or(|(_, e)| edp > *e) {
                    worst = Some((cfg, edp));
                }
                print!("{:9.2e}", edp);
            }
            println!();
        }
    }
    let (bc, be) = best.expect("non-empty sweep");
    let (wc, we) = worst.expect("non-empty sweep");
    println!("\nbest : {bc}  EDP {be:.3e}");
    println!("worst: {wc}  EDP {we:.3e}  ({:.1}x worse)", we / be);
    println!("\nThe spread is the paper's §4.1 argument: careless knobs cost");
    println!("multiples of the achievable energy efficiency.");
}
