//! Offline stand-in for `criterion`: same macro/entry surface, coarse
//! wall-clock measurement (median of a few samples), plain-text report.
//! No warm-up modelling, outlier analysis, or HTML output.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier, forwarding to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.sample_size == 0 {
                10
            } else {
                self.sample_size
            },
            _parent: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        run_bench(&id.into(), sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the stand-in times a fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // One untimed warm-up pass.
    f(&mut b);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        b.elapsed = Duration::ZERO;
        b.iters = 0;
        f(&mut b);
        if b.iters > 0 {
            per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0.0);
    println!("bench {id:<48} {:>12.3} µs/iter", median * 1e6);
}

/// Per-benchmark timing handle.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        assert!(calls >= 4, "warm-up + samples must run the closure");
    }
}
