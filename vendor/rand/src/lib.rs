//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly what the ecost workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++), uniform
//! ranges via [`Rng::gen_range`], slice shuffling/choosing, and
//! `sample_iter(Standard)`. Draw streams are deterministic per seed but
//! differ from upstream `rand` (which uses ChaCha12 for `StdRng`);
//! nothing in-tree asserts golden streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Iterator of samples from `distr`, consuming the generator.
    fn sample_iter<T, D>(self, distr: D) -> DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        DistIter {
            distr,
            rng: self,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only `seed_from_u64` is used in-tree.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling over a concrete range type.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Widening-multiply bounded draw (Lemire, without the rejection step;
    // the residual bias is < 2^-64 per draw — irrelevant for simulation).
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        debug_assert!(lo <= hi, "empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                debug_assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                debug_assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic workhorse generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions usable with [`Rng::sample_iter`].
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// The "natural" distribution for a type (uniform over all values for
    /// integers, uniform in `[0, 1)` for floats).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    /// Sampling interface for a distribution over `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }
}

/// Iterator returned by [`Rng::sample_iter`].
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: std::marker::PhantomData<T>,
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: distributions::Distribution<T>,
    R: RngCore,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{bounded_u64, RngCore};

    /// Shuffle and choose, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(bounded_u64(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(0.5..=0.75);
            assert!((0.5..=0.75).contains(&g));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let v = rng.gen_range(0usize..=4);
            assert!(v <= 4);
        }
    }

    #[test]
    fn inclusive_int_range_reaches_both_ends() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
