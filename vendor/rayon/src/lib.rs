//! Offline stand-in for `rayon`: the parallel-iterator subset the ecost
//! workspace uses, built on `std::thread::scope`.
//!
//! Guarantees the workspace relies on:
//!
//! - **Order preservation.** Items are split into contiguous chunks and
//!   results are re-joined in input order, so `collect`/`min_by` yield
//!   exactly what the sequential iterator would — for any thread count.
//! - **`RAYON_NUM_THREADS`.** Read per call (not cached), so tests can
//!   toggle it; `1` forces fully sequential execution on this thread.
//! - **Panic propagation.** A worker panic is resumed on the caller.

#![forbid(unsafe_code)]

use std::cmp::Ordering;

/// Thread count: `RAYON_NUM_THREADS` if set and positive, else the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Map `f` over `items` on up to [`current_num_threads`] scoped threads,
/// returning results in input order.
///
/// The split is by index range over a single pair of buffers: each worker
/// owns one disjoint `&mut` window of the input slots and the matching
/// window of the output slots, writing results straight into their final
/// positions. No per-thread `Vec<Vec<T>>` repacking, no `extend`-joining —
/// order preservation falls out of the addressing instead of being
/// reassembled afterwards. (`Option` slots stand in for the `unsafe`
/// move-out/write-in a real work-stealing pool would do; this crate is
/// `forbid(unsafe_code)`.)
fn run_map<T, O, F>(items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<O>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let f = &f;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for (ins, outs) in slots.chunks_mut(chunk_len).zip(out.chunks_mut(chunk_len)) {
            handles.push(s.spawn(move || {
                for (slot, o) in ins.iter_mut().zip(outs.iter_mut()) {
                    if let Some(item) = slot.take() {
                        *o = Some(f(item));
                    }
                }
            }));
        }
        for h in handles {
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    // Every slot was Some going in and each worker maps its whole window,
    // so a None here is unreachable unless a worker panicked (resumed
    // above).
    out.into_iter()
        .map(|o| o.expect("worker filled every output slot"))
        .collect()
}

/// A not-yet-mapped parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator, ready for a terminal operation.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Attach the per-item function.
    pub fn map<O, F>(self, f: F) -> ParMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` for each item (parallel, side effects only).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_map(self.items, f);
    }
}

impl<T, O, F> ParMap<T, F>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    /// Evaluate in parallel and collect in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        run_map(self.items, self.f).into_iter().collect()
    }

    /// Evaluate in parallel, then take the minimum under `cmp`
    /// (sequentially, so ties resolve deterministically).
    pub fn min_by<C>(self, cmp: C) -> Option<O>
    where
        C: Fn(&O, &O) -> Ordering,
    {
        run_map(self.items, self.f).into_iter().min_by(cmp)
    }

    /// Evaluate in parallel, then take the maximum under `cmp`.
    pub fn max_by<C>(self, cmp: C) -> Option<O>
    where
        C: Fn(&O, &O) -> Ordering,
    {
        run_map(self.items, self.f).into_iter().max_by(cmp)
    }
}

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Conversion of `&collection` into a parallel iterator of references.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send;

    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The usual glob import: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn min_by_matches_sequential() {
        let v: Vec<i64> = (0..512).map(|i| (i * 7919) % 1009).collect();
        let par = v.clone().into_par_iter().map(|x| x).min_by(|a, b| a.cmp(b));
        let seq = v.into_iter().min();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<u32> = (0..100).collect();
        let sum: u32 = v.par_iter().map(|&x| x).collect::<Vec<u32>>().iter().sum();
        assert_eq!(sum, v.iter().sum::<u32>());
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    /// Serialises tests that mutate `RAYON_NUM_THREADS`; other tests may
    /// run concurrently but only *read* the variable, and every assertion
    /// here holds for any thread count.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn order_preserved_for_every_thread_count() {
        let _guard = ENV_LOCK.lock().unwrap();
        let prev = std::env::var("RAYON_NUM_THREADS").ok();
        // Awkward splits on purpose: 1 thread (sequential path), more
        // threads than items, counts that leave a short final chunk.
        for threads in [1, 2, 3, 7, 64, 1024] {
            std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
            for n in [0usize, 1, 2, 97, 503] {
                let v: Vec<usize> = (0..n).collect();
                let out: Vec<usize> = v.clone().into_par_iter().map(|x| x * 3 + 1).collect();
                let seq: Vec<usize> = v.into_iter().map(|x| x * 3 + 1).collect();
                assert_eq!(out, seq, "threads={threads} n={n}");
            }
        }
        match prev {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
    }

    #[test]
    fn for_each_visits_every_item_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        let v: Vec<usize> = (0..777).collect();
        v.clone().into_par_iter().for_each(|x| {
            hits.fetch_add(x + 1, Ordering::Relaxed);
        });
        assert_eq!(
            hits.load(Ordering::Relaxed),
            v.into_iter().map(|x| x + 1).sum::<usize>()
        );
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            let v: Vec<u32> = (0..256).collect();
            let _: Vec<u32> = v
                .into_par_iter()
                .map(|x| if x == 200 { panic!("boom") } else { x })
                .collect();
        });
        assert!(result.is_err());
    }

    #[test]
    fn max_by_matches_sequential() {
        let v: Vec<i64> = (0..512).map(|i| (i * 6007) % 997).collect();
        let par = v.clone().into_par_iter().map(|x| x).max_by(|a, b| a.cmp(b));
        assert_eq!(par, v.into_iter().max());
    }

    #[test]
    fn non_copy_items_move_through_intact() {
        let v: Vec<String> = (0..300).map(|i| format!("job-{i}")).collect();
        let out: Vec<usize> = v.clone().into_par_iter().map(|s| s.len()).collect();
        let seq: Vec<usize> = v.iter().map(|s| s.len()).collect();
        assert_eq!(out, seq);
    }
}
