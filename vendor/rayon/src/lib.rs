//! Offline stand-in for `rayon`: the parallel-iterator subset the ecost
//! workspace uses, built on `std::thread::scope`.
//!
//! Guarantees the workspace relies on:
//!
//! - **Order preservation.** Items are split into contiguous chunks and
//!   results are re-joined in input order, so `collect`/`min_by` yield
//!   exactly what the sequential iterator would — for any thread count.
//! - **`RAYON_NUM_THREADS`.** Read per call (not cached), so tests can
//!   toggle it; `1` forces fully sequential execution on this thread.
//! - **Panic propagation.** A worker panic is resumed on the caller.

#![forbid(unsafe_code)]

use std::cmp::Ordering;

/// Thread count: `RAYON_NUM_THREADS` if set and positive, else the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Map `f` over `items` on up to [`current_num_threads`] scoped threads,
/// returning results in input order.
fn run_map<T, O, F>(items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let mut out: Vec<O> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out
}

/// A not-yet-mapped parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator, ready for a terminal operation.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Attach the per-item function.
    pub fn map<O, F>(self, f: F) -> ParMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` for each item (parallel, side effects only).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_map(self.items, f);
    }
}

impl<T, O, F> ParMap<T, F>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    /// Evaluate in parallel and collect in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        run_map(self.items, self.f).into_iter().collect()
    }

    /// Evaluate in parallel, then take the minimum under `cmp`
    /// (sequentially, so ties resolve deterministically).
    pub fn min_by<C>(self, cmp: C) -> Option<O>
    where
        C: Fn(&O, &O) -> Ordering,
    {
        run_map(self.items, self.f).into_iter().min_by(cmp)
    }

    /// Evaluate in parallel, then take the maximum under `cmp`.
    pub fn max_by<C>(self, cmp: C) -> Option<O>
    where
        C: Fn(&O, &O) -> Ordering,
    {
        run_map(self.items, self.f).into_iter().max_by(cmp)
    }
}

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Conversion of `&collection` into a parallel iterator of references.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send;

    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The usual glob import: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn min_by_matches_sequential() {
        let v: Vec<i64> = (0..512).map(|i| (i * 7919) % 1009).collect();
        let par = v.clone().into_par_iter().map(|x| x).min_by(|a, b| a.cmp(b));
        let seq = v.into_iter().min();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<u32> = (0..100).collect();
        let sum: u32 = v.par_iter().map(|&x| x).collect::<Vec<u32>>().iter().sum();
        assert_eq!(sum, v.iter().sum::<u32>());
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
