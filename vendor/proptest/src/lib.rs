//! Offline stand-in for `proptest`: the macro + strategy subset used by
//! the ecost workspace.
//!
//! Each `proptest!` test runs `ProptestConfig::cases` iterations with a
//! deterministic per-test RNG (seeded from the test's module path), so
//! failures reproduce exactly. There is no shrinking: a failing case
//! reports the assertion as-is.

#![forbid(unsafe_code)]

/// Test-runner plumbing: config and the deterministic case RNG.
pub mod test_runner {
    /// Subset of proptest's config: just the case count.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` iterations.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator handed to strategies (xoshiro256++-style).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// RNG seeded from a stable label (typically the test's path).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform u64 in `[0, span)`; `span` must be positive.
        pub fn below(&mut self, span: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for producing values of `Value`.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it — dependent generation (e.g. a shape drawn first,
        /// then collections sized to that shape).
        fn prop_flat_map<T, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            T: Strategy,
            F: Fn(Self::Value) -> T,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn new_value(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice among same-typed alternative strategies
    /// (what `prop_oneof!` builds).
    pub struct Union<S> {
        arms: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Build from a non-empty set of arms.
        pub fn new(arms: Vec<S>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].new_value(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    debug_assert!(self.start < self.end, "empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    debug_assert!(lo <= hi, "empty range");
                    lo + rng.below((hi - lo) as u64 + 1) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length in a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element from `element`, length within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64 + 1) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` works.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property; failure fails the whole test immediately
/// (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice among alternative strategies of one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($arm),+])
    };
}

/// Declare property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in prop::collection::vec(0.0f64..1.0, 3)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 1u32..=8, (a, b) in (0.0f64..1.0, 0usize..5)) {
            prop_assert!((1..=8).contains(&x));
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!(b < 5);
        }

        #[test]
        fn vec_and_oneof(
            v in prop::collection::vec(-1.0f64..1.0, 2..6),
            c in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(c == 1 || c == 2);
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn prop_map_applies(y in (0u32..4).prop_map(|i| i * 10)) {
            prop_assert!(y % 10 == 0 && y < 40);
        }

        #[test]
        fn prop_flat_map_threads_the_first_draw(
            v in (1usize..=4).prop_flat_map(|len| {
                prop::collection::vec(0.0f64..1.0, len).prop_map(move |v| (len, v))
            })
        ) {
            prop_assert_eq!(v.0, v.1.len());
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
