//! EDP metrics (§2.6 of the paper).
//!
//! EDP = ExecutionTime² × Power, equivalently ExecutionTime × Energy.
//!
//! Two accountings are provided:
//!
//! * **Dynamic EDP** ([`JobMetrics::edp`]) uses idle-subtracted power — the
//!   paper's per-application characterisation convention (§2.5: average
//!   power minus system idle).
//! * **Wall EDP** ([`JobMetrics::edp_wall`], [`PairMetrics::edp_wall`]) uses
//!   the full wall power including node idle. This is the accounting under
//!   which scheduling techniques are compared: the node draws its idle power
//!   for as long as the *schedule* runs, so consolidating two applications
//!   onto one node for half the wall time halves the idle energy — the
//!   "scale-down" benefit the paper's co-location argument rests on. All
//!   ILAO/COLAO/STP/mapping-policy comparisons use wall EDP.
//!
//! For multi-job schedules the delay is the makespan (time until every job
//! is done), so `EDP = makespan × total_energy`.

/// Time/energy result of one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobMetrics {
    /// Wall-clock execution time, seconds.
    pub exec_time_s: f64,
    /// Attributed dynamic energy, joules.
    pub energy_j: f64,
    /// Average attributed dynamic power, watts.
    pub avg_power_w: f64,
}

impl JobMetrics {
    /// Dynamic EDP of the job in isolation: `T² · P_dyn = T · E_dyn` (s²·W).
    #[inline]
    pub fn edp(&self) -> f64 {
        self.exec_time_s * self.energy_j
    }

    /// Wall EDP: delay × (dynamic energy + idle power held for the delay).
    #[inline]
    pub fn edp_wall(&self, idle_w: f64) -> f64 {
        self.exec_time_s * (self.energy_j + idle_w * self.exec_time_s)
    }
}

/// EDP from a delay and a total energy.
#[inline]
pub fn edp(delay_s: f64, energy_j: f64) -> f64 {
    delay_s * energy_j
}

/// Aggregate result of a multi-job schedule (a co-located pair, or a whole
/// workload on a cluster).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairMetrics {
    /// Time until the last job finished, seconds.
    pub makespan_s: f64,
    /// Total dynamic energy, joules.
    pub energy_j: f64,
}

impl PairMetrics {
    /// Combine per-job serial runs: delay adds, energy adds. This is the
    /// ILAO accounting — app 2 waits for app 1.
    pub fn serial(runs: &[JobMetrics]) -> PairMetrics {
        PairMetrics {
            makespan_s: runs.iter().map(|r| r.exec_time_s).sum(),
            energy_j: runs.iter().map(|r| r.energy_j).sum(),
        }
    }

    /// Combine concurrent runs that started together: delay is the max,
    /// energy adds. (For exact co-located accounting prefer the executor's
    /// own makespan, which includes any trailing solo phase.)
    pub fn concurrent(runs: &[JobMetrics]) -> PairMetrics {
        PairMetrics {
            makespan_s: runs.iter().map(|r| r.exec_time_s).fold(0.0, f64::max),
            energy_j: runs.iter().map(|r| r.energy_j).sum(),
        }
    }

    /// Dynamic workload EDP: makespan × dynamic energy (s²·W).
    #[inline]
    pub fn edp(&self) -> f64 {
        edp(self.makespan_s, self.energy_j)
    }

    /// Wall workload EDP: the schedule holds `idle_w` of idle power (node
    /// idle × number of occupied nodes) for its whole makespan.
    #[inline]
    pub fn edp_wall(&self, idle_w: f64) -> f64 {
        self.makespan_s * (self.energy_j + idle_w * self.makespan_s)
    }

    /// Wall energy (J) for the same accounting.
    #[inline]
    pub fn energy_wall_j(&self, idle_w: f64) -> f64 {
        self.energy_j + idle_w * self.makespan_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jm(t: f64, e: f64) -> JobMetrics {
        JobMetrics {
            exec_time_s: t,
            energy_j: e,
            avg_power_w: e / t,
        }
    }

    #[test]
    fn job_edp_is_t_squared_p() {
        let m = jm(10.0, 50.0); // 5 W average
        assert!((m.edp() - 10.0 * 10.0 * 5.0).abs() < 1e-9);
    }

    #[test]
    fn serial_adds_delays() {
        let p = PairMetrics::serial(&[jm(10.0, 50.0), jm(20.0, 30.0)]);
        assert_eq!(p.makespan_s, 30.0);
        assert_eq!(p.energy_j, 80.0);
        assert!((p.edp() - 2400.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_takes_max_delay() {
        let p = PairMetrics::concurrent(&[jm(10.0, 50.0), jm(20.0, 30.0)]);
        assert_eq!(p.makespan_s, 20.0);
        assert_eq!(p.energy_j, 80.0);
    }

    #[test]
    fn wall_edp_rewards_consolidation() {
        // Same work done in half the wall time at twice the dynamic power:
        // dynamic EDP halves, wall EDP improves by more because the idle
        // draw is held half as long.
        let serial = PairMetrics {
            makespan_s: 200.0,
            energy_j: 600.0,
        };
        let packed = PairMetrics {
            makespan_s: 100.0,
            energy_j: 600.0,
        };
        let idle = 16.0;
        let dyn_ratio = serial.edp() / packed.edp();
        let wall_ratio = serial.edp_wall(idle) / packed.edp_wall(idle);
        assert!((dyn_ratio - 2.0).abs() < 1e-9);
        assert!(wall_ratio > 3.0, "wall_ratio {wall_ratio}");
    }

    #[test]
    fn wall_edp_reduces_to_dynamic_at_zero_idle() {
        let m = jm(10.0, 50.0);
        assert!((m.edp_wall(0.0) - m.edp()).abs() < 1e-12);
        let p = PairMetrics {
            makespan_s: 10.0,
            energy_j: 50.0,
        };
        assert!((p.edp_wall(0.0) - p.edp()).abs() < 1e-12);
        assert!((p.energy_wall_j(16.0) - 210.0).abs() < 1e-12);
    }

    #[test]
    fn serial_never_beats_concurrent_on_delay() {
        let runs = [jm(5.0, 10.0), jm(7.0, 14.0), jm(3.0, 2.0)];
        assert!(PairMetrics::serial(&runs).makespan_s >= PairMetrics::concurrent(&runs).makespan_s);
    }
}
