//! # ecost-mapreduce — the Hadoop/HDFS execution model
//!
//! The simulation stand-in for the paper's Hadoop MapReduce stack. A job is
//! described by an application profile (from `ecost-apps`), an input size and
//! a [`config::TuningConfig`] — the paper's three knobs: HDFS block size,
//! mapper count and operating frequency. The model turns that into a stage
//! list (setup → map waves → shuffle/reduce) and executes any number of
//! co-located jobs on one simulated node:
//!
//! * each map/reduce stage is a customer class in a closed queueing network
//!   (slots alternating between private cores and the job's I/O path) solved
//!   with the AMVA solver from `ecost-sim`;
//! * an outer fixed point couples the jobs through the physical disk (stream
//!   efficiency + bandwidth), the memory-bandwidth pool (compute dilation for
//!   high-MPKI applications) and DRAM capacity (spill pressure);
//! * power is integrated segment-by-segment with the idle-subtracted wall
//!   model of `ecost-sim`, and per-job usage is accumulated for the
//!   synthetic performance counters ([`counters`]).
//!
//! The per-job I/O path ceiling ([`framework::FrameworkSpec::job_io_cap_mbps`])
//! models Hadoop's single-client HDFS pipeline: one job cannot drive the disk
//! at its raw bandwidth no matter how many slots it has. That ceiling is the
//! physical reason co-locating two I/O-bound jobs beats running them serially
//! (Fig 3 of the paper): two pipelines together reach what one cannot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod counters;
pub mod executor;
pub mod framework;
pub mod hdfs;
pub mod job;
pub mod metrics;
pub mod reference;
pub mod stage;

pub use config::{BlockSize, PairConfig, TuningConfig};
pub use counters::{Feature, FeatureVector, NUM_FEATURES};
pub use executor::{
    run_batch_to_completion, run_colocated, run_colocated_degraded, run_standalone,
    run_standalone_degraded, BatchPhases, BatchScratch, JobHandle, JobOutcome, NodeSim,
    MAX_BATCH_LANES,
};
pub use framework::FrameworkSpec;
pub use job::JobSpec;
pub use metrics::{edp, JobMetrics, PairMetrics};
