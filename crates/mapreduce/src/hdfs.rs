//! HDFS input-split model.
//!
//! Splits an input of `S` MB into map tasks of one block each and computes
//! the wave structure for a given slot count, including the tail-imbalance
//! inflation that makes very large blocks risky: with 10 GB of input and
//! 1 GB blocks, 10 tasks on 8 slots run as a full wave of 8 plus a
//! straggling wave of 2 — six slots sit idle for half the stage.

use crate::config::BlockSize;

/// Split description for one job's map stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitPlan {
    /// Number of map tasks (`⌈S/h⌉`).
    pub tasks: u32,
    /// Number of waves with `slots` simultaneous mappers.
    pub waves: u32,
    /// Tail-imbalance inflation factor `slots·waves / tasks ≥ 1`: the
    /// effective slot-seconds consumed per useful task.
    pub tail_inflation: f64,
}

/// Compute the split plan for `input_mb` of data at block size `block` with
/// `slots` simultaneous mappers.
pub fn split(input_mb: f64, block: BlockSize, slots: u32) -> SplitPlan {
    assert!(input_mb > 0.0, "input must be positive");
    assert!(slots >= 1, "need at least one slot");
    let tasks = (input_mb / block.mb()).ceil().max(1.0) as u32;
    let waves = tasks.div_ceil(slots);
    let tail_inflation = f64::from(waves * slots.min(tasks)) / f64::from(tasks);
    SplitPlan {
        tasks,
        waves,
        tail_inflation: tail_inflation.max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division_has_no_tail() {
        let p = split(1024.0, BlockSize::B128, 8);
        assert_eq!(p.tasks, 8);
        assert_eq!(p.waves, 1);
        assert!((p.tail_inflation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn straggler_wave_inflates() {
        // 10 GB at 1 GB blocks on 8 slots: 10 tasks, 2 waves, 16 slot-tasks
        // for 10 useful ones.
        let p = split(10.0 * 1024.0, BlockSize::B1024, 8);
        assert_eq!(p.tasks, 10);
        assert_eq!(p.waves, 2);
        assert!((p.tail_inflation - 1.6).abs() < 1e-12);
    }

    #[test]
    fn single_slot_never_inflates() {
        for b in BlockSize::ALL {
            let p = split(5.0 * 1024.0, b, 1);
            assert!((p.tail_inflation - 1.0).abs() < 1e-12, "{b}");
            assert_eq!(p.waves, p.tasks);
        }
    }

    #[test]
    fn fewer_tasks_than_slots() {
        let p = split(100.0, BlockSize::B1024, 8);
        assert_eq!(p.tasks, 1);
        assert_eq!(p.waves, 1);
        assert!((p.tail_inflation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_blocks_make_more_tasks() {
        let coarse = split(10.0 * 1024.0, BlockSize::B1024, 4);
        let fine = split(10.0 * 1024.0, BlockSize::B64, 4);
        assert!(fine.tasks > 10 * coarse.tasks);
        // …and amortise the tail better.
        assert!(fine.tail_inflation <= coarse.tail_inflation);
    }
}
