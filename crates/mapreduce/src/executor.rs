//! The co-located node executor.
//!
//! [`NodeSim`] runs any number of MapReduce jobs concurrently on one
//! simulated node. Between events (stage or job completions, job arrivals)
//! all rates are constant and come from one consistent solution of the
//! contention model:
//!
//! 1. **DRAM pressure** — active footprints are summed; over-subscription
//!    inflates every job's disk traffic (spill pressure).
//! 2. **Queueing network** — each fluid stage is an AMVA class whose slots
//!    alternate between private cores (think time) and the job's private I/O
//!    path (a PS station capped at the framework's per-job ceiling and the
//!    slots' stream rates). Remote shuffle adds a shared NIC station.
//! 3. **Physical disk coupling** — the jobs' achieved I/O rates must fit the
//!    disk's aggregate bandwidth at the current stream concurrency
//!    (`η`-degraded); a proportional-fair scale factor θ on the granted
//!    bandwidths closes the loop.
//! 4. **Memory-bandwidth coupling** — busy cores demand bandwidth per their
//!    profile; over-subscription dilates the stall-sensitive fraction of
//!    every job's compute time.
//!
//! The executor integrates idle-subtracted power piecewise (the Wattsup
//! stand-in), attributes energy to jobs, and accumulates the per-job usage
//! records the synthetic counters are derived from.

use crate::framework::FrameworkSpec;
use crate::job::JobSpec;
use crate::metrics::JobMetrics;
use crate::stage::Stage;
use ecost_sim::{
    AmvaBatch, AmvaScratch, ClassDemand, EnergyMeter, NodeSpec, PowerModel, SimError, SimdBackend,
};
use ecost_telemetry::{Event, Recorder, SpanKey};
use std::time::Instant;

/// Opaque handle identifying a submitted job within one `NodeSim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobHandle(pub u64);

/// Accumulated per-job resource usage (the raw material for counters).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobUsage {
    /// Core-seconds actively computing.
    pub busy_core_s: f64,
    /// Core-seconds allocated (busy + iowait).
    pub alloc_core_s: f64,
    /// Disk reads, MB.
    pub read_mb: f64,
    /// Disk writes, MB.
    pub write_mb: f64,
    /// Network bytes, MB.
    pub nic_mb: f64,
    /// Memory traffic served, MB.
    pub mem_mb: f64,
    /// Attributed dynamic energy, joules.
    pub energy_j: f64,
    /// ∫ stall-dilation × busy-cores dt — for effective-IPC synthesis.
    pub stall_weighted_s: f64,
    /// Peak resident footprint observed, MB.
    pub peak_footprint_mb: f64,
}

/// A finished job: its spec, metrics and usage record.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Handle it ran under.
    pub id: JobHandle,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Time/energy/EDP results.
    pub metrics: JobMetrics,
    /// Usage record for counter synthesis.
    pub usage: JobUsage,
    /// Stage completion timeline: `(stage kind, absolute completion time)`,
    /// in execution order — the per-job Gantt record.
    pub timeline: Vec<(crate::stage::StageKind, f64)>,
}

struct ActiveJob {
    id: JobHandle,
    spec: JobSpec,
    stages: Vec<Stage>,
    stage_idx: usize,
    /// Work units remaining in the current stage (tasks, or fraction of the
    /// setup interval).
    remaining: f64,
    start_s: f64,
    /// When the current stage began — the open end of its telemetry span.
    stage_start_s: f64,
    usage: JobUsage,
    timeline: Vec<(crate::stage::StageKind, f64)>,
    /// Straggler multiplier on the current task wave (1 = healthy). Cleared
    /// at the next stage boundary or by a successful speculation.
    straggler: f64,
    /// Extra mapper slots granted by speculative re-execution, released at
    /// the next stage boundary.
    extra_slots: u32,
}

impl ActiveJob {
    fn stage(&self) -> &Stage {
        &self.stages[self.stage_idx]
    }

    /// Slots active this wave: the configured slots plus any speculative
    /// backups.
    fn eff_slots(&self) -> u32 {
        self.stage().slots + self.extra_slots
    }
}

/// Hard cap on co-located jobs per node simulator.
///
/// Sized to the widest built-in node (16 Xeon cores): every job needs at
/// least one mapper core, so the admission check in [`NodeSim::submit`]
/// already bounds the active count by the core count. The cap exists so the
/// rate solution can live in fixed inline arrays instead of per-solve heap
/// vectors; exceeding it (only possible with a custom `NodeSpec` wider than
/// 16 cores) is a typed [`SimError::ColocationCapExceeded`], not a panic.
pub const MAX_COLOCATED: usize = 16;

/// Per-job rates valid until the next event.
///
/// Structure-of-arrays over fixed inline storage: entries `[..n]` are live,
/// the tail is stale and never read. Two of these are embedded in
/// [`NodeSim`] as a double buffer — `solve_into` always fills the *back*
/// buffer and flips on success, so the front buffer `advance` reads from is
/// never torn by a failed re-solve, and no per-event clone is needed.
#[derive(Debug, Clone)]
struct RateSolution {
    /// Live entry count (= active job count at solve time).
    n: usize,
    /// Work units per second, per active job.
    rate: [f64; MAX_COLOCATED],
    busy_cores: [f64; MAX_COLOCATED],
    read_mbps: [f64; MAX_COLOCATED],
    write_mbps: [f64; MAX_COLOCATED],
    nic_mbps: [f64; MAX_COLOCATED],
    mem_mbps: [f64; MAX_COLOCATED],
    power_attr_w: [f64; MAX_COLOCATED],
    slow: f64,
    footprint_mb: f64,
    power_total_w: f64,
    disk_util: f64,
    mem_util: f64,
    nic_util: f64,
}

impl RateSolution {
    fn empty() -> RateSolution {
        RateSolution {
            n: 0,
            rate: [0.0; MAX_COLOCATED],
            busy_cores: [0.0; MAX_COLOCATED],
            read_mbps: [0.0; MAX_COLOCATED],
            write_mbps: [0.0; MAX_COLOCATED],
            nic_mbps: [0.0; MAX_COLOCATED],
            mem_mbps: [0.0; MAX_COLOCATED],
            power_attr_w: [0.0; MAX_COLOCATED],
            slow: 1.0,
            footprint_mb: 0.0,
            power_total_w: 0.0,
            disk_util: 0.0,
            mem_util: 0.0,
            nic_util: 0.0,
        }
    }
}

/// Heap-backed scratch reused across every `solve_into` call of one
/// [`NodeSim`]. Buffers only ever grow (`clear` + `resize` keeps capacity),
/// so after the first solve at a given job-mix size the whole contention
/// model runs without touching the allocator.
struct SolveScratch {
    /// AMVA customer classes, one per active job; the per-class demand
    /// vectors are rebuilt in place each outer fixed-point iteration.
    classes: Vec<ClassDemand>,
    /// In-place Bard–Schweitzer solver state.
    amva: AmvaScratch,
}

impl SolveScratch {
    fn new() -> SolveScratch {
        SolveScratch {
            classes: Vec::new(),
            amva: AmvaScratch::new(),
        }
    }
}

/// One simulated node executing co-located MapReduce jobs.
///
/// ```
/// use ecost_mapreduce::{NodeSim, FrameworkSpec, JobSpec, TuningConfig};
/// use ecost_apps::{App, InputSize};
/// use ecost_sim::NodeSpec;
///
/// let mut node = NodeSim::new(NodeSpec::atom_c2758(), FrameworkSpec::default());
/// let cfg = TuningConfig::hadoop_default(4); // 4 mappers each
/// node.submit(JobSpec::new(App::Wc, InputSize::Small, cfg)).unwrap();
/// node.submit(JobSpec::new(App::St, InputSize::Small, cfg)).unwrap();
/// node.run_to_completion().unwrap();
/// assert_eq!(node.finished().len(), 2);
/// assert!(node.energy_j() > 0.0);
/// ```
pub struct NodeSim {
    spec: NodeSpec,
    fw: FrameworkSpec,
    power: PowerModel,
    nic_bw_mbps: f64,
    nic_power_w: f64,
    now: f64,
    active: Vec<ActiveJob>,
    finished: Vec<JobOutcome>,
    meter: EnergyMeter,
    next_id: u64,
    /// Double-buffered rate solution: `bufs[front]` is the last good solve,
    /// the other buffer is filled by the next solve and flipped in.
    bufs: [RateSolution; 2],
    front: usize,
    /// Whether `bufs[front]` reflects the current job mix.
    sol_valid: bool,
    /// Reusable solver scratch (AMVA state + class demand vectors).
    scratch: SolveScratch,
    /// Node-wide degradation factor (1 = healthy). Divides compute and disk
    /// rates — a thermal frequency cap plus disk-bandwidth decay.
    slowdown: f64,
    stragglers_injected: u64,
    speculative_retries: u64,
    /// Telemetry sink for stage/job spans and executor events. A no-op
    /// recorder (the default) drops everything without building payloads.
    recorder: Recorder,
    /// `(run, node)` identity stamped on every span this node emits.
    run_id: u32,
    node_id: u32,
    /// Whether [`NodeSim::set_telemetry`] replaced the construction-time
    /// no-op recorder. Lets [`NodeSim::reset`] skip rebuilding a recorder
    /// (an `Arc` + registry allocation) when nothing was ever attached —
    /// the common case for pooled sweep simulators.
    telemetry_attached: bool,
    /// Retired stage vectors, kept warm for the next submit. A pooled
    /// simulator crunching a sweep allocates its stage lists once and then
    /// recycles them run after run.
    spare_stages: Vec<Vec<Stage>>,
    /// Recycled timeline vectors (harvested by
    /// [`NodeSim::drain_finished_energy`]), reused by the next submit.
    spare_timelines: Vec<Vec<(crate::stage::StageKind, f64)>>,
}

/// Numerical floor treating a stage as complete.
const WORK_EPS: f64 = 1e-9;

impl NodeSim {
    /// New node with effectively infinite NIC (single-node studies).
    pub fn new(spec: NodeSpec, fw: FrameworkSpec) -> NodeSim {
        NodeSim::with_nic(spec, fw, f64::INFINITY, 0.0)
    }

    /// New node with a finite NIC (cluster studies).
    pub fn with_nic(
        spec: NodeSpec,
        fw: FrameworkSpec,
        nic_bw_mbps: f64,
        nic_power_w: f64,
    ) -> NodeSim {
        let power = PowerModel::new(spec.clone());
        NodeSim {
            spec,
            fw,
            power,
            nic_bw_mbps,
            nic_power_w,
            now: 0.0,
            active: Vec::new(),
            finished: Vec::new(),
            meter: EnergyMeter::new(),
            next_id: 0,
            bufs: [RateSolution::empty(), RateSolution::empty()],
            front: 0,
            sol_valid: false,
            scratch: SolveScratch::new(),
            slowdown: 1.0,
            stragglers_injected: 0,
            speculative_retries: 0,
            recorder: Recorder::noop(),
            run_id: 0,
            node_id: 0,
            telemetry_attached: false,
            // Pre-reserve: the recycle pushes in `advance` /
            // `drain_finished_energy` are capped at `MAX_COLOCATED`, so this
            // capacity keeps the event loop allocation-free (see
            // tests/zero_alloc.rs).
            spare_stages: Vec::with_capacity(MAX_COLOCATED),
            spare_timelines: Vec::with_capacity(MAX_COLOCATED),
        }
    }

    /// Attach a telemetry recorder plus the `(run, node)` identity this
    /// node stamps on its spans and events. Until called, a no-op recorder
    /// is in place and recording costs nothing.
    pub fn set_telemetry(&mut self, recorder: Recorder, run: u32, node: u32) {
        self.recorder = recorder;
        self.telemetry_attached = true;
        self.run_id = run;
        self.node_id = node;
    }

    /// Degrade (or restore) every rate on this node by `factor` (≥ 1, 1 =
    /// healthy). Models a thermal frequency cap plus disk-bandwidth decay.
    pub fn set_slowdown(&mut self, factor: f64) -> Result<(), SimError> {
        if !factor.is_finite() || factor < 1.0 {
            return Err(SimError::InvalidDemand(
                "slowdown factor must be finite and >= 1",
            ));
        }
        self.slowdown = factor;
        self.sol_valid = false;
        Ok(())
    }

    /// Current node-wide degradation factor (1 = healthy).
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Straggler events injected on this node so far.
    pub fn stragglers_injected(&self) -> u64 {
        self.stragglers_injected
    }

    /// Speculative re-executions launched on this node so far.
    pub fn speculative_retries(&self) -> u64 {
        self.speculative_retries
    }

    /// Slow the current task wave of job `h` by `multiplier` (≥ 1). The
    /// multiplier lasts until the wave (stage) completes or a speculative
    /// backup clears it.
    pub fn inject_straggler(&mut self, h: JobHandle, multiplier: f64) -> Result<(), SimError> {
        if !multiplier.is_finite() || multiplier < 1.0 {
            return Err(SimError::InvalidDemand(
                "straggler multiplier must be finite and >= 1",
            ));
        }
        let job = self
            .active
            .iter_mut()
            .find(|j| j.id == h)
            .ok_or(SimError::NoSuchJob(h.0))?;
        job.straggler = job.straggler.max(multiplier);
        self.stragglers_injected += 1;
        self.sol_valid = false;
        Ok(())
    }

    /// MapReduce-style speculative re-execution: if job `h` is straggling
    /// and spare mapper slots exist, launch up to `extra` backup slots that
    /// re-run the slowed tasks at healthy speed. The duplicated work is
    /// charged to the job (its remaining wave grows), so the retry costs
    /// real time and energy. Returns `Ok(true)` when a backup was launched,
    /// `Ok(false)` when the job is not straggling or no slots are free.
    pub fn speculate(&mut self, h: JobHandle, extra: u32) -> Result<bool, SimError> {
        let free = self.free_cores();
        let job = self
            .active
            .iter_mut()
            .find(|j| j.id == h)
            .ok_or(SimError::NoSuchJob(h.0))?;
        if job.straggler <= 1.0 {
            return Ok(false);
        }
        let granted = extra.min(free);
        if granted == 0 {
            return Ok(false);
        }
        // Backups duplicate in-flight tasks: charge the re-executed work,
        // bounded by what is actually left in the wave.
        let dup = f64::from(granted).min(job.remaining.max(0.0));
        job.remaining += dup;
        job.extra_slots += granted;
        job.straggler = 1.0;
        self.speculative_retries += 1;
        self.recorder
            .emit(self.now, Some(self.node_id), Some(h.0), || {
                Event::SpeculativeClone {
                    extra_slots: granted,
                }
            });
        self.sol_valid = false;
        Ok(true)
    }

    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Cores currently allocated to active jobs (speculative backup slots
    /// included).
    pub fn allocated_cores(&self) -> u32 {
        self.active
            .iter()
            .map(|j| j.spec.config.mappers + j.extra_slots)
            .sum()
    }

    /// Cores free for a new job.
    pub fn free_cores(&self) -> u32 {
        self.spec.cores.saturating_sub(self.allocated_cores())
    }

    /// Active job count.
    pub fn active_jobs(&self) -> usize {
        self.active.len()
    }

    /// Completed jobs so far (in completion order).
    pub fn finished(&self) -> &[JobOutcome] {
        &self.finished
    }

    /// Take ownership of the completed-job list.
    pub fn take_finished(&mut self) -> Vec<JobOutcome> {
        std::mem::take(&mut self.finished)
    }

    /// Pop the most recently finished job, keeping the finished list's
    /// capacity with the simulator (unlike [`Self::take_finished`], which
    /// steals the whole vector and forces the next submit to reallocate).
    pub fn pop_finished(&mut self) -> Option<JobOutcome> {
        self.finished.pop()
    }

    /// Drain the finished jobs, returning their summed attributed dynamic
    /// energy (in completion order, matching a caller-side sum over
    /// [`Self::take_finished`] bit for bit).
    ///
    /// This is the zero-allocation epilogue for sweeps that only need the
    /// aggregate: outcome buffers (timelines, the finished list's capacity)
    /// stay with the simulator and feed the next run's submits.
    pub fn drain_finished_energy(&mut self) -> f64 {
        let NodeSim {
            finished,
            spare_timelines,
            ..
        } = self;
        let mut energy_j = 0.0;
        for out in finished.drain(..) {
            energy_j += out.metrics.energy_j;
            let mut timeline = out.timeline;
            if spare_timelines.len() < MAX_COLOCATED {
                timeline.clear();
                spare_timelines.push(timeline);
            }
        }
        energy_j
    }

    /// Total idle-subtracted energy integrated so far, joules.
    pub fn energy_j(&self) -> f64 {
        self.meter.energy_j()
    }

    /// Record a Wattsup-style 1 Hz power trace for this node. Call before
    /// any simulation time elapses.
    pub fn enable_power_trace(&mut self) {
        assert_eq!(self.now, 0.0, "enable the trace before advancing time");
        self.meter = EnergyMeter::with_trace();
    }

    /// The recorded 1 Hz dynamic-power samples (if tracing was enabled).
    pub fn power_trace(&self) -> Option<&[f64]> {
        self.meter.trace()
    }

    /// Submit a job; fails if its mapper count exceeds the free cores or
    /// the node's co-location cap ([`MAX_COLOCATED`]).
    ///
    /// All heap capacity a job will ever need during execution is reserved
    /// here (its stage timeline, its slot in the finished list), keeping
    /// the event loop itself allocation-free.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobHandle, SimError> {
        let m = spec.config.mappers;
        if m == 0 || m > self.free_cores() {
            return Err(SimError::CoreBudgetExceeded {
                requested: self.allocated_cores() + m,
                available: self.spec.cores,
            });
        }
        if self.active.len() >= MAX_COLOCATED {
            return Err(SimError::ColocationCapExceeded {
                active: self.active.len(),
                cap: MAX_COLOCATED,
            });
        }
        // Recycled buffers (warm after the first few runs of a pooled
        // simulator): the stage list is rebuilt in place, the timeline
        // arrives cleared from `drain_finished_energy`'s harvest.
        let mut stages = self.spare_stages.pop().unwrap_or_default();
        spec.stages_into(&self.fw, &mut stages);
        assert!(!stages.is_empty());
        let id = JobHandle(self.next_id);
        self.next_id += 1;
        let remaining = stages[0].tasks;
        let mut timeline = self.spare_timelines.pop().unwrap_or_default();
        timeline.reserve(stages.len());
        // Every currently active job (this one included) retires into
        // `finished` at most once: reserving here means the push in
        // `advance` never reallocates mid-run.
        self.finished.reserve(self.active.len() + 1);
        self.active.push(ActiveJob {
            id,
            spec,
            stages,
            stage_idx: 0,
            remaining,
            start_s: self.now,
            stage_start_s: self.now,
            usage: JobUsage::default(),
            timeline,
            straggler: 1.0,
            extra_slots: 0,
        });
        self.sol_valid = false;
        Ok(id)
    }

    /// Seconds until the next stage completion at current rates, if any job
    /// is active.
    pub fn time_to_next_event(&mut self) -> Result<Option<f64>, SimError> {
        if self.active.is_empty() {
            return Ok(None);
        }
        self.ensure_solution()?;
        let sol = &self.bufs[self.front];
        let mut dt = f64::INFINITY;
        for (job, r) in self.active.iter().zip(&sol.rate[..sol.n]) {
            debug_assert!(*r > 0.0, "active job {} has zero rate", job.spec.label);
            dt = dt.min(job.remaining / r);
        }
        Ok(Some(dt.max(0.0)))
    }

    /// Advance the clock by `dt` seconds (must not exceed the time to the
    /// next event by more than a rounding margin), integrating usage, energy
    /// and progress, and retiring any stages/jobs that complete.
    pub fn advance(&mut self, dt: f64) -> Result<(), SimError> {
        if !(dt >= 0.0 && dt.is_finite()) {
            return Err(SimError::InvalidTimeStep { dt });
        }
        if self.active.is_empty() || dt == 0.0 {
            self.now += dt;
            return Ok(());
        }
        self.ensure_solution()?;
        // Split borrows: the front solution buffer is read while job state,
        // the meter and the clock are mutated — the disjoint field access
        // replaces the full solution clone the old code paid per event.
        let Self {
            active,
            finished,
            meter,
            recorder,
            bufs,
            front,
            sol_valid,
            now,
            run_id,
            node_id,
            spare_stages,
            ..
        } = self;
        let sol = &bufs[*front];
        meter.record(dt, sol.power_total_w);
        let mut completed = [0usize; MAX_COLOCATED];
        let mut ncomp = 0usize;
        let mut dirty = false;
        for (j, job) in active.iter_mut().enumerate() {
            let stage_slots = f64::from(job.eff_slots());
            job.usage.busy_core_s += sol.busy_cores[j] * dt;
            job.usage.alloc_core_s += stage_slots * dt;
            job.usage.read_mb += sol.read_mbps[j] * dt;
            job.usage.write_mb += sol.write_mbps[j] * dt;
            job.usage.nic_mb += sol.nic_mbps[j] * dt;
            job.usage.mem_mb += sol.mem_mbps[j] * dt;
            job.usage.energy_j += sol.power_attr_w[j] * dt;
            job.usage.stall_weighted_s += sol.slow * sol.busy_cores[j] * dt;
            job.usage.peak_footprint_mb = job.usage.peak_footprint_mb.max(job.stage().footprint_mb);
            job.remaining -= sol.rate[j] * dt;
            if job.remaining <= WORK_EPS * job.stage().tasks.max(1.0) {
                job.timeline.push((job.stage().kind, *now + dt));
                recorder.span(
                    SpanKey::new(*run_id, *node_id, job.id.0, job.stage().kind.label()),
                    job.stage_start_s,
                    *now + dt,
                );
                job.stage_start_s = *now + dt;
                job.stage_idx += 1;
                // Wave boundary: straggling and speculative backups end with
                // the wave that suffered/launched them.
                if job.straggler != 1.0 || job.extra_slots != 0 {
                    job.straggler = 1.0;
                    job.extra_slots = 0;
                    dirty = true;
                }
                if job.stage_idx >= job.stages.len() {
                    completed[ncomp] = j;
                    ncomp += 1;
                } else {
                    job.remaining = job.stages[job.stage_idx].tasks;
                    dirty = true;
                }
            }
        }
        if dirty {
            *sol_valid = false;
        }
        *now += dt;
        // Retire completed jobs (reverse order keeps indices valid). The
        // outcome push is a pure move into capacity reserved at submit.
        for &j in completed[..ncomp].iter().rev() {
            let mut job = active.swap_remove(j);
            // The stage list never leaves the simulator: recycle it for the
            // next submit instead of freeing it.
            let mut stages = std::mem::take(&mut job.stages);
            if spare_stages.len() < MAX_COLOCATED {
                stages.clear();
                spare_stages.push(stages);
            }
            let exec = *now - job.start_s;
            recorder.span(
                SpanKey::new(*run_id, *node_id, job.id.0, "job"),
                job.start_s,
                *now,
            );
            recorder.emit(*now, Some(*node_id), Some(job.id.0), || Event::JobFinish {
                app: job.spec.profile.name.to_string(),
                exec_time_s: exec,
            });
            let metrics = JobMetrics {
                exec_time_s: exec,
                energy_j: job.usage.energy_j,
                avg_power_w: if exec > 0.0 {
                    job.usage.energy_j / exec
                } else {
                    0.0
                },
            };
            finished.push(JobOutcome {
                id: job.id,
                spec: job.spec,
                metrics,
                usage: job.usage,
                timeline: job.timeline,
            });
            *sol_valid = false;
        }
        Ok(())
    }

    /// Run one event step; returns how many jobs finished during it (their
    /// outcomes are appended to [`NodeSim::finished`] in completion order).
    pub fn step(&mut self) -> Result<usize, SimError> {
        let before = self.finished.len();
        match self.time_to_next_event()? {
            None => Ok(0),
            Some(dt) => {
                self.advance(dt)?;
                Ok(self.finished.len() - before)
            }
        }
    }

    /// Run until no active jobs remain.
    pub fn run_to_completion(&mut self) -> Result<(), SimError> {
        // Generous budget: stages × jobs is the true event count; blowing
        // past it means the rate solution stalled (a model bug), surfaced
        // as a typed error rather than a panic.
        let budget = 64 + 16 * self.active.iter().map(|j| j.stages.len()).sum::<usize>();
        let budget = budget as u64;
        let mut events = 0u64;
        while !self.active.is_empty() {
            self.step()?;
            events += 1;
            if events >= budget {
                return Err(SimError::EventLoopRunaway { events, budget });
            }
        }
        Ok(())
    }

    /// Re-solve the contention model into the back buffer and flip it to
    /// the front, if the cached solution is stale.
    fn ensure_solution(&mut self) -> Result<(), SimError> {
        if self.sol_valid {
            return Ok(());
        }
        let back = 1 - self.front;
        let Self {
            spec,
            fw,
            power,
            nic_bw_mbps,
            nic_power_w,
            active,
            scratch,
            bufs,
            slowdown,
            ..
        } = self;
        solve_into(
            spec,
            fw,
            power,
            *nic_bw_mbps,
            *nic_power_w,
            *slowdown,
            active,
            scratch,
            &mut bufs[back],
        )?;
        self.front = back;
        self.sol_valid = true;
        Ok(())
    }

    /// Handles of currently active jobs, in submission order.
    pub fn active_handles(&self) -> Vec<JobHandle> {
        self.active.iter().map(|j| j.id).collect()
    }

    /// Permanently fail the node: active jobs are dropped without outcomes
    /// (their in-flight work is lost) and their handles are returned so a
    /// scheduler can requeue them elsewhere. Energy already integrated stays
    /// on the meter — the wasted work is part of the cluster's bill.
    pub fn crash(&mut self) -> Vec<JobHandle> {
        let handles = self.active.iter().map(|j| j.id).collect();
        self.active.clear();
        self.sol_valid = false;
        handles
    }

    /// Diagnostic snapshot of the current rate solution: (disk util, memory
    /// bandwidth util, memory stall dilation, total footprint MB).
    pub fn contention_snapshot(&mut self) -> Result<(f64, f64, f64, f64), SimError> {
        self.ensure_solution()?;
        let s = &self.bufs[self.front];
        Ok((s.disk_util, s.mem_util, s.slow, s.footprint_mb))
    }

    /// NIC utilisation of the current rate solution (cluster shuffles).
    pub fn nic_utilisation(&mut self) -> Result<f64, SimError> {
        self.ensure_solution()?;
        Ok(self.bufs[self.front].nic_util)
    }

    /// Restore this simulator to its freshly constructed state while
    /// keeping every heap buffer's capacity (solver scratch, job lists).
    ///
    /// This is what makes simulator pooling bit-identical to fresh
    /// construction: after `reset`, every observable field equals the value
    /// `NodeSim::new` would set, so a pooled run replays the exact same
    /// arithmetic as an unpooled one — only the warm allocations differ.
    pub fn reset(&mut self) {
        self.now = 0.0;
        self.active.clear();
        self.finished.clear();
        self.meter = EnergyMeter::new();
        self.next_id = 0;
        self.sol_valid = false;
        self.slowdown = 1.0;
        self.stragglers_injected = 0;
        self.speculative_retries = 0;
        if self.telemetry_attached {
            self.recorder = Recorder::noop();
            self.telemetry_attached = false;
        }
        self.run_id = 0;
        self.node_id = 0;
    }
}

/// Solve the contention model for the current job mix into `out`.
///
/// Free function (rather than a method) so `ensure_solution` can hand it
/// disjoint borrows of the simulator's fields: `active` is read, `scratch`
/// and the back buffer are written. All working state lives either on the
/// stack (fixed [`MAX_COLOCATED`]-sized arrays) or in `scratch` (grown once,
/// then reused), so a warm solve performs zero heap allocations.
///
/// The arithmetic — every operation and its order — is copied verbatim from
/// the pre-refactor allocating implementation (preserved in
/// [`crate::reference`]); the property tests require the two to agree to
/// the bit.
#[allow(clippy::too_many_arguments)]
fn solve_into(
    spec: &NodeSpec,
    fw: &FrameworkSpec,
    power: &PowerModel,
    nic_bw_mbps: f64,
    nic_power_w: f64,
    slowdown: f64,
    active: &[ActiveJob],
    scratch: &mut SolveScratch,
    out: &mut RateSolution,
) -> Result<(), SimError> {
    let mut prep = SolvePrep::empty();
    prepare(spec, fw, slowdown, active, &mut prep);
    let n = prep.n;

    // --- 2–4. Outer fixed point over θ (disk scale) and slow (memory). ---
    let mut theta: f64 = 1.0;
    let mut slow: f64 = 1.0;
    let mut x = [0.0_f64; MAX_COLOCATED];
    let mut q_io = [0.0_f64; MAX_COLOCATED];
    let mut nic_util = 0.0_f64;
    let stations = n + 1; // one private I/O path per job + shared NIC
    let mut think = [0.0_f64; MAX_COLOCATED];
    for _outer in 0..200 {
        build_classes(
            &prep,
            nic_bw_mbps,
            theta,
            slow,
            &mut scratch.classes,
            &mut think,
        );
        scratch.amva.solve(&scratch.classes[..n], stations)?;
        x[..n].copy_from_slice(scratch.amva.throughput());
        for (j, q) in q_io[..n].iter_mut().enumerate() {
            *q = scratch.amva.queue(j, j);
        }
        nic_util = scratch.amva.station_util()[n];

        let (slow_next, theta_next, resid) = couple(&prep, spec, &x, &q_io, &think, slow, theta);
        slow = slow_next;
        theta = theta_next;
        if resid < 1e-5 {
            break;
        }
    }

    finalize(
        &prep,
        spec,
        power,
        nic_power_w,
        active,
        &x,
        &q_io,
        nic_util,
        slow,
        out,
    );
    Ok(())
}

/// Loop-invariant inputs of one node's contention fixed point, hoisted to
/// fixed stack arrays once per solve ([`prepare`]) so the outer iterations
/// never re-chase the job → stage indirection. Splitting this out of
/// `solve_into` is what lets [`solve_batch`] keep several nodes' fixed
/// points in flight at once with per-lane state that is plain `Copy` data.
#[derive(Clone, Copy)]
struct SolvePrep {
    n: usize,
    slowdown: f64,
    spill: f64,
    footprint_mb: f64,
    /// Fault context: per-wave straggler multipliers and effective slots.
    /// On a healthy node these are exactly 1.0 / the configured slots, so
    /// every expression below reduces bit-identically to the undegraded
    /// model.
    stragglers: [f64; MAX_COLOCATED],
    eff_slots: [f64; MAX_COLOCATED],
    /// Static per-job grant ceiling: job pipeline cap ∧ slot stream rates.
    static_cap: [f64; MAX_COLOCATED],
    fluid: [bool; MAX_COLOCATED],
    think0: [f64; MAX_COLOCATED],
    stall: [f64; MAX_COLOCATED],
    io_mb: [f64; MAX_COLOCATED],
    nic_mb: [f64; MAX_COLOCATED],
    bw_core: [f64; MAX_COLOCATED],
}

impl SolvePrep {
    fn empty() -> SolvePrep {
        SolvePrep {
            n: 0,
            slowdown: 1.0,
            spill: 1.0,
            footprint_mb: 0.0,
            stragglers: [0.0; MAX_COLOCATED],
            eff_slots: [0.0; MAX_COLOCATED],
            static_cap: [0.0; MAX_COLOCATED],
            fluid: [false; MAX_COLOCATED],
            think0: [0.0; MAX_COLOCATED],
            stall: [0.0; MAX_COLOCATED],
            io_mb: [0.0; MAX_COLOCATED],
            nic_mb: [0.0; MAX_COLOCATED],
            bw_core: [0.0; MAX_COLOCATED],
        }
    }
}

/// Hoist the loop-invariant part of the contention solve — the pre-loop
/// prelude of the original `solve_into`, arithmetic verbatim.
fn prepare(
    spec: &NodeSpec,
    fw: &FrameworkSpec,
    slowdown: f64,
    active: &[ActiveJob],
    prep: &mut SolvePrep,
) {
    prep.n = active.len();
    prep.slowdown = slowdown;
    for (j, job) in active.iter().enumerate() {
        prep.stragglers[j] = job.straggler;
        prep.eff_slots[j] = f64::from(job.eff_slots());
    }

    // --- 1. DRAM pressure: spill inflation for everyone. ---
    prep.footprint_mb = active.iter().map(|job| job.stage().footprint_mb).sum();
    prep.spill = fw.spill_inflation(prep.footprint_mb, spec.mem.capacity_mb);

    for (j, job) in active.iter().enumerate() {
        let s = job.stage();
        prep.static_cap[j] = if s.is_fluid() && s.io_mb > 0.0 {
            fw.job_io_cap(s.extent_mb)
                .min(s.stream_bound_mbps(spec.disk.stream_rate(s.extent_mb)))
                / slowdown
        } else {
            0.0
        };
    }

    // Loop-invariant stage quantities, copied to the stack so the fixed
    // point never re-chases the job → stage indirection. The `think`
    // expression is still evaluated with exactly the original operations
    // and order (bit-identity, pinned by the executor property tests);
    // hoisting only stops it being *recomputed* in the coupling step.
    for (j, job) in active.iter().enumerate() {
        let s = job.stage();
        prep.fluid[j] = s.is_fluid();
        prep.think0[j] = s.think0_s;
        prep.stall[j] = s.stall_frac;
        prep.io_mb[j] = s.io_mb;
        prep.nic_mb[j] = s.nic_mb;
        prep.bw_core[j] = s.bw_per_core_mbps;
    }
}

/// Rebuild the AMVA classes for the current `(θ, slow)` — one outer-loop
/// body prefix of the original `solve_into`, arithmetic verbatim.
///
/// Per-job think time goes to `think`; for a non-fluid job the entry stays
/// 0.0, and its coupling term is 0.0 either way (AMVA gives zero-population
/// classes zero throughput).
fn build_classes(
    prep: &SolvePrep,
    nic_bw_mbps: f64,
    theta: f64,
    slow: f64,
    classes: &mut Vec<ClassDemand>,
    think: &mut [f64; MAX_COLOCATED],
) {
    let n = prep.n;
    let stations = n + 1;
    while classes.len() < n {
        classes.push(ClassDemand {
            population: 0.0,
            think_time_s: 0.0,
            demands_s: Vec::new(),
        });
    }
    *think = [0.0_f64; MAX_COLOCATED];
    for j in 0..n {
        let c = &mut classes[j];
        c.demands_s.clear();
        c.demands_s.resize(stations, 0.0);
        if !prep.fluid[j] {
            c.population = 0.0;
            c.think_time_s = 0.0;
            continue;
        }
        think[j] = prep.think0[j]
            * (1.0 - prep.stall[j] + prep.stall[j] * slow)
            * prep.slowdown
            * prep.stragglers[j];
        if prep.io_mb[j] > 0.0 && prep.static_cap[j] > 0.0 {
            c.demands_s[j] = prep.io_mb[j] * prep.spill / (theta * prep.static_cap[j]).max(1e-9);
        }
        if prep.nic_mb[j] > 0.0 && nic_bw_mbps.is_finite() {
            c.demands_s[n] = prep.nic_mb[j] / nic_bw_mbps;
        }
        c.population = prep.eff_slots[j];
        c.think_time_s = think[j];
    }
}

/// Refresh only the `(θ, slow)`-dependent class entries for the next outer
/// round — the resident-window counterpart of [`build_classes`]. Class
/// population, the shared-NIC demand row, and every non-fluid class are
/// outer-round-invariant, so a lane that already ran [`build_classes`] once
/// keeps them in place; this rewrites exactly the cells the coupling step
/// moved — each fluid class's own I/O demand (scales with 1/θ) and think
/// time (scales with slow) — with the original expressions and operation
/// order, so every round stays bit-identical to a fresh rebuild.
fn update_classes(
    prep: &SolvePrep,
    theta: f64,
    slow: f64,
    classes: &mut [ClassDemand],
    think: &mut [f64; MAX_COLOCATED],
) {
    for j in 0..prep.n {
        if !prep.fluid[j] {
            continue;
        }
        think[j] = prep.think0[j]
            * (1.0 - prep.stall[j] + prep.stall[j] * slow)
            * prep.slowdown
            * prep.stragglers[j];
        if prep.io_mb[j] > 0.0 && prep.static_cap[j] > 0.0 {
            classes[j].demands_s[j] =
                prep.io_mb[j] * prep.spill / (theta * prep.static_cap[j]).max(1e-9);
        }
        classes[j].think_time_s = think[j];
    }
}

/// One θ/slow coupling step from the AMVA readback — the outer-loop body
/// suffix of the original `solve_into`, arithmetic verbatim. Returns
/// `(slow_next, theta_next, resid)`.
fn couple(
    prep: &SolvePrep,
    spec: &NodeSpec,
    x: &[f64; MAX_COLOCATED],
    q_io: &[f64; MAX_COLOCATED],
    think: &[f64; MAX_COLOCATED],
    slow: f64,
    theta: f64,
) -> (f64, f64, f64) {
    let n = prep.n;

    // Memory-bandwidth coupling.
    let bw_demand: f64 = (0..n)
        .map(|j| (x[j] * think[j]).min(prep.eff_slots[j]) * prep.bw_core[j])
        .sum();
    let slow_target = (bw_demand / spec.mem_bw_mbps()).max(1.0);
    let slow_next = slow + 0.5 * (slow_target - slow);

    // Physical-disk coupling.
    let streams: f64 = q_io[..n].iter().sum::<f64>().max(1.0);
    let cap_phys = spec.disk.aggregate_bw(streams) / prep.slowdown;
    let total_io: f64 = (0..n).map(|j| x[j] * prep.io_mb[j] * prep.spill).sum();
    let theta_target = if total_io > cap_phys {
        (theta * cap_phys / total_io).clamp(0.01, 1.0)
    } else {
        // Relax back toward no throttling.
        (theta * 1.15).min(1.0)
    };
    let theta_next = theta + 0.5 * (theta_target - theta);

    let resid = (slow_next - slow).abs() / slow + (theta_next - theta).abs();
    (slow_next, theta_next, resid)
}

/// Derive the final consistent quantities of a converged solve into `out` —
/// the post-loop tail of the original `solve_into`, arithmetic verbatim.
#[allow(clippy::too_many_arguments)]
fn finalize(
    prep: &SolvePrep,
    spec: &NodeSpec,
    power: &PowerModel,
    nic_power_w: f64,
    active: &[ActiveJob],
    x: &[f64; MAX_COLOCATED],
    q_io: &[f64; MAX_COLOCATED],
    nic_util: f64,
    slow: f64,
    out: &mut RateSolution,
) {
    let n = prep.n;
    let slowdown = prep.slowdown;
    let spill = prep.spill;
    let stragglers = &prep.stragglers;
    let eff_slots = &prep.eff_slots;
    let footprint_mb = prep.footprint_mb;

    // --- Final consistent quantities. ---
    for (j, job) in active.iter().enumerate() {
        let s = job.stage();
        if s.is_fluid() {
            out.rate[j] = x[j];
            let think =
                s.think0_s * (1.0 - s.stall_frac + s.stall_frac * slow) * slowdown * stragglers[j];
            out.busy_cores[j] = (x[j] * think).min(eff_slots[j]);
            let io = x[j] * s.io_mb * spill;
            out.read_mbps[j] = io * s.read_frac;
            out.write_mbps[j] = io * (1.0 - s.read_frac);
            out.nic_mbps[j] = x[j] * s.nic_mb;
            out.mem_mbps[j] = out.busy_cores[j] * s.bw_per_core_mbps;
        } else {
            out.rate[j] = 1.0 / (s.setup_s * slowdown * stragglers[j]);
            out.busy_cores[j] = 0.4; // single setup thread, partially busy
            out.read_mbps[j] = 0.0;
            out.write_mbps[j] = 0.0;
            out.nic_mbps[j] = 0.0;
            out.mem_mbps[j] = 0.0;
        }
    }
    let total_io: f64 = out.read_mbps[..n]
        .iter()
        .chain(out.write_mbps[..n].iter())
        .sum();
    let streams: f64 = q_io[..n].iter().sum::<f64>().max(1.0);
    let cap_phys = spec.disk.aggregate_bw(streams) / slowdown;
    let disk_util = (total_io / cap_phys).clamp(0.0, 1.0);
    let total_mem: f64 = out.mem_mbps[..n].iter().sum();
    let mem_util = (total_mem / spec.mem_bw_mbps()).clamp(0.0, 1.0);
    let allocated: f64 = eff_slots[..n].iter().sum();

    let mut busy_at = [(0.0_f64, 0.0_f64); MAX_COLOCATED];
    for (j, job) in active.iter().enumerate() {
        busy_at[j] = (out.busy_cores[j], job.stage().dyn_factor);
    }
    let breakdown = power.dynamic_power(&busy_at[..n], allocated, disk_util, mem_util, 0.0);
    let nic_w = nic_util * nic_power_w;
    let power_total_w = breakdown.total() + nic_w;

    // Attribution: cores exactly; shared resources pro-rata by usage.
    let total_nic: f64 = out.nic_mbps[..n].iter().sum();
    for j in 0..n {
        let s = active[j].stage();
        let core = out.busy_cores[j] * spec.core_busy_power_w * s.dyn_factor
            + (eff_slots[j] - out.busy_cores[j]).max(0.0) * spec.core_iowait_power_w
            + eff_slots[j] * spec.core_static_power_w;
        let io_j = out.read_mbps[j] + out.write_mbps[j];
        let disk = if total_io > 0.0 {
            breakdown.disk_w * io_j / total_io
        } else {
            0.0
        };
        let mem = if total_mem > 0.0 {
            breakdown.mem_w * out.mem_mbps[j] / total_mem
        } else {
            0.0
        };
        let nic = if total_nic > 0.0 {
            nic_w * out.nic_mbps[j] / total_nic
        } else {
            0.0
        };
        out.power_attr_w[j] = core + disk + mem + nic;
    }

    out.n = n;
    out.slow = slow;
    out.footprint_mb = footprint_mb;
    out.power_total_w = power_total_w;
    out.disk_util = disk_util;
    out.mem_util = mem_util;
    out.nic_util = nic_util;
}

/// Hard cap on simulators per batched window ([`run_batch_to_completion`]).
///
/// Sixteen lanes: with the explicit `f64x4` AMVA kernel each vector step
/// advances four adjacent lanes, so sixteen keeps four full vector chunks
/// in flight and still has whole chunks left as converged lanes drain —
/// at eight, half the window is gone after the first chunk retires. The
/// re-measured lane curve (DESIGN.md §11) has the end-to-end sweet spot
/// at the full sixteen now that the kernel amortises wider windows; the
/// per-round bookkeeping below stays in small fixed stack arrays.
pub const MAX_BATCH_LANES: usize = 16;

/// Per-lane working state of a batched solve window, reused across rounds.
///
/// The big buffers are never cleared between solves — a lane is "reset" by
/// the window's generation stamp (`epoch`) moving past it, the same pooled
/// discipline [`crate::NodeSim`] uses. Everything the next solve reads is
/// assign-before-read: `prep`/`classes`/`think` are rebuilt by
/// [`prepare`]/[`build_classes`], and `x`/`q_io`/`nic_util` are overwritten
/// from the AMVA readback every outer round before [`couple`] or
/// [`finalize`] can observe them.
struct LaneScratch {
    prep: SolvePrep,
    classes: Vec<ClassDemand>,
    think: [f64; MAX_COLOCATED],
    x: [f64; MAX_COLOCATED],
    q_io: [f64; MAX_COLOCATED],
    nic_util: f64,
    theta: f64,
    slow: f64,
    done: bool,
    /// Generation stamp of the last window that stashed a converged fixed
    /// point in `warm_theta`/`warm_slow`; warm starts apply only when it
    /// matches the scratch's current epoch (same window).
    epoch: u64,
    warm_theta: f64,
    warm_slow: f64,
}

impl LaneScratch {
    fn new() -> LaneScratch {
        LaneScratch {
            prep: SolvePrep::empty(),
            classes: Vec::new(),
            think: [0.0; MAX_COLOCATED],
            x: [0.0; MAX_COLOCATED],
            q_io: [0.0; MAX_COLOCATED],
            nic_util: 0.0,
            theta: 1.0,
            slow: 1.0,
            done: false,
            epoch: 0,
            warm_theta: 1.0,
            warm_slow: 1.0,
        }
    }
}

/// Wall-clock breakdown of batched window execution, accumulated while
/// phase timing is enabled ([`BatchScratch::set_phase_timing`]) and drained
/// with [`BatchScratch::take_phases`]. All buckets are nanoseconds; timing
/// never changes any simulated quantity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchPhases {
    /// Inside the lane-interleaved AMVA kernel
    /// ([`ecost_sim::AmvaBatch::solve_window`] / `solve`).
    pub solve_ns: u64,
    /// Outer contention fixed-point bookkeeping around the kernel: class
    /// rebuilds, θ/slow coupling, convergence masking, finalize.
    pub outer_ns: u64,
    /// Event-loop bookkeeping between solves: re-solve detection, event
    /// stepping, budgets, live-lane compaction.
    pub event_ns: u64,
}

impl BatchPhases {
    /// Bucket-wise sum, for aggregating across windows.
    pub fn absorb(&mut self, other: BatchPhases) {
        self.solve_ns += other.solve_ns;
        self.outer_ns += other.outer_ns;
        self.event_ns += other.event_ns;
    }
}

/// Reusable scratch for a batched run window ([`run_batch_to_completion`]):
/// one lane-interleaved [`AmvaBatch`] plus per-lane outer fixed-point state.
///
/// Acquire once (e.g. from a pool) and reuse: lane buffers grow on first
/// use, so a warm scratch allocates nothing per solve. Every solve fully
/// re-initialises the lanes it uses — no state leaks between windows.
pub struct BatchScratch {
    amva: AmvaBatch,
    lanes: Vec<LaneScratch>,
    /// Window generation stamp: bumped once per [`run_batch_to_completion`]
    /// call. Lane state older than the current epoch is dead by definition
    /// (never cleared), and warm starts only cross solves that share an
    /// epoch.
    epoch: u64,
    resident: bool,
    warm: bool,
    timing: bool,
    phases: BatchPhases,
}

impl BatchScratch {
    /// Empty scratch; lane buffers are created on first use.
    pub fn new() -> BatchScratch {
        BatchScratch {
            amva: AmvaBatch::new(),
            lanes: Vec::new(),
            epoch: 0,
            resident: true,
            warm: false,
            timing: false,
            phases: BatchPhases::default(),
        }
    }

    /// Select the AMVA vector backend for this scratch's batched solves
    /// (validated against the running CPU). Every backend is bit-identical
    /// to the scalar path, so this only moves throughput.
    pub fn set_simd_backend(&mut self, backend: SimdBackend) {
        self.amva.set_simd_backend(backend);
    }

    /// The AMVA vector backend the next batched solve will use.
    pub fn simd_backend(&self) -> SimdBackend {
        self.amva.simd_backend()
    }

    /// Toggle the batch-resident window driver (on by default). Off pins
    /// the pre-resident per-round lockstep path — bit-identical results,
    /// kept as the frozen benchmark comparator.
    pub fn set_batch_resident(&mut self, resident: bool) {
        self.resident = resident;
    }

    /// Whether the next [`run_batch_to_completion`] uses the resident driver.
    pub fn batch_resident(&self) -> bool {
        self.resident
    }

    /// Toggle warm-started outer fixed points (off by default). When on,
    /// a re-solve within the same window seeds its (θ, slow) iteration
    /// from the previous converged fixed point instead of (1, 1) — same
    /// solution within tolerance (property-tested), fewer outer rounds;
    /// off is bit-identical to the scalar path.
    pub fn set_warm_start(&mut self, warm: bool) {
        self.warm = warm;
    }

    /// Whether warm-started outer fixed points are enabled.
    pub fn warm_start(&self) -> bool {
        self.warm
    }

    /// Enable wall-clock phase accounting ([`BatchPhases`]). Off by
    /// default: the hot path takes no timestamps unless asked.
    pub fn set_phase_timing(&mut self, timing: bool) {
        self.timing = timing;
    }

    /// Drain the accumulated phase breakdown, resetting it to zero.
    pub fn take_phases(&mut self) -> BatchPhases {
        std::mem::take(&mut self.phases)
    }
}

impl Default for BatchScratch {
    fn default() -> Self {
        BatchScratch::new()
    }
}

/// Solve the contention model for several independent simulators at once,
/// advancing their AMVA fixed points in lockstep ([`AmvaBatch`]).
///
/// Each lane runs the exact scalar [`solve_into`] sequence — same
/// [`prepare`], same per-round [`build_classes`], same θ/slow [`couple`]
/// step and residual test — with only the *interleaving* changed, so each
/// simulator's rate solution is bit-identical to what its own
/// `ensure_solution` would have produced. `lane_ids` indexes into `sims`;
/// each selected simulator gets its back buffer refreshed and flipped.
///
/// This is the pre-resident per-round driver, kept verbatim as the frozen
/// benchmark comparator and as the fallback for windows the resident path
/// cannot hold open (single-lane groups).
fn solve_batch_lockstep(
    sims: &mut [NodeSim],
    lane_ids: &[usize],
    scratch: &mut BatchScratch,
) -> Result<(), SimError> {
    let k = lane_ids.len();
    if k > MAX_BATCH_LANES {
        return Err(SimError::Internal(
            "batched window wider than MAX_BATCH_LANES",
        ));
    }
    while scratch.lanes.len() < k {
        scratch.lanes.push(LaneScratch::new());
    }
    let BatchScratch { amva, lanes, .. } = scratch;
    for (ls, &i) in lanes.iter_mut().zip(lane_ids) {
        let sim = &sims[i];
        prepare(&sim.spec, &sim.fw, sim.slowdown, &sim.active, &mut ls.prep);
        ls.theta = 1.0;
        ls.slow = 1.0;
        ls.x = [0.0; MAX_COLOCATED];
        ls.q_io = [0.0; MAX_COLOCATED];
        ls.nic_util = 0.0;
        ls.done = false;
    }

    // Outer fixed point, lockstep: every round rebuilds the live lanes'
    // classes at their own (θ, slow), advances all their AMVA solves
    // lane-interleaved, then applies each lane's coupling step. A lane
    // whose residual drops below the scalar threshold is masked out.
    for _outer in 0..200 {
        let mut live = 0usize;
        for (slot, ls) in lanes.iter_mut().take(k).enumerate() {
            if ls.done {
                continue;
            }
            build_classes(
                &ls.prep,
                sims[lane_ids[slot]].nic_bw_mbps,
                ls.theta,
                ls.slow,
                &mut ls.classes,
                &mut ls.think,
            );
            live += 1;
        }
        if live == 0 {
            break;
        }

        let empty: &[ClassDemand] = &[];
        let mut probs: [(&[ClassDemand], usize); MAX_BATCH_LANES] = [(empty, 0); MAX_BATCH_LANES];
        let mut slot_of: [usize; MAX_BATCH_LANES] = [0; MAX_BATCH_LANES];
        let mut b = 0usize;
        for (slot, ls) in lanes.iter().take(k).enumerate() {
            if ls.done {
                continue;
            }
            let n = ls.prep.n;
            probs[b] = (&ls.classes[..n], n + 1);
            slot_of[b] = slot;
            b += 1;
        }
        amva.solve(&probs[..b])?;

        for (bi, &slot) in slot_of[..b].iter().enumerate() {
            let lane = amva.lane(bi);
            let ls = &mut lanes[slot];
            let n = ls.prep.n;
            ls.x[..n].copy_from_slice(lane.throughput());
            for (j, q) in ls.q_io[..n].iter_mut().enumerate() {
                *q = lane.queue(j, j);
            }
            ls.nic_util = lane.station_util()[n];

            let (slow_next, theta_next, resid) = couple(
                &ls.prep,
                &sims[lane_ids[slot]].spec,
                &ls.x,
                &ls.q_io,
                &ls.think,
                ls.slow,
                ls.theta,
            );
            ls.slow = slow_next;
            ls.theta = theta_next;
            if resid < 1e-5 {
                ls.done = true;
            }
        }
    }

    for (ls, &i) in lanes.iter().zip(lane_ids) {
        let sim = &mut sims[i];
        let back = 1 - sim.front;
        let NodeSim {
            spec,
            power,
            nic_power_w,
            active,
            bufs,
            ..
        } = sim;
        finalize(
            &ls.prep,
            spec,
            power,
            *nic_power_w,
            active,
            &ls.x,
            &ls.q_io,
            ls.nic_util,
            ls.slow,
            &mut bufs[back],
        );
        sim.front = back;
        sim.sol_valid = true;
    }
    Ok(())
}

/// One *resident-window* batched solve over a shape-uniform group of lanes
/// (same co-located job count ⇒ same AMVA class/station shape; caller
/// guarantees `lane_ids.len() >= 2`).
///
/// Same per-lane arithmetic and operation order as
/// [`solve_batch_lockstep`], with the per-round bookkeeping hoisted out of
/// the outer fixed point: class validation runs once per window
/// ([`AmvaBatch::begin_window`]), each subsequent round rewrites only the
/// (θ, slow)-dependent class cells ([`update_classes`]), and the SoA
/// window is re-packed without zero-fill — seed included, recomputed
/// bit-identically from the window-invariant populations and demand signs
/// ([`AmvaBatch::solve_window`]). Converged lanes are compacted out of the
/// live list order-preservingly, so the remaining lanes see exactly the
/// scalar iteration sequence.
fn solve_group(
    sims: &mut [NodeSim],
    lane_ids: &[usize],
    scratch: &mut BatchScratch,
) -> Result<(), SimError> {
    let k = lane_ids.len();
    while scratch.lanes.len() < k {
        scratch.lanes.push(LaneScratch::new());
    }
    let timing = scratch.timing;
    let t_all = timing.then(Instant::now);
    let mut solve_ns = 0u64;
    let epoch = scratch.epoch;
    let warm = scratch.warm;
    let BatchScratch {
        amva,
        lanes,
        phases,
        ..
    } = scratch;

    for (ls, &i) in lanes.iter_mut().zip(lane_ids) {
        let sim = &sims[i];
        prepare(&sim.spec, &sim.fw, sim.slowdown, &sim.active, &mut ls.prep);
        if warm && ls.epoch == epoch {
            ls.theta = ls.warm_theta;
            ls.slow = ls.warm_slow;
        } else {
            ls.theta = 1.0;
            ls.slow = 1.0;
        }
        // `x`/`q_io`/`nic_util` are epoch-reset, not cleared: every outer
        // round overwrites them from the AMVA readback before `couple` or
        // `finalize` reads them.
        ls.done = false;
        build_classes(
            &ls.prep,
            sim.nic_bw_mbps,
            ls.theta,
            ls.slow,
            &mut ls.classes,
            &mut ls.think,
        );
    }

    let empty: &[ClassDemand] = &[];
    {
        let mut probs: [(&[ClassDemand], usize); MAX_BATCH_LANES] = [(empty, 0); MAX_BATCH_LANES];
        for (slot, ls) in lanes.iter().take(k).enumerate() {
            let n = ls.prep.n;
            probs[slot] = (&ls.classes[..n], n + 1);
        }
        if !amva.begin_window(&probs[..k])? {
            return Err(SimError::Internal(
                "shape-uniform group rejected by begin_window",
            ));
        }
    }

    let mut live: [usize; MAX_BATCH_LANES] = [0; MAX_BATCH_LANES];
    for (slot, l) in live.iter_mut().take(k).enumerate() {
        *l = slot;
    }
    let mut nlive = k;
    for outer in 0..200 {
        if nlive == 0 {
            break;
        }
        if outer > 0 {
            for &slot in &live[..nlive] {
                let ls = &mut lanes[slot];
                update_classes(&ls.prep, ls.theta, ls.slow, &mut ls.classes, &mut ls.think);
            }
        }
        let mut probs: [(&[ClassDemand], usize); MAX_BATCH_LANES] = [(empty, 0); MAX_BATCH_LANES];
        for (slot, ls) in lanes.iter().take(k).enumerate() {
            let n = ls.prep.n;
            probs[slot] = (&ls.classes[..n], n + 1);
        }
        let t_solve = timing.then(Instant::now);
        amva.solve_window(&probs[..k], &live[..nlive])?;
        if let Some(t) = t_solve {
            solve_ns += t.elapsed().as_nanos() as u64;
        }

        let mut w = 0usize;
        for r in 0..nlive {
            let slot = live[r];
            let lane = amva.lane(slot);
            let ls = &mut lanes[slot];
            let n = ls.prep.n;
            ls.x[..n].copy_from_slice(lane.throughput());
            for (j, q) in ls.q_io[..n].iter_mut().enumerate() {
                *q = lane.queue(j, j);
            }
            ls.nic_util = lane.station_util()[n];

            let (slow_next, theta_next, resid) = couple(
                &ls.prep,
                &sims[lane_ids[slot]].spec,
                &ls.x,
                &ls.q_io,
                &ls.think,
                ls.slow,
                ls.theta,
            );
            ls.slow = slow_next;
            ls.theta = theta_next;
            if resid >= 1e-5 {
                live[w] = slot;
                w += 1;
            }
        }
        nlive = w;
    }

    for (ls, &i) in lanes.iter_mut().zip(lane_ids) {
        let sim = &mut sims[i];
        let back = 1 - sim.front;
        let NodeSim {
            spec,
            power,
            nic_power_w,
            active,
            bufs,
            ..
        } = sim;
        finalize(
            &ls.prep,
            spec,
            power,
            *nic_power_w,
            active,
            &ls.x,
            &ls.q_io,
            ls.nic_util,
            ls.slow,
            &mut bufs[back],
        );
        sim.front = back;
        sim.sol_valid = true;
        ls.warm_theta = ls.theta;
        ls.warm_slow = ls.slow;
        ls.epoch = epoch;
    }

    if let Some(t) = t_all {
        let total = t.elapsed().as_nanos() as u64;
        phases.solve_ns += solve_ns;
        phases.outer_ns += total.saturating_sub(solve_ns);
    }
    Ok(())
}

/// Solve several independent simulators' contention models at once with
/// resident windows: `lane_ids` is stably partitioned into shape-uniform
/// groups (same co-located job count), each group of two or more holds one
/// [`AmvaBatch`] window open across its whole outer fixed point
/// ([`solve_group`]); singleton groups take the per-round
/// [`solve_batch_lockstep`] path. Per-lane results are bit-identical to the
/// lockstep driver either way.
fn solve_batch_resident(
    sims: &mut [NodeSim],
    lane_ids: &[usize],
    scratch: &mut BatchScratch,
) -> Result<(), SimError> {
    let k = lane_ids.len();
    if k > MAX_BATCH_LANES {
        return Err(SimError::Internal(
            "batched window wider than MAX_BATCH_LANES",
        ));
    }
    let mut used = [false; MAX_BATCH_LANES];
    for i in 0..k {
        if used[i] {
            continue;
        }
        used[i] = true;
        let n = sims[lane_ids[i]].active.len();
        let mut group: [usize; MAX_BATCH_LANES] = [0; MAX_BATCH_LANES];
        group[0] = lane_ids[i];
        let mut g = 1usize;
        for j in i + 1..k {
            if !used[j] && sims[lane_ids[j]].active.len() == n {
                used[j] = true;
                group[g] = lane_ids[j];
                g += 1;
            }
        }
        if g >= 2 {
            solve_group(sims, &group[..g], scratch)?;
        } else {
            solve_batch_lockstep(sims, &group[..g], scratch)?;
        }
    }
    Ok(())
}

/// Run every simulator in `sims` to completion, solving their rate models
/// in lockstep batches ([`AmvaBatch`]) instead of one at a time.
///
/// Equivalent to calling [`NodeSim::run_to_completion`] on each simulator
/// in sequence — same per-simulator event order and budgets, bit-identical
/// outcomes (each lane's rate solutions match its own scalar solves) — but
/// the independent AMVA fixed points of simulators that need a re-solve in
/// the same round advance together, overlapping their dependent divide
/// chains for instruction-level parallelism.
///
/// Fails fast on the first lane error, matching a scalar sweep abandoning
/// the failing window. At most [`MAX_BATCH_LANES`] simulators per call.
pub fn run_batch_to_completion(
    sims: &mut [NodeSim],
    scratch: &mut BatchScratch,
) -> Result<(), SimError> {
    if sims.len() > MAX_BATCH_LANES {
        return Err(SimError::Internal(
            "batched window wider than MAX_BATCH_LANES",
        ));
    }
    // New window: invalidate (by generation, not by clearing) all lane
    // state of previous windows, including warm-start stashes.
    scratch.epoch = scratch.epoch.wrapping_add(1);
    if scratch.resident {
        return run_window_resident(sims, scratch);
    }
    let mut budget = [0u64; MAX_BATCH_LANES];
    let mut events = [0u64; MAX_BATCH_LANES];
    for (b, sim) in budget.iter_mut().zip(sims.iter()) {
        *b = (64 + 16 * sim.active.iter().map(|j| j.stages.len()).sum::<usize>()) as u64;
    }
    loop {
        // Lanes whose job mix changed since the last solve get re-solved
        // together, lane-interleaved.
        let mut need = [0usize; MAX_BATCH_LANES];
        let mut k = 0usize;
        for (i, sim) in sims.iter().enumerate() {
            if !sim.active.is_empty() && !sim.sol_valid {
                need[k] = i;
                k += 1;
            }
        }
        if k > 0 {
            solve_batch_lockstep(sims, &need[..k], scratch)?;
        }
        // One event step per still-active lane; the solutions were just
        // refreshed, so `step` never falls back to a scalar solve.
        let mut any = false;
        for (i, sim) in sims.iter_mut().enumerate() {
            if sim.active.is_empty() {
                continue;
            }
            any = true;
            sim.step()?;
            events[i] += 1;
            if events[i] >= budget[i] {
                return Err(SimError::EventLoopRunaway {
                    events: events[i],
                    budget: budget[i],
                });
            }
        }
        if !any {
            break;
        }
    }
    Ok(())
}

/// The batch-resident window driver behind [`run_batch_to_completion`]:
/// same per-simulator event order and budgets as the legacy loop (each
/// lane's event sequence is bit-identical), but the event-loop bookkeeping
/// runs over a compacted live-lane list instead of re-scanning every
/// simulator per round, and re-solves go through [`solve_batch_resident`]
/// so shape-uniform lanes keep an AMVA window resident across their outer
/// fixed points.
fn run_window_resident(sims: &mut [NodeSim], scratch: &mut BatchScratch) -> Result<(), SimError> {
    let mut budget = [0u64; MAX_BATCH_LANES];
    let mut events = [0u64; MAX_BATCH_LANES];
    for (b, sim) in budget.iter_mut().zip(sims.iter()) {
        *b = (64 + 16 * sim.active.iter().map(|j| j.stages.len()).sum::<usize>()) as u64;
    }
    // Live-lane list, compacted order-preservingly as simulators drain so
    // the per-simulator step order matches the legacy full-scan loop.
    let mut live: [usize; MAX_BATCH_LANES] = [0; MAX_BATCH_LANES];
    let mut nlive = 0usize;
    for (i, sim) in sims.iter().enumerate() {
        if !sim.active.is_empty() {
            live[nlive] = i;
            nlive += 1;
        }
    }
    while nlive > 0 {
        let t0 = scratch.timing.then(Instant::now);
        // Lanes whose job mix changed since the last solve get re-solved
        // together, lane-interleaved.
        let mut need = [0usize; MAX_BATCH_LANES];
        let mut k = 0usize;
        for &i in &live[..nlive] {
            if !sims[i].sol_valid {
                need[k] = i;
                k += 1;
            }
        }
        if let Some(t) = t0 {
            scratch.phases.event_ns += t.elapsed().as_nanos() as u64;
        }
        if k > 0 {
            solve_batch_resident(sims, &need[..k], scratch)?;
        }
        let t1 = scratch.timing.then(Instant::now);
        let mut w = 0usize;
        for r in 0..nlive {
            let i = live[r];
            let sim = &mut sims[i];
            sim.step()?;
            events[i] += 1;
            if events[i] >= budget[i] {
                return Err(SimError::EventLoopRunaway {
                    events: events[i],
                    budget: budget[i],
                });
            }
            if !sim.active.is_empty() {
                live[w] = i;
                w += 1;
            }
        }
        nlive = w;
        if let Some(t) = t1 {
            scratch.phases.event_ns += t.elapsed().as_nanos() as u64;
        }
    }
    Ok(())
}

/// Convenience: run `jobs` co-located from t=0 on a fresh node and return
/// their outcomes in completion order plus the makespan.
pub fn run_colocated(
    spec: &NodeSpec,
    fw: &FrameworkSpec,
    jobs: Vec<JobSpec>,
) -> Result<(Vec<JobOutcome>, f64), SimError> {
    let mut node = NodeSim::new(spec.clone(), fw.clone());
    for j in jobs {
        node.submit(j)?;
    }
    node.run_to_completion()?;
    let makespan = node.now();
    Ok((node.take_finished(), makespan))
}

/// Convenience: run one job alone on a fresh node.
pub fn run_standalone(
    spec: &NodeSpec,
    fw: &FrameworkSpec,
    job: JobSpec,
) -> Result<JobOutcome, SimError> {
    let (mut out, _) = run_colocated(spec, fw, vec![job])?;
    out.pop()
        .ok_or(SimError::Internal("one job submitted, none finished"))
}

/// Convenience: run `jobs` co-located on a node degraded by `slowdown`
/// (≥ 1; 1 is bit-identical to [`run_colocated`]).
pub fn run_colocated_degraded(
    spec: &NodeSpec,
    fw: &FrameworkSpec,
    jobs: Vec<JobSpec>,
    slowdown: f64,
) -> Result<(Vec<JobOutcome>, f64), SimError> {
    let mut node = NodeSim::new(spec.clone(), fw.clone());
    node.set_slowdown(slowdown)?;
    for j in jobs {
        node.submit(j)?;
    }
    node.run_to_completion()?;
    let makespan = node.now();
    Ok((node.take_finished(), makespan))
}

/// Convenience: run one job alone on a node degraded by `slowdown`.
pub fn run_standalone_degraded(
    spec: &NodeSpec,
    fw: &FrameworkSpec,
    job: JobSpec,
    slowdown: f64,
) -> Result<JobOutcome, SimError> {
    let (mut out, _) = run_colocated_degraded(spec, fw, vec![job], slowdown)?;
    out.pop()
        .ok_or(SimError::Internal("one job submitted, none finished"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BlockSize, TuningConfig};
    use ecost_apps::{App, InputSize};
    use ecost_sim::Frequency;

    fn cfg(m: u32, f: Frequency, b: BlockSize) -> TuningConfig {
        TuningConfig {
            freq: f,
            block: b,
            mappers: m,
        }
    }

    fn atom() -> (NodeSpec, FrameworkSpec) {
        (NodeSpec::atom_c2758(), FrameworkSpec::default())
    }

    #[test]
    fn standalone_job_completes_with_positive_metrics() {
        let (spec, fw) = atom();
        let job = JobSpec::new(
            App::Wc,
            InputSize::Small,
            cfg(4, Frequency::F2_4, BlockSize::B256),
        );
        let out = run_standalone(&spec, &fw, job).unwrap();
        assert!(out.metrics.exec_time_s > 10.0);
        assert!(out.metrics.energy_j > 0.0);
        assert!(out.metrics.avg_power_w > 0.0);
        assert!(out.usage.read_mb >= 1024.0 * 0.99);
    }

    #[test]
    fn more_mappers_speed_up_compute_bound() {
        let (spec, fw) = atom();
        let t = |m| {
            run_standalone(
                &spec,
                &fw,
                JobSpec::new(
                    App::Wc,
                    InputSize::Large,
                    cfg(m, Frequency::F2_4, BlockSize::B256),
                ),
            )
            .unwrap()
            .metrics
            .exec_time_s
        };
        let (t1, t4, t8) = (t(1), t(4), t(8));
        assert!(t4 < 0.35 * t1, "t1={t1} t4={t4}");
        assert!(t8 < 0.7 * t4, "t4={t4} t8={t8}");
    }

    #[test]
    fn mappers_barely_help_io_bound() {
        // Sort is capped by the job I/O pipeline: going 2 → 8 mappers must
        // give far less than the 4× a compute-bound job would enjoy.
        let (spec, fw) = atom();
        let t = |m| {
            run_standalone(
                &spec,
                &fw,
                JobSpec::new(
                    App::St,
                    InputSize::Medium,
                    cfg(m, Frequency::F2_4, BlockSize::B256),
                ),
            )
            .unwrap()
            .metrics
            .exec_time_s
        };
        let (t2, t8) = (t(2), t(8));
        assert!(t8 > 0.7 * t2, "t2={t2} t8={t8}");
    }

    #[test]
    fn frequency_speeds_up_compute_not_io() {
        let (spec, fw) = atom();
        let run = |app, f| {
            run_standalone(
                &spec,
                &fw,
                JobSpec::new(app, InputSize::Medium, cfg(4, f, BlockSize::B512)),
            )
            .unwrap()
            .metrics
            .exec_time_s
        };
        let wc_speedup = run(App::Wc, Frequency::F1_2) / run(App::Wc, Frequency::F2_4);
        let st_speedup = run(App::St, Frequency::F1_2) / run(App::St, Frequency::F2_4);
        assert!(wc_speedup > 1.7, "wc {wc_speedup}");
        assert!(st_speedup < 1.35, "st {st_speedup}");
    }

    #[test]
    fn colocated_sorts_beat_serial_execution() {
        // The headline mechanism: two I/O-bound jobs fill each other's disk
        // gaps and together beat back-to-back execution.
        let (spec, fw) = atom();
        let job = || {
            JobSpec::new(
                App::St,
                InputSize::Medium,
                cfg(2, Frequency::F2_4, BlockSize::B512),
            )
        };
        let solo = run_standalone(&spec, &fw, job())
            .unwrap()
            .metrics
            .exec_time_s;
        let (_, makespan) = run_colocated(&spec, &fw, vec![job(), job()]).unwrap();
        assert!(
            makespan < 1.75 * solo,
            "makespan {makespan} vs serial {}",
            2.0 * solo
        );
    }

    #[test]
    fn colocated_compute_jobs_roughly_serialize() {
        let (spec, fw) = atom();
        let job = |m| {
            JobSpec::new(
                App::Wc,
                InputSize::Medium,
                cfg(m, Frequency::F2_4, BlockSize::B128),
            )
        };
        let solo8 = run_standalone(&spec, &fw, job(8))
            .unwrap()
            .metrics
            .exec_time_s;
        let (_, makespan) = run_colocated(&spec, &fw, vec![job(4), job(4)]).unwrap();
        // Two half-width compute jobs ≈ one full-width job run twice.
        assert!(makespan > 1.5 * solo8, "makespan {makespan} solo8 {solo8}");
        assert!(makespan < 2.6 * solo8, "makespan {makespan} solo8 {solo8}");
    }

    #[test]
    fn memory_bound_pair_contends_on_bandwidth() {
        let (spec, fw) = atom();
        let mut node = NodeSim::new(spec, fw);
        for _ in 0..2 {
            node.submit(JobSpec::new(
                App::Fp,
                InputSize::Medium,
                cfg(4, Frequency::F2_4, BlockSize::B512),
            ))
            .unwrap();
        }
        // Skip past setup so the map stages are active.
        node.step().unwrap();
        let (_, mem_util, slow, _) = node.contention_snapshot().unwrap();
        assert!(mem_util > 0.9, "mem_util {mem_util}");
        assert!(slow > 1.1, "slow {slow}");
    }

    #[test]
    fn compute_pair_has_no_memory_pressure() {
        let (spec, fw) = atom();
        let mut node = NodeSim::new(spec, fw);
        for _ in 0..2 {
            node.submit(JobSpec::new(
                App::Wc,
                InputSize::Medium,
                cfg(4, Frequency::F2_4, BlockSize::B512),
            ))
            .unwrap();
        }
        node.step().unwrap();
        let (_, _, slow, _) = node.contention_snapshot().unwrap();
        assert!((slow - 1.0).abs() < 1e-6, "slow {slow}");
    }

    #[test]
    fn core_budget_is_enforced() {
        let (spec, fw) = atom();
        let mut node = NodeSim::new(spec, fw);
        node.submit(JobSpec::new(
            App::Wc,
            InputSize::Small,
            cfg(6, Frequency::F2_4, BlockSize::B256),
        ))
        .unwrap();
        let err = node.submit(JobSpec::new(
            App::St,
            InputSize::Small,
            cfg(4, Frequency::F2_4, BlockSize::B256),
        ));
        assert!(matches!(err, Err(SimError::CoreBudgetExceeded { .. })));
        assert_eq!(node.free_cores(), 2);
    }

    #[test]
    fn disk_work_is_conserved() {
        // Total bytes moved must match the job's static I/O inventory
        // (no DRAM over-subscription in this setup).
        let (spec, fw) = atom();
        let job = JobSpec::new(
            App::Ts,
            InputSize::Small,
            cfg(4, Frequency::F2_0, BlockSize::B128),
        );
        let expect = job.total_io_mb(&fw);
        let out = run_standalone(&spec, &fw, job).unwrap();
        let moved = out.usage.read_mb + out.usage.write_mb;
        assert!(
            (moved - expect).abs() / expect < 0.02,
            "moved {moved} expect {expect}"
        );
    }

    #[test]
    fn node_energy_equals_sum_of_attributed_energy() {
        let (spec, fw) = atom();
        let mut node = NodeSim::new(spec, fw);
        node.submit(JobSpec::new(
            App::Gp,
            InputSize::Small,
            cfg(3, Frequency::F2_0, BlockSize::B256),
        ))
        .unwrap();
        node.submit(JobSpec::new(
            App::St,
            InputSize::Small,
            cfg(2, Frequency::F1_6, BlockSize::B128),
        ))
        .unwrap();
        node.run_to_completion().unwrap();
        let attributed: f64 = node.finished().iter().map(|o| o.usage.energy_j).sum();
        let total = node.energy_j();
        assert!(
            (attributed - total).abs() / total < 0.02,
            "attributed {attributed} total {total}"
        );
    }

    #[test]
    fn dram_oversubscription_inflates_io() {
        let (spec, fw) = atom();
        // Two big FP-Growth jobs with huge block buffers blow past 8 GB.
        let job = || {
            JobSpec::new(
                App::Fp,
                InputSize::Large,
                cfg(4, Frequency::F2_4, BlockSize::B1024),
            )
        };
        let mut node = NodeSim::new(spec, fw.clone());
        node.submit(job()).unwrap();
        node.submit(job()).unwrap();
        node.step().unwrap();
        let (_, _, _, footprint) = node.contention_snapshot().unwrap();
        assert!(footprint > 8192.0, "footprint {footprint}");
        node.run_to_completion().unwrap();
        let moved: f64 = node
            .finished()
            .iter()
            .map(|o| o.usage.read_mb + o.usage.write_mb)
            .sum();
        let static_io: f64 = 2.0 * job().total_io_mb(&fw);
        assert!(
            moved > 1.05 * static_io,
            "spill should inflate: {moved} vs {static_io}"
        );
    }

    #[test]
    fn small_blocks_pay_task_overhead() {
        let (spec, fw) = atom();
        let t = |b| {
            run_standalone(
                &spec,
                &fw,
                JobSpec::new(App::Gp, InputSize::Large, cfg(4, Frequency::F2_4, b)),
            )
            .unwrap()
            .metrics
            .exec_time_s
        };
        assert!(t(BlockSize::B64) > 1.15 * t(BlockSize::B512));
    }

    #[test]
    fn time_is_monotone_under_colocation() {
        // A job never gets faster because a rival appeared.
        let (spec, fw) = atom();
        let st = JobSpec::new(
            App::St,
            InputSize::Small,
            cfg(2, Frequency::F2_4, BlockSize::B256),
        );
        let wc = JobSpec::new(
            App::Wc,
            InputSize::Small,
            cfg(6, Frequency::F2_4, BlockSize::B256),
        );
        let solo = run_standalone(&spec, &fw, st.clone())
            .unwrap()
            .metrics
            .exec_time_s;
        let (outs, _) = run_colocated(&spec, &fw, vec![st, wc]).unwrap();
        let st_out = outs.iter().find(|o| o.spec.profile.name == "st").unwrap();
        assert!(st_out.metrics.exec_time_s >= 0.99 * solo);
    }

    #[test]
    fn timeline_records_stages_in_order() {
        let (spec, fw) = atom();
        let out = run_standalone(
            &spec,
            &fw,
            JobSpec::new(
                App::Ts,
                InputSize::Small,
                cfg(4, Frequency::F2_0, BlockSize::B256),
            ),
        )
        .unwrap();
        let kinds: Vec<_> = out.timeline.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![
                crate::stage::StageKind::Setup,
                crate::stage::StageKind::Map,
                crate::stage::StageKind::Reduce
            ]
        );
        // Times strictly increase and end at the job's completion.
        for w in out.timeline.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
        let last = out.timeline.last().unwrap().1;
        assert!((last - out.metrics.exec_time_s).abs() < 1e-6);
    }

    #[test]
    fn power_trace_integrates_to_metered_energy() {
        let (spec, fw) = atom();
        let mut node = NodeSim::new(spec, fw);
        node.enable_power_trace();
        node.submit(JobSpec::new(
            App::Gp,
            InputSize::Small,
            cfg(4, Frequency::F2_0, BlockSize::B256),
        ))
        .unwrap();
        node.run_to_completion().unwrap();
        let trace = node.power_trace().expect("enabled");
        assert!(!trace.is_empty());
        let trace_energy: f64 = trace.iter().sum();
        // Whole-second samples cover all but the trailing partial second.
        assert!(trace_energy <= node.energy_j() + 1e-9);
        assert!(trace_energy >= node.energy_j() * 0.9);
    }

    #[test]
    fn advancing_an_idle_node_moves_time_only() {
        let (spec, fw) = atom();
        let mut node = NodeSim::new(spec, fw);
        node.advance(5.0).unwrap();
        assert_eq!(node.now(), 5.0);
        assert_eq!(node.energy_j(), 0.0);
    }

    #[test]
    fn unit_slowdown_is_bit_identical_to_healthy() {
        let (spec, fw) = atom();
        let job = JobSpec::new(
            App::Gp,
            InputSize::Small,
            cfg(4, Frequency::F2_0, BlockSize::B256),
        );
        let healthy = run_standalone(&spec, &fw, job.clone()).unwrap();
        let degraded = run_standalone_degraded(&spec, &fw, job, 1.0).unwrap();
        assert_eq!(healthy.metrics.exec_time_s, degraded.metrics.exec_time_s);
        assert_eq!(healthy.usage.energy_j, degraded.usage.energy_j);
    }

    #[test]
    fn slowdown_stretches_time_for_compute_and_io() {
        let (spec, fw) = atom();
        let t = |app, slow| {
            run_standalone_degraded(
                &spec,
                &fw,
                JobSpec::new(
                    app,
                    InputSize::Small,
                    cfg(4, Frequency::F2_4, BlockSize::B256),
                ),
                slow,
            )
            .unwrap()
            .metrics
            .exec_time_s
        };
        for app in [App::Wc, App::St] {
            let (healthy, slow) = (t(app, 1.0), t(app, 2.0));
            assert!(
                slow > 1.5 * healthy,
                "{app:?}: healthy {healthy} slow {slow}"
            );
        }
    }

    #[test]
    fn slowdown_rejects_bad_factors() {
        let (spec, fw) = atom();
        let mut node = NodeSim::new(spec, fw);
        assert!(node.set_slowdown(0.5).is_err());
        assert!(node.set_slowdown(f64::NAN).is_err());
        assert!(node.set_slowdown(1.0).is_ok());
        assert_eq!(node.slowdown(), 1.0);
    }

    #[test]
    fn straggler_slows_the_wave_and_clears_at_boundary() {
        let (spec, fw) = atom();
        let job = || {
            JobSpec::new(
                App::Wc,
                InputSize::Small,
                cfg(4, Frequency::F2_4, BlockSize::B256),
            )
        };
        let healthy = run_standalone(&spec, &fw, job())
            .unwrap()
            .metrics
            .exec_time_s;

        let mut node = NodeSim::new(spec, fw);
        let h = node.submit(job()).unwrap();
        node.step().unwrap(); // retire setup → map wave active
        node.inject_straggler(h, 4.0).unwrap();
        assert_eq!(node.stragglers_injected(), 1);
        node.run_to_completion().unwrap();
        let slowed = node.finished()[0].metrics.exec_time_s;
        assert!(slowed > 1.5 * healthy, "healthy {healthy} slowed {slowed}");
        // The reduce wave runs at full speed again: total must stay well
        // under a whole-job 4× stretch.
        assert!(slowed < 4.0 * healthy, "healthy {healthy} slowed {slowed}");
    }

    #[test]
    fn speculation_recovers_time_at_an_energy_premium() {
        let (spec, fw) = atom();
        let job = || {
            JobSpec::new(
                App::Wc,
                InputSize::Small,
                cfg(4, Frequency::F2_4, BlockSize::B256),
            )
        };
        let run = |speculate: bool| {
            let mut node = NodeSim::new(spec.clone(), fw.clone());
            let h = node.submit(job()).unwrap();
            node.step().unwrap();
            node.inject_straggler(h, 6.0).unwrap();
            if speculate {
                assert!(node.speculate(h, 2).unwrap());
                assert_eq!(node.speculative_retries(), 1);
            }
            node.run_to_completion().unwrap();
            node.finished()[0].clone()
        };
        let stalled = run(false);
        let rescued = run(true);
        assert!(
            rescued.metrics.exec_time_s < stalled.metrics.exec_time_s,
            "speculation must beat waiting out the straggler: {} vs {}",
            rescued.metrics.exec_time_s,
            stalled.metrics.exec_time_s
        );
        // The duplicated work costs energy relative to a healthy run.
        let healthy = run_standalone(&spec, &fw, job()).unwrap();
        assert!(rescued.usage.energy_j > healthy.usage.energy_j);
    }

    #[test]
    fn speculation_needs_straggler_and_free_cores() {
        let (spec, fw) = atom();
        let mut node = NodeSim::new(spec, fw);
        let h = node
            .submit(JobSpec::new(
                App::Wc,
                InputSize::Small,
                cfg(8, Frequency::F2_4, BlockSize::B256),
            ))
            .unwrap();
        node.step().unwrap();
        // Not straggling → no backup.
        assert!(!node.speculate(h, 2).unwrap());
        node.inject_straggler(h, 3.0).unwrap();
        // Straggling but zero free cores → no backup.
        assert!(!node.speculate(h, 2).unwrap());
        assert_eq!(node.speculative_retries(), 0);
        // Unknown handle is a typed error, not a panic.
        assert!(matches!(
            node.inject_straggler(JobHandle(999), 2.0),
            Err(SimError::NoSuchJob(999))
        ));
    }

    #[test]
    fn crash_drops_active_jobs_and_keeps_energy() {
        let (spec, fw) = atom();
        let mut node = NodeSim::new(spec, fw);
        let h = node
            .submit(JobSpec::new(
                App::St,
                InputSize::Small,
                cfg(4, Frequency::F2_4, BlockSize::B256),
            ))
            .unwrap();
        node.step().unwrap();
        node.advance(5.0).unwrap();
        let spent = node.energy_j();
        assert!(spent > 0.0);
        let displaced = node.crash();
        assert_eq!(displaced, vec![h]);
        assert_eq!(node.active_jobs(), 0);
        assert!(node.finished().is_empty());
        assert_eq!(node.energy_j(), spent);
        assert_eq!(node.free_cores(), 8);
    }
}
