//! The tuning knobs of the paper (§2.4) and their search spaces.
//!
//! Per application: HDFS block size ∈ {64, 128, 256, 512, 1024} MB, mapper
//! count ∈ 1..=8, frequency ∈ {1.2, 1.6, 2.0, 2.4} GHz — the paper's
//! "160 possible cases … per application". For a co-located pair the mapper
//! counts additionally share the node's 8-core budget.

use ecost_sim::Frequency;
use std::fmt;

/// HDFS block size (§2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BlockSize {
    /// 64 MB — Hadoop 1.x default; the paper's EDP normalisation baseline.
    B64,
    /// 128 MB — Hadoop 2.x default (the "untuned" setting of §8).
    B128,
    /// 256 MB.
    B256,
    /// 512 MB.
    B512,
    /// 1024 MB.
    B1024,
}

impl BlockSize {
    /// All five studied sizes, ascending.
    pub const ALL: [BlockSize; 5] = [
        BlockSize::B64,
        BlockSize::B128,
        BlockSize::B256,
        BlockSize::B512,
        BlockSize::B1024,
    ];

    /// Size in MB.
    #[inline]
    pub fn mb(self) -> f64 {
        match self {
            BlockSize::B64 => 64.0,
            BlockSize::B128 => 128.0,
            BlockSize::B256 => 256.0,
            BlockSize::B512 => 512.0,
            BlockSize::B1024 => 1024.0,
        }
    }

    /// Level index 0..=4 (ascending).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            BlockSize::B64 => 0,
            BlockSize::B128 => 1,
            BlockSize::B256 => 2,
            BlockSize::B512 => 3,
            BlockSize::B1024 => 4,
        }
    }

    /// Parse from MB as printed in the paper's tables.
    pub fn from_mb(mb: f64) -> Option<BlockSize> {
        BlockSize::ALL
            .iter()
            .copied()
            .find(|b| (b.mb() - mb).abs() < 0.5)
    }
}

impl fmt::Display for BlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MB", self.mb() as u64)
    }
}

/// One application's tuning configuration: the paper's three knobs.
///
/// ```
/// use ecost_mapreduce::TuningConfig;
///
/// // The paper's "160 possible cases … per application" on an 8-core node.
/// assert_eq!(TuningConfig::space(8).count(), 160);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TuningConfig {
    /// Operating frequency (architecture level).
    pub freq: Frequency,
    /// HDFS block size (system level).
    pub block: BlockSize,
    /// Simultaneous mappers on the node (system level), 1..=8.
    pub mappers: u32,
}

impl TuningConfig {
    /// Hadoop's out-of-the-box configuration: 128 MB blocks, all 8 slots, and
    /// the governor's maximum frequency. This is "[NT] — not tuned" in §8.
    pub fn hadoop_default(cores: u32) -> TuningConfig {
        TuningConfig {
            freq: Frequency::F2_4,
            block: BlockSize::B128,
            mappers: cores,
        }
    }

    /// Enumerate the full per-application space for a node with `max_mappers`
    /// slots: `5 blocks × 4 freqs × max_mappers` (= 160 for the Atom node).
    pub fn space(max_mappers: u32) -> impl Iterator<Item = TuningConfig> {
        BlockSize::ALL.into_iter().flat_map(move |block| {
            Frequency::ALL.into_iter().flat_map(move |freq| {
                (1..=max_mappers).map(move |mappers| TuningConfig {
                    freq,
                    block,
                    mappers,
                })
            })
        })
    }

    /// The space with the mapper count fixed (used when the core split is
    /// decided elsewhere).
    pub fn space_fixed_mappers(mappers: u32) -> impl Iterator<Item = TuningConfig> {
        BlockSize::ALL.into_iter().flat_map(move |block| {
            Frequency::ALL.into_iter().map(move |freq| TuningConfig {
                freq,
                block,
                mappers,
            })
        })
    }

    /// Compact "f, h, m" rendering matching Table 2's columns.
    pub fn table_row(&self) -> String {
        format!(
            "{:.1}, {:>4}, {}",
            self.freq.ghz(),
            self.block.mb() as u64,
            self.mappers
        )
    }
}

impl fmt::Display for TuningConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(f={}, h={}, m={})", self.freq, self.block, self.mappers)
    }
}

/// Configuration of a co-located pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairConfig {
    /// First application's knobs.
    pub a: TuningConfig,
    /// Second application's knobs.
    pub b: TuningConfig,
}

impl PairConfig {
    /// Total cores requested.
    #[inline]
    pub fn cores(&self) -> u32 {
        self.a.mappers + self.b.mappers
    }

    /// Enumerate every pair configuration whose combined mapper count fits
    /// the node (`m_a + m_b ≤ cores`, both ≥ 1) — the COLAO oracle's search
    /// space: 5·4 × 5·4 × 28 = 11 200 points for an 8-core node.
    pub fn space(cores: u32) -> Vec<PairConfig> {
        let mut out = Vec::new();
        for ma in 1..cores {
            for mb in 1..=(cores - ma) {
                for a in TuningConfig::space_fixed_mappers(ma) {
                    for b in TuningConfig::space_fixed_mappers(mb) {
                        out.push(PairConfig { a, b });
                    }
                }
            }
        }
        out
    }

    /// The core-partitioning options only (block/frequency fixed to given
    /// values) — the sweep behind the paper's Fig 5 "every combination of
    /// core partitioning".
    pub fn partitions(cores: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for ma in 1..cores {
            for mb in 1..=(cores - ma) {
                out.push((ma, mb));
            }
        }
        out
    }

    /// Swap the two applications' configurations.
    pub fn swapped(self) -> PairConfig {
        PairConfig {
            a: self.b,
            b: self.a,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_sizes_match_paper() {
        let mb: Vec<f64> = BlockSize::ALL.iter().map(|b| b.mb()).collect();
        assert_eq!(mb, vec![64.0, 128.0, 256.0, 512.0, 1024.0]);
        for (i, b) in BlockSize::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
            assert_eq!(BlockSize::from_mb(b.mb()), Some(*b));
        }
        assert_eq!(BlockSize::from_mb(100.0), None);
    }

    #[test]
    fn per_app_space_has_160_points() {
        // "there are 160 possible cases that need to be examined" (§7).
        assert_eq!(TuningConfig::space(8).count(), 160);
        let uniq: std::collections::HashSet<_> = TuningConfig::space(8).collect();
        assert_eq!(uniq.len(), 160);
    }

    #[test]
    fn pair_space_respects_core_budget() {
        let space = PairConfig::space(8);
        assert_eq!(space.len(), 5 * 4 * 5 * 4 * 28);
        assert!(space
            .iter()
            .all(|p| p.cores() <= 8 && p.a.mappers >= 1 && p.b.mappers >= 1));
    }

    #[test]
    fn partitions_count() {
        assert_eq!(PairConfig::partitions(8).len(), 28);
        assert_eq!(PairConfig::partitions(2), vec![(1, 1)]);
    }

    #[test]
    fn default_config_is_untuned_hadoop() {
        let d = TuningConfig::hadoop_default(8);
        assert_eq!(d.block, BlockSize::B128);
        assert_eq!(d.mappers, 8);
        assert_eq!(d.freq, Frequency::F2_4);
    }

    #[test]
    fn table_row_matches_paper_format() {
        let c = TuningConfig {
            freq: Frequency::F2_4,
            block: BlockSize::B1024,
            mappers: 3,
        };
        assert_eq!(c.table_row(), "2.4, 1024, 3");
    }

    #[test]
    fn swapped_round_trips() {
        let p = PairConfig {
            a: TuningConfig::hadoop_default(4),
            b: TuningConfig {
                freq: Frequency::F1_2,
                block: BlockSize::B64,
                mappers: 2,
            },
        };
        assert_eq!(p.swapped().swapped(), p);
        assert_eq!(p.swapped().a, p.b);
    }
}
