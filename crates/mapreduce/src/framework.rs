//! Framework-level constants of the simulated Hadoop stack.
//!
//! These model software behaviours of Hadoop/HDFS that are independent of the
//! node hardware but shape the paper's results.

/// Tunable constants of the MapReduce framework model.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameworkSpec {
    /// Ceiling on the aggregate disk bandwidth one *job* can drive, MB/s.
    ///
    /// A single Hadoop job reads HDFS through one DataNode client pipeline
    /// per slot with checksumming, serialisation and buffer copies in the
    /// path; measured single-job scan bandwidth on microservers sits well
    /// below the raw device rate. Because of this ceiling, one I/O-bound job
    /// leaves physical disk headroom that only a *co-located second job* can
    /// claim — the mechanism behind the COLAO-vs-ILAO gap for I-I pairs.
    pub job_io_cap_mbps: f64,
    /// Per-mapper sort/serialisation buffer as a fraction of the block size
    /// (io.sort.mb scaled with the split), MB of DRAM per active slot.
    pub mapper_buffer_frac: f64,
    /// Additional disk-traffic multiplier applied per unit of DRAM
    /// over-subscription (spill pressure when footprints exceed capacity).
    pub overcommit_spill_slope: f64,
    /// Fraction of a reduce task's shuffle input re-read/re-written per merge
    /// pass beyond the first.
    pub reduce_merge_overhead: f64,
    /// Fixed cycles per reduce task (setup, final merge bookkeeping).
    pub reduce_task_overhead_cycles: f64,
    /// Fraction of map input bytes that are still resident in the page cache
    /// when the map output is spilled (reduces effective write traffic).
    pub page_cache_hit_frac: f64,
    /// Half-saturation extent of the job pipeline's sequential efficiency:
    /// per-block open/locate/checksum overheads make small HDFS blocks reach
    /// only a fraction of [`FrameworkSpec::job_io_cap_mbps`]; see
    /// [`FrameworkSpec::job_io_cap`].
    pub io_cap_half_extent_mb: f64,
}

impl Default for FrameworkSpec {
    fn default() -> FrameworkSpec {
        FrameworkSpec {
            job_io_cap_mbps: 70.0,
            mapper_buffer_frac: 0.35,
            overcommit_spill_slope: 1.6,
            reduce_merge_overhead: 0.25,
            reduce_task_overhead_cycles: 1.0e9,
            page_cache_hit_frac: 0.15,
            io_cap_half_extent_mb: 25.0,
        }
    }
}

impl FrameworkSpec {
    /// Effective job pipeline ceiling at sequential extent `extent_mb`, MB/s:
    /// `job_io_cap_mbps · extent/(extent + half_extent)`. 64 MB blocks reach
    /// ~72 % of the ceiling, 1 GB blocks ~98 %.
    #[inline]
    pub fn job_io_cap(&self, extent_mb: f64) -> f64 {
        let e = extent_mb.max(1.0);
        self.job_io_cap_mbps * e / (e + self.io_cap_half_extent_mb)
    }

    /// DRAM occupied by one active mapper slot at block size `block_mb`.
    #[inline]
    pub fn mapper_buffer_mb(&self, block_mb: f64) -> f64 {
        self.mapper_buffer_frac * block_mb
    }

    /// Disk-traffic inflation for a node whose resident footprints total
    /// `footprint_mb` against `capacity_mb` of DRAM. 1.0 when everything
    /// fits; grows linearly with the over-subscription ratio.
    #[inline]
    pub fn spill_inflation(&self, footprint_mb: f64, capacity_mb: f64) -> f64 {
        let over = (footprint_mb / capacity_mb - 1.0).max(0.0);
        1.0 + self.overcommit_spill_slope * over
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_cap_leaves_disk_headroom() {
        // The whole point: one job's ceiling must sit well below the Atom
        // disk's raw bandwidth so a co-runner has headroom to claim.
        let fw = FrameworkSpec::default();
        let disk = ecost_sim::NodeSpec::atom_c2758().disk;
        assert!(fw.job_io_cap_mbps < 0.55 * disk.peak_bw_mbps);
        assert!(fw.job_io_cap_mbps > 0.3 * disk.peak_bw_mbps);
    }

    #[test]
    fn spill_inflation_kicks_in_only_when_oversubscribed() {
        let fw = FrameworkSpec::default();
        assert_eq!(fw.spill_inflation(4000.0, 8192.0), 1.0);
        assert_eq!(fw.spill_inflation(8192.0, 8192.0), 1.0);
        let over = fw.spill_inflation(12288.0, 8192.0);
        assert!(over > 1.5 && over < 2.5, "{over}");
    }

    #[test]
    fn job_io_cap_penalises_small_extents() {
        let fw = FrameworkSpec::default();
        let c64 = fw.job_io_cap(64.0);
        let c1024 = fw.job_io_cap(1024.0);
        assert!(c64 < 0.78 * fw.job_io_cap_mbps, "{c64}");
        assert!(c1024 > 0.95 * fw.job_io_cap_mbps, "{c1024}");
        assert!(c64 < c1024);
    }

    #[test]
    fn mapper_buffer_scales_with_block() {
        let fw = FrameworkSpec::default();
        assert!(fw.mapper_buffer_mb(1024.0) > 4.0 * fw.mapper_buffer_mb(128.0));
    }
}
