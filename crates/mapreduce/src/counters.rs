//! Synthetic performance counters — the Perf + dstat + Wattsup stand-in.
//!
//! The paper collects 14 resource-utilisation and micro-architectural metrics
//! per run (§3.1), reduces them with PCA + hierarchical clustering to 7
//! representative features (§3.2), and feeds those to the classifier and the
//! STP models. This module synthesises the same 14-metric vector from a
//! job's usage record, with seeded multiplicative measurement noise — so the
//! downstream pipeline (PCA, clustering, classification, model training) is
//! *identical* to what would run against real counters.

use crate::executor::JobOutcome;
use rand::Rng;
use std::fmt;

/// Number of collected feature metrics (the paper's "14 original gathered
/// features").
pub const NUM_FEATURES: usize = 14;

/// The collected metrics, in storage order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Feature {
    CpuUser,
    CpuSys,
    CpuIowait,
    CpuIdle,
    IoReadMbps,
    IoWriteMbps,
    MemFootprintMb,
    MemCacheMb,
    Ipc,
    IcacheMpki,
    L2Mpki,
    LlcMpki,
    BranchMispPct,
    CtxSwitchKps,
}

impl Feature {
    /// All features in storage order.
    pub const ALL: [Feature; NUM_FEATURES] = [
        Feature::CpuUser,
        Feature::CpuSys,
        Feature::CpuIowait,
        Feature::CpuIdle,
        Feature::IoReadMbps,
        Feature::IoWriteMbps,
        Feature::MemFootprintMb,
        Feature::MemCacheMb,
        Feature::Ipc,
        Feature::IcacheMpki,
        Feature::L2Mpki,
        Feature::LlcMpki,
        Feature::BranchMispPct,
        Feature::CtxSwitchKps,
    ];

    /// The 7 features the paper keeps after PCA + clustering (§3.2):
    /// CPUuser, CPUiowait, I/O read, I/O write, IPC, memory footprint,
    /// LLC MPKI.
    pub const SELECTED: [Feature; 7] = [
        Feature::CpuUser,
        Feature::CpuIowait,
        Feature::IoReadMbps,
        Feature::IoWriteMbps,
        Feature::Ipc,
        Feature::MemFootprintMb,
        Feature::LlcMpki,
    ];

    /// Storage index. `ALL` lists the variants in declaration order, so
    /// the discriminant is the index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// dstat/perf-style display name.
    pub fn name(self) -> &'static str {
        match self {
            Feature::CpuUser => "CPUuser%",
            Feature::CpuSys => "CPUsys%",
            Feature::CpuIowait => "CPUiowait%",
            Feature::CpuIdle => "CPUidle%",
            Feature::IoReadMbps => "IOread(MB/s)",
            Feature::IoWriteMbps => "IOwrite(MB/s)",
            Feature::MemFootprintMb => "MemFootprint(MB)",
            Feature::MemCacheMb => "MemCache(MB)",
            Feature::Ipc => "IPC",
            Feature::IcacheMpki => "ICacheMPKI",
            Feature::L2Mpki => "L2MPKI",
            Feature::LlcMpki => "LLCMPKI",
            Feature::BranchMispPct => "BranchMisp%",
            Feature::CtxSwitchKps => "CtxSw(k/s)",
        }
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One run's 14-metric measurement vector.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    values: [f64; NUM_FEATURES],
}

impl FeatureVector {
    /// Wrap raw values (storage order).
    pub fn from_values(values: [f64; NUM_FEATURES]) -> FeatureVector {
        FeatureVector { values }
    }

    /// Value of one metric.
    #[inline]
    pub fn get(&self, f: Feature) -> f64 {
        self.values[f.index()]
    }

    /// All 14 values in storage order.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// The paper's 7 selected features, in `Feature::SELECTED` order.
    pub fn selected(&self) -> [f64; 7] {
        let mut out = [0.0; 7];
        for (o, f) in out.iter_mut().zip(Feature::SELECTED) {
            *o = self.get(f);
        }
        out
    }

    /// Synthesise the measurement vector for a finished job.
    ///
    /// `noise` is the relative measurement jitter (the paper re-runs
    /// workloads because the PMU is multiplexed; we model the residual error
    /// as ±noise uniform). Pass 0.0 for exact values.
    pub fn measure<R: Rng>(out: &JobOutcome, noise: f64, rng: &mut R) -> FeatureVector {
        let p = &out.spec.profile;
        let u = &out.usage;
        let t = out.metrics.exec_time_s.max(1e-9);
        let alloc = u.alloc_core_s.max(1e-9);

        let mut nf = |x: f64| {
            if noise > 0.0 {
                x * ecost_sim::rng::noise_factor(rng, noise)
            } else {
                x
            }
        };

        let cpu_user = 100.0 * u.busy_core_s / alloc;
        let io_read = u.read_mb / t;
        let io_write = u.write_mb / t;
        // Kernel time: block I/O submission and copies scale with I/O rate.
        let cpu_sys = 1.5 + 0.03 * (io_read + io_write);
        let cpu_iowait = (100.0 - cpu_user - cpu_sys).max(0.0) * 0.9;
        let cpu_idle = (100.0 - cpu_user - cpu_sys - cpu_iowait).max(0.0);
        let footprint = u.peak_footprint_mb;
        // Page cache holds recently streamed file data, bounded by free DRAM.
        let mem_cache = (0.35 * (u.read_mb + u.write_mb)).min((8192.0 - footprint).max(128.0));
        let slow = if u.busy_core_s > 0.0 {
            (u.stall_weighted_s / u.busy_core_s).max(1.0)
        } else {
            1.0
        };
        let ipc = p.ipc_base / slow;
        let ctx_kps = 0.4 + 0.05 * (io_read + io_write) + 0.2 * (100.0 - cpu_user) / 100.0;

        let mut values = [0.0; NUM_FEATURES];
        values[Feature::CpuUser.index()] = nf(cpu_user).clamp(0.0, 100.0);
        values[Feature::CpuSys.index()] = nf(cpu_sys).clamp(0.0, 100.0);
        values[Feature::CpuIowait.index()] = nf(cpu_iowait).clamp(0.0, 100.0);
        values[Feature::CpuIdle.index()] = nf(cpu_idle).clamp(0.0, 100.0);
        values[Feature::IoReadMbps.index()] = nf(io_read).max(0.0);
        values[Feature::IoWriteMbps.index()] = nf(io_write).max(0.0);
        values[Feature::MemFootprintMb.index()] = nf(footprint).max(0.0);
        values[Feature::MemCacheMb.index()] = nf(mem_cache).max(0.0);
        values[Feature::Ipc.index()] = nf(ipc).max(0.01);
        values[Feature::IcacheMpki.index()] = nf(p.icache_mpki).max(0.0);
        values[Feature::L2Mpki.index()] = nf(p.llc_mpki * 2.4 + 0.8).max(0.0);
        values[Feature::LlcMpki.index()] = nf(p.llc_mpki).max(0.0);
        values[Feature::BranchMispPct.index()] = nf(p.branch_misp_pct).clamp(0.0, 100.0);
        values[Feature::CtxSwitchKps.index()] = nf(ctx_kps).max(0.0);
        FeatureVector { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BlockSize, TuningConfig};
    use crate::executor::run_standalone;
    use crate::framework::FrameworkSpec;
    use ecost_apps::{App, InputSize};
    use ecost_sim::{Frequency, NodeSpec};
    use rand::SeedableRng;

    fn measure(app: App, noise: f64, seed: u64) -> FeatureVector {
        let cfg = TuningConfig {
            freq: Frequency::F2_0,
            block: BlockSize::B256,
            mappers: 4,
        };
        let out = run_standalone(
            &NodeSpec::atom_c2758(),
            &FrameworkSpec::default(),
            crate::job::JobSpec::new(app, InputSize::Medium, cfg),
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        FeatureVector::measure(&out, noise, &mut rng)
    }

    #[test]
    fn feature_indices_are_a_bijection() {
        for (i, f) in Feature::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }

    #[test]
    fn selected_features_match_paper_list() {
        assert_eq!(Feature::SELECTED.len(), 7);
        assert!(Feature::SELECTED.contains(&Feature::CpuUser));
        assert!(Feature::SELECTED.contains(&Feature::LlcMpki));
        assert!(!Feature::SELECTED.contains(&Feature::CpuIdle));
    }

    #[test]
    fn compute_bound_signature() {
        let v = measure(App::Wc, 0.0, 0);
        assert!(
            v.get(Feature::CpuUser) > 60.0,
            "user {}",
            v.get(Feature::CpuUser)
        );
        assert!(v.get(Feature::CpuIowait) < 35.0);
        assert!(v.get(Feature::LlcMpki) < 4.0);
    }

    #[test]
    fn io_bound_signature() {
        let v = measure(App::St, 0.0, 0);
        assert!(
            v.get(Feature::CpuIowait) > 40.0,
            "iowait {}",
            v.get(Feature::CpuIowait)
        );
        assert!(
            v.get(Feature::IoReadMbps) + v.get(Feature::IoWriteMbps) > 30.0,
            "io {}",
            v.get(Feature::IoReadMbps) + v.get(Feature::IoWriteMbps)
        );
        assert!(v.get(Feature::CpuUser) < 50.0);
    }

    #[test]
    fn memory_bound_signature() {
        let v = measure(App::Fp, 0.0, 0);
        assert!(v.get(Feature::LlcMpki) > 10.0);
        assert!(v.get(Feature::MemFootprintMb) > 2000.0);
    }

    #[test]
    fn cpu_percentages_are_consistent() {
        for app in [App::Wc, App::St, App::Fp, App::Ts] {
            let v = measure(app, 0.0, 0);
            let sum = v.get(Feature::CpuUser)
                + v.get(Feature::CpuSys)
                + v.get(Feature::CpuIowait)
                + v.get(Feature::CpuIdle);
            assert!(sum <= 100.0 + 1e-6, "{app}: {sum}");
            assert!(sum >= 50.0, "{app}: {sum}");
        }
    }

    #[test]
    fn noise_is_reproducible_and_bounded() {
        let a = measure(App::Gp, 0.05, 7);
        let b = measure(App::Gp, 0.05, 7);
        assert_eq!(a, b);
        let clean = measure(App::Gp, 0.0, 7);
        for (x, y) in a.as_slice().iter().zip(clean.as_slice()) {
            if *y > 1e-9 {
                assert!((x / y - 1.0).abs() <= 0.06, "{x} vs {y}");
            }
        }
        let c = measure(App::Gp, 0.05, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn selected_returns_the_right_values() {
        let v = measure(App::Wc, 0.0, 0);
        let s = v.selected();
        assert_eq!(s[0], v.get(Feature::CpuUser));
        assert_eq!(s[6], v.get(Feature::LlcMpki));
    }
}
