//! Job specification and stage construction.

use crate::config::TuningConfig;
use crate::framework::FrameworkSpec;
use crate::hdfs;
use crate::stage::{Stage, StageKind};
use ecost_apps::{App, AppProfile, InputSize};
use std::sync::Arc;

/// A runnable MapReduce job: an application, its per-node input share and a
/// tuning configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Application demand profile (shared so synthetic apps work too).
    /// Behind an `Arc` for the same reason as `label`: a batched sweep
    /// clones one template spec per lane, and the profile is immutable
    /// once the spec exists, so those clones should bump a refcount
    /// instead of deep-copying the profile (and its heap-owned name).
    pub profile: Arc<AppProfile>,
    /// Input size processed *by this node*, MB.
    pub input_mb: f64,
    /// The three knobs.
    pub config: TuningConfig,
    /// Fraction of shuffle traffic that crosses the network (0 on a single
    /// node; `(span-1)/span` when the job spans several nodes).
    pub remote_shuffle_frac: f64,
    /// Label for reports ("wc@10GB" style). Shared, not owned: a batched
    /// sweep clones one template spec per lane, and a refcount bump beats
    /// a heap-allocated `String` copy on that path.
    pub label: Arc<str>,
}

impl JobSpec {
    /// Single-node job for a catalog application.
    pub fn new(app: App, size: InputSize, config: TuningConfig) -> JobSpec {
        JobSpec::from_profile(app.profile().clone(), size.per_node_mb(), config)
    }

    /// Job from an arbitrary profile and an explicit per-node input share.
    pub fn from_profile(profile: AppProfile, input_mb: f64, config: TuningConfig) -> JobSpec {
        assert!(input_mb > 0.0, "input must be positive");
        let label: Arc<str> = format!("{}@{:.0}MB", profile.name, input_mb).into();
        JobSpec {
            profile: Arc::new(profile),
            input_mb,
            config,
            remote_shuffle_frac: 0.0,
            label,
        }
    }

    /// Set the remote-shuffle fraction (multi-node jobs).
    pub fn with_remote_shuffle(mut self, frac: f64) -> JobSpec {
        assert!((0.0..=1.0).contains(&frac));
        self.remote_shuffle_frac = frac;
        self
    }

    /// Unroll into the stage list the executor runs.
    pub fn stages(&self, fw: &FrameworkSpec) -> Vec<Stage> {
        let mut stages = Vec::with_capacity(3);
        self.stages_into(fw, &mut stages);
        stages
    }

    /// [`Self::stages`] into a caller-provided buffer (cleared first), so a
    /// pooled simulator can reuse one stage vector run after run instead of
    /// allocating a fresh one per submit.
    pub fn stages_into(&self, fw: &FrameworkSpec, stages: &mut Vec<Stage>) {
        stages.clear();
        let p = &self.profile;
        let cfg = self.config;
        let f_hz = cfg.freq.hz();
        let dyn_factor = cfg.freq.dynamic_factor();
        let m = cfg.mappers;
        let block_mb = cfg.block.mb();

        stages.push(Stage::setup(p.job_overhead_s, m, cfg.freq));

        // ---- map stage ----
        let plan = hdfs::split(self.input_mb, cfg.block, m);
        let avg_mb = self.input_mb / f64::from(plan.tasks);
        let write_mb = p.map_selectivity * p.spill_factor * avg_mb * (1.0 - fw.page_cache_hit_frac);
        let io_mb = avg_mb + write_mb;
        stages.push(Stage {
            kind: StageKind::Map,
            tasks: f64::from(plan.tasks) * plan.tail_inflation,
            slots: m,
            think0_s: (p.task_overhead_cycles + p.map_cycles_per_mb * avg_mb) / f_hz,
            io_mb,
            read_frac: avg_mb / io_mb,
            nic_mb: 0.0,
            stall_frac: p.mem_stall_frac,
            bw_per_core_mbps: p.mem_bw_per_core_mbps(f_hz),
            footprint_mb: p.footprint_base_mb
                + p.working_set_frac * self.input_mb
                + f64::from(m) * fw.mapper_buffer_mb(block_mb),
            dyn_factor,
            extent_mb: block_mb,
            freq: cfg.freq,
            setup_s: 0.0,
        });

        // ---- shuffle/reduce stage ----
        let shuffle_total = p.map_selectivity * self.input_mb;
        if shuffle_total >= 1.0 {
            let reducers = m;
            let sh = shuffle_total / f64::from(reducers);
            let merge = fw.reduce_merge_overhead;
            let read_mb = sh * (1.0 - self.remote_shuffle_frac) + sh * merge;
            let write_mb = sh * merge + p.output_selectivity * self.input_mb / f64::from(reducers);
            let io_mb = read_mb + write_mb;
            let extent = fw.mapper_buffer_mb(block_mb).max(64.0);
            stages.push(Stage {
                kind: StageKind::Reduce,
                tasks: f64::from(reducers),
                slots: reducers,
                think0_s: (fw.reduce_task_overhead_cycles
                    + p.reduce_cycles_per_mb * sh * (1.0 + merge))
                    / f_hz,
                io_mb,
                read_frac: if io_mb > 0.0 { read_mb / io_mb } else { 1.0 },
                nic_mb: sh * self.remote_shuffle_frac,
                stall_frac: p.mem_stall_frac,
                bw_per_core_mbps: p.mem_bw_per_core_mbps(f_hz),
                footprint_mb: p.footprint_base_mb
                    + p.working_set_frac * self.input_mb
                    + f64::from(reducers) * fw.mapper_buffer_mb(block_mb) * 0.5,
                dyn_factor,
                extent_mb: extent,
                freq: cfg.freq,
                setup_s: 0.0,
            });
        }

        debug_assert!(stages.iter().all(|s| s.validate().is_ok()));
    }

    /// Total disk bytes the job will move (map + reduce), MB — used by
    /// conservation tests.
    pub fn total_io_mb(&self, fw: &FrameworkSpec) -> f64 {
        self.stages(fw).iter().map(|s| s.io_mb * s.tasks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BlockSize;
    use ecost_sim::Frequency;

    fn cfg(mappers: u32) -> TuningConfig {
        TuningConfig {
            freq: Frequency::F2_4,
            block: BlockSize::B512,
            mappers,
        }
    }

    #[test]
    fn wordcount_has_tiny_reduce() {
        let job = JobSpec::new(App::Wc, InputSize::Large, cfg(4));
        let st = job.stages(&FrameworkSpec::default());
        assert_eq!(st.len(), 3);
        let map = &st[1];
        let red = &st[2];
        // WC barely shuffles: reduce I/O is a sliver of map I/O.
        assert!(red.io_mb * red.tasks < 0.15 * map.io_mb * map.tasks);
    }

    #[test]
    fn grep_at_small_input_skips_reduce_when_negligible() {
        // 1 GB × 0.012 selectivity ≈ 12 MB of shuffle — still >= 1 MB, so a
        // reduce stage exists; but a pure-map synthetic app skips it.
        let mut p = App::Gp.profile().clone();
        p.map_selectivity = 0.0;
        let job = JobSpec::from_profile(p, 1024.0, cfg(2));
        assert_eq!(job.stages(&FrameworkSpec::default()).len(), 2);
    }

    #[test]
    fn sort_is_io_dominated() {
        let job = JobSpec::new(App::St, InputSize::Large, cfg(1));
        let st = job.stages(&FrameworkSpec::default());
        let map = &st[1];
        // Per task: I/O time at the job cap should exceed compute time by a
        // wide margin — that's what makes st I/O-bound.
        let io_s = map.io_mb / 70.0;
        assert!(
            io_s > 2.0 * map.think0_s,
            "io={io_s} think={}",
            map.think0_s
        );
    }

    #[test]
    fn wordcount_is_compute_dominated() {
        let job = JobSpec::new(App::Wc, InputSize::Large, cfg(1));
        let st = job.stages(&FrameworkSpec::default());
        let map = &st[1];
        let io_s = map.io_mb / 70.0;
        assert!(map.think0_s > 3.0 * io_s);
    }

    #[test]
    fn lower_frequency_slows_compute_only() {
        let hi = JobSpec::new(App::Wc, InputSize::Medium, cfg(4));
        let mut lo_cfg = cfg(4);
        lo_cfg.freq = Frequency::F1_2;
        let lo = JobSpec::new(App::Wc, InputSize::Medium, lo_cfg);
        let fw = FrameworkSpec::default();
        let (sh, sl) = (hi.stages(&fw), lo.stages(&fw));
        assert!((sl[1].think0_s / sh[1].think0_s - 2.0).abs() < 1e-9);
        assert_eq!(sl[1].io_mb, sh[1].io_mb);
    }

    #[test]
    fn remote_shuffle_moves_bytes_to_nic() {
        let fw = FrameworkSpec::default();
        let local = JobSpec::new(App::Ts, InputSize::Medium, cfg(4));
        let remote = local.clone().with_remote_shuffle(0.5);
        let (sl, sr) = (local.stages(&fw), remote.stages(&fw));
        assert_eq!(sl[2].nic_mb, 0.0);
        assert!(sr[2].nic_mb > 0.0);
        assert!(sr[2].io_mb < sl[2].io_mb);
    }

    #[test]
    fn footprint_grows_with_mappers_and_block() {
        let fw = FrameworkSpec::default();
        let small = JobSpec::new(App::Fp, InputSize::Large, cfg(1));
        let big = JobSpec::new(App::Fp, InputSize::Large, cfg(8));
        assert!(big.stages(&fw)[1].footprint_mb > small.stages(&fw)[1].footprint_mb);
    }

    #[test]
    fn total_io_scales_with_input() {
        let fw = FrameworkSpec::default();
        let s = JobSpec::new(App::St, InputSize::Small, cfg(4)).total_io_mb(&fw);
        let l = JobSpec::new(App::St, InputSize::Large, cfg(4)).total_io_mb(&fw);
        assert!(l > 8.0 * s && l < 12.0 * s);
    }
}
