//! Frozen pre-optimisation executor: the bit-identity oracle.
//!
//! This is a faithful copy of the [`crate::executor`] hot path *before* the
//! zero-allocation refactor: `solve` returns a freshly allocated
//! [`Vec`]-of-`Vec`s rate solution, `advance` clones the whole solution and
//! `time_to_next_event` clones the rate vector — on every event. It exists
//! for two reasons:
//!
//! 1. **Correctness oracle** — the property tests in
//!    `tests/reference_identity.rs` drive random job mixes and fault plans
//!    through both executors and require every metric to match to the bit
//!    (`f64::to_bits`). Any arithmetic drift introduced by the scratch
//!    buffers is caught immediately.
//! 2. **Perf baseline** — `bench_report --baseline` sweeps with this
//!    executor (fresh simulator per point, no pooling) so `BENCH_sim.json`
//!    records the speedup of the optimised path against a live, compiled-
//!    in-the-same-build reference rather than a stale number.
//!
//! Telemetry hooks are omitted (a recorder observes, it never feeds back
//! into the numbers). Do not "fix" or optimise this module — its value is
//! that it stays byte-for-byte the old arithmetic.

use crate::executor::{JobHandle, JobOutcome, JobUsage};
use crate::framework::FrameworkSpec;
use crate::job::JobSpec;
use crate::metrics::JobMetrics;
use crate::stage::Stage;
use ecost_sim::{amva, ClassDemand, EnergyMeter, NodeSpec, PowerModel, SimError};

struct ActiveJob {
    id: JobHandle,
    spec: JobSpec,
    stages: Vec<Stage>,
    stage_idx: usize,
    remaining: f64,
    start_s: f64,
    usage: JobUsage,
    timeline: Vec<(crate::stage::StageKind, f64)>,
    straggler: f64,
    extra_slots: u32,
}

impl ActiveJob {
    fn stage(&self) -> &Stage {
        &self.stages[self.stage_idx]
    }

    fn eff_slots(&self) -> u32 {
        self.stage().slots + self.extra_slots
    }
}

/// Per-job rates valid until the next event (allocating original).
#[derive(Debug, Clone)]
struct RateSolution {
    rate: Vec<f64>,
    busy_cores: Vec<f64>,
    read_mbps: Vec<f64>,
    write_mbps: Vec<f64>,
    nic_mbps: Vec<f64>,
    mem_mbps: Vec<f64>,
    slow: f64,
    power_total_w: f64,
    power_attr_w: Vec<f64>,
}

/// The pre-refactor node executor (see the module docs for why it exists).
pub struct ReferenceNodeSim {
    spec: NodeSpec,
    fw: FrameworkSpec,
    power: PowerModel,
    nic_bw_mbps: f64,
    nic_power_w: f64,
    now: f64,
    active: Vec<ActiveJob>,
    finished: Vec<JobOutcome>,
    meter: EnergyMeter,
    next_id: u64,
    cached: Option<RateSolution>,
    slowdown: f64,
}

/// Numerical floor treating a stage as complete (same as the executor's).
const WORK_EPS: f64 = 1e-9;

impl ReferenceNodeSim {
    /// New node with effectively infinite NIC.
    pub fn new(spec: NodeSpec, fw: FrameworkSpec) -> ReferenceNodeSim {
        ReferenceNodeSim::with_nic(spec, fw, f64::INFINITY, 0.0)
    }

    /// New node with a finite NIC.
    pub fn with_nic(
        spec: NodeSpec,
        fw: FrameworkSpec,
        nic_bw_mbps: f64,
        nic_power_w: f64,
    ) -> ReferenceNodeSim {
        let power = PowerModel::new(spec.clone());
        ReferenceNodeSim {
            spec,
            fw,
            power,
            nic_bw_mbps,
            nic_power_w,
            now: 0.0,
            active: Vec::new(),
            finished: Vec::new(),
            meter: EnergyMeter::new(),
            next_id: 0,
            cached: None,
            slowdown: 1.0,
        }
    }

    /// Degrade every rate on this node by `factor` (≥ 1).
    pub fn set_slowdown(&mut self, factor: f64) -> Result<(), SimError> {
        if !factor.is_finite() || factor < 1.0 {
            return Err(SimError::InvalidDemand(
                "slowdown factor must be finite and >= 1",
            ));
        }
        self.slowdown = factor;
        self.cached = None;
        Ok(())
    }

    /// Slow the current task wave of job `h` by `multiplier` (≥ 1).
    pub fn inject_straggler(&mut self, h: JobHandle, multiplier: f64) -> Result<(), SimError> {
        if !multiplier.is_finite() || multiplier < 1.0 {
            return Err(SimError::InvalidDemand(
                "straggler multiplier must be finite and >= 1",
            ));
        }
        let job = self
            .active
            .iter_mut()
            .find(|j| j.id == h)
            .ok_or(SimError::NoSuchJob(h.0))?;
        job.straggler = job.straggler.max(multiplier);
        self.cached = None;
        Ok(())
    }

    /// Speculative re-execution (same semantics as the executor's).
    pub fn speculate(&mut self, h: JobHandle, extra: u32) -> Result<bool, SimError> {
        let free = self.free_cores();
        let job = self
            .active
            .iter_mut()
            .find(|j| j.id == h)
            .ok_or(SimError::NoSuchJob(h.0))?;
        if job.straggler <= 1.0 {
            return Ok(false);
        }
        let granted = extra.min(free);
        if granted == 0 {
            return Ok(false);
        }
        let dup = f64::from(granted).min(job.remaining.max(0.0));
        job.remaining += dup;
        job.extra_slots += granted;
        job.straggler = 1.0;
        self.cached = None;
        Ok(true)
    }

    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Cores currently allocated to active jobs.
    pub fn allocated_cores(&self) -> u32 {
        self.active
            .iter()
            .map(|j| j.spec.config.mappers + j.extra_slots)
            .sum()
    }

    /// Cores free for a new job.
    pub fn free_cores(&self) -> u32 {
        self.spec.cores.saturating_sub(self.allocated_cores())
    }

    /// Completed jobs so far (in completion order).
    pub fn finished(&self) -> &[JobOutcome] {
        &self.finished
    }

    /// Take ownership of the completed-job list.
    pub fn take_finished(&mut self) -> Vec<JobOutcome> {
        std::mem::take(&mut self.finished)
    }

    /// Total idle-subtracted energy integrated so far, joules.
    pub fn energy_j(&self) -> f64 {
        self.meter.energy_j()
    }

    /// Submit a job; fails if its mapper count exceeds the free cores.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobHandle, SimError> {
        let m = spec.config.mappers;
        if m == 0 || m > self.free_cores() {
            return Err(SimError::CoreBudgetExceeded {
                requested: self.allocated_cores() + m,
                available: self.spec.cores,
            });
        }
        let stages = spec.stages(&self.fw);
        assert!(!stages.is_empty());
        let id = JobHandle(self.next_id);
        self.next_id += 1;
        let remaining = stages[0].tasks;
        self.active.push(ActiveJob {
            id,
            spec,
            stages,
            stage_idx: 0,
            remaining,
            start_s: self.now,
            usage: JobUsage::default(),
            timeline: Vec::new(),
            straggler: 1.0,
            extra_slots: 0,
        });
        self.cached = None;
        Ok(id)
    }

    /// Seconds until the next stage completion at current rates.
    pub fn time_to_next_event(&mut self) -> Result<Option<f64>, SimError> {
        if self.active.is_empty() {
            return Ok(None);
        }
        let rates = self.solution()?.rate.clone();
        let mut dt = f64::INFINITY;
        for (job, r) in self.active.iter().zip(rates) {
            debug_assert!(r > 0.0, "active job {} has zero rate", job.spec.label);
            dt = dt.min(job.remaining / r);
        }
        Ok(Some(dt.max(0.0)))
    }

    /// Advance the clock by `dt` seconds.
    pub fn advance(&mut self, dt: f64) -> Result<(), SimError> {
        assert!(dt >= 0.0 && dt.is_finite(), "bad dt {dt}");
        if self.active.is_empty() || dt == 0.0 {
            self.now += dt;
            return Ok(());
        }
        let sol = self.solution()?.clone();
        self.meter.record(dt, sol.power_total_w);
        let mut completed = Vec::new();
        let mut dirty = false;
        for (j, job) in self.active.iter_mut().enumerate() {
            let stage_slots = f64::from(job.eff_slots());
            job.usage.busy_core_s += sol.busy_cores[j] * dt;
            job.usage.alloc_core_s += stage_slots * dt;
            job.usage.read_mb += sol.read_mbps[j] * dt;
            job.usage.write_mb += sol.write_mbps[j] * dt;
            job.usage.nic_mb += sol.nic_mbps[j] * dt;
            job.usage.mem_mb += sol.mem_mbps[j] * dt;
            job.usage.energy_j += sol.power_attr_w[j] * dt;
            job.usage.stall_weighted_s += sol.slow * sol.busy_cores[j] * dt;
            job.usage.peak_footprint_mb = job.usage.peak_footprint_mb.max(job.stage().footprint_mb);
            job.remaining -= sol.rate[j] * dt;
            if job.remaining <= WORK_EPS * job.stage().tasks.max(1.0) {
                job.timeline.push((job.stage().kind, self.now + dt));
                job.stage_idx += 1;
                if job.straggler != 1.0 || job.extra_slots != 0 {
                    job.straggler = 1.0;
                    job.extra_slots = 0;
                    dirty = true;
                }
                if job.stage_idx >= job.stages.len() {
                    completed.push(j);
                } else {
                    job.remaining = job.stages[job.stage_idx].tasks;
                    dirty = true;
                }
            }
        }
        if dirty {
            self.cached = None;
        }
        self.now += dt;
        for &j in completed.iter().rev() {
            let job = self.active.swap_remove(j);
            let exec = self.now - job.start_s;
            let metrics = JobMetrics {
                exec_time_s: exec,
                energy_j: job.usage.energy_j,
                avg_power_w: if exec > 0.0 {
                    job.usage.energy_j / exec
                } else {
                    0.0
                },
            };
            self.finished.push(JobOutcome {
                id: job.id,
                spec: job.spec,
                metrics,
                usage: job.usage,
                timeline: job.timeline,
            });
            self.cached = None;
        }
        Ok(())
    }

    /// Run one event step; returns handles of jobs that finished during it.
    pub fn step(&mut self) -> Result<Vec<JobHandle>, SimError> {
        let before = self.finished.len();
        match self.time_to_next_event()? {
            None => Ok(Vec::new()),
            Some(dt) => {
                self.advance(dt)?;
                Ok(self.finished[before..].iter().map(|o| o.id).collect())
            }
        }
    }

    /// Run until no active jobs remain.
    pub fn run_to_completion(&mut self) -> Result<(), SimError> {
        let mut guard = 64 + 16 * self.active.iter().map(|j| j.stages.len()).sum::<usize>();
        while !self.active.is_empty() {
            self.step()?;
            guard -= 1;
            assert!(guard > 0, "event-loop runaway: rates failed to progress");
        }
        Ok(())
    }

    fn solution(&mut self) -> Result<&RateSolution, SimError> {
        if self.cached.is_none() {
            self.cached = Some(self.solve()?);
        }
        self.cached
            .as_ref()
            .ok_or(SimError::Internal("rate solution vanished after fill"))
    }

    /// Solve the contention model for the current job mix (allocating
    /// original — one `Vec` per quantity, fresh AMVA classes per outer
    /// iteration).
    fn solve(&self) -> Result<RateSolution, SimError> {
        let n = self.active.len();
        let stages: Vec<&Stage> = self.active.iter().map(|j| j.stage()).collect();
        let slowdown = self.slowdown;
        let stragglers: Vec<f64> = self.active.iter().map(|j| j.straggler).collect();
        let eff_slots: Vec<f64> = self
            .active
            .iter()
            .map(|j| f64::from(j.eff_slots()))
            .collect();

        let footprint_mb: f64 = stages.iter().map(|s| s.footprint_mb).sum();
        let spill = self
            .fw
            .spill_inflation(footprint_mb, self.spec.mem.capacity_mb);

        let static_cap: Vec<f64> = stages
            .iter()
            .map(|s| {
                if s.is_fluid() && s.io_mb > 0.0 {
                    self.fw
                        .job_io_cap(s.extent_mb)
                        .min(s.stream_bound_mbps(self.spec.disk.stream_rate(s.extent_mb)))
                        / slowdown
                } else {
                    0.0
                }
            })
            .collect();

        let mut theta: f64 = 1.0;
        let mut slow: f64 = 1.0;
        let mut x = vec![0.0_f64; n];
        let mut q_io = vec![0.0_f64; n];
        let mut nic_util = 0.0_f64;
        let stations = n + 1;
        for _outer in 0..200 {
            let classes: Vec<ClassDemand> = stages
                .iter()
                .enumerate()
                .map(|(j, s)| {
                    if !s.is_fluid() {
                        return ClassDemand {
                            population: 0.0,
                            think_time_s: 0.0,
                            demands_s: vec![0.0; stations],
                        };
                    }
                    let think = s.think0_s
                        * (1.0 - s.stall_frac + s.stall_frac * slow)
                        * slowdown
                        * stragglers[j];
                    let mut demands = vec![0.0; stations];
                    if s.io_mb > 0.0 && static_cap[j] > 0.0 {
                        demands[j] = s.io_mb * spill / (theta * static_cap[j]).max(1e-9);
                    }
                    if s.nic_mb > 0.0 && self.nic_bw_mbps.is_finite() {
                        demands[n] = s.nic_mb / self.nic_bw_mbps;
                    }
                    ClassDemand {
                        population: eff_slots[j],
                        think_time_s: think,
                        demands_s: demands,
                    }
                })
                .collect();

            let sol = amva::solve(&classes, stations)?;
            x.copy_from_slice(&sol.throughput);
            for (j, q) in q_io.iter_mut().enumerate() {
                *q = sol.queue[j][j];
            }
            nic_util = sol.station_util[n];

            let bw_demand: f64 = (0..n)
                .map(|j| {
                    let s = stages[j];
                    let think = s.think0_s
                        * (1.0 - s.stall_frac + s.stall_frac * slow)
                        * slowdown
                        * stragglers[j];
                    (x[j] * think).min(eff_slots[j]) * s.bw_per_core_mbps
                })
                .sum();
            let slow_target = (bw_demand / self.spec.mem_bw_mbps()).max(1.0);
            let slow_next = slow + 0.5 * (slow_target - slow);

            let streams: f64 = q_io.iter().sum::<f64>().max(1.0);
            let cap_phys = self.spec.disk.aggregate_bw(streams) / slowdown;
            let total_io: f64 = (0..n).map(|j| x[j] * stages[j].io_mb * spill).sum();
            let theta_target = if total_io > cap_phys {
                (theta * cap_phys / total_io).clamp(0.01, 1.0)
            } else {
                (theta * 1.15).min(1.0)
            };
            let theta_next = theta + 0.5 * (theta_target - theta);

            let resid = (slow_next - slow).abs() / slow + (theta_next - theta).abs();
            slow = slow_next;
            theta = theta_next;
            if resid < 1e-5 {
                break;
            }
        }

        let mut rate = vec![0.0_f64; n];
        let mut busy_cores = vec![0.0_f64; n];
        let mut read_mbps = vec![0.0_f64; n];
        let mut write_mbps = vec![0.0_f64; n];
        let mut nic_mbps = vec![0.0_f64; n];
        let mut mem_mbps = vec![0.0_f64; n];
        for (j, s) in stages.iter().enumerate() {
            if s.is_fluid() {
                rate[j] = x[j];
                let think = s.think0_s
                    * (1.0 - s.stall_frac + s.stall_frac * slow)
                    * slowdown
                    * stragglers[j];
                busy_cores[j] = (x[j] * think).min(eff_slots[j]);
                let io = x[j] * s.io_mb * spill;
                read_mbps[j] = io * s.read_frac;
                write_mbps[j] = io * (1.0 - s.read_frac);
                nic_mbps[j] = x[j] * s.nic_mb;
                mem_mbps[j] = busy_cores[j] * s.bw_per_core_mbps;
            } else {
                rate[j] = 1.0 / (s.setup_s * slowdown * stragglers[j]);
                busy_cores[j] = 0.4;
            }
        }
        let total_io: f64 = read_mbps.iter().chain(write_mbps.iter()).sum();
        let streams: f64 = q_io.iter().sum::<f64>().max(1.0);
        let cap_phys = self.spec.disk.aggregate_bw(streams) / slowdown;
        let disk_util = (total_io / cap_phys).clamp(0.0, 1.0);
        let total_mem: f64 = mem_mbps.iter().sum();
        let mem_util = (total_mem / self.spec.mem_bw_mbps()).clamp(0.0, 1.0);
        let allocated: f64 = eff_slots.iter().sum();

        let busy_at: Vec<(f64, f64)> = stages
            .iter()
            .enumerate()
            .map(|(j, s)| (busy_cores[j], s.dyn_factor))
            .collect();
        let breakdown = self
            .power
            .dynamic_power(&busy_at, allocated, disk_util, mem_util, 0.0);
        let nic_w = nic_util * self.nic_power_w;
        let power_total_w = breakdown.total() + nic_w;

        let total_nic: f64 = nic_mbps.iter().sum();
        let power_attr_w: Vec<f64> = (0..n)
            .map(|j| {
                let s = stages[j];
                let core = busy_cores[j] * self.spec.core_busy_power_w * s.dyn_factor
                    + (eff_slots[j] - busy_cores[j]).max(0.0) * self.spec.core_iowait_power_w
                    + eff_slots[j] * self.spec.core_static_power_w;
                let io_j = read_mbps[j] + write_mbps[j];
                let disk = if total_io > 0.0 {
                    breakdown.disk_w * io_j / total_io
                } else {
                    0.0
                };
                let mem = if total_mem > 0.0 {
                    breakdown.mem_w * mem_mbps[j] / total_mem
                } else {
                    0.0
                };
                let nic = if total_nic > 0.0 {
                    nic_w * nic_mbps[j] / total_nic
                } else {
                    0.0
                };
                core + disk + mem + nic
            })
            .collect();

        Ok(RateSolution {
            rate,
            busy_cores,
            read_mbps,
            write_mbps,
            nic_mbps,
            mem_mbps,
            slow,
            power_total_w,
            power_attr_w,
        })
    }
}

/// Run `jobs` co-located from t=0 on a fresh reference node.
pub fn run_colocated_reference(
    spec: &NodeSpec,
    fw: &FrameworkSpec,
    jobs: Vec<JobSpec>,
) -> Result<(Vec<JobOutcome>, f64), SimError> {
    let mut node = ReferenceNodeSim::new(spec.clone(), fw.clone());
    for j in jobs {
        node.submit(j)?;
    }
    node.run_to_completion()?;
    let makespan = node.now();
    Ok((node.take_finished(), makespan))
}

/// Run one job alone on a fresh reference node.
pub fn run_standalone_reference(
    spec: &NodeSpec,
    fw: &FrameworkSpec,
    job: JobSpec,
) -> Result<JobOutcome, SimError> {
    let (mut out, _) = run_colocated_reference(spec, fw, vec![job])?;
    out.pop()
        .ok_or(SimError::Internal("one job submitted, none finished"))
}
