//! Execution stages.
//!
//! A job unrolls into a stage list: a fixed `Setup` (Hadoop job
//! initialisation), a `Map` stage of one task per HDFS block, and — when the
//! application shuffles anything — a combined `Reduce` stage (shuffle +
//! merge + reduce + output write). Each Map/Reduce stage becomes one customer
//! class in the node's queueing network; `Setup` progresses at a fixed rate.

use ecost_sim::Frequency;

/// Kind of stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Serial job initialisation (JVM spin-up, split computation, AM setup).
    Setup,
    /// Map wave execution.
    Map,
    /// Shuffle + sort + reduce + output write.
    Reduce,
}

impl StageKind {
    /// Lower-case phase label used for telemetry span keys.
    pub fn label(self) -> &'static str {
        match self {
            StageKind::Setup => "setup",
            StageKind::Map => "map",
            StageKind::Reduce => "reduce",
        }
    }
}

/// One stage's resource demands. All `*_per task` quantities refer to the
/// stage's work unit (a map task, a reducer, or the whole setup).
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// What this stage is (affects bookkeeping only; the executor treats
    /// Map and Reduce identically).
    pub kind: StageKind,
    /// Work units to complete, already inflated for wave-tail imbalance.
    pub tasks: f64,
    /// Slots (= cores) the job occupies during this stage.
    pub slots: u32,
    /// Base compute time per task at the configured frequency, seconds,
    /// before memory-stall dilation.
    pub think0_s: f64,
    /// Disk bytes moved per task, MB (before DRAM spill inflation).
    pub io_mb: f64,
    /// Fraction of `io_mb` that is reads (rest is writes).
    pub read_frac: f64,
    /// Network bytes per task, MB (remote shuffle only).
    pub nic_mb: f64,
    /// Memory-stall-sensitive fraction of the compute time (µ).
    pub stall_frac: f64,
    /// Memory traffic of one busy core, MB/s.
    pub bw_per_core_mbps: f64,
    /// Resident DRAM footprint while this stage runs, MB.
    pub footprint_mb: f64,
    /// V²f dynamic-power factor of the job's frequency.
    pub dyn_factor: f64,
    /// Sequential extent of this stage's disk accesses, MB (drives the
    /// per-stream disk rate).
    pub extent_mb: f64,
    /// Operating frequency (kept for reporting).
    pub freq: Frequency,
    /// Duration of a `Setup` stage, seconds (unused otherwise).
    pub setup_s: f64,
}

impl Stage {
    /// A setup stage occupying `slots` cores for `seconds`.
    pub fn setup(seconds: f64, slots: u32, freq: Frequency) -> Stage {
        Stage {
            kind: StageKind::Setup,
            tasks: 1.0,
            slots,
            think0_s: 0.0,
            io_mb: 0.0,
            read_frac: 1.0,
            nic_mb: 0.0,
            stall_frac: 0.0,
            bw_per_core_mbps: 0.0,
            footprint_mb: 0.0,
            dyn_factor: freq.dynamic_factor(),
            extent_mb: 64.0,
            freq,
            setup_s: seconds.max(1e-3),
        }
    }

    /// Does the stage use the queueing network (Map/Reduce) rather than the
    /// fixed-rate path (Setup)?
    #[inline]
    pub fn is_fluid(&self) -> bool {
        !matches!(self.kind, StageKind::Setup)
    }

    /// Maximum aggregate disk bandwidth this stage's slots can pull given a
    /// per-stream rate `stream_rate_mbps`, before job-level and physical
    /// caps, MB/s.
    #[inline]
    pub fn stream_bound_mbps(&self, stream_rate_mbps: f64) -> f64 {
        f64::from(self.slots) * stream_rate_mbps
    }

    /// Basic sanity invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.tasks <= 0.0 || !self.tasks.is_finite() {
            return Err("tasks must be positive".into());
        }
        if self.slots == 0 {
            return Err("slots must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.read_frac) {
            return Err("read_frac out of range".into());
        }
        if self.is_fluid() && self.think0_s <= 0.0 && self.io_mb <= 0.0 {
            return Err("fluid stage needs compute or I/O demand".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_stage_is_not_fluid() {
        let s = Stage::setup(8.0, 4, Frequency::F2_0);
        assert!(!s.is_fluid());
        assert!(s.validate().is_ok());
        assert_eq!(s.slots, 4);
    }

    #[test]
    fn setup_duration_is_clamped_positive() {
        let s = Stage::setup(0.0, 1, Frequency::F1_2);
        assert!(s.setup_s > 0.0);
    }

    #[test]
    fn validate_rejects_empty_fluid_stage() {
        let mut s = Stage::setup(1.0, 1, Frequency::F2_4);
        s.kind = StageKind::Map;
        assert!(s.validate().is_err());
        s.io_mb = 10.0;
        assert!(s.validate().is_ok());
    }

    #[test]
    fn stream_bound_scales_with_slots() {
        let mut s = Stage::setup(1.0, 4, Frequency::F2_4);
        s.kind = StageKind::Map;
        s.io_mb = 100.0;
        assert_eq!(s.stream_bound_mbps(50.0), 200.0);
    }
}
