//! Property-based tests of the execution model over the real catalog:
//! conservation laws and knob monotonicities that must hold at every point
//! of the paper's 160-configuration space.

use ecost_apps::catalog::ALL_APPS;
use ecost_apps::{App, InputSize};
use ecost_mapreduce::executor::run_standalone;
use ecost_mapreduce::{BlockSize, FrameworkSpec, JobSpec, TuningConfig};
use ecost_sim::{Frequency, NodeSpec};
use proptest::prelude::*;

fn arb_app() -> impl Strategy<Value = App> {
    (0usize..ALL_APPS.len()).prop_map(|i| ALL_APPS[i])
}

fn arb_cfg() -> impl Strategy<Value = TuningConfig> {
    (0usize..4, 0usize..5, 1u32..=8).prop_map(|(f, b, m)| TuningConfig {
        freq: Frequency::from_index(f).expect("< 4"),
        block: BlockSize::ALL[b],
        mappers: m,
    })
}

fn arb_size() -> impl Strategy<Value = InputSize> {
    prop_oneof![
        Just(InputSize::Small),
        Just(InputSize::Medium),
        Just(InputSize::Large)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Disk work is conserved: bytes moved match the job's static inventory
    /// when DRAM is not over-subscribed (single job always fits).
    #[test]
    fn io_inventory_conserved(app in arb_app(), cfg in arb_cfg(), size in arb_size()) {
        let spec = NodeSpec::atom_c2758();
        let fw = FrameworkSpec::default();
        let job = JobSpec::new(app, size, cfg);
        let expect = job.total_io_mb(&fw);
        let out = run_standalone(&spec, &fw, job).expect("sim");
        let moved = out.usage.read_mb + out.usage.write_mb;
        prop_assert!((moved - expect).abs() / expect < 0.03,
            "{app} {cfg}: moved {moved} expected {expect}");
    }

    /// The counter identity CPUuser + CPUsys + CPUiowait + CPUidle ≤ 100
    /// holds at every configuration.
    #[test]
    fn cpu_accounting_identity(app in arb_app(), cfg in arb_cfg()) {
        use ecost_mapreduce::{Feature, FeatureVector};
        let spec = NodeSpec::atom_c2758();
        let fw = FrameworkSpec::default();
        let out = run_standalone(&spec, &fw, JobSpec::new(app, InputSize::Small, cfg)).expect("sim");
        let mut rng = ecost_sim::rng::stream(1, "props");
        let v = FeatureVector::measure(&out, 0.0, &mut rng);
        let sum = v.get(Feature::CpuUser) + v.get(Feature::CpuSys)
            + v.get(Feature::CpuIowait) + v.get(Feature::CpuIdle);
        prop_assert!(sum <= 100.0 + 1e-6, "{app} {cfg}: {sum}");
        prop_assert!(v.get(Feature::Ipc) <= app.profile().ipc_base + 1e-9);
    }

    /// Energy is consistent with power × time and EDP with its definition.
    #[test]
    fn energy_identities(app in arb_app(), cfg in arb_cfg()) {
        let spec = NodeSpec::atom_c2758();
        let fw = FrameworkSpec::default();
        let m = run_standalone(&spec, &fw, JobSpec::new(app, InputSize::Small, cfg))
            .expect("sim")
            .metrics;
        prop_assert!((m.avg_power_w * m.exec_time_s - m.energy_j).abs() < 1e-6 * m.energy_j);
        prop_assert!((m.edp() - m.exec_time_s * m.energy_j).abs() < 1e-9 * m.edp());
        let idle = spec.idle_power_w;
        prop_assert!(m.edp_wall(idle) > m.edp());
    }

    /// Larger HDFS blocks never *increase* the number of map tasks.
    #[test]
    fn block_size_monotone_tasks(size in arb_size(), m in 1u32..=8) {
        let mut prev = u32::MAX;
        for block in BlockSize::ALL {
            let plan = ecost_mapreduce::hdfs::split(size.per_node_mb(), block, m);
            prop_assert!(plan.tasks <= prev);
            prev = plan.tasks;
        }
    }
}
