//! The PR's headline claim, enforced: after warm-up, the discrete-event
//! hot path — `time_to_next_event` / `advance` / the contention solve —
//! performs **zero heap allocations** on the healthy path. A counting
//! `#[global_allocator]` wraps the system allocator; the one test in this
//! binary (kept alone so no sibling test allocates concurrently) warms a
//! simulator past its first solve, then drives it to completion and
//! asserts the allocation counter did not move.
//!
//! Submission is *allowed* to allocate (job stages, timeline reservation):
//! the zero-allocation contract covers the event loop, not setup.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ecost_apps::{App, InputSize};
use ecost_mapreduce::executor::NodeSim;
use ecost_mapreduce::{FrameworkSpec, JobSpec, TuningConfig};
use ecost_sim::NodeSpec;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves or grows is an allocation for our purposes.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[test]
fn event_loop_is_allocation_free_after_warmup() {
    let mut sim = NodeSim::new(NodeSpec::atom_c2758(), FrameworkSpec::default());

    // Two co-located jobs: stage transitions, completions and the full
    // multi-class contention solve are all exercised.
    sim.submit(JobSpec::new(
        App::Wc,
        InputSize::Small,
        TuningConfig::hadoop_default(4),
    ))
    .expect("submit wc");
    sim.submit(JobSpec::new(
        App::St,
        InputSize::Small,
        TuningConfig::hadoop_default(4),
    ))
    .expect("submit st");

    // Warm-up: the first step grows the solver scratch (class demand
    // vectors, AMVA matrices) to this job mix's high-water mark.
    sim.step().expect("warm-up step");

    let before = ALLOCS.load(Ordering::SeqCst);
    sim.run_to_completion().expect("event loop");
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "event loop allocated {} times after warm-up",
        after - before
    );

    // The loop really ran: both jobs retired with sane outputs.
    assert_eq!(sim.finished().len(), 2);
    assert!(sim.now() > 0.0);
    assert!(sim.energy_j() > 0.0);
}
