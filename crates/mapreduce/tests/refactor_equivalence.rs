//! The zero-allocation executor must be *bit-identical* to the frozen
//! pre-refactor reference (`ecost_mapreduce::reference`): every result
//! figure the repo reports was produced by that arithmetic, so the hot-path
//! rewrite (double-buffered SoA rate solution, in-place AMVA scratch,
//! stack-allocated completion sets) is only admissible if `f64::to_bits`
//! agrees on every output — times, energies, usage integrals, timelines —
//! for random job mixes, fault plans and simulator reuse.

use ecost_apps::catalog::ALL_APPS;
use ecost_apps::{App, InputSize};
use ecost_mapreduce::executor::NodeSim;
use ecost_mapreduce::reference::ReferenceNodeSim;
use ecost_mapreduce::{
    run_batch_to_completion, BatchScratch, BlockSize, FrameworkSpec, JobSpec, TuningConfig,
};
use ecost_sim::{AmvaBatch, AmvaScratch, ClassDemand, Frequency, NodeSpec, SimdBackend};
use proptest::prelude::*;

fn arb_app() -> impl Strategy<Value = App> {
    (0usize..ALL_APPS.len()).prop_map(|i| ALL_APPS[i])
}

fn arb_size() -> impl Strategy<Value = InputSize> {
    prop_oneof![
        Just(InputSize::Small),
        Just(InputSize::Medium),
        Just(InputSize::Large)
    ]
}

/// Configs capped at 2 mappers so any mix of up to 4 jobs fits the 8-core
/// Atom node's core budget.
fn arb_cfg() -> impl Strategy<Value = TuningConfig> {
    (0usize..4, 0usize..5, 1u32..=2).prop_map(|(f, b, m)| TuningConfig {
        freq: Frequency::from_index(f).expect("< 4"),
        block: BlockSize::ALL[b],
        mappers: m,
    })
}

/// A full scenario: a co-located job mix plus an optional fault plan
/// (node slowdown, mid-run straggler injection, speculative retry).
#[derive(Debug, Clone)]
struct Plan {
    jobs: Vec<(App, InputSize, TuningConfig)>,
    slowdown: f64,
    /// Steps to advance before applying mid-run faults.
    warm_steps: usize,
    straggler: Option<(usize, f64)>,
    speculate: Option<(usize, u32)>,
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    (
        prop::collection::vec((arb_app(), arb_size(), arb_cfg()), 1..=4),
        prop_oneof![Just(1.0f64), Just(1.25), Just(2.0)],
        0usize..=3,
        (0u8..=1, (0usize..4, 1.1f64..3.0)),
        (0u8..=1, (0usize..4, 1u32..=2)),
    )
        .prop_map(|(jobs, slowdown, warm_steps, straggler, speculate)| Plan {
            jobs,
            slowdown,
            warm_steps,
            straggler: (straggler.0 == 1).then_some(straggler.1),
            speculate: (speculate.0 == 1).then_some(speculate.1),
        })
}

/// Everything observable about a finished simulation, as bit patterns.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    now: u64,
    energy: u64,
    outcomes: Vec<OutcomeBits>,
}

#[derive(Debug, PartialEq)]
struct OutcomeBits {
    id: u64,
    exec_time: u64,
    energy: u64,
    avg_power: u64,
    usage: [u64; 9],
    timeline: Vec<(ecost_mapreduce::stage::StageKind, u64)>,
}

fn outcome_bits(o: &ecost_mapreduce::JobOutcome) -> OutcomeBits {
    OutcomeBits {
        id: o.id.0,
        exec_time: o.metrics.exec_time_s.to_bits(),
        energy: o.metrics.energy_j.to_bits(),
        avg_power: o.metrics.avg_power_w.to_bits(),
        usage: [
            o.usage.busy_core_s.to_bits(),
            o.usage.alloc_core_s.to_bits(),
            o.usage.read_mb.to_bits(),
            o.usage.write_mb.to_bits(),
            o.usage.nic_mb.to_bits(),
            o.usage.mem_mb.to_bits(),
            o.usage.energy_j.to_bits(),
            o.usage.stall_weighted_s.to_bits(),
            o.usage.peak_footprint_mb.to_bits(),
        ],
        timeline: o
            .timeline
            .iter()
            .map(|&(kind, t)| (kind, t.to_bits()))
            .collect(),
    }
}

/// Apply `plan`'s submissions, warm steps and mid-run faults without
/// finishing the run — shared by the scalar and batched drivers.
fn setup_new(sim: &mut NodeSim, plan: &Plan) -> Result<(), ecost_sim::SimError> {
    sim.set_slowdown(plan.slowdown)?;
    let mut handles = Vec::new();
    for (app, size, cfg) in &plan.jobs {
        handles.push(sim.submit(JobSpec::new(*app, *size, *cfg))?);
    }
    for _ in 0..plan.warm_steps {
        sim.step()?;
    }
    if let Some((j, mult)) = plan.straggler {
        if let Some(&h) = handles.get(j) {
            let _ = sim.inject_straggler(h, mult);
        }
    }
    if let Some((j, extra)) = plan.speculate {
        if let Some(&h) = handles.get(j) {
            let _ = sim.speculate(h, extra);
        }
    }
    Ok(())
}

fn fingerprint_of(sim: &mut NodeSim) -> Fingerprint {
    Fingerprint {
        now: sim.now().to_bits(),
        energy: sim.energy_j().to_bits(),
        outcomes: sim.take_finished().iter().map(outcome_bits).collect(),
    }
}

/// Drive the *optimized* executor through `plan`. `sim` may be a reused,
/// reset pool simulator — the whole point is that this must not matter.
fn run_new(sim: &mut NodeSim, plan: &Plan) -> Result<Fingerprint, ecost_sim::SimError> {
    setup_new(sim, plan)?;
    sim.run_to_completion()?;
    Ok(fingerprint_of(sim))
}

/// Drive the frozen reference through the same `plan`.
fn run_ref(plan: &Plan) -> Result<Fingerprint, ecost_sim::SimError> {
    let mut sim = ReferenceNodeSim::new(NodeSpec::atom_c2758(), FrameworkSpec::default());
    sim.set_slowdown(plan.slowdown)?;
    let mut handles = Vec::new();
    for (app, size, cfg) in &plan.jobs {
        handles.push(sim.submit(JobSpec::new(*app, *size, *cfg))?);
    }
    for _ in 0..plan.warm_steps {
        sim.step()?;
    }
    if let Some((j, mult)) = plan.straggler {
        if let Some(&h) = handles.get(j) {
            let _ = sim.inject_straggler(h, mult);
        }
    }
    if let Some((j, extra)) = plan.speculate {
        if let Some(&h) = handles.get(j) {
            let _ = sim.speculate(h, extra);
        }
    }
    sim.run_to_completion()?;
    Ok(Fingerprint {
        now: sim.now().to_bits(),
        energy: sim.energy_j().to_bits(),
        outcomes: sim.take_finished().iter().map(outcome_bits).collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random job mixes + fault plans: the refactored executor and the
    /// frozen reference agree bit-for-bit, and a *reused* (reset) simulator
    /// agrees with a fresh one — the pooling contract.
    #[test]
    fn refactored_executor_is_bit_identical_to_reference(plan in arb_plan()) {
        let reference = run_ref(&plan);

        let mut fresh = NodeSim::new(NodeSpec::atom_c2758(), FrameworkSpec::default());
        let new = run_new(&mut fresh, &plan);

        // Warm a pooled simulator with an unrelated run, reset it, replay.
        let mut pooled = NodeSim::new(NodeSpec::atom_c2758(), FrameworkSpec::default());
        pooled
            .submit(JobSpec::new(
                App::Wc,
                InputSize::Small,
                TuningConfig::hadoop_default(4),
            ))
            .expect("warm submit");
        pooled.run_to_completion().expect("warm run");
        pooled.reset();
        let replay = run_new(&mut pooled, &plan);

        match (reference, new, replay) {
            (Ok(r), Ok(n), Ok(p)) => {
                prop_assert_eq!(&r, &n, "fresh run diverged from reference");
                prop_assert_eq!(&n, &p, "pooled replay diverged from fresh run");
            }
            // Both arithmetics must fail the same way (e.g. non-convergence
            // on a pathological mix) — one failing while the other succeeds
            // is a divergence.
            (Err(re), Err(ne), Err(pe)) => {
                prop_assert_eq!(&re, &ne);
                prop_assert_eq!(&ne, &pe);
            }
            (r, n, p) => {
                panic!("divergent fallibility: reference={r:?} fresh={n:?} pooled={p:?}");
            }
        }
    }
}

/// A random (but always valid) multiclass AMVA problem: 1–3 classes over
/// 1–4 stations. Each class's first demand is forced positive so every
/// generated problem passes validation regardless of population.
fn arb_amva_problem() -> impl Strategy<Value = (Vec<ClassDemand>, usize)> {
    (
        1usize..=4,
        1usize..=3,
        prop::collection::vec(
            (
                0.0f64..8.0,
                0.0f64..5.0,
                prop::collection::vec(0.0f64..2.0, 4),
                0.05f64..2.0,
            ),
            3,
        ),
    )
        .prop_map(|(stations, nc, raw)| {
            let classes = raw
                .into_iter()
                .take(nc)
                .map(|(population, think_time_s, mut demands_s, d0)| {
                    demands_s.truncate(stations);
                    demands_s[0] = d0;
                    ClassDemand {
                        population,
                        think_time_s,
                        demands_s,
                    }
                })
                .collect();
            (classes, stations)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random point sets through `AmvaBatch` at every lane width 1..=16:
    /// throughputs, queues, per-station figures and iteration counts are
    /// bit-equal to a scalar `AmvaScratch::solve` of each point alone.
    /// Widths 1..=16 cover full f64x4 vector windows, every scalar-tail
    /// residue (1, 2, 3 mod 4) and the single-lane degenerate case.
    #[test]
    fn amva_batch_matches_scalar_at_every_lane_width(
        problems in prop::collection::vec(arb_amva_problem(), 1..=16)
    ) {
        for width in 1..=16usize {
            let mut batch = AmvaBatch::new();
            for window in problems.chunks(width) {
                let probs: Vec<(&[ClassDemand], usize)> = window
                    .iter()
                    .map(|(c, s)| (c.as_slice(), *s))
                    .collect();
                let batch_res = batch.solve(&probs);
                for (i, (classes, stations)) in window.iter().enumerate() {
                    let mut scalar = AmvaScratch::new();
                    match scalar.solve(classes, *stations) {
                        Ok(()) => {
                            let lane = batch.lane(i);
                            prop_assert_eq!(
                                lane.iterations(), scalar.iterations(),
                                "width {}", width
                            );
                            for j in 0..classes.len() {
                                prop_assert_eq!(
                                    lane.throughput()[j].to_bits(),
                                    scalar.throughput()[j].to_bits()
                                );
                                for s in 0..*stations {
                                    prop_assert_eq!(
                                        lane.queue(j, s).to_bits(),
                                        scalar.queue(j, s).to_bits()
                                    );
                                }
                            }
                            for s in 0..*stations {
                                prop_assert_eq!(
                                    lane.station_util()[s].to_bits(),
                                    scalar.station_util()[s].to_bits()
                                );
                                prop_assert_eq!(
                                    lane.station_queue()[s].to_bits(),
                                    scalar.station_queue()[s].to_bits()
                                );
                            }
                        }
                        Err(_) => {
                            // A failing point must fail the whole window
                            // (fail-fast), exactly as the scalar sweep would.
                            prop_assert!(batch_res.is_err());
                        }
                    }
                }
            }
        }
    }

    /// Random windows of co-located plans: `run_batch_to_completion` agrees
    /// bit-for-bit with running each simulator's scalar event loop alone —
    /// the contract the batched sweep drivers in EvalEngine rely on.
    #[test]
    fn batched_runner_matches_scalar_runner(
        plans in prop::collection::vec(arb_plan(), 1..=16)
    ) {
        let scalar: Vec<Result<Fingerprint, ecost_sim::SimError>> = plans
            .iter()
            .map(|plan| {
                let mut sim = NodeSim::new(NodeSpec::atom_c2758(), FrameworkSpec::default());
                run_new(&mut sim, plan)
            })
            .collect();

        let mut sims = Vec::new();
        let mut setup_failed = false;
        for plan in &plans {
            let mut sim = NodeSim::new(NodeSpec::atom_c2758(), FrameworkSpec::default());
            match setup_new(&mut sim, plan) {
                Ok(()) => sims.push(sim),
                Err(e) => {
                    // Setup failed before any batching: the scalar arm must
                    // have failed identically; nothing batched to compare.
                    match &scalar[sims.len()] {
                        Err(se) => prop_assert_eq!(se, &e),
                        Ok(_) => prop_assert!(
                            false,
                            "scalar setup succeeded, batched failed: {:?}", e
                        ),
                    }
                    setup_failed = true;
                }
            }
            if setup_failed {
                break;
            }
        }

        if !setup_failed {
            let mut scratch = BatchScratch::new();
            match run_batch_to_completion(&mut sims, &mut scratch) {
                Ok(()) => {
                    for (sim, want) in sims.iter_mut().zip(&scalar) {
                        match want {
                            Ok(fp) => prop_assert_eq!(fp, &fingerprint_of(sim)),
                            Err(e) => prop_assert!(
                                false,
                                "scalar failed ({:?}) but batched run succeeded", e
                            ),
                        }
                    }
                }
                Err(_) => {
                    // Fail-fast: some lane failed, so some scalar run failed.
                    prop_assert!(scalar.iter().any(|r| r.is_err()));
                }
            }
        }
    }
}

/// Relative tolerance for warm-started outer fixed points. The outer loop
/// breaks on a residual `< 1e-5` under 0.5 damping, so two runs entering
/// the basin from different seeds agree on θ and the slow factor to about
/// that order; downstream metrics (walls, energies) amplify it modestly.
/// 1e-3 gives two orders of headroom while still catching a warm start
/// that lands on a *different* fixed point.
const WARM_START_REL_TOL: f64 = 1e-3;

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= WARM_START_REL_TOL * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The batch-resident driver (lockstep outer rounds over a SoA window,
    /// epoch-stamped lane state, converged-lane compaction) is bit-identical
    /// to the frozen pre-resident lockstep driver for any window of up to
    /// 16 mixed-shape plans — the contract that keeps the `results/`
    /// goldens byte-stable with the resident path on by default.
    #[test]
    fn resident_windows_match_the_lockstep_driver(
        plans in prop::collection::vec(arb_plan(), 1..=16)
    ) {
        let mut lockstep_sims = Vec::new();
        let mut resident_sims = Vec::new();
        // A plan whose setup is rejected never reaches a window; skip the
        // case (both drivers would reject identically at setup time).
        let mut setup_ok = true;
        for plan in &plans {
            let mut a = NodeSim::new(NodeSpec::atom_c2758(), FrameworkSpec::default());
            let mut b = NodeSim::new(NodeSpec::atom_c2758(), FrameworkSpec::default());
            if setup_new(&mut a, plan).is_err() || setup_new(&mut b, plan).is_err() {
                setup_ok = false;
                break;
            }
            lockstep_sims.push(a);
            resident_sims.push(b);
        }
        if setup_ok {
            let mut lockstep_scratch = BatchScratch::new();
            lockstep_scratch.set_batch_resident(false);
            let mut resident_scratch = BatchScratch::new();
            resident_scratch.set_batch_resident(true);
            let lockstep = run_batch_to_completion(&mut lockstep_sims, &mut lockstep_scratch);
            let resident = run_batch_to_completion(&mut resident_sims, &mut resident_scratch);
            prop_assert_eq!(lockstep.is_ok(), resident.is_ok());
            if lockstep.is_ok() {
                for (a, b) in lockstep_sims.iter_mut().zip(resident_sims.iter_mut()) {
                    prop_assert_eq!(fingerprint_of(a), fingerprint_of(b));
                }
            }
        }
    }

    /// Warm-started windows (re-solves seeded from the previous converged
    /// (θ, slow) instead of (1, 1)) land on the same outer fixed point
    /// within [`WARM_START_REL_TOL`] for every window width 1..=16 — the
    /// property that licenses the opt-in `EvalEngine::with_warm_start` arm.
    #[test]
    fn warm_started_windows_converge_to_the_same_fixed_point(
        plans in prop::collection::vec(arb_plan(), 1..=16)
    ) {
        let mut cold_sims = Vec::new();
        let mut warm_sims = Vec::new();
        let mut setup_ok = true;
        for plan in &plans {
            let mut a = NodeSim::new(NodeSpec::atom_c2758(), FrameworkSpec::default());
            let mut b = NodeSim::new(NodeSpec::atom_c2758(), FrameworkSpec::default());
            if setup_new(&mut a, plan).is_err() || setup_new(&mut b, plan).is_err() {
                setup_ok = false;
                break;
            }
            cold_sims.push(a);
            warm_sims.push(b);
        }
        if setup_ok {
            let mut cold_scratch = BatchScratch::new();
            cold_scratch.set_batch_resident(true);
            cold_scratch.set_warm_start(false);
            let mut warm_scratch = BatchScratch::new();
            warm_scratch.set_batch_resident(true);
            warm_scratch.set_warm_start(true);
            let cold = run_batch_to_completion(&mut cold_sims, &mut cold_scratch);
            let warm = run_batch_to_completion(&mut warm_sims, &mut warm_scratch);
            prop_assert_eq!(cold.is_ok(), warm.is_ok());
            if cold.is_ok() {
                for (a, b) in cold_sims.iter_mut().zip(warm_sims.iter_mut()) {
                    prop_assert!(rel_close(a.now(), b.now()),
                        "makespan {} vs {}", a.now(), b.now());
                    prop_assert!(rel_close(a.energy_j(), b.energy_j()),
                        "energy {} vs {}", a.energy_j(), b.energy_j());
                    let (oa, ob) = (a.take_finished(), b.take_finished());
                    prop_assert_eq!(oa.len(), ob.len());
                    for (x, y) in oa.iter().zip(&ob) {
                        prop_assert_eq!(x.id, y.id);
                        prop_assert!(
                            rel_close(x.metrics.exec_time_s, y.metrics.exec_time_s),
                            "exec {} vs {}", x.metrics.exec_time_s, y.metrics.exec_time_s
                        );
                        prop_assert!(
                            rel_close(x.metrics.energy_j, y.metrics.energy_j),
                            "job energy {} vs {}", x.metrics.energy_j, y.metrics.energy_j
                        );
                    }
                }
            }
        }
    }
}

/// A *shape-uniform* batch problem: one (stations, class-count) pair per
/// case, shared by every lane, so `AmvaBatch` takes the lane-interleaved
/// SoA kernel — the path the f64x4 backends vectorize — rather than the
/// mixed-shape whole-lane rotation.
fn arb_uniform_batch() -> impl Strategy<Value = (Vec<Vec<ClassDemand>>, usize)> {
    (1usize..=4, 1usize..=3).prop_flat_map(|(stations, nc)| {
        let lane = prop::collection::vec(
            (
                0.0f64..8.0,
                0.0f64..5.0,
                prop::collection::vec(0.0f64..2.0, stations),
                0.05f64..2.0,
            ),
            nc,
        )
        .prop_map(move |raw| {
            raw.into_iter()
                .map(|(population, think_time_s, mut demands_s, d0)| {
                    demands_s[0] = d0;
                    ClassDemand {
                        population,
                        think_time_s,
                        demands_s,
                    }
                })
                .collect::<Vec<ClassDemand>>()
        });
        (prop::collection::vec(lane, 1..=16), Just(stations))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The detected SIMD backend is bit-identical to the pinned-scalar
    /// backend on shape-uniform windows of every width 1..=16 — the
    /// DESIGN.md §11 contract the vector kernel must uphold: same Result,
    /// same iteration counts, same bits in every throughput, queue and
    /// per-station figure.
    #[test]
    fn simd_backend_is_bit_identical_to_scalar_backend(
        (lanes, stations) in arb_uniform_batch()
    ) {
        let probs: Vec<(&[ClassDemand], usize)> = lanes
            .iter()
            .map(|c| (c.as_slice(), stations))
            .collect();

        let mut vec_batch = AmvaBatch::new();
        vec_batch.set_simd_backend(SimdBackend::detect());
        let mut sc_batch = AmvaBatch::new();
        sc_batch.set_simd_backend(SimdBackend::Scalar);

        let vr = vec_batch.solve(&probs);
        let sr = sc_batch.solve(&probs);
        prop_assert_eq!(vr.is_ok(), sr.is_ok(), "Result divergence");

        if vr.is_ok() {
            for (i, classes) in lanes.iter().enumerate() {
                let vl = vec_batch.lane(i);
                let sl = sc_batch.lane(i);
                prop_assert_eq!(vl.iterations(), sl.iterations(), "lane {}", i);
                for j in 0..classes.len() {
                    prop_assert_eq!(
                        vl.throughput()[j].to_bits(),
                        sl.throughput()[j].to_bits()
                    );
                    for s in 0..stations {
                        prop_assert_eq!(
                            vl.queue(j, s).to_bits(),
                            sl.queue(j, s).to_bits()
                        );
                    }
                }
                for s in 0..stations {
                    prop_assert_eq!(
                        vl.station_util()[s].to_bits(),
                        sl.station_util()[s].to_bits()
                    );
                    prop_assert_eq!(
                        vl.station_queue()[s].to_bits(),
                        sl.station_queue()[s].to_bits()
                    );
                }
            }
        }
    }
}

#[test]
fn sanity_single_plan_runs_and_matches() {
    let plan = Plan {
        jobs: vec![
            (App::Wc, InputSize::Small, TuningConfig::hadoop_default(4)),
            (App::St, InputSize::Small, TuningConfig::hadoop_default(4)),
        ],
        slowdown: 1.25,
        warm_steps: 2,
        straggler: Some((0, 1.7)),
        speculate: Some((1, 1)),
    };
    let r = run_ref(&plan).expect("reference run");
    let mut sim = NodeSim::new(NodeSpec::atom_c2758(), FrameworkSpec::default());
    let n = run_new(&mut sim, &plan).expect("new run");
    assert_eq!(r, n);
    assert!(!r.outcomes.is_empty());
}
