//! The batched event loop inherits the zero-allocation contract of
//! `zero_alloc.rs`: all batch working state lives in [`BatchScratch`]
//! (lane buffers grown at first use — the "one batch allocation at
//! pool-acquire time") and fixed stack arrays, so a *warm* batched run —
//! `run_batch_to_completion` over reset-and-resubmitted simulators —
//! performs zero heap allocations. Same counting `#[global_allocator]`
//! technique, and deliberately the only test in this binary so no sibling
//! test allocates concurrently.
//!
//! Submission is *allowed* to allocate (job stages, timeline reservation):
//! the contract covers the event loop, not setup.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ecost_apps::{App, InputSize};
use ecost_mapreduce::executor::NodeSim;
use ecost_mapreduce::{
    run_batch_to_completion, BatchScratch, FrameworkSpec, JobSpec, TuningConfig,
};
use ecost_sim::NodeSpec;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves or grows is an allocation for our purposes.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Distinct job mixes per lane so the batch exercises unequal lane shapes
/// (different class counts, different event counts, lanes retiring early).
fn submit_mixes(sims: &mut [NodeSim]) {
    let mixes: [&[App]; 4] = [
        &[App::Wc, App::St],
        &[App::Wc],
        &[App::St, App::St],
        &[App::Wc, App::Wc],
    ];
    for (sim, apps) in sims.iter_mut().zip(mixes) {
        for &app in apps {
            sim.submit(JobSpec::new(
                app,
                InputSize::Small,
                TuningConfig::hadoop_default(4),
            ))
            .expect("submit");
        }
    }
}

#[test]
fn batched_event_loop_is_allocation_free_after_warmup() {
    let mut sims: Vec<NodeSim> = (0..4)
        .map(|_| NodeSim::new(NodeSpec::atom_c2758(), FrameworkSpec::default()))
        .collect();
    let mut scratch = BatchScratch::new();

    // Warm-up: a full batched run grows every lane's buffers (AMVA lanes,
    // class vectors, finished capacity) to this mix's high-water mark.
    submit_mixes(&mut sims);
    run_batch_to_completion(&mut sims, &mut scratch).expect("warm-up run");

    // Pool-style reuse: reset and resubmit (setup may allocate)…
    for sim in &mut sims {
        sim.reset();
    }
    submit_mixes(&mut sims);

    // …then the warm batched event loop must not allocate at all.
    let before = ALLOCS.load(Ordering::SeqCst);
    run_batch_to_completion(&mut sims, &mut scratch).expect("batched event loop");
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "batched event loop allocated {} times after warm-up",
        after - before
    );

    // The loop really ran: every lane retired its jobs with sane outputs.
    for (sim, want) in sims.iter().zip([2usize, 1, 2, 2]) {
        assert_eq!(sim.finished().len(), want);
        assert!(sim.now() > 0.0);
        assert!(sim.energy_j() > 0.0);
    }
}
