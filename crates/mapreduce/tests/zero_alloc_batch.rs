//! The batched event loop inherits the zero-allocation contract of
//! `zero_alloc.rs`: all batch working state lives in [`BatchScratch`]
//! (lane buffers grown at first use — the "one batch allocation at
//! pool-acquire time") and fixed stack arrays, so a *warm* batched run —
//! `run_batch_to_completion` over reset-and-resubmitted simulators —
//! performs zero heap allocations. Same counting `#[global_allocator]`
//! technique, and deliberately the only test in this binary so no sibling
//! test allocates concurrently.
//!
//! Covers the SIMD batch path: after one warm-up at the widest window
//! (`MAX_BATCH_LANES` = 16 lanes), pack/round/compact must stay
//! allocation-free at *every* width 1..=16 — full vector windows, odd
//! scalar tails, and the mid-run compaction in between — on both the
//! detected vector backend and the pinned-scalar kernel.
//!
//! Submission is *allowed* to allocate (job stages, timeline reservation):
//! the contract covers the event loop, not setup.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ecost_apps::{App, InputSize};
use ecost_mapreduce::executor::NodeSim;
use ecost_mapreduce::{
    run_batch_to_completion, BatchScratch, FrameworkSpec, JobSpec, TuningConfig, MAX_BATCH_LANES,
};
use ecost_sim::{NodeSpec, SimdBackend};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves or grows is an allocation for our purposes.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Job mix for lane `i`: distinct shapes cycled across the window
/// (different class counts, different event counts, lanes retiring early).
fn mix_for(lane: usize) -> &'static [App] {
    const MIXES: [&[App]; 4] = [
        &[App::Wc, App::St],
        &[App::Wc],
        &[App::St, App::St],
        &[App::Wc, App::Wc],
    ];
    MIXES[lane % MIXES.len()]
}

fn submit_mixes(sims: &mut [NodeSim]) {
    for (lane, sim) in sims.iter_mut().enumerate() {
        for &app in mix_for(lane) {
            sim.submit(JobSpec::new(
                app,
                InputSize::Small,
                TuningConfig::hadoop_default(4),
            ))
            .expect("submit");
        }
    }
}

#[test]
fn batched_event_loop_is_allocation_free_after_warmup() {
    let mut sims: Vec<NodeSim> = (0..MAX_BATCH_LANES)
        .map(|_| NodeSim::new(NodeSpec::atom_c2758(), FrameworkSpec::default()))
        .collect();
    let mut scratch = BatchScratch::new();

    // Warm-up: one full-width batched run grows every lane's buffers
    // (AMVA lanes, SoA columns, class vectors, finished capacity) to the
    // widest window's high-water mark; narrower windows reuse capacity.
    submit_mixes(&mut sims);
    run_batch_to_completion(&mut sims, &mut scratch).expect("warm-up run");

    // The backend swap below must not cold-start lane state: the scalar
    // kernel shares every SoA buffer with the vector path.
    for backend in [SimdBackend::detect(), SimdBackend::Scalar] {
        scratch.set_simd_backend(backend);
        for width in 1..=MAX_BATCH_LANES {
            // The counting allocator is global, and the libtest *main*
            // thread lazily allocates its mpsc parking context the first
            // time it blocks in `Receiver::recv` waiting on this test —
            // at a scheduling-dependent moment that can land inside any
            // of these 32 timed windows. A real batch-path regression
            // allocates deterministically on every run, so retry once:
            // only a window that allocates on *both* attempts fails.
            let mut allocs = u64::MAX;
            for _attempt in 0..2 {
                // Pool-style reuse: reset and resubmit (setup may
                // allocate)…
                for sim in &mut sims[..width] {
                    sim.reset();
                }
                submit_mixes(&mut sims[..width]);

                // …then the warm batched event loop must not allocate.
                let before = ALLOCS.load(Ordering::SeqCst);
                run_batch_to_completion(&mut sims[..width], &mut scratch)
                    .expect("batched event loop");
                allocs = ALLOCS.load(Ordering::SeqCst) - before;
                if allocs == 0 {
                    break;
                }
            }

            assert_eq!(
                allocs, 0,
                "batched event loop allocated {allocs} times after \
                 warm-up on both attempts (backend {backend:?}, \
                 width {width})",
            );

            // The loop really ran: every lane retired its jobs.
            for (lane, sim) in sims[..width].iter().enumerate() {
                assert_eq!(sim.finished().len(), mix_for(lane).len());
                assert!(sim.now() > 0.0);
                assert!(sim.energy_j() > 0.0);
            }
        }
    }
}
