//! Event-calendar streaming driver for open arrival streams.
//!
//! The lockstep driver advances *every* node by the global minimum
//! time-to-next-event, so each event costs O(nodes) and each node's float
//! accumulators are chopped at every other node's stage boundaries. That
//! is exactly what the closed-workload goldens pin — and exactly what does
//! not scale to 100k arrivals on hundreds of nodes.
//!
//! This driver keeps a calendar instead:
//!
//! * a min-heap of **per-node next internal event** times (stage boundary
//!   or job completion), with a per-node generation stamp so a rescheduled
//!   node's stale heap entries are skipped on pop rather than removed;
//! * the sorted **pending arrivals** list;
//! * the sorted **fault schedule**.
//!
//! Each step pops the earliest time across the three sources and touches
//! only the nodes involved: due nodes are lazily synced from their own
//! clock up to the event time (integrating usage/energy over per-node
//! spans), completions free scheduler slots, and one dispatch pass over
//! the capacity set places queued work. Idle nodes are never visited, so
//! per-event cost scales with the nodes that actually changed — O(live
//! jobs) — not with cluster size or arrival history. Finished-job
//! outcomes are drained as they are observed, keeping resident state
//! proportional to live work.
//!
//! Results match the lockstep driver decision-for-decision on the same
//! stream (asserted by equivalence tests) but not bit-for-bit: the float
//! accumulation order differs, which is why the goldens stay on lockstep.

use super::{collect, sorted_pending, Prepared, StreamPolicy, StreamSim};
use crate::engine::{EvalEngine, EvalError};
use crate::mapping::{ClusterRun, FaultReport, FaultSetup};
use ecost_sim::FaultPlan;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

/// Tie window for "due at the same instant", matching the lockstep
/// driver's arrival/fault comparisons. The fleet's epoch barrier reuses
/// it for its arrival-drain rule (see [`CalendarShard`]).
pub(crate) const TIE_EPS: f64 = 1e-9;

/// Total-ordered event time for the calendar heap. The driver never
/// schedules a NaN (times come from finite node clocks plus finite
/// `time_to_next_event` deltas); `total_cmp` makes the ordering lawful
/// anyway.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stamp(f64);

impl Eq for Stamp {}

impl PartialOrd for Stamp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Stamp {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The calendar: per-node next-event heap plus generation stamps.
struct Calendar {
    /// Min-heap of `(event time, node, generation)`.
    heap: BinaryHeap<Reverse<(Stamp, usize, u64)>>,
    /// Current generation per node; heap entries with an older stamp are
    /// stale and skipped on pop.
    gen: Vec<u64>,
}

impl Calendar {
    fn new(n: usize) -> Calendar {
        Calendar {
            heap: BinaryHeap::new(),
            gen: vec![0; n],
        }
    }

    /// Earliest still-valid node event, discarding stale entries.
    fn peek(&mut self) -> Option<(f64, usize)> {
        while let Some(Reverse((s, i, g))) = self.heap.peek() {
            if self.gen[*i] == *g {
                return Some((s.0, *i));
            }
            self.heap.pop();
        }
        None
    }

    /// Drop node `i`'s scheduled event (if any) and schedule a fresh one
    /// at `at`.
    fn schedule(&mut self, i: usize, at: f64) {
        self.gen[i] += 1;
        self.heap.push(Reverse((Stamp(at), i, self.gen[i])));
    }

    /// Drop node `i`'s scheduled event without a replacement (node went
    /// idle or crashed).
    fn clear(&mut self, i: usize) {
        self.gen[i] += 1;
    }
}

/// Advance node `i` from its own clock up to `t`, stepping through every
/// internal event (stage boundary / completion) on the way so the rate
/// solution is re-solved exactly where the lockstep driver would re-solve
/// it. A node with no active jobs just fast-forwards its clock.
fn sync_node(sim: &mut StreamSim<'_>, i: usize, t: f64) -> Result<(), EvalError> {
    loop {
        let dt_target = t - sim.nodes[i].now();
        if dt_target <= 0.0 {
            return Ok(());
        }
        match sim.nodes[i].time_to_next_event()? {
            Some(dt_ev) if dt_ev <= dt_target + TIE_EPS => {
                sim.nodes[i].advance(dt_ev)?;
            }
            _ => {
                sim.nodes[i].advance(dt_target)?;
                return Ok(());
            }
        }
    }
}

/// Recompute node `i`'s membership in the capacity set (alive, a free
/// scheduler slot and at least one free core).
fn update_capacity(sim: &StreamSim<'_>, caps: &mut BTreeSet<usize>, i: usize) {
    let can = sim.alive[i] && sim.running[i].len() < 2 && sim.nodes[i].free_cores() >= 1;
    if can {
        caps.insert(i);
    } else {
        caps.remove(&i);
    }
}

/// Drain node `i`'s newly finished jobs: free their scheduler slots and
/// drop the outcomes (the stream drivers never read them, and keeping
/// them would grow per-node state with arrival history).
fn reap_finished(sim: &mut StreamSim<'_>, i: usize) -> usize {
    let done = sim.nodes[i].take_finished();
    if !done.is_empty() {
        sim.running[i].retain(|(h, _, _)| !done.iter().any(|o| o.id == *h));
    }
    done.len()
}

/// Refresh node `i`'s calendar entry from its next internal event.
fn reschedule(sim: &mut StreamSim<'_>, cal: &mut Calendar, i: usize) -> Result<(), EvalError> {
    match sim.nodes[i].time_to_next_event()? {
        Some(dt) => cal.schedule(i, sim.nodes[i].now() + dt),
        None => cal.clear(i),
    }
    Ok(())
}

/// A resumable event-calendar scheduler over one node set: the state of
/// [`run_stream_calendar`]'s event loop, factored out so a driver can
/// interleave *pushing arrivals* and *advancing the clock* instead of
/// providing the whole trace up front. This is what the fleet layer
/// shards: each shard owns one `CalendarShard` and advances it epoch by
/// epoch under a virtual-time barrier.
///
/// Contract (what keeps a single shard bit-identical to the monolithic
/// driver on the same arrival sequence):
///
/// * arrivals must be pushed in non-decreasing time order, and every
///   arrival with `at_s < horizon + TIE_EPS` must be pushed before
///   `advance(policy, horizon)` — the tie window matters: an event just
///   inside the horizon admits arrivals up to `TIE_EPS` past itself,
///   exactly like the monolithic loop;
/// * `advance` processes every event *strictly before* `horizon` and
///   stops; an event at exactly the horizon belongs to the next epoch
///   (by which time that epoch's arrivals are present);
/// * the t = 0 prologue (admit, fault, dispatch) runs lazily at the first
///   `advance`, so arrivals pushed before any advance are admitted the
///   way the monolithic prologue admits them;
/// * `finish` drains the remaining events (`horizon = ∞`), applies the
///   stranded-queue check, and fast-forwards idle nodes to the final
///   event time — deferring that check to `finish` is what lets a shard
///   sit idle mid-epoch without tripping it.
pub(crate) struct CalendarShard<'e> {
    sim: StreamSim<'e>,
    cal: Calendar,
    /// Nodes able to take work right now, in dispatch (index) order.
    caps: BTreeSet<usize>,
    /// Nodes whose event horizon changed this step and need rescheduling.
    touched: BTreeSet<usize>,
    /// Arrivals pushed but not yet admitted, soonest first.
    pending: VecDeque<(f64, Prepared)>,
    faults: FaultPlan,
    next_fault: usize,
    n: usize,
    /// Simulated clock: the time of the last processed event.
    t: f64,
    /// Whether the t = 0 prologue has run.
    primed: bool,
}

impl<'e> CalendarShard<'e> {
    /// Fresh shard over `n` nodes; `eligible_window` bounds the partner
    /// scan (see [`super::OPEN_ELIGIBLE_WINDOW`]).
    pub(crate) fn new(
        engine: &'e EvalEngine,
        n: usize,
        max_head_skips: u32,
        setup: &FaultSetup,
        eligible_window: usize,
    ) -> CalendarShard<'e> {
        setup.plan.record_schedule(engine.recorder());
        CalendarShard {
            sim: StreamSim::new(
                engine,
                n,
                setup.retry,
                max_head_skips,
                Some(eligible_window),
            ),
            cal: Calendar::new(n),
            caps: (0..n).collect(),
            touched: BTreeSet::new(),
            pending: VecDeque::new(),
            faults: setup.plan.clone(),
            next_fault: 0,
            n,
            t: 0.0,
            primed: false,
        }
    }

    /// Queue one arrival. Times must be finite, non-negative and
    /// non-decreasing across pushes (the stream is sorted by submission).
    pub(crate) fn push_arrival(&mut self, at_s: f64, job: Prepared) -> Result<(), EvalError> {
        if !at_s.is_finite() || at_s < 0.0 {
            return Err(EvalError::InvalidInput {
                what: "arrival times must be finite and non-negative",
            });
        }
        if self.pending.back().is_some_and(|(last, _)| at_s < *last) {
            return Err(EvalError::InvalidInput {
                what: "arrivals must be pushed in non-decreasing time order",
            });
        }
        self.pending.push_back((at_s, job));
        Ok(())
    }

    /// Jobs this shard is responsible for but has not finished: pushed
    /// and not yet admitted, waiting in the queue, or running on a node.
    /// The fleet router's least-outstanding policy reads this.
    pub(crate) fn outstanding(&self) -> usize {
        self.pending.len()
            + self.sim.queue.len()
            + self.sim.running.iter().map(Vec::len).sum::<usize>()
    }

    /// t = 0: admit, fault, dispatch — mirroring the lockstep prologue.
    fn prime(&mut self, policy: &dyn StreamPolicy) -> Result<(), EvalError> {
        self.primed = true;
        self.sim.admit_due(0.0, &mut self.pending);
        self.sim
            .apply_due_faults(0.0, &mut self.next_fault, &self.faults)?;
        for i in 0..self.n {
            update_capacity(&self.sim, &mut self.caps, i);
        }
        for i in self.caps.clone() {
            if self.sim.queue.is_empty() {
                break;
            }
            self.sim.dispatch(i, policy)?;
            update_capacity(&self.sim, &mut self.caps, i);
            self.touched.insert(i);
        }
        for i in std::mem::take(&mut self.touched) {
            reschedule(&mut self.sim, &mut self.cal, i)?;
        }
        Ok(())
    }

    /// Process every event strictly before `horizon`, then stop with the
    /// clock parked at the last processed event. `advance(∞)` drains the
    /// shard completely (modulo the stranded check, which [`Self::finish`]
    /// owns).
    pub(crate) fn advance(
        &mut self,
        policy: &dyn StreamPolicy,
        horizon: f64,
    ) -> Result<(), EvalError> {
        if !self.primed {
            self.prime(policy)?;
        }
        loop {
            // Earliest event across the three calendars. Faults, like in
            // the lockstep driver, cannot keep a finished cluster alive:
            // they are only considered while a node event or an arrival is
            // still due.
            let t_node = self.cal.peek();
            let t_arr = self.pending.front().map(|(at, _)| *at);
            let mut t_next = f64::INFINITY;
            if let Some((at, _)) = t_node {
                t_next = t_next.min(at);
            }
            if let Some(at) = t_arr {
                t_next = t_next.min(at);
            }
            if t_next.is_finite() {
                if let Some(ev) = self.faults.events().get(self.next_fault) {
                    t_next = t_next.min(ev.at_s);
                }
            }
            if t_next >= horizon {
                // Nothing left before the horizon (∞ = shard fully idle).
                return Ok(());
            }
            let t = t_next.max(self.t);
            self.t = t;
            self.sim.now = t;

            // 1. Arrivals due at t join the wait queue.
            let queued_before = self.sim.queue.len();
            self.sim.admit_due(t, &mut self.pending);
            let admitted = self.sim.queue.len() != queued_before;

            // 2. Faults due at t, each applied to a node synced to t.
            let mut faulted = false;
            {
                let evs = self.faults.events();
                let mut k = self.next_fault;
                while k < evs.len() && evs[k].at_s <= t + TIE_EPS {
                    if evs[k].node < self.n {
                        sync_node(&mut self.sim, evs[k].node, t)?;
                        self.touched.insert(evs[k].node);
                    }
                    k += 1;
                    faulted = true;
                }
            }
            if faulted {
                self.sim
                    .apply_due_faults(t, &mut self.next_fault, &self.faults)?;
            }

            // 3. Node events due at t: sync the node through its internal
            // events and reap any completions.
            let mut completed = false;
            while let Some((at, i)) = self.cal.peek() {
                if at > t + TIE_EPS {
                    break;
                }
                self.cal.heap.pop();
                sync_node(&mut self.sim, i, t)?;
                if reap_finished(&mut self.sim, i) > 0 {
                    completed = true;
                }
                self.touched.insert(i);
            }
            for &i in &self.touched {
                update_capacity(&self.sim, &mut self.caps, i);
            }

            // 4. One dispatch pass in node-index order over the capacity
            // set, only when this step could have changed what is
            // dispatchable.
            if (admitted || faulted || completed) && !self.sim.queue.is_empty() {
                for i in self.caps.clone() {
                    if self.sim.queue.is_empty() {
                        break;
                    }
                    sync_node(&mut self.sim, i, t)?;
                    self.sim.dispatch(i, policy)?;
                    update_capacity(&self.sim, &mut self.caps, i);
                    self.touched.insert(i);
                }
            }

            // 5. Refresh the calendar for every node touched this step.
            for i in std::mem::take(&mut self.touched) {
                reschedule(&mut self.sim, &mut self.cal, i)?;
            }
        }
    }

    /// Drain every remaining event, apply the stranded-queue check, and
    /// fold the shard into its outcome.
    pub(crate) fn finish(
        mut self,
        policy: &dyn StreamPolicy,
    ) -> Result<(ClusterRun, FaultReport), EvalError> {
        self.advance(policy, f64::INFINITY)?;
        if !self.sim.queue.is_empty() {
            return Err(if self.sim.alive.iter().any(|a| *a) {
                EvalError::Internal {
                    what: "jobs stranded in the scheduler queue",
                }
            } else {
                EvalError::Degraded {
                    what: "all nodes failed with jobs still queued",
                }
            });
        }
        // Fast-forward every node's clock to the final event time so the
        // makespan (max node clock) matches the lockstep driver; idle
        // advancement integrates no energy.
        for i in 0..self.n {
            sync_node(&mut self.sim, i, self.t)?;
        }
        let mut run = collect(self.sim.nodes, self.n);
        run.makespan_s += self.sim.report.retry_backoff_s;
        Ok((run, self.sim.report))
    }
}

/// Event-calendar counterpart of [`super::run_stream_open`]: same state
/// machine, same policies, same fault semantics, but per-event work
/// proportional to the touched nodes. `eligible_window` bounds the
/// partner scan (see [`super::OPEN_ELIGIBLE_WINDOW`]). One
/// [`CalendarShard`] fed the whole stream up front and drained in a
/// single `finish`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_stream_calendar(
    engine: &EvalEngine,
    n: usize,
    prepared: Vec<Prepared>,
    arrivals: Option<&[f64]>,
    max_head_skips: u32,
    policy: &dyn StreamPolicy,
    setup: &FaultSetup,
    eligible_window: usize,
) -> Result<(ClusterRun, FaultReport), EvalError> {
    let pending = sorted_pending(prepared, arrivals)?;
    let mut shard = CalendarShard::new(engine, n, max_head_skips, setup, eligible_window);
    for (at, job) in pending {
        shard.push_arrival(at, job)?;
    }
    shard.finish(policy)
}
