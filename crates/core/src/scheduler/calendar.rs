//! Event-calendar streaming driver for open arrival streams.
//!
//! The lockstep driver advances *every* node by the global minimum
//! time-to-next-event, so each event costs O(nodes) and each node's float
//! accumulators are chopped at every other node's stage boundaries. That
//! is exactly what the closed-workload goldens pin — and exactly what does
//! not scale to 100k arrivals on hundreds of nodes.
//!
//! This driver keeps a calendar instead:
//!
//! * a min-heap of **per-node next internal event** times (stage boundary
//!   or job completion), with a per-node generation stamp so a rescheduled
//!   node's stale heap entries are skipped on pop rather than removed;
//! * the sorted **pending arrivals** list;
//! * the sorted **fault schedule**.
//!
//! Each step pops the earliest time across the three sources and touches
//! only the nodes involved: due nodes are lazily synced from their own
//! clock up to the event time (integrating usage/energy over per-node
//! spans), completions free scheduler slots, and one dispatch pass over
//! the capacity set places queued work. Idle nodes are never visited, so
//! per-event cost scales with the nodes that actually changed — O(live
//! jobs) — not with cluster size or arrival history. Finished-job
//! outcomes are drained as they are observed, keeping resident state
//! proportional to live work.
//!
//! Results match the lockstep driver decision-for-decision on the same
//! stream (asserted by equivalence tests) but not bit-for-bit: the float
//! accumulation order differs, which is why the goldens stay on lockstep.

use super::{collect, sorted_pending, Prepared, StreamPolicy, StreamSim};
use crate::engine::{EvalEngine, EvalError};
use crate::mapping::{ClusterRun, FaultReport, FaultSetup};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// Tie window for "due at the same instant", matching the lockstep
/// driver's arrival/fault comparisons.
const TIE_EPS: f64 = 1e-9;

/// Total-ordered event time for the calendar heap. The driver never
/// schedules a NaN (times come from finite node clocks plus finite
/// `time_to_next_event` deltas); `total_cmp` makes the ordering lawful
/// anyway.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stamp(f64);

impl Eq for Stamp {}

impl PartialOrd for Stamp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Stamp {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The calendar: per-node next-event heap plus generation stamps.
struct Calendar {
    /// Min-heap of `(event time, node, generation)`.
    heap: BinaryHeap<Reverse<(Stamp, usize, u64)>>,
    /// Current generation per node; heap entries with an older stamp are
    /// stale and skipped on pop.
    gen: Vec<u64>,
}

impl Calendar {
    fn new(n: usize) -> Calendar {
        Calendar {
            heap: BinaryHeap::new(),
            gen: vec![0; n],
        }
    }

    /// Earliest still-valid node event, discarding stale entries.
    fn peek(&mut self) -> Option<(f64, usize)> {
        while let Some(Reverse((s, i, g))) = self.heap.peek() {
            if self.gen[*i] == *g {
                return Some((s.0, *i));
            }
            self.heap.pop();
        }
        None
    }

    /// Drop node `i`'s scheduled event (if any) and schedule a fresh one
    /// at `at`.
    fn schedule(&mut self, i: usize, at: f64) {
        self.gen[i] += 1;
        self.heap.push(Reverse((Stamp(at), i, self.gen[i])));
    }

    /// Drop node `i`'s scheduled event without a replacement (node went
    /// idle or crashed).
    fn clear(&mut self, i: usize) {
        self.gen[i] += 1;
    }
}

/// Advance node `i` from its own clock up to `t`, stepping through every
/// internal event (stage boundary / completion) on the way so the rate
/// solution is re-solved exactly where the lockstep driver would re-solve
/// it. A node with no active jobs just fast-forwards its clock.
fn sync_node(sim: &mut StreamSim<'_>, i: usize, t: f64) -> Result<(), EvalError> {
    loop {
        let dt_target = t - sim.nodes[i].now();
        if dt_target <= 0.0 {
            return Ok(());
        }
        match sim.nodes[i].time_to_next_event()? {
            Some(dt_ev) if dt_ev <= dt_target + TIE_EPS => {
                sim.nodes[i].advance(dt_ev)?;
            }
            _ => {
                sim.nodes[i].advance(dt_target)?;
                return Ok(());
            }
        }
    }
}

/// Recompute node `i`'s membership in the capacity set (alive, a free
/// scheduler slot and at least one free core).
fn update_capacity(sim: &StreamSim<'_>, caps: &mut BTreeSet<usize>, i: usize) {
    let can = sim.alive[i] && sim.running[i].len() < 2 && sim.nodes[i].free_cores() >= 1;
    if can {
        caps.insert(i);
    } else {
        caps.remove(&i);
    }
}

/// Drain node `i`'s newly finished jobs: free their scheduler slots and
/// drop the outcomes (the stream drivers never read them, and keeping
/// them would grow per-node state with arrival history).
fn reap_finished(sim: &mut StreamSim<'_>, i: usize) -> usize {
    let done = sim.nodes[i].take_finished();
    if !done.is_empty() {
        sim.running[i].retain(|(h, _, _)| !done.iter().any(|o| o.id == *h));
    }
    done.len()
}

/// Refresh node `i`'s calendar entry from its next internal event.
fn reschedule(sim: &mut StreamSim<'_>, cal: &mut Calendar, i: usize) -> Result<(), EvalError> {
    match sim.nodes[i].time_to_next_event()? {
        Some(dt) => cal.schedule(i, sim.nodes[i].now() + dt),
        None => cal.clear(i),
    }
    Ok(())
}

/// Event-calendar counterpart of [`super::run_stream_open`]: same state
/// machine, same policies, same fault semantics, but per-event work
/// proportional to the touched nodes. `eligible_window` bounds the
/// partner scan (see [`super::OPEN_ELIGIBLE_WINDOW`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_stream_calendar(
    engine: &EvalEngine,
    n: usize,
    prepared: Vec<Prepared>,
    arrivals: Option<&[f64]>,
    max_head_skips: u32,
    policy: &dyn StreamPolicy,
    setup: &FaultSetup,
    eligible_window: usize,
) -> Result<(ClusterRun, FaultReport), EvalError> {
    let faults = &setup.plan;
    let mut pending = sorted_pending(prepared, arrivals)?;
    if let Some((t0, _)) = pending.front() {
        if !t0.is_finite() || *t0 < 0.0 {
            return Err(EvalError::InvalidInput {
                what: "arrival times must be finite and non-negative",
            });
        }
    }
    if let Some((t_last, _)) = pending.back() {
        if !t_last.is_finite() {
            return Err(EvalError::InvalidInput {
                what: "arrival times must be finite and non-negative",
            });
        }
    }

    setup.plan.record_schedule(engine.recorder());
    let mut sim = StreamSim::new(
        engine,
        n,
        setup.retry,
        max_head_skips,
        Some(eligible_window),
    );
    let mut cal = Calendar::new(n);
    // Nodes able to take work right now, in dispatch (index) order.
    let mut caps: BTreeSet<usize> = (0..n).collect();
    // Nodes whose event horizon changed this step and need rescheduling.
    let mut touched: BTreeSet<usize> = BTreeSet::new();
    let mut next_fault = 0_usize;
    let mut t = 0.0_f64;

    // t = 0: admit, fault, dispatch — mirroring the lockstep prologue.
    sim.admit_due(t, &mut pending);
    sim.apply_due_faults(t, &mut next_fault, faults)?;
    for i in 0..n {
        update_capacity(&sim, &mut caps, i);
    }
    for i in caps.clone() {
        if sim.queue.is_empty() {
            break;
        }
        sim.dispatch(i, policy)?;
        update_capacity(&sim, &mut caps, i);
        touched.insert(i);
    }
    for i in std::mem::take(&mut touched) {
        reschedule(&mut sim, &mut cal, i)?;
    }

    loop {
        // Earliest event across the three calendars. Faults, like in the
        // lockstep driver, cannot keep a finished cluster alive: they are
        // only considered while a node event or an arrival is still due.
        let t_node = cal.peek();
        let t_arr = pending.front().map(|(at, _)| *at);
        let mut t_next = f64::INFINITY;
        if let Some((at, _)) = t_node {
            t_next = t_next.min(at);
        }
        if let Some(at) = t_arr {
            t_next = t_next.min(at);
        }
        if t_next.is_finite() {
            if let Some(ev) = faults.events().get(next_fault) {
                t_next = t_next.min(ev.at_s);
            }
        }
        if !t_next.is_finite() {
            if !sim.queue.is_empty() {
                return Err(if sim.alive.iter().any(|a| *a) {
                    EvalError::Internal {
                        what: "jobs stranded in the scheduler queue",
                    }
                } else {
                    EvalError::Degraded {
                        what: "all nodes failed with jobs still queued",
                    }
                });
            }
            break;
        }
        t = t_next.max(t);
        sim.now = t;

        // 1. Arrivals due at t join the wait queue.
        let queued_before = sim.queue.len();
        sim.admit_due(t, &mut pending);
        let admitted = sim.queue.len() != queued_before;

        // 2. Faults due at t, each applied to a node synced to t.
        let mut faulted = false;
        {
            let evs = faults.events();
            let mut k = next_fault;
            while k < evs.len() && evs[k].at_s <= t + TIE_EPS {
                if evs[k].node < n {
                    sync_node(&mut sim, evs[k].node, t)?;
                    touched.insert(evs[k].node);
                }
                k += 1;
                faulted = true;
            }
        }
        if faulted {
            sim.apply_due_faults(t, &mut next_fault, faults)?;
        }

        // 3. Node events due at t: sync the node through its internal
        // events and reap any completions.
        let mut completed = false;
        while let Some((at, i)) = cal.peek() {
            if at > t + TIE_EPS {
                break;
            }
            cal.heap.pop();
            sync_node(&mut sim, i, t)?;
            if reap_finished(&mut sim, i) > 0 {
                completed = true;
            }
            touched.insert(i);
        }
        for &i in &touched {
            update_capacity(&sim, &mut caps, i);
        }

        // 4. One dispatch pass in node-index order over the capacity set,
        // only when this step could have changed what is dispatchable.
        if (admitted || faulted || completed) && !sim.queue.is_empty() {
            for i in caps.clone() {
                if sim.queue.is_empty() {
                    break;
                }
                sync_node(&mut sim, i, t)?;
                sim.dispatch(i, policy)?;
                update_capacity(&sim, &mut caps, i);
                touched.insert(i);
            }
        }

        // 5. Refresh the calendar for every node touched this step.
        for i in std::mem::take(&mut touched) {
            reschedule(&mut sim, &mut cal, i)?;
        }
    }

    // Fast-forward every node's clock to the final event time so the
    // makespan (max node clock) matches the lockstep driver; idle
    // advancement integrates no energy.
    for i in 0..n {
        sync_node(&mut sim, i, t)?;
    }
    let mut run = collect(sim.nodes, n);
    run.makespan_s += sim.report.retry_backoff_s;
    Ok((run, sim.report))
}
