//! The streaming cluster schedulers: shared state machine plus two drivers.
//!
//! The §5 controller is a *streaming* scheduler: jobs enter a wait queue,
//! every node hosts up to two co-located jobs, and a policy
//! ([`StreamPolicy`]) decides partners and knob settings at each dispatch
//! point. This module owns that machinery, extracted from `mapping` so the
//! policies (what to run) and the event loop (when to run it) evolve
//! independently. Two drivers share the [`StreamSim`] state machine:
//!
//! * **lockstep** ([`run_stream_open`]) — the original closed-workload
//!   driver: every global step advances *all* nodes by the minimum
//!   time-to-next-event. Per-event cost is O(nodes), and the floating-point
//!   accumulation order (each node integrates usage/energy over exactly the
//!   same `dt` chunks) is part of the `results/` golden contract. All §8
//!   policy entry points use this driver; it must stay bit-identical.
//! * **event calendar** ([`calendar`]) — the open-cluster driver: per-node
//!   completion events live in a binary-heap calendar, arrivals and faults
//!   in sorted lists, and each event syncs *only the touched nodes* to the
//!   event time. Per-event cost scales with live jobs, not with cluster
//!   size or arrival history, which is what makes 100k-arrival traces on
//!   hundreds of nodes tractable. Nodes integrate over per-node `dt`
//!   chunks, so results agree with lockstep to float accumulation order
//!   (equivalence tests pin the decisions and tight tolerances), but not
//!   bit-for-bit — which is exactly why the lockstep driver survives.
//!
//! The wait-queue fairness rules (head reservation, small-job
//! leap-forward) are identical under both drivers; the calendar driver
//! additionally bounds each partner scan to the first
//! [`OPEN_ELIGIBLE_WINDOW`] queue positions so a deep backlog cannot make
//! a single dispatch O(queue length).

pub mod calendar;

pub(crate) use calendar::{run_stream_calendar, CalendarShard};

use crate::engine::{EvalEngine, EvalError, RetryPolicy};
use crate::features::AppSignature;
use crate::mapping::{ClusterRun, FaultReport, FaultSetup};
use crate::queue::WaitQueue;
use ecost_apps::AppClass;
use ecost_mapreduce::executor::NodeSim;
use ecost_mapreduce::{JobSpec, TuningConfig};
use ecost_sim::{FaultKind, FaultPlan};
use ecost_telemetry::{Event, Gauge};
use std::collections::VecDeque;

/// Partner-scan window for the calendar driver: dispatch considers at most
/// this many queue positions (head first). Deep backlogs keep O(1) dispatch
/// cost; the head reservation and leap-forward rules apply unchanged within
/// the window. The lockstep driver scans the whole queue (window = ∞), as
/// the closed workloads are small and the goldens pin that behaviour.
pub const OPEN_ELIGIBLE_WINDOW: usize = 64;

/// A workload job prepared for cluster scheduling: its learning-period
/// signature and behaviour class.
#[derive(Clone)]
pub(crate) struct Prepared {
    pub(crate) sig: AppSignature,
    pub(crate) class: AppClass,
}

/// How a streaming scheduler picks partners and configurations. Implemented
/// by ECoST (classifier + decision tree + STP) and by the oracle-streamed
/// upper bound (perfect pairing + perfect tuning).
pub(crate) trait StreamPolicy {
    /// Given the job that anchors the node (already running or just taken
    /// from the head) and the eligible queue candidates, return the position
    /// *within `candidates`* of the chosen partner and the full pair
    /// configuration (`.a` for the anchor, `.b` for the partner).
    /// `now` is the scheduler's simulated clock, used to stamp any
    /// degradation events the policy records.
    fn pick(
        &self,
        now: f64,
        anchor: &Prepared,
        candidates: &[&Prepared],
        cores: u32,
    ) -> Result<(usize, ecost_mapreduce::PairConfig), EvalError>;

    /// Configuration for a job running alone (tail of the workload).
    fn solo_config(&self, now: f64, job: &Prepared, cores: u32) -> Result<TuningConfig, EvalError>;
}

/// Mutable state of one streaming-scheduler run: the nodes, what runs
/// where, which nodes are still alive, the wait queue and the fault /
/// degradation counters. Shared by both drivers.
pub(crate) struct StreamSim<'e> {
    pub(crate) engine: &'e EvalEngine,
    pub(crate) cores: u32,
    pub(crate) retry: RetryPolicy,
    /// The scheduler's simulated clock, mirrored from the event loop so
    /// telemetry records carry simulated (never wall) timestamps.
    pub(crate) now: f64,
    /// Queue-depth gauge (`scheduler.queue_depth`), sampled at every
    /// dispatch decision point.
    pub(crate) queue_depth: Gauge,
    pub(crate) nodes: Vec<NodeSim>,
    pub(crate) running: Vec<Vec<(ecost_mapreduce::JobHandle, Prepared, u32)>>,
    pub(crate) alive: Vec<bool>,
    pub(crate) queue: WaitQueue<Prepared>,
    pub(crate) report: FaultReport,
    /// Partner-scan window: `None` scans the whole queue (lockstep),
    /// `Some(w)` the first `w` positions (calendar).
    pub(crate) eligible_window: Option<usize>,
}

impl<'e> StreamSim<'e> {
    /// Fresh scheduler state over `n` telemetry-tagged nodes.
    pub(crate) fn new(
        engine: &'e EvalEngine,
        n: usize,
        retry: RetryPolicy,
        max_head_skips: u32,
        eligible_window: Option<usize>,
    ) -> StreamSim<'e> {
        let tb = engine.testbed();
        StreamSim {
            engine,
            cores: tb.node.cores,
            retry,
            now: 0.0,
            queue_depth: engine.recorder().metrics().gauge("scheduler.queue_depth"),
            nodes: (0..n)
                .map(|i| {
                    let mut node = NodeSim::new(tb.node.clone(), tb.fw.clone());
                    node.set_telemetry(engine.recorder().clone(), 0, i as u32);
                    node
                })
                .collect(),
            running: vec![Vec::new(); n],
            alive: vec![true; n],
            queue: WaitQueue::new(max_head_skips),
            report: FaultReport::default(),
            eligible_window,
        }
    }

    /// The eligible partner candidates under this driver's scan window.
    fn eligible_slice(&self) -> Vec<(usize, AppClass)> {
        match self.eligible_window {
            None => self.queue.eligible(),
            Some(w) => self.queue.eligible_windowed(w),
        }
    }

    /// Admit every pending job that has arrived by `now` into the wait
    /// queue (FIFO among simultaneous arrivals — `pending` is sorted).
    pub(crate) fn admit_due(&mut self, now: f64, pending: &mut VecDeque<(f64, Prepared)>) {
        while pending.front().is_some_and(|(t, _)| *t <= now + 1e-9) {
            if let Some((_, p)) = pending.pop_front() {
                self.engine
                    .recorder()
                    .emit(now, None, None, || Event::JobSubmit {
                        app: p.sig.profile.name.to_string(),
                        class: class_char(p.class),
                    });
                // "Small job" for the leap-forward rule = short estimated
                // runtime; the learning-period execution time is the estimate.
                let est = p.sig.profile_time_s;
                let class = p.class;
                self.queue.push(p, class, est);
            }
        }
    }

    /// Run `op` under the retry policy, folding the retry count and the
    /// accrued simulated backoff into the fault report.
    fn with_retry_tracked<T>(
        &mut self,
        mut op: impl FnMut() -> Result<T, EvalError>,
    ) -> Result<T, EvalError> {
        let before = self.engine.stats().retries;
        let res = self.engine.with_retry(&self.retry, self.now, &mut op);
        self.report.retries += self.engine.stats().retries.saturating_sub(before);
        match res {
            Ok((value, backoff_s)) => {
                self.report.retry_backoff_s += backoff_s;
                Ok(value)
            }
            Err(e) => Err(e),
        }
    }

    /// Clone the payloads behind `eligible`'s queue indices, so partner
    /// selection can run without holding a borrow of the queue.
    fn eligible_payloads(
        &self,
        eligible: &[(usize, AppClass)],
    ) -> Result<Vec<Prepared>, EvalError> {
        eligible
            .iter()
            .map(|(qi, _)| {
                self.queue
                    .peek(*qi)
                    .map(|q| q.payload.clone())
                    .ok_or(EvalError::Internal {
                        what: "eligible index out of queue range",
                    })
            })
            .collect()
    }

    /// Sample the wait-queue depth into the gauge and (when recording)
    /// the `scheduler.queue_depth` counter track.
    fn sample_queue_depth(&self) {
        let depth = self.queue.len() as u64;
        self.queue_depth.sample(depth);
        self.engine
            .recorder()
            .counter_sample(self.now, "scheduler.queue_depth", depth);
    }

    /// Record a placement decision for `job` on node `i`.
    fn emit_place(&self, i: usize, job: &Prepared, mappers: u32) {
        self.engine
            .recorder()
            .emit(self.now, Some(i as u32), None, || Event::JobPlace {
                app: job.sig.profile.name.to_string(),
                mappers,
            });
    }

    /// Place `job` alone on node `i` at its solo configuration, degrading
    /// to the untuned default when the policy cannot provide one.
    fn submit_solo(
        &mut self,
        i: usize,
        policy: &dyn StreamPolicy,
        job: Prepared,
    ) -> Result<(), EvalError> {
        let cores = self.cores;
        let now = self.now;
        let solo = match self.with_retry_tracked(|| policy.solo_config(now, &job, cores)) {
            Ok(cfg) => cfg,
            Err(e) if e.is_degradable() => {
                self.engine.note_fallback(now, "config");
                self.report.config_fallbacks += 1;
                TuningConfig::hadoop_default(cores)
            }
            Err(e) => return Err(e),
        };
        let h = self.nodes[i].submit(JobSpec::from_profile(
            job.sig.profile.clone(),
            job.sig.input_mb,
            solo,
        ))?;
        self.emit_place(i, &job, solo.mappers);
        self.running[i].push((h, job, solo.mappers));
        Ok(())
    }

    /// Fill node `i` up to two jobs, degrading to solo placement when the
    /// policy cannot produce a pairing.
    pub(crate) fn dispatch(
        &mut self,
        i: usize,
        policy: &dyn StreamPolicy,
    ) -> Result<(), EvalError> {
        self.sample_queue_depth();
        while self.running[i].len() < 2 && !self.queue.is_empty() && self.nodes[i].free_cores() >= 1
        {
            if self.running[i].is_empty() {
                // Empty node: honour FIFO for the first job…
                let Some(first) = self.queue.take(0) else {
                    break;
                };
                let first = first.payload;
                let eligible = self.eligible_slice();
                if eligible.is_empty() {
                    // Lone tail job: the whole node, solo-tuned.
                    self.submit_solo(i, policy, first)?;
                    continue;
                }
                let cands_owned = self.eligible_payloads(&eligible)?;
                let cands: Vec<&Prepared> = cands_owned.iter().collect();
                let cores = self.cores;
                let now = self.now;
                match self.with_retry_tracked(|| policy.pick(now, &first, &cands, cores)) {
                    Ok((pick, cfg)) => {
                        let Some(second) = self.queue.take(eligible[pick].0) else {
                            return Err(EvalError::Internal {
                                what: "picked partner vanished from the queue",
                            });
                        };
                        let second = second.payload;
                        let ha = self.nodes[i].submit(JobSpec::from_profile(
                            first.sig.profile.clone(),
                            first.sig.input_mb,
                            cfg.a,
                        ))?;
                        let hb = self.nodes[i].submit(JobSpec::from_profile(
                            second.sig.profile.clone(),
                            second.sig.input_mb,
                            cfg.b,
                        ))?;
                        self.emit_place(i, &first, cfg.a.mappers);
                        self.emit_place(i, &second, cfg.b.mappers);
                        self.running[i].push((ha, first, cfg.a.mappers));
                        self.running[i].push((hb, second, cfg.b.mappers));
                    }
                    Err(e) if e.is_degradable() => {
                        // No viable partner or pair config: the anchor runs
                        // solo rather than the whole schedule aborting.
                        self.engine.note_fallback(now, "pairing");
                        self.report.solo_fallbacks += 1;
                        self.submit_solo(i, policy, first)?;
                    }
                    Err(e) => return Err(e),
                }
            } else {
                // One job running: pick a partner for it.
                let eligible = self.eligible_slice();
                if eligible.is_empty() {
                    break;
                }
                let cands_owned = self.eligible_payloads(&eligible)?;
                let cands: Vec<&Prepared> = cands_owned.iter().collect();
                let anchor = self.running[i][0].1.clone();
                let cores = self.cores;
                let now = self.now;
                match self.with_retry_tracked(|| policy.pick(now, &anchor, &cands, cores)) {
                    Ok((pick, cfg)) => {
                        let Some(partner) = self.queue.take(eligible[pick].0) else {
                            return Err(EvalError::Internal {
                                what: "picked partner vanished from the queue",
                            });
                        };
                        let partner = partner.payload;
                        let free = self.nodes[i].free_cores();
                        let mut bcfg = cfg.b;
                        bcfg.mappers = bcfg.mappers.min(free).max(1);
                        let h = self.nodes[i].submit(JobSpec::from_profile(
                            partner.sig.profile.clone(),
                            partner.sig.input_mb,
                            bcfg,
                        ))?;
                        self.emit_place(i, &partner, bcfg.mappers);
                        self.running[i].push((h, partner, bcfg.mappers));
                    }
                    Err(e) if e.is_degradable() => {
                        // The running job continues alone; candidates wait
                        // for a node that can host them.
                        self.engine.note_fallback(now, "pairing");
                        self.report.solo_fallbacks += 1;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// Apply every fault event due at or before `now`. Crashed nodes stop
    /// accepting work and their in-flight jobs are re-queued at the head;
    /// slowdowns compound; stragglers hit the longest-running job and are
    /// answered with a speculative backup on spare mapper slots.
    pub(crate) fn apply_due_faults(
        &mut self,
        now: f64,
        next: &mut usize,
        faults: &FaultPlan,
    ) -> Result<(), EvalError> {
        while *next < faults.len() && faults.events()[*next].at_s <= now + 1e-9 {
            let ev = faults.events()[*next];
            *next += 1;
            let i = ev.node;
            if i >= self.nodes.len() || !self.alive[i] {
                continue; // fault against a missing or already-dead node
            }
            let kind_name = match ev.kind {
                FaultKind::NodeCrash => "node-crash",
                FaultKind::NodeSlowdown { .. } => "node-slowdown",
                FaultKind::Straggler { .. } => "straggler",
            };
            self.engine.note_fault(now, kind_name);
            match ev.kind {
                FaultKind::NodeCrash => {
                    self.alive[i] = false;
                    self.report.crashes += 1;
                    let displaced = self.nodes[i].crash();
                    // Reverse order so the first-submitted displaced job
                    // lands back at the queue head.
                    for (h, p, _) in self.running[i].drain(..).rev() {
                        if displaced.contains(&h) {
                            self.report.requeued_jobs += 1;
                            self.engine.recorder().emit(now, Some(i as u32), None, || {
                                Event::Requeue {
                                    app: p.sig.profile.name.to_string(),
                                }
                            });
                            let est = p.sig.profile_time_s;
                            let class = p.class;
                            self.queue.push_front(p, class, est);
                        }
                    }
                }
                FaultKind::NodeSlowdown { factor } => {
                    self.report.slowdowns += 1;
                    let compound = self.nodes[i].slowdown() * factor;
                    self.nodes[i].set_slowdown(compound)?;
                }
                FaultKind::Straggler { multiplier } => {
                    if let Some(&h) = self.nodes[i].active_handles().first() {
                        self.report.stragglers += 1;
                        self.nodes[i].inject_straggler(h, multiplier)?;
                        let spare = self.nodes[i].free_cores().min(2);
                        if spare > 0 && self.nodes[i].speculate(h, spare)? {
                            self.report.speculations += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Single-letter form of a behaviour class, for telemetry payloads.
pub(crate) fn class_char(class: AppClass) -> char {
    match class {
        AppClass::C => 'C',
        AppClass::H => 'H',
        AppClass::I => 'I',
        AppClass::M => 'M',
    }
}

/// Fold a finished cluster into its makespan/energy outcome.
pub(crate) fn collect(nodes: Vec<NodeSim>, n: usize) -> ClusterRun {
    ClusterRun {
        makespan_s: nodes.iter().map(NodeSim::now).fold(0.0, f64::max),
        energy_dyn_j: nodes.iter().map(NodeSim::energy_j).sum(),
        nodes: n,
    }
}

/// Sort `prepared` by arrival time into the pending list (stable, so FIFO
/// order survives among simultaneous arrivals). `None` arrivals submit
/// everything at t = 0.
pub(crate) fn sorted_pending(
    prepared: Vec<Prepared>,
    arrivals: Option<&[f64]>,
) -> Result<VecDeque<(f64, Prepared)>, EvalError> {
    let times: Vec<f64> = match arrivals {
        Some(t) => {
            if t.len() != prepared.len() {
                return Err(EvalError::InvalidInput {
                    what: "need one arrival time per job",
                });
            }
            t.to_vec()
        }
        None => vec![0.0; prepared.len()],
    };
    let mut v: Vec<(f64, Prepared)> = times.into_iter().zip(prepared).collect();
    v.sort_by(|a, b| a.0.total_cmp(&b.0));
    Ok(v.into())
}

/// Shared streaming driver: two jobs per node, replacements admitted the
/// moment a slot frees, decisions delegated to `policy`. Fault-free.
pub(crate) fn run_stream(
    engine: &EvalEngine,
    n: usize,
    prepared: Vec<Prepared>,
    policy: &dyn StreamPolicy,
) -> Result<ClusterRun, EvalError> {
    let setup = FaultSetup {
        plan: FaultPlan::none(),
        retry: RetryPolicy::none(),
    };
    run_stream_open(engine, n, prepared, None, 2, policy, &setup).map(|(run, _)| run)
}

/// As [`run_stream`] but with explicit arrival times (open-queue
/// operation), a configurable head-reservation allowance and an injected
/// [`FaultSetup`]. `arrivals[i]` is the submission time of `prepared[i]`;
/// `None` submits everything at t = 0.
///
/// This is the **lockstep** driver: every step advances all nodes by the
/// global minimum time-to-next-event, which fixes the floating-point
/// accumulation order the `results/` goldens are pinned to. Keep changes
/// here bit-preserving; open-cluster scale work belongs in [`calendar`].
///
/// With [`FaultPlan::none`] and [`RetryPolicy::none`] the event loop is
/// bit-identical to the fault-free scheduler: no fault event ever caps a
/// time step, and the accrued retry backoff added to the makespan is
/// exactly `0.0`.
pub(crate) fn run_stream_open(
    engine: &EvalEngine,
    n: usize,
    prepared: Vec<Prepared>,
    arrivals: Option<&[f64]>,
    max_head_skips: u32,
    policy: &dyn StreamPolicy,
    setup: &FaultSetup,
) -> Result<(ClusterRun, FaultReport), EvalError> {
    let faults = &setup.plan;
    // Jobs not yet arrived, soonest first.
    let mut pending = sorted_pending(prepared, arrivals)?;

    setup.plan.record_schedule(engine.recorder());
    let mut sim = StreamSim::new(engine, n, setup.retry, max_head_skips, None);
    let mut next_fault = 0_usize;
    let mut now = 0.0_f64;

    sim.admit_due(now, &mut pending);
    sim.apply_due_faults(now, &mut next_fault, faults)?;
    for i in 0..n {
        if sim.alive[i] {
            sim.dispatch(i, policy)?;
        }
    }
    loop {
        let mut any_active = false;
        let mut dt = f64::INFINITY;
        for node in &mut sim.nodes {
            if let Some(t) = node.time_to_next_event()? {
                any_active = true;
                dt = dt.min(t);
            }
        }
        // Next arrival can preempt the next completion; an idle cluster
        // fast-forwards to it.
        if let Some((t_arrive, _)) = pending.front() {
            dt = dt.min((t_arrive - now).max(0.0));
            any_active = true;
        }
        // A pending fault interrupts the step — but cannot keep a finished
        // cluster alive: faults against an idle cluster are no-ops.
        if any_active {
            if let Some(ev) = faults.events().get(next_fault) {
                dt = dt.min((ev.at_s - now).max(0.0));
            }
        }
        if !any_active {
            if !sim.queue.is_empty() {
                return Err(if sim.alive.iter().any(|a| *a) {
                    EvalError::Internal {
                        what: "jobs stranded in the scheduler queue",
                    }
                } else {
                    EvalError::Degraded {
                        what: "all nodes failed with jobs still queued",
                    }
                });
            }
            break;
        }
        debug_assert!(dt.is_finite());
        for node in &mut sim.nodes {
            node.advance(dt)?;
        }
        now += dt;
        sim.now = now;
        sim.admit_due(now, &mut pending);
        sim.apply_due_faults(now, &mut next_fault, faults)?;
        for i in 0..n {
            let finished: Vec<ecost_mapreduce::JobHandle> =
                sim.nodes[i].finished().iter().map(|o| o.id).collect();
            sim.running[i].retain(|(h, _, _)| !finished.contains(h));
            if sim.alive[i] {
                sim.dispatch(i, policy)?;
            }
        }
    }
    // Retries cost simulated seconds: the accrued backoff lengthens the
    // makespan (exactly 0.0 on the fault-free path).
    let mut run = collect(sim.nodes, n);
    run.makespan_s += sim.report.retry_backoff_s;
    Ok((run, sim.report))
}
