//! LkT-STP — the lookup-table self-tuning technique (Fig 6 of the paper).
//!
//! Step 0 builds the database (done by [`crate::database::ConfigDatabase`]);
//! at decision time the incoming pair's signatures are matched against the
//! stored training pairs' signatures, and the nearest entry's stored optimal
//! configuration is returned verbatim. Cheap to evaluate, inflexible — the
//! paper's §7.2 trade-off discussion carries over directly.

use crate::database::ConfigDatabase;
use crate::engine::EvalError;
use crate::features::AppSignature;
use crate::stp::Stp;
use ecost_mapreduce::PairConfig;
use ecost_ml::LookupTable;

/// The lookup-table technique.
#[derive(Debug, Clone)]
pub struct LktStp {
    table: LookupTable<PairConfig>,
}

impl LktStp {
    /// Build from the database. Each pair entry is inserted under both
    /// signature orders so retrieval is orientation-free.
    pub fn from_database(db: &ConfigDatabase) -> LktStp {
        let mut table = LookupTable::new();
        for e in &db.pairs {
            table.insert(key(&e.sig_a, &e.sig_b), e.config);
            table.insert(key(&e.sig_b, &e.sig_a), e.config.swapped());
        }
        table.build();
        LktStp { table }
    }

    /// Entries stored (2× the database pairs).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

fn key(a: &[f64; 9], b: &[f64; 9]) -> Vec<f64> {
    let mut k = Vec::with_capacity(18);
    k.extend_from_slice(a);
    k.extend_from_slice(b);
    k
}

impl Stp for LktStp {
    fn name(&self) -> String {
        "LkT".into()
    }

    fn choose(
        &self,
        a: &AppSignature,
        b: &AppSignature,
        cores: u32,
    ) -> Result<PairConfig, EvalError> {
        if self.table.is_empty() {
            return Err(EvalError::NoCandidates {
                what: "empty LkT lookup table",
            });
        }
        let (cfg, _dist) = self.table.query(&key(&a.key(), &b.key()));
        let mut cfg = *cfg;
        // The stored config always fits the training node; clamp defensively
        // for smaller targets.
        if cfg.cores() > cores {
            let scale = f64::from(cores) / f64::from(cfg.cores());
            cfg.a.mappers = ((f64::from(cfg.a.mappers) * scale).floor() as u32).max(1);
            cfg.b.mappers = (cores - cfg.a.mappers)
                .max(1)
                .min(cores.saturating_sub(1).max(1));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EvalEngine;
    use crate::features::profile_catalog_app;
    use ecost_apps::{App, InputSize};

    /// Database with a single wc-st pair; LkT must reproduce the stored
    /// config for the training pair itself.
    #[test]
    fn retrieves_training_pair_config_exactly() {
        let eng = EvalEngine::atom();
        let size = InputSize::Small;
        let mb = size.per_node_mb();
        let wc = profile_catalog_app(&eng, App::Wc, size, 0.0, 0).unwrap();
        let st = profile_catalog_app(&eng, App::St, size, 0.0, 0).unwrap();
        let best = eng
            .best_pair(App::Wc.profile(), mb, App::St.profile(), mb)
            .unwrap();
        let db = ConfigDatabase {
            pairs: vec![crate::database::PairEntry {
                a: App::Wc,
                b: App::St,
                size,
                classes: ecost_apps::class::ClassPair::new(App::Wc.class(), App::St.class()),
                sig_a: wc.key(),
                sig_b: st.key(),
                config: best.config,
                edp_wall: best.metrics.edp_wall(eng.idle_w()),
            }],
            solos: vec![],
            signatures: vec![],
            build_seconds: 0.0,
        };
        let lkt = LktStp::from_database(&db);
        assert_eq!(lkt.len(), 2);
        // Exact signature → exact config, in both orders.
        assert_eq!(lkt.choose(&wc, &st, 8).unwrap(), best.config);
        assert_eq!(lkt.choose(&st, &wc, 8).unwrap(), best.config.swapped());
        assert_eq!(lkt.name(), "LkT");
    }

    #[test]
    fn empty_table_is_an_error_not_a_panic() {
        let eng = EvalEngine::atom();
        let sig = profile_catalog_app(&eng, App::Wc, InputSize::Small, 0.0, 0).unwrap();
        let db = ConfigDatabase {
            pairs: vec![],
            solos: vec![],
            signatures: vec![],
            build_seconds: 0.0,
        };
        let lkt = LktStp::from_database(&db);
        assert!(lkt.is_empty());
        assert!(matches!(
            lkt.choose(&sig, &sig, 8),
            Err(EvalError::NoCandidates { .. })
        ));
    }
}
