//! Training-set construction for the MLM-STP models.
//!
//! For every same-size training pair, the full pair-configuration sweep
//! (served by the shared [`EvalEngine`] memo, so the database build and
//! the COLAO baseline already paid for it) is sampled into
//! `(signatures ‖ knobs) → ln(wall EDP)` rows, grouped by class pair — the
//! paper builds "a machine learning model … for each specific class"
//! (Fig 7, step 0B).
//!
//! The target is log-EDP: EDP spans orders of magnitude across the knob
//! space, and all three model families train on the same transformed target
//! (the argmin is invariant to the monotone transform). Reported errors are
//! computed back in EDP space, as the paper's APE is.

use crate::engine::{EvalEngine, EvalError};
use ecost_apps::class::ClassPair;
use ecost_apps::{App, InputSize, TRAINING_APPS};
use ecost_ml::Dataset;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

use super::{encode_columns, encode_row};

/// Per-class-pair training sets.
pub type TrainingData = HashMap<ClassPair, Dataset>;

/// Build the training data over the full training catalog.
///
/// * `sig_of(app, size)` supplies the 9-dimensional signature key measured during
///   the learning period (normally from the database).
/// * `configs_per_pair` sub-samples each (pair, size) sweep — the full 11 200
///   points × both orders would be needlessly slow for the MLP; ~1500 is
///   plenty. Pass `usize::MAX` for no sub-sampling.
pub fn build_training_data(
    engine: &EvalEngine,
    sig_of: &dyn Fn(App, InputSize) -> [f64; 9],
    configs_per_pair: usize,
    seed: u64,
) -> Result<TrainingData, EvalError> {
    build_training_data_subset(
        engine,
        &TRAINING_APPS,
        &InputSize::ALL,
        sig_of,
        configs_per_pair,
        seed,
    )
}

/// [`build_training_data`] over an explicit subset of apps × sizes.
pub fn build_training_data_subset(
    engine: &EvalEngine,
    apps: &[App],
    sizes: &[InputSize],
    sig_of: &dyn Fn(App, InputSize) -> [f64; 9],
    configs_per_pair: usize,
    seed: u64,
) -> Result<TrainingData, EvalError> {
    let idle = engine.idle_w();
    let mut data: TrainingData = HashMap::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    for (i, &a) in apps.iter().enumerate() {
        for &b in &apps[i..] {
            let classes = ClassPair::new(a.class(), b.class());
            for &size in sizes {
                let mb = size.per_node_mb();
                let sweep = engine.pair_sweep(a.profile(), mb, b.profile(), mb)?;
                // The engine normalises order; its swap flag says whether
                // the stored runs' `.a` side is `b`, so signatures line up
                // with configs.
                let (sig_first, sig_second) = if sweep.swapped() {
                    (sig_of(b, size), sig_of(a, size))
                } else {
                    (sig_of(a, size), sig_of(b, size))
                };
                let runs = sweep.runs();
                let mut idx: Vec<usize> = (0..runs.len()).collect();
                if configs_per_pair < idx.len() {
                    idx.shuffle(&mut rng);
                    idx.truncate(configs_per_pair);
                }
                let ds = data
                    .entry(classes)
                    .or_insert_with(|| Dataset::new(encode_columns(), "ln_edp_wall"));
                for &k in &idx {
                    let run = &runs[k];
                    let y = run.metrics.edp_wall(idle).ln();
                    ds.push(
                        encode_row(&sig_first, run.config.a, &sig_second, run.config.b),
                        y,
                    );
                    // Mirror: models must be orientation-insensitive.
                    ds.push(
                        encode_row(&sig_second, run.config.b, &sig_first, run.config.a),
                        y,
                    );
                }
            }
        }
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small smoke test on one pair via a hand-rolled sig function; the full
    /// build is exercised by the experiment binaries.
    #[test]
    fn builds_rows_for_every_training_class_pair() {
        let eng = EvalEngine::atom();
        let sig = |_: App, _: InputSize| [1.0; 9];
        // Restrict cost: sample only 5 configs per (pair, size).
        let data = build_training_data(&eng, &sig, 5, 1).expect("training build");
        // 5 training apps cover all 10 unordered class pairs? wc(C), st(I),
        // gp(H), ts(H), fp(M): C-C (wc,wc), I-I, H-H, M-M, C-I, C-H, C-M,
        // I-H, I-M, H-M — all 10.
        assert_eq!(data.len(), 10);
        for (cp, ds) in &data {
            assert!(!ds.is_empty(), "{cp}");
            assert_eq!(ds.num_features(), 17);
            // Mirrored rows: even count.
            assert_eq!(ds.len() % 2, 0);
            assert!(ds.y.iter().all(|y| y.is_finite()));
        }
    }
}
