//! Training-set construction for the MLM-STP models.
//!
//! For every same-size training pair, the full pair-configuration sweep
//! (from the shared [`SweepCache`]) is sampled into `(signatures ‖ knobs) →
//! ln(wall EDP)` rows, grouped by class pair — the paper builds "a machine
//! learning model … for each specific class" (Fig 7, step 0B).
//!
//! The target is log-EDP: EDP spans orders of magnitude across the knob
//! space, and all three model families train on the same transformed target
//! (the argmin is invariant to the monotone transform). Reported errors are
//! computed back in EDP space, as the paper's APE is.

use crate::features::Testbed;
use crate::oracle::SweepCache;
use ecost_apps::class::ClassPair;
use ecost_apps::{App, InputSize, TRAINING_APPS};
use ecost_ml::Dataset;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

use super::{encode_columns, encode_row};

/// Per-class-pair training sets.
pub type TrainingData = HashMap<ClassPair, Dataset>;

/// Build the training data.
///
/// * `sig_of(app, size)` supplies the 9-dimensional signature key measured during
///   the learning period (normally from the database).
/// * `configs_per_pair` sub-samples each (pair, size) sweep — the full 11 200
///   points × both orders would be needlessly slow for the MLP; ~1500 is
///   plenty. Pass `usize::MAX` for no sub-sampling.
pub fn build_training_data(
    tb: &Testbed,
    cache: &SweepCache,
    sig_of: &dyn Fn(App, InputSize) -> [f64; 9],
    configs_per_pair: usize,
    seed: u64,
) -> TrainingData {
    let idle = tb.idle_w();
    let mut data: TrainingData = HashMap::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    for (i, &a) in TRAINING_APPS.iter().enumerate() {
        for &b in &TRAINING_APPS[i..] {
            let classes = ClassPair::new(a.class(), b.class());
            for size in InputSize::ALL {
                let mb = size.per_node_mb();
                let sweep = cache.pair_sweep(tb, a.profile(), mb, b.profile(), mb);
                // The cache normalises order; determine whether (a,b) was
                // stored swapped so signatures line up with configs.
                let stored_swapped = (b.name(), mb as u64) < (a.name(), mb as u64);
                let (sig_first, sig_second) = if stored_swapped {
                    (sig_of(b, size), sig_of(a, size))
                } else {
                    (sig_of(a, size), sig_of(b, size))
                };
                let mut idx: Vec<usize> = (0..sweep.len()).collect();
                if configs_per_pair < idx.len() {
                    idx.shuffle(&mut rng);
                    idx.truncate(configs_per_pair);
                }
                let ds = data
                    .entry(classes)
                    .or_insert_with(|| Dataset::new(encode_columns(), "ln_edp_wall"));
                for &k in &idx {
                    let run = &sweep[k];
                    let y = run.metrics.edp_wall(idle).ln();
                    ds.push(
                        encode_row(&sig_first, run.config.a, &sig_second, run.config.b),
                        y,
                    );
                    // Mirror: models must be orientation-insensitive.
                    ds.push(
                        encode_row(&sig_second, run.config.b, &sig_first, run.config.a),
                        y,
                    );
                }
            }
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small smoke test on one pair via a hand-rolled sig function; the full
    /// build is exercised by the experiment binaries.
    #[test]
    fn builds_rows_for_every_training_class_pair() {
        let tb = Testbed::atom();
        let cache = SweepCache::new();
        let sig = |_: App, _: InputSize| [1.0; 9];
        // Restrict cost: sample only 5 configs per (pair, size).
        let data = build_training_data(&tb, &cache, &sig, 5, 1);
        // 5 training apps cover all 10 unordered class pairs? wc(C), st(I),
        // gp(H), ts(H), fp(M): C-C (wc,wc), I-I, H-H, M-M, C-I, C-H, C-M,
        // I-H, I-M, H-M — all 10.
        assert_eq!(data.len(), 10);
        for (cp, ds) in &data {
            assert!(!ds.is_empty(), "{cp}");
            assert_eq!(ds.num_features(), 17);
            // Mirrored rows: even count.
            assert_eq!(ds.len() % 2, 0);
            assert!(ds.y.iter().all(|y| y.is_finite()));
        }
    }
}
