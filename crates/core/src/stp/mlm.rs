//! MLM-STP — the machine-learning self-tuning technique (Fig 7).
//!
//! One regressor per class pair predicts ln(wall EDP) from the pair's
//! signatures and a candidate knob setting; at decision time the incoming
//! applications are classified, the class pair's model is evaluated over
//! **all permutations of the tunable parameters** (exactly the paper's step
//! 4) and the argmin is returned.

use crate::classify::KnnAppClassifier;
use crate::engine::EvalError;
use crate::features::AppSignature;
use crate::stp::{encode_row, Stp};
use ecost_apps::class::ClassPair;
use ecost_mapreduce::PairConfig;
use ecost_ml::model::Regressor;
use std::collections::HashMap;

/// The model-based technique, generic over the regressor family.
pub struct MlmStp<M: Regressor> {
    /// Per-class-pair EDP models.
    models: HashMap<ClassPair, M>,
    /// Classifier used to route an incoming pair to its model.
    classifier: KnnAppClassifier,
    /// Display name ("LR", "REPTree", "MLP").
    model_name: &'static str,
}

impl<M: Regressor> MlmStp<M> {
    /// Assemble from fitted per-class-pair models and a fitted classifier.
    pub fn new(
        models: HashMap<ClassPair, M>,
        classifier: KnnAppClassifier,
        model_name: &'static str,
    ) -> MlmStp<M> {
        MlmStp {
            models,
            classifier,
            model_name,
        }
    }

    /// Train one model per class pair with the supplied constructor.
    pub fn train(
        training: &super::training::TrainingData,
        classifier: KnnAppClassifier,
        model_name: &'static str,
        make: impl Fn() -> M,
    ) -> MlmStp<M> {
        let mut models = HashMap::new();
        for (cp, ds) in training {
            let mut m = make();
            m.fit(ds);
            models.insert(*cp, m);
        }
        MlmStp::new(models, classifier, model_name)
    }

    /// The model that would be used for a given class pair (falls back to
    /// the lexically first model if the exact pair was never trained).
    /// Fails when no model was trained at all.
    pub fn model_for(&self, cp: ClassPair) -> Result<&M, EvalError> {
        if let Some(m) = self.models.get(&cp) {
            return Ok(m);
        }
        self.models
            .iter()
            .min_by_key(|(k, _)| (k.first, k.second))
            .map(|(_, m)| m)
            .ok_or(EvalError::NoCandidates {
                what: "no trained class-pair model",
            })
    }

    /// Predict the EDP (natural-log space) of one candidate configuration.
    pub fn predict_ln_edp(
        &self,
        cp: ClassPair,
        sig_a: &[f64; 9],
        cfg: PairConfig,
        sig_b: &[f64; 9],
    ) -> Result<f64, EvalError> {
        Ok(self
            .model_for(cp)?
            .predict(&encode_row(sig_a, cfg.a, sig_b, cfg.b)))
    }
}

impl<M: Regressor> Stp for MlmStp<M> {
    fn name(&self) -> String {
        self.model_name.into()
    }

    fn choose(
        &self,
        a: &AppSignature,
        b: &AppSignature,
        cores: u32,
    ) -> Result<PairConfig, EvalError> {
        let ca = self.classifier.classify(&a.features);
        let cb = self.classifier.classify(&b.features);
        let cp = ClassPair::new(ca, cb);
        let model = self.model_for(cp)?;
        let (sa, sb) = (a.key(), b.key());

        // Predict every point of the knob space once…
        let space = PairConfig::space(cores);
        let preds: Vec<f64> = space
            .iter()
            .map(|cfg| model.predict(&encode_row(&sa, cfg.a, &sb, cfg.b)))
            .collect();
        if preds.iter().any(|p| !p.is_finite()) {
            // A NaN/∞ EDP prediction would win or lose the argmin
            // arbitrarily; the caller degrades to the class-default
            // configuration instead.
            return Err(EvalError::NonFinite {
                what: "MLM EDP prediction",
            });
        }
        // …then pick by neighbourhood-averaged score: a candidate's value is
        // its prediction averaged with its axis-neighbours in the
        // (f, h, m)² grid. Piecewise-constant models (trees) otherwise hand
        // the argmin to the most optimistic corner of a leaf plateau;
        // averaging makes the selection prefer configurations that are
        // predicted good *and* sit in predicted-good regions.
        let key = |cfg: &PairConfig| {
            (
                cfg.a.freq.index() as u8,
                cfg.a.block.index() as u8,
                cfg.a.mappers as u8,
                cfg.b.freq.index() as u8,
                cfg.b.block.index() as u8,
                cfg.b.mappers as u8,
            )
        };
        let index: std::collections::HashMap<_, usize> = space
            .iter()
            .enumerate()
            .map(|(i, cfg)| (key(cfg), i))
            .collect();
        let mut best: Option<(usize, f64)> = None;
        for (i, cfg) in space.iter().enumerate() {
            let k = key(cfg);
            let mut sum = preds[i];
            let mut n = 1.0;
            for dim in 0..6 {
                for delta in [-1i16, 1] {
                    let mut nk = [
                        k.0 as i16, k.1 as i16, k.2 as i16, k.3 as i16, k.4 as i16, k.5 as i16,
                    ];
                    nk[dim] += delta;
                    let nkey = (
                        nk[0] as u8,
                        nk[1] as u8,
                        nk[2] as u8,
                        nk[3] as u8,
                        nk[4] as u8,
                        nk[5] as u8,
                    );
                    if nk.iter().all(|v| *v >= 0) {
                        if let Some(&j) = index.get(&nkey) {
                            sum += preds[j];
                            n += 1.0;
                        }
                    }
                }
            }
            let score = sum / n;
            if best.is_none_or(|(_, b)| score < b) {
                best = Some((i, score));
            }
        }
        let (i, _) = best.ok_or(EvalError::EmptySweep {
            what: "pair config space",
        })?;
        Ok(space[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EvalEngine;
    use crate::features::profile_catalog_app;
    use ecost_apps::{App, AppClass, InputSize};
    use ecost_ml::{Dataset, LinearRegression};

    fn dummy_classifier(engine: &EvalEngine) -> KnnAppClassifier {
        let sigs: Vec<(crate::features::AppSignature, AppClass)> = [App::Wc, App::St]
            .iter()
            .map(|&a| {
                (
                    profile_catalog_app(engine, a, InputSize::Small, 0.0, 0).unwrap(),
                    a.class(),
                )
            })
            .collect();
        crate::classify::KnnAppClassifier::fit(&sigs)
    }

    #[test]
    fn argmin_respects_core_budget_and_learned_preference() {
        let eng = EvalEngine::atom();
        // Synthetic training data: EDP grows with total mappers — the model
        // should then prefer the smallest partition.
        let mut ds = Dataset::new(crate::stp::encode_columns(), "ln_edp_wall");
        let sig = [1.0; 9];
        for cfg in PairConfig::space(8).into_iter().step_by(7) {
            let y = f64::from(cfg.cores());
            ds.push(encode_row(&sig, cfg.a, &sig, cfg.b), y);
        }
        let mut models = HashMap::new();
        let mut lr = LinearRegression::new();
        lr.fit(&ds);
        models.insert(ClassPair::new(AppClass::C, AppClass::I), lr);
        let stp = MlmStp::new(models, dummy_classifier(&eng), "LR");

        let a = profile_catalog_app(&eng, App::Wc, InputSize::Small, 0.0, 0).unwrap();
        let b = profile_catalog_app(&eng, App::St, InputSize::Small, 0.0, 0).unwrap();
        let cfg = stp.choose(&a, &b, 8).unwrap();
        assert!(cfg.cores() <= 8);
        assert_eq!(cfg.cores(), 2, "LR learned EDP ∝ mappers → minimum split");
        assert_eq!(stp.name(), "LR");
    }

    #[test]
    fn falls_back_to_some_model_for_unseen_class_pair() {
        let eng = EvalEngine::atom();
        let mut ds = Dataset::new(crate::stp::encode_columns(), "ln_edp_wall");
        let sig = [0.0; 9];
        let cfgs: Vec<PairConfig> = PairConfig::space(8).into_iter().step_by(101).collect();
        for cfg in cfgs {
            ds.push(encode_row(&sig, cfg.a, &sig, cfg.b), 1.0);
        }
        let mut lr = LinearRegression::new();
        lr.fit(&ds);
        let mut models = HashMap::new();
        models.insert(ClassPair::new(AppClass::M, AppClass::M), lr);
        let stp = MlmStp::new(models, dummy_classifier(&eng), "LR");
        // C-I pair routed to the only (M-M) model without panicking.
        let a = profile_catalog_app(&eng, App::Wc, InputSize::Small, 0.0, 0).unwrap();
        let b = profile_catalog_app(&eng, App::St, InputSize::Small, 0.0, 0).unwrap();
        let cfg = stp.choose(&a, &b, 8).unwrap();
        assert!(cfg.cores() <= 8);
    }

    #[test]
    fn no_models_at_all_is_an_error() {
        let eng = EvalEngine::atom();
        let stp: MlmStp<LinearRegression> =
            MlmStp::new(HashMap::new(), dummy_classifier(&eng), "LR");
        let a = profile_catalog_app(&eng, App::Wc, InputSize::Small, 0.0, 0).unwrap();
        assert!(matches!(
            stp.choose(&a, &a, 8),
            Err(EvalError::NoCandidates { .. })
        ));
    }
}
