//! Self-Tuning Prediction (STP) — §6 of the paper.
//!
//! Given the counter signatures of two applications about to be co-located,
//! an STP implementation returns the pair configuration (frequency, block
//! size, mappers for each) predicted to minimise EDP — *without* running the
//! brute-force search the COLAO oracle needs.
//!
//! * [`LktStp`] — the lookup-table technique (Fig 6): retrieve the stored
//!   optimal configuration of the database pair whose signatures best
//!   resemble the incoming pair.
//! * [`MlmStp`] — the machine-learning technique (Fig 7): select the class
//!   pair's EDP model, evaluate it over every permutation of the tuning
//!   parameters, and return the argmin.

mod lkt;
mod mlm;
pub mod training;

pub use lkt::LktStp;
pub use mlm::MlmStp;

use crate::engine::EvalError;
use crate::features::AppSignature;
use ecost_mapreduce::{PairConfig, TuningConfig};

/// A self-tuning prediction technique.
///
/// `Send + Sync` is a supertrait so an [`crate::mapping::EcostContext`]
/// holding `&dyn Stp` can be shared across the fleet's parallel shard
/// lanes; every technique is fitted up front and read-only at decision
/// time, so this costs implementations nothing.
pub trait Stp: Send + Sync {
    /// Technique name as used in the paper's tables ("LkT", "LR", "REPTree",
    /// "MLP").
    fn name(&self) -> String;

    /// Predict the EDP-optimal configuration for co-locating `a` and `b`.
    /// The returned `config.a` applies to `a`, `config.b` to `b`, and the
    /// combined mapper count never exceeds `cores`. Fails (rather than
    /// panicking) when the technique has nothing to predict from — an empty
    /// lookup table or no trained model.
    fn choose(
        &self,
        a: &AppSignature,
        b: &AppSignature,
        cores: u32,
    ) -> Result<PairConfig, EvalError>;
}

/// Feature encoding shared by the ML models.
///
/// The full counter signature is used to *route* a pair to its class-pair
/// model (Fig 7's step 3); the model itself sees only continuous,
/// physically meaningful coordinates, so it interpolates to unknown
/// applications instead of fingerprint-matching the training ones:
///
/// per side — `ln(profile time)`, `ln(input MB)`, `LLC MPKI` (memory
/// pressure within the class), then the knobs `f GHz`, `log2(h MB)`, `m`
/// and the derived terms `1/m`, `f·m` (compute time ∝ 1/(f·m), per-task
/// overhead ∝ 1/m); final shared column `m_a + m_b` (the allocation total
/// behind the idle-amortisation term). 17 columns in all.
pub fn encode_row(
    sig_a: &[f64; 9],
    cfg_a: TuningConfig,
    sig_b: &[f64; 9],
    cfg_b: TuningConfig,
) -> Vec<f64> {
    fn side(row: &mut Vec<f64>, sig: &[f64; 9], cfg: TuningConfig) {
        row.push(sig[7]); // ln profile time
        row.push(sig[8]); // ln input MB
        row.push(sig[6]); // LLC MPKI
        let m = f64::from(cfg.mappers);
        let f = cfg.freq.ghz();
        row.push(f);
        row.push(cfg.block.mb().log2());
        row.push(m);
        row.push(1.0 / m);
        row.push(f * m);
    }
    let mut row = Vec::with_capacity(17);
    side(&mut row, sig_a, cfg_a);
    side(&mut row, sig_b, cfg_b);
    row.push(f64::from(cfg_a.mappers + cfg_b.mappers));
    row
}

/// Column names matching [`encode_row`].
pub fn encode_columns() -> Vec<String> {
    let mut cols = Vec::with_capacity(17);
    for side in ["a", "b"] {
        for name in [
            "ln_profile_time",
            "ln_input_mb",
            "llc_mpki",
            "freq_ghz",
            "log2_block",
            "mappers",
            "inv_mappers",
            "freq_x_mappers",
        ] {
            cols.push(format!("{side}_{name}"));
        }
    }
    cols.push("total_mappers".into());
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecost_mapreduce::BlockSize;
    use ecost_sim::Frequency;

    #[test]
    fn encoding_matches_layout() {
        let sig = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let cfg = TuningConfig {
            freq: Frequency::F1_6,
            block: BlockSize::B512,
            mappers: 3,
        };
        let row = encode_row(&sig, cfg, &sig, cfg);
        assert_eq!(row.len(), 17);
        assert_eq!(row[0], 8.0); // ln profile time slot (sig[7])
        assert_eq!(row[1], 9.0); // ln input slot (sig[8])
        assert_eq!(row[2], 7.0); // LLC MPKI slot (sig[6])
        assert_eq!(row[3], 1.6); // frequency
        assert_eq!(row[4], 9.0); // log2(512)
        assert_eq!(row[5], 3.0);
        assert!((row[6] - 1.0 / 3.0).abs() < 1e-12);
        assert!((row[7] - 4.8).abs() < 1e-12);
        assert_eq!(row[8], 8.0); // second side starts
        assert_eq!(*row.last().expect("non-empty"), 6.0);
        assert_eq!(encode_columns().len(), 17);
    }
}
