//! # ecost-core — the ECoST controller
//!
//! The paper's contribution (§5–§8), implemented over the simulation
//! substrate:
//!
//! * [`features`] — the "learning period": profile an incoming application at
//!   a reference configuration and collect its counter signature;
//! * [`classify`] — Step 1 of ECoST: label the unknown application
//!   C/H/I/M, either with the paper's threshold rules (§6.1) or k-NN;
//! * [`engine`] — the evaluation engine: the one fallible, memoized
//!   simulation service (solo runs, pair sweeps, per-point pair metrics)
//!   behind the oracle, the STPs, the strategies and the cluster scheduler;
//! * [`oracle`] — the brute-force queries (§4's 84 480-run study): best
//!   standalone config (160 points), best co-located config (11 200 points),
//!   all answered from the engine's shared memo;
//! * [`database`] — §6.2's database of best configurations for the known
//!   (training) applications;
//! * [`stp`] — the self-tuning prediction techniques: LkT-STP (lookup table)
//!   and MLM-STP (LR / REPTree / MLP per class pair, argmin over the config
//!   space);
//! * [`pairing`] — Fig 5's priority ranking and Fig 4's pairing decision
//!   tree;
//! * [`queue`] — the FIFO wait queue with head reservation and small-job
//!   leap-forward;
//! * [`strategies`] — ILAO and COLAO (§4.2);
//! * [`scheduler`] — the streaming cluster schedulers: the lockstep
//!   discrete-event driver behind the §8 policies and the event-calendar
//!   driver for open arrival streams (binary-heap of per-node completion
//!   events, per-event cost scaling with live jobs);
//! * [`fleet`] — N independent calendar-scheduler shards (own node sets,
//!   bounded engines, optional service fronts) behind a deterministic
//!   arrival router with a virtual-time epoch barrier;
//! * [`mapping`] — the §8 cluster mapping policies (SM, MNM1, MNM2, SNM,
//!   CBM, PTM, ECoST, UB) over a discrete-event cluster of `NodeSim`s;
//! * [`report`] — plain-text table rendering for the experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod database;
pub mod engine;
pub mod features;
pub mod fleet;
pub mod mapping;
pub mod oracle;
pub mod pairing;
pub mod queue;
pub mod report;
pub mod scheduler;
pub mod service;
pub mod stp;
pub mod strategies;

pub use classify::{KnnAppClassifier, RuleClassifier};
pub use database::ConfigDatabase;
pub use engine::{CacheBudget, EngineStats, EvalEngine, EvalError, PhaseBreakdown, RetryPolicy};
pub use features::{profile_app, AppSignature, Testbed, REFERENCE_CONFIG};
pub use fleet::{run_fleet, FleetConfig, FleetRun, FleetService, RoutePolicy, ShardReport};
pub use mapping::{
    ConfiguredPolicy, EcostContext, FaultReport, FaultSetup, FaultedRun, MappingPolicy,
    OpenArrival, OpenOptions,
};
pub use pairing::PairingPolicy;
pub use queue::WaitQueue;
pub use scheduler::OPEN_ELIGIBLE_WINDOW;
pub use service::{
    BreakerConfig, BreakerState, DecidedConfig, DecisionCosts, DecisionTier, ServiceConfig,
    ServiceError, ServiceReport, TuningDecision, TuningRequest, TuningService,
};
pub use stp::{LktStp, MlmStp, Stp};
