//! # ecost-core — the ECoST controller
//!
//! The paper's contribution (§5–§8), implemented over the simulation
//! substrate:
//!
//! * [`features`] — the "learning period": profile an incoming application at
//!   a reference configuration and collect its counter signature;
//! * [`classify`] — Step 1 of ECoST: label the unknown application
//!   C/H/I/M, either with the paper's threshold rules (§6.1) or k-NN;
//! * [`oracle`] — the brute-force machinery behind everything offline: best
//!   standalone config (160 points), best co-located config (11 200 points),
//!   memoised full sweeps shared by the database, the baselines and the
//!   upper bounds;
//! * [`database`] — §6.2's database of best configurations for the known
//!   (training) applications;
//! * [`stp`] — the self-tuning prediction techniques: LkT-STP (lookup table)
//!   and MLM-STP (LR / REPTree / MLP per class pair, argmin over the config
//!   space);
//! * [`pairing`] — Fig 5's priority ranking and Fig 4's pairing decision
//!   tree;
//! * [`queue`] — the FIFO wait queue with head reservation and small-job
//!   leap-forward;
//! * [`strategies`] — ILAO and COLAO (§4.2);
//! * [`mapping`] — the §8 cluster mapping policies (SM, MNM1, MNM2, SNM,
//!   CBM, PTM, ECoST, UB) over a discrete-event cluster of `NodeSim`s;
//! * [`report`] — plain-text table rendering for the experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod database;
pub mod features;
pub mod mapping;
pub mod oracle;
pub mod pairing;
pub mod queue;
pub mod report;
pub mod stp;
pub mod strategies;

pub use classify::{KnnAppClassifier, RuleClassifier};
pub use database::ConfigDatabase;
pub use features::{profile_app, AppSignature, Testbed, REFERENCE_CONFIG};
pub use oracle::SweepCache;
pub use pairing::PairingPolicy;
pub use queue::WaitQueue;
pub use stp::{LktStp, MlmStp, Stp};
