//! Step 1 of ECoST (§5/§6.1): classify an unknown incoming application.
//!
//! Two interchangeable implementations:
//!
//! * [`RuleClassifier`] — the paper's threshold logic ("the CPU user
//!   utilisation of wordcount is higher than the average … with low CPU
//!   iowait … this application is categorised as compute intensive"),
//!   with thresholds derived from the training applications' signatures;
//! * [`KnnAppClassifier`] — nearest-signature voting over the training set,
//!   the same mechanism LkT-STP uses for retrieval.

use crate::features::AppSignature;
use ecost_apps::AppClass;
use ecost_mapreduce::{Feature, FeatureVector};
use ecost_ml::model::Classifier as _;
use ecost_ml::KnnClassifier;

/// Threshold-rule classifier (§6.1).
#[derive(Debug, Clone)]
pub struct RuleClassifier {
    /// LLC MPKI above this → memory-bound.
    pub llc_threshold: f64,
    /// CPUiowait above this (with I/O bandwidth above `io_threshold`) → I/O-bound.
    pub iowait_threshold: f64,
    /// Disk bandwidth (read+write MB/s) qualifying as "high I/O".
    pub io_threshold: f64,
    /// CPUuser above this → compute-bound.
    pub user_threshold: f64,
}

impl RuleClassifier {
    /// Derive thresholds from labelled training signatures: each threshold
    /// is the geometric midpoint between the classes it separates.
    pub fn fit(training: &[(AppSignature, AppClass)]) -> RuleClassifier {
        assert!(!training.is_empty(), "need training signatures");
        let stat = |f: Feature, class_in: &dyn Fn(AppClass) -> bool, max_side: bool| -> f64 {
            let vals: Vec<f64> = training
                .iter()
                .filter(|(_, c)| class_in(*c))
                .map(|(s, _)| s.features.get(f).max(1e-6))
                .collect();
            if vals.is_empty() {
                return f64::NAN;
            }
            if max_side {
                vals.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            } else {
                vals.iter().copied().fold(f64::INFINITY, f64::min)
            }
        };
        let geo_mid = |a: f64, b: f64, fallback: f64| -> f64 {
            if a.is_finite() && b.is_finite() && a > 0.0 && b > 0.0 {
                (a * b).sqrt()
            } else {
                fallback
            }
        };

        // M is separated by LLC MPKI: highest non-M vs lowest M.
        let llc_threshold = geo_mid(
            stat(Feature::LlcMpki, &|c| c != AppClass::M, true),
            stat(Feature::LlcMpki, &|c| c == AppClass::M, false),
            8.0,
        );
        // I is separated by iowait: highest non-I (C/H/M all compute enough
        // to keep iowait moderate) vs lowest I.
        let iowait_threshold = geo_mid(
            stat(
                Feature::CpuIowait,
                &|c| matches!(c, AppClass::C | AppClass::H),
                true,
            ),
            stat(Feature::CpuIowait, &|c| c == AppClass::I, false),
            45.0,
        );
        // C is separated from H by CPUuser: hybrids burn real CPU too, so
        // the boundary is highest-H vs lowest-C (not I vs C).
        let user_threshold = geo_mid(
            stat(
                Feature::CpuUser,
                &|c| matches!(c, AppClass::H | AppClass::I),
                true,
            ),
            stat(Feature::CpuUser, &|c| c == AppClass::C, false),
            82.0,
        );
        RuleClassifier {
            llc_threshold,
            iowait_threshold,
            io_threshold: 15.0,
            user_threshold,
        }
    }

    /// Classify a signature.
    pub fn classify(&self, v: &FeatureVector) -> AppClass {
        let io_bw = v.get(Feature::IoReadMbps) + v.get(Feature::IoWriteMbps);
        if v.get(Feature::LlcMpki) >= self.llc_threshold {
            AppClass::M
        } else if v.get(Feature::CpuIowait) >= self.iowait_threshold && io_bw >= self.io_threshold {
            AppClass::I
        } else if v.get(Feature::CpuUser) >= self.user_threshold {
            AppClass::C
        } else {
            AppClass::H
        }
    }
}

/// k-NN classifier over the 7 selected features.
#[derive(Debug, Clone)]
pub struct KnnAppClassifier {
    knn: KnnClassifier,
}

impl KnnAppClassifier {
    /// Fit on labelled training signatures.
    pub fn fit(training: &[(AppSignature, AppClass)]) -> KnnAppClassifier {
        assert!(!training.is_empty());
        let rows: Vec<Vec<f64>> = training
            .iter()
            .map(|(s, _)| s.selected().to_vec())
            .collect();
        let labels: Vec<usize> = training.iter().map(|(_, c)| class_index(*c)).collect();
        let k = 3.min(rows.len());
        let mut knn = KnnClassifier::new(k);
        knn.fit(&rows, &labels);
        KnnAppClassifier { knn }
    }

    /// Classify a signature.
    pub fn classify(&self, v: &FeatureVector) -> AppClass {
        index_class(self.knn.predict(&v.selected()))
    }
}

// `ALL` lists the variants in declaration order, so the discriminant is
// the index.
fn class_index(c: AppClass) -> usize {
    c as usize
}

fn index_class(i: usize) -> AppClass {
    AppClass::ALL[i]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EvalEngine;
    use crate::features::profile_catalog_app;
    use ecost_apps::catalog::{ALL_APPS, TRAINING_APPS};
    use ecost_apps::InputSize;

    fn training_signatures(eng: &EvalEngine) -> Vec<(AppSignature, AppClass)> {
        let mut v = Vec::new();
        for app in TRAINING_APPS {
            for size in InputSize::ALL {
                let sig = profile_catalog_app(eng, app, size, 0.02, 7).expect("profile");
                v.push((sig, app.class()));
            }
        }
        v
    }

    #[test]
    fn rules_recover_all_training_labels() {
        let tb = EvalEngine::atom();
        let training = training_signatures(&tb);
        let rc = RuleClassifier::fit(&training);
        for (sig, class) in &training {
            assert_eq!(rc.classify(&sig.features), *class, "{}", sig.profile.name);
        }
    }

    #[test]
    fn rules_classify_unknown_apps_correctly() {
        // The §7 scenario: classify the six test applications the
        // classifier has never seen.
        let tb = EvalEngine::atom();
        let rc = RuleClassifier::fit(&training_signatures(&tb));
        let mut hits = 0;
        let mut total = 0;
        for app in ALL_APPS {
            for size in InputSize::ALL {
                let sig = profile_catalog_app(&tb, app, size, 0.02, 42).expect("profile");
                total += 1;
                if rc.classify(&sig.features) == app.class() {
                    hits += 1;
                }
            }
        }
        // Expect near-perfect accuracy; allow one marginal hybrid miss.
        assert!(hits >= total - 2, "{hits}/{total}");
    }

    #[test]
    fn knn_matches_ground_truth_on_test_apps() {
        let tb = EvalEngine::atom();
        let knn = KnnAppClassifier::fit(&training_signatures(&tb));
        let mut hits = 0;
        let mut total = 0;
        for app in ecost_apps::TEST_APPS {
            for size in InputSize::ALL {
                let sig = profile_catalog_app(&tb, app, size, 0.02, 11).expect("profile");
                total += 1;
                if knn.classify(&sig.features) == app.class() {
                    hits += 1;
                }
            }
        }
        assert!(hits >= total - 2, "{hits}/{total}");
    }

    #[test]
    fn classifiers_handle_synthetic_apps() {
        use ecost_apps::synth::synth_app_named;
        let tb = EvalEngine::atom();
        let rc = RuleClassifier::fit(&training_signatures(&tb));
        let mut rng = ecost_sim::rng::stream(3, "synthclass");
        let mut hits = 0;
        let mut total = 0;
        for class in AppClass::ALL {
            for _ in 0..3 {
                let p = synth_app_named(&mut rng, class, "syn");
                let sig = crate::features::profile_app(&tb, &p, 5120.0, 0.02, 5).expect("profile");
                total += 1;
                if rc.classify(&sig.features) == class {
                    hits += 1;
                }
            }
        }
        assert!(hits as f64 >= 0.75 * total as f64, "{hits}/{total}");
    }
}
