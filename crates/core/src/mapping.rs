//! Cluster-level application mapping policies (§8 of the paper) and the
//! discrete-event cluster scheduler that runs them.
//!
//! A workload is a stream of 16 applications (Table 3). An application's
//! *total* input scales with the cluster — "10GB input data size per node
//! presents 80GB … in an 8-node cluster" (§2.3) — so a job that spans
//! `s` of the `n` nodes processes `size·n/s` per node.
//!
//! Policies (the paper's names in brackets):
//!
//! * [`MappingPolicy::Sm`] — Serial Mapping [NT]: one application at a time
//!   over the whole cluster, untuned defaults.
//! * [`MappingPolicy::Mnm1`]/[`MappingPolicy::Mnm2`] — Multi-Node Mapping
//!   [NT]: 2 (resp. 4) applications in parallel, each on an equal share of
//!   the nodes. On clusters smaller than the lane count they degrade to the
//!   available parallelism.
//! * [`MappingPolicy::Snm`] — Single Node Mapping [NT]: one application per
//!   node, all 8 cores.
//! * [`MappingPolicy::Cbm`] — Core Balance Mapping [NT]: two applications
//!   per node, 4+4 cores, untuned.
//! * [`MappingPolicy::Ptm`] — Predict Tuning Mapping [NP, T]: one
//!   application per node, knobs predicted per application (no pairing).
//! * [`MappingPolicy::Ecost`] — the full controller [P, T]: classify →
//!   queue → pair (decision tree) → self-tune (STP).
//! * [`MappingPolicy::Ub`] — upper bound: brute-force best pairing (exact
//!   minimum-EDP perfect matching via bitmask DP) with oracle pair configs.
//!
//! Whether a policy needs the trained [`EcostContext`] is encoded in the
//! type: [`ConfiguredPolicy`] couples each tuned variant with its context,
//! so [`run_policy`] cannot be called with a missing one — the mismatch is
//! an [`EvalError::MissingContext`] at construction, not a panic at run
//! time. All pair/solo oracle evaluations go through the shared
//! [`EvalEngine`], so the upper bound reuses the sweeps the database build
//! already paid for.

use crate::classify::RuleClassifier;
use crate::database::ConfigDatabase;
use crate::engine::{EvalEngine, EvalError, PairRun, RetryPolicy};
use crate::features::profile_app;
use crate::pairing::PairingPolicy;
use crate::scheduler::{
    collect, run_stream, run_stream_calendar, run_stream_open, Prepared, StreamPolicy,
    OPEN_ELIGIBLE_WINDOW,
};
use crate::service::{ServiceConfig, ServiceCore, ServiceReport};
use crate::stp::Stp;
use ecost_apps::{App, AppClass, Workload};
use ecost_mapreduce::executor::NodeSim;
use ecost_mapreduce::{BlockSize, JobSpec, TuningConfig};
use ecost_sim::{FaultPlan, Frequency};
use std::fmt;

/// One of the §8 mapping policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingPolicy {
    /// Serial Mapping [NT].
    Sm,
    /// Multi-Node Level 1 (2 lanes) [NT].
    Mnm1,
    /// Multi-Node Level 2 (4 lanes) [NT].
    Mnm2,
    /// Single Node Mapping [NT].
    Snm,
    /// Core Balance Mapping [NT].
    Cbm,
    /// Predict Tuning Mapping [NP, T].
    Ptm,
    /// The proposed controller [P, T].
    Ecost,
    /// Brute-force upper bound.
    Ub,
}

impl MappingPolicy {
    /// All policies in the paper's presentation order.
    pub const ALL: [MappingPolicy; 8] = [
        MappingPolicy::Sm,
        MappingPolicy::Mnm1,
        MappingPolicy::Mnm2,
        MappingPolicy::Snm,
        MappingPolicy::Cbm,
        MappingPolicy::Ptm,
        MappingPolicy::Ecost,
        MappingPolicy::Ub,
    ];

    /// Label as used in Fig 9.
    pub fn label(self) -> &'static str {
        match self {
            MappingPolicy::Sm => "SM",
            MappingPolicy::Mnm1 => "MNM1",
            MappingPolicy::Mnm2 => "MNM2",
            MappingPolicy::Snm => "SNM",
            MappingPolicy::Cbm => "CBM",
            MappingPolicy::Ptm => "PTM",
            MappingPolicy::Ecost => "ECoST",
            MappingPolicy::Ub => "UB",
        }
    }

    /// True for the policies that need an [`EcostContext`].
    pub fn needs_context(self) -> bool {
        matches!(
            self,
            MappingPolicy::Ptm | MappingPolicy::Ecost | MappingPolicy::Ub
        )
    }
}

/// A mapping policy *with* whatever it needs to run: the tuned variants
/// carry their [`EcostContext`], the untuned ones carry nothing. Construct
/// via [`ConfiguredPolicy::new`]; a tuned policy without a context is an
/// [`EvalError::MissingContext`] there, so [`run_policy`] never has to
/// check at run time.
pub enum ConfiguredPolicy<'a, 'b> {
    /// Serial Mapping.
    Sm,
    /// Multi-Node Level 1.
    Mnm1,
    /// Multi-Node Level 2.
    Mnm2,
    /// Single Node Mapping.
    Snm,
    /// Core Balance Mapping.
    Cbm,
    /// Predict Tuning Mapping, with its trained context.
    Ptm(&'a EcostContext<'b>),
    /// The full controller, with its trained context.
    Ecost(&'a EcostContext<'b>),
    /// Brute-force upper bound, with its trained context.
    Ub(&'a EcostContext<'b>),
}

impl<'a, 'b> ConfiguredPolicy<'a, 'b> {
    /// Couple a policy with an optional context, failing when a tuned
    /// policy is requested without one.
    pub fn new(
        policy: MappingPolicy,
        ctx: Option<&'a EcostContext<'b>>,
    ) -> Result<ConfiguredPolicy<'a, 'b>, EvalError> {
        let missing = |policy| EvalError::MissingContext { policy };
        match policy {
            MappingPolicy::Sm => Ok(ConfiguredPolicy::Sm),
            MappingPolicy::Mnm1 => Ok(ConfiguredPolicy::Mnm1),
            MappingPolicy::Mnm2 => Ok(ConfiguredPolicy::Mnm2),
            MappingPolicy::Snm => Ok(ConfiguredPolicy::Snm),
            MappingPolicy::Cbm => Ok(ConfiguredPolicy::Cbm),
            MappingPolicy::Ptm => ctx.map(ConfiguredPolicy::Ptm).ok_or_else(|| missing("PTM")),
            MappingPolicy::Ecost => ctx
                .map(ConfiguredPolicy::Ecost)
                .ok_or_else(|| missing("ECoST")),
            MappingPolicy::Ub => ctx.map(ConfiguredPolicy::Ub).ok_or_else(|| missing("UB")),
        }
    }

    /// The underlying policy tag.
    pub fn policy(&self) -> MappingPolicy {
        match self {
            ConfiguredPolicy::Sm => MappingPolicy::Sm,
            ConfiguredPolicy::Mnm1 => MappingPolicy::Mnm1,
            ConfiguredPolicy::Mnm2 => MappingPolicy::Mnm2,
            ConfiguredPolicy::Snm => MappingPolicy::Snm,
            ConfiguredPolicy::Cbm => MappingPolicy::Cbm,
            ConfiguredPolicy::Ptm(_) => MappingPolicy::Ptm,
            ConfiguredPolicy::Ecost(_) => MappingPolicy::Ecost,
            ConfiguredPolicy::Ub(_) => MappingPolicy::Ub,
        }
    }

    /// Label as used in Fig 9.
    pub fn label(&self) -> &'static str {
        self.policy().label()
    }
}

/// Result of running a workload on the cluster under one policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterRun {
    /// Workload completion time, seconds.
    pub makespan_s: f64,
    /// Total dynamic energy across all nodes, joules.
    pub energy_dyn_j: f64,
    /// Cluster size the run used.
    pub nodes: usize,
}

impl ClusterRun {
    /// Wall EDP: every node draws idle power for the whole makespan.
    pub fn edp_wall(&self, node_idle_w: f64) -> f64 {
        let wall_energy = self.energy_dyn_j + node_idle_w * self.nodes as f64 * self.makespan_s;
        self.makespan_s * wall_energy
    }
}

/// What the fault machinery did during one scheduler run. Every counter is
/// zero on a fault-free run with working predictors.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultReport {
    /// Node-crash events applied to live nodes.
    pub crashes: u64,
    /// Node-slowdown events applied to live nodes.
    pub slowdowns: u64,
    /// Straggler injections that hit a running job.
    pub stragglers: u64,
    /// Speculative re-executions launched against stragglers.
    pub speculations: u64,
    /// In-flight jobs displaced by crashes and re-queued at the head.
    pub requeued_jobs: u64,
    /// Pairing decisions degraded to solo placement (no viable partner).
    pub solo_fallbacks: u64,
    /// Tuning decisions degraded to class-default or untuned knobs.
    pub config_fallbacks: u64,
    /// Transient evaluation failures retried under the [`RetryPolicy`].
    pub retries: u64,
    /// Simulated seconds of retry backoff, added to the makespan.
    pub retry_backoff_s: f64,
}

impl std::ops::AddAssign for FaultReport {
    /// Elementwise sum — how a fleet folds its per-shard reports into one.
    fn add_assign(&mut self, rhs: FaultReport) {
        self.crashes += rhs.crashes;
        self.slowdowns += rhs.slowdowns;
        self.stragglers += rhs.stragglers;
        self.speculations += rhs.speculations;
        self.requeued_jobs += rhs.requeued_jobs;
        self.solo_fallbacks += rhs.solo_fallbacks;
        self.config_fallbacks += rhs.config_fallbacks;
        self.retries += rhs.retries;
        self.retry_backoff_s += rhs.retry_backoff_s;
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} crashes ({} jobs requeued), {} slowdowns, {} stragglers \
             ({} speculated), {} solo + {} config fallbacks, {} retries (+{:.1} s)",
            self.crashes,
            self.requeued_jobs,
            self.slowdowns,
            self.stragglers,
            self.speculations,
            self.solo_fallbacks,
            self.config_fallbacks,
            self.retries,
            self.retry_backoff_s,
        )
    }
}

/// Fault-injection setup for a scheduler run: the scheduled fault events
/// plus the retry policy that prices transient evaluation failures.
/// `FaultSetup::default()` schedules no faults but keeps the default
/// bounded retry — the "production" configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSetup {
    /// Scheduled node/task fault events.
    pub plan: FaultPlan,
    /// Bounded retry for transient evaluation failures.
    pub retry: RetryPolicy,
}

/// A fault-injected cluster run: the schedule's outcome (retry backoff
/// already folded into the makespan) plus the fault/degradation counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultedRun {
    /// Makespan/energy outcome of the degraded schedule.
    pub run: ClusterRun,
    /// What the fault machinery did along the way.
    pub report: FaultReport,
}

/// Everything the tuned policies need, built once from the training set.
pub struct EcostContext<'a> {
    /// The §6.2 database (PTM's solo lookups, signature source).
    pub db: &'a ConfigDatabase,
    /// The self-tuning predictor used by ECoST.
    pub stp: &'a dyn Stp,
    /// Incoming-application classifier.
    pub classifier: &'a RuleClassifier,
    /// Pairing decision tree.
    pub pairing: &'a PairingPolicy,
    /// Counter measurement noise for the learning periods.
    pub noise: f64,
    /// Seed for the learning periods.
    pub seed: u64,
    /// Partner-selection mode (decision tree, or an ablation variant).
    pub pairing_mode: crate::pairing::PairingMode,
}

/// Run `workload` on an `n`-node cluster under `policy`.
///
/// All simulation goes through `engine` (which also supplies the testbed);
/// tuned policies carry their context inside [`ConfiguredPolicy`].
pub fn run_policy(
    engine: &EvalEngine,
    n: usize,
    workload: &Workload,
    policy: &ConfiguredPolicy<'_, '_>,
) -> Result<ClusterRun, EvalError> {
    validate_cluster_input(n, workload)?;
    match policy {
        ConfiguredPolicy::Sm => run_lanes(engine, n, workload, 1),
        ConfiguredPolicy::Mnm1 => run_lanes(engine, n, workload, 2.min(n)),
        ConfiguredPolicy::Mnm2 => run_lanes(engine, n, workload, 4.min(n)),
        ConfiguredPolicy::Snm => run_per_node(engine, n, workload, PerNodeMode::Default),
        ConfiguredPolicy::Cbm => run_cbm(engine, n, workload),
        ConfiguredPolicy::Ptm(ctx) => {
            run_per_node(engine, n, workload, PerNodeMode::Predicted(ctx))
        }
        ConfiguredPolicy::Ecost(ctx) => run_ecost(engine, n, workload, ctx),
        ConfiguredPolicy::Ub(ctx) => run_ub(engine, n, workload, ctx),
    }
}

/// Shared `n ≥ 1` / non-empty-workload validation for the cluster drivers.
fn validate_cluster_input(n: usize, workload: &Workload) -> Result<(), EvalError> {
    if n < 1 {
        return Err(EvalError::InvalidInput {
            what: "need at least one node",
        });
    }
    if workload.is_empty() {
        return Err(EvalError::InvalidInput {
            what: "empty workload",
        });
    }
    Ok(())
}

/// Per-node input share for a job spanning `span` of `n` nodes.
fn share_mb(size_per_node_mb: f64, n: usize, span: usize) -> f64 {
    size_per_node_mb * n as f64 / span as f64
}

/// Conservative per-class default tuning, used when the learned predictors
/// cannot answer (empty lookup table, non-finite model prediction). The
/// knobs follow the paper's Table 2 regularities rather than any learned
/// state: compute-bound classes keep the top frequency, I/O-heavy classes
/// drop the frequency (the cores wait on the disk anyway) and take large
/// blocks to cut per-split overhead.
pub fn class_default_config(class: AppClass, mappers: u32) -> TuningConfig {
    let (freq, block) = match class {
        AppClass::C => (Frequency::F2_4, BlockSize::B128),
        AppClass::H => (Frequency::F2_0, BlockSize::B256),
        AppClass::I => (Frequency::F1_6, BlockSize::B512),
        AppClass::M => (Frequency::F1_6, BlockSize::B256),
    };
    TuningConfig {
        freq,
        block,
        mappers: mappers.max(1),
    }
}

/// Index of the smallest entry (first on ties); 0 for an empty slice.
fn earliest(times: &[f64]) -> usize {
    times
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// SM / MNM: `lanes` groups of `n/lanes` nodes each run jobs serially.
/// Shards within a lane are symmetric, so one representative node is
/// simulated per job and its energy scaled by the lane's span.
fn run_lanes(
    engine: &EvalEngine,
    n: usize,
    workload: &Workload,
    lanes: usize,
) -> Result<ClusterRun, EvalError> {
    let tb = engine.testbed();
    let lanes = lanes.max(1).min(n);
    let span = (n / lanes).max(1);
    let cluster = ecost_sim::ClusterSpec::atom_cluster(n);
    let remote = ecost_sim::ClusterSpec::remote_shuffle_fraction(span);
    // Greedy: next job goes to the lane that frees up first.
    let mut lane_time = vec![0.0_f64; lanes];
    let mut energy = 0.0;
    for (app, size) in &workload.jobs {
        let lane = earliest(&lane_time);
        let cfg = TuningConfig::hadoop_default(tb.node.cores);
        let job = JobSpec::from_profile(
            app.profile().clone(),
            share_mb(size.per_node_mb(), n, span),
            cfg,
        )
        .with_remote_shuffle(remote);
        let mut node = NodeSim::with_nic(
            tb.node.clone(),
            tb.fw.clone(),
            cluster.nic_bw_mbps,
            cluster.nic_active_power_w,
        );
        node.submit(job)?;
        node.run_to_completion()?;
        lane_time[lane] += node.now();
        energy += node.energy_j() * span as f64;
    }
    Ok(ClusterRun {
        makespan_s: lane_time.into_iter().fold(0.0, f64::max),
        energy_dyn_j: energy,
        nodes: n,
    })
}

enum PerNodeMode<'a, 'b> {
    /// Untuned Hadoop defaults (SNM).
    Default,
    /// Per-application predicted solo config (PTM).
    Predicted(&'a EcostContext<'b>),
}

/// SNM / PTM: one application per node, jobs dispatched to the earliest-free
/// node.
fn run_per_node(
    engine: &EvalEngine,
    n: usize,
    workload: &Workload,
    mode: PerNodeMode<'_, '_>,
) -> Result<ClusterRun, EvalError> {
    let tb = engine.testbed();
    let mut node_time = vec![0.0_f64; n];
    let mut energy = 0.0;
    for (app, size) in &workload.jobs {
        let input = share_mb(size.per_node_mb(), n, 1);
        let cfg = match &mode {
            PerNodeMode::Default => TuningConfig::hadoop_default(tb.node.cores),
            PerNodeMode::Predicted(ctx) => {
                let sig = profile_app(engine, app.profile(), input, ctx.noise, ctx.seed)?;
                ctx.db
                    .nearest_solo(&sig.key())
                    .ok_or(EvalError::NoCandidates {
                        what: "PTM solo lookup in an empty database",
                    })?
                    .config
            }
        };
        let node = earliest(&node_time);
        let mut sim = NodeSim::new(tb.node.clone(), tb.fw.clone());
        sim.submit(JobSpec::from_profile(app.profile().clone(), input, cfg))?;
        sim.run_to_completion()?;
        node_time[node] += sim.now();
        energy += sim.energy_j();
    }
    Ok(ClusterRun {
        makespan_s: node_time.into_iter().fold(0.0, f64::max),
        energy_dyn_j: energy,
        nodes: n,
    })
}

/// CBM: two applications per node at 4+4 cores, untuned; a finishing job is
/// immediately replaced from the queue (FIFO).
fn run_cbm(engine: &EvalEngine, n: usize, workload: &Workload) -> Result<ClusterRun, EvalError> {
    let tb = engine.testbed();
    let half = (tb.node.cores / 2).max(1);
    let cfg = TuningConfig {
        mappers: half,
        ..TuningConfig::hadoop_default(tb.node.cores)
    };
    let mut queue: std::collections::VecDeque<JobSpec> = workload
        .jobs
        .iter()
        .map(|(app, size)| {
            JobSpec::from_profile(
                app.profile().clone(),
                share_mb(size.per_node_mb(), n, 1),
                cfg,
            )
        })
        .collect();
    let mut nodes: Vec<NodeSim> = (0..n)
        .map(|_| NodeSim::new(tb.node.clone(), tb.fw.clone()))
        .collect();
    // Initial fill: two jobs per node.
    for node in &mut nodes {
        for _ in 0..2 {
            if let Some(job) = queue.pop_front() {
                node.submit(job)?;
            }
        }
    }
    drive_cluster(&mut nodes, |node| {
        while node.active_jobs() < 2 {
            match queue.pop_front() {
                Some(job) => {
                    node.submit(job)?;
                }
                None => break,
            }
        }
        Ok(())
    })?;
    Ok(collect(nodes, n))
}

/// ECoST's decisions: partner class by the Fig 4 decision tree, knobs by
/// STP — degrading to class-default knobs when a predictor cannot answer
/// (missing lookup entry, non-finite model prediction) instead of aborting
/// the whole schedule.
pub(crate) struct EcostPolicy<'a, 'b> {
    engine: &'a EvalEngine,
    ctx: &'a EcostContext<'b>,
    /// Tuning decisions that fell back to class defaults. Interior
    /// mutability because [`StreamPolicy`] methods take `&self`.
    config_fallbacks: std::cell::Cell<u64>,
}

impl<'a, 'b> EcostPolicy<'a, 'b> {
    pub(crate) fn new(engine: &'a EvalEngine, ctx: &'a EcostContext<'b>) -> EcostPolicy<'a, 'b> {
        EcostPolicy {
            engine,
            ctx,
            config_fallbacks: std::cell::Cell::new(0),
        }
    }

    /// Tuning decisions degraded to class defaults so far; the stream
    /// entry points fold this into [`FaultReport::config_fallbacks`].
    pub(crate) fn config_fallbacks(&self) -> u64 {
        self.config_fallbacks.get()
    }

    fn note_config_fallback(&self, now: f64) {
        self.engine.note_fallback(now, "config");
        self.config_fallbacks.set(self.config_fallbacks.get() + 1);
    }
}

impl StreamPolicy for EcostPolicy<'_, '_> {
    fn pick(
        &self,
        now: f64,
        anchor: &Prepared,
        candidates: &[&Prepared],
        cores: u32,
    ) -> Result<(usize, ecost_mapreduce::PairConfig), EvalError> {
        let classes: Vec<AppClass> = candidates.iter().map(|p| p.class).collect();
        let pick = match self.ctx.pairing_mode {
            crate::pairing::PairingMode::DecisionTree => {
                self.ctx
                    .pairing
                    .choose(&classes)
                    .ok_or(EvalError::NoCandidates {
                        what: "pairing candidates",
                    })?
            }
            crate::pairing::PairingMode::Fifo => 0,
            crate::pairing::PairingMode::Random(seed) => {
                // Deterministic pseudo-pick from the anchor's identity.
                let mut h = seed ^ anchor.sig.input_mb.to_bits();
                for b in anchor.sig.profile.name.bytes() {
                    h = h.wrapping_mul(0x100000001b3).wrapping_add(u64::from(b));
                }
                (h as usize) % candidates.len()
            }
        };
        let mut cfg = match self
            .ctx
            .stp
            .choose(&anchor.sig, &candidates[pick].sig, cores)
        {
            Ok(cfg) => cfg,
            Err(e) if e.is_degradable() => {
                // Missing LkT entry / non-finite MLM prediction: run the
                // pair on class-default knobs instead of aborting.
                self.note_config_fallback(now);
                let b_share = (cores / 2).max(1);
                let a_share = (cores - b_share).max(1);
                ecost_mapreduce::PairConfig {
                    a: class_default_config(anchor.class, a_share),
                    b: class_default_config(candidates[pick].class, b_share),
                }
            }
            Err(e) => return Err(e),
        };
        if cfg.cores() > cores {
            cfg.b.mappers = (cores - cfg.a.mappers.min(cores - 1)).max(1);
        }
        Ok((pick, cfg))
    }

    fn solo_config(&self, now: f64, job: &Prepared, cores: u32) -> Result<TuningConfig, EvalError> {
        match self.ctx.db.nearest_solo(&job.sig.key()) {
            Some(entry) => Ok(entry.config),
            None => {
                // Empty database: class-default knobs over the whole node.
                self.note_config_fallback(now);
                Ok(class_default_config(job.class, cores))
            }
        }
    }
}

/// Perfect decisions (upper bound): partner and knobs from the brute-force
/// pair oracle, served by the shared engine memo.
struct OraclePolicy<'a> {
    engine: &'a EvalEngine,
}

impl StreamPolicy for OraclePolicy<'_> {
    fn pick(
        &self,
        _now: f64,
        anchor: &Prepared,
        candidates: &[&Prepared],
        cores: u32,
    ) -> Result<(usize, ecost_mapreduce::PairConfig), EvalError> {
        let idle = self.engine.idle_w();
        let mut best: Option<(usize, PairRun)> = None;
        for (i, cand) in candidates.iter().enumerate() {
            let run = self.engine.best_pair(
                &anchor.sig.profile,
                anchor.sig.input_mb,
                &cand.sig.profile,
                cand.sig.input_mb,
            )?;
            let better = best
                .as_ref()
                .is_none_or(|(_, b)| run.metrics.edp_wall(idle) < b.metrics.edp_wall(idle));
            if better {
                best = Some((i, run));
            }
        }
        let (pick, run) = best.ok_or(EvalError::NoCandidates {
            what: "oracle pairing candidates",
        })?;
        let mut cfg = run.config;
        if cfg.cores() > cores {
            cfg.b.mappers = (cores - cfg.a.mappers.min(cores - 1)).max(1);
        }
        Ok((pick, cfg))
    }

    fn solo_config(
        &self,
        _now: f64,
        job: &Prepared,
        _cores: u32,
    ) -> Result<TuningConfig, EvalError> {
        Ok(self
            .engine
            .best_solo(&job.sig.profile, job.sig.input_mb)?
            .config)
    }
}

/// Open-queue ECoST: jobs arrive over time (the §5 "new jobs are arriving
/// to the datacenter" operation), with a configurable head-reservation
/// allowance. Used by the open-queue extension experiment.
pub fn run_ecost_open(
    engine: &EvalEngine,
    n: usize,
    workload: &Workload,
    arrivals: &[f64],
    max_head_skips: u32,
    ctx: &EcostContext<'_>,
) -> Result<ClusterRun, EvalError> {
    validate_cluster_input(n, workload)?;
    let prepared = prepare_jobs(engine, n, workload, ctx)?;
    let setup = FaultSetup {
        plan: FaultPlan::none(),
        retry: RetryPolicy::none(),
    };
    run_stream_open(
        engine,
        n,
        prepared,
        Some(arrivals),
        max_head_skips,
        &EcostPolicy::new(engine, ctx),
        &setup,
    )
    .map(|(run, _)| run)
}

/// ECoST under fault injection: the §5 controller driven through the
/// events of `setup.plan`, with transient evaluation failures retried
/// under `setup.retry` and predictor gaps degraded to class-default knobs
/// or solo placement instead of aborting the schedule. Crashed nodes'
/// in-flight jobs are re-queued (their work so far is lost, their energy
/// is not) onto the surviving nodes; the run fails with
/// [`EvalError::Degraded`] only when every node has crashed with jobs
/// still queued.
///
/// With a fault-free [`FaultSetup`] this is numerically identical to
/// [`run_ecost_open`] (asserted by a regression test).
pub fn run_ecost_faulted(
    engine: &EvalEngine,
    n: usize,
    workload: &Workload,
    arrivals: Option<&[f64]>,
    max_head_skips: u32,
    ctx: &EcostContext<'_>,
    setup: &FaultSetup,
) -> Result<FaultedRun, EvalError> {
    validate_cluster_input(n, workload)?;
    let prepared = prepare_jobs(engine, n, workload, ctx)?;
    let policy = EcostPolicy::new(engine, ctx);
    let (run, mut report) = run_stream_open(
        engine,
        n,
        prepared,
        arrivals,
        max_head_skips,
        &policy,
        setup,
    )?;
    report.config_fallbacks += policy.config_fallbacks.get();
    Ok(FaultedRun { run, report })
}

/// The untuned streaming baseline (two half-node jobs per node at Hadoop
/// defaults, FIFO partners) driven through the same fault machinery, for
/// chaos-sweep comparisons against [`run_ecost_faulted`].
pub fn run_untuned_faulted(
    engine: &EvalEngine,
    n: usize,
    workload: &Workload,
    arrivals: Option<&[f64]>,
    setup: &FaultSetup,
) -> Result<FaultedRun, EvalError> {
    validate_cluster_input(n, workload)?;
    let tb = engine.testbed();
    let cores = tb.node.cores;
    let half_cfg = TuningConfig {
        mappers: (cores / 2).max(1),
        ..TuningConfig::hadoop_default(cores)
    };
    let prepared: Vec<Prepared> = workload
        .jobs
        .iter()
        .map(|(app, size)| {
            let input = share_mb(size.per_node_mb(), n, 1);
            let sig = profile_app(engine, app.profile(), input, 0.0, 0)?;
            Ok(Prepared {
                sig,
                class: app.class(),
            })
        })
        .collect::<Result<_, EvalError>>()?;
    let policy = FixedPolicy {
        pair: ecost_mapreduce::PairConfig {
            a: half_cfg,
            b: half_cfg,
        },
        solo: TuningConfig::hadoop_default(cores),
    };
    let (run, report) = run_stream_open(engine, n, prepared, arrivals, 2, &policy, setup)?;
    Ok(FaultedRun { run, report })
}

/// One job of an open arrival stream: which catalog application it runs,
/// how much input it brings, and when it reaches the datacenter. Unlike a
/// [`Workload`] job, the input size is given directly (trace-driven), not
/// derived from a scenario's per-node size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenArrival {
    /// The catalog application the job runs.
    pub app: App,
    /// Input size processed by the job, MB.
    pub input_mb: f64,
    /// Submission time, simulated seconds.
    pub at_s: f64,
}

/// Knobs of the open-stream calendar drivers, previously hardcoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenOptions {
    /// Head-reservation skips a queued head job tolerates before it
    /// pins a node (anti-starvation, §5 open-queue extension).
    pub max_head_skips: u32,
    /// Partner scans consider at most this many queue positions from
    /// the front. Smaller windows trade decision quality for speed;
    /// must be at least 1.
    pub eligible_window: usize,
}

impl Default for OpenOptions {
    /// Two head skips, the historical [`OPEN_ELIGIBLE_WINDOW`] scan
    /// bound.
    fn default() -> OpenOptions {
        OpenOptions {
            max_head_skips: 2,
            eligible_window: OPEN_ELIGIBLE_WINDOW,
        }
    }
}

impl OpenOptions {
    pub(crate) fn validate(&self) -> Result<(), EvalError> {
        if self.eligible_window < 1 {
            return Err(EvalError::InvalidInput {
                what: "eligible_window must be at least 1",
            });
        }
        Ok(())
    }
}

/// `n ≥ 1` / non-empty / finite-fields validation for open-stream runs.
fn validate_stream_input(n: usize, stream: &[OpenArrival]) -> Result<(), EvalError> {
    if n < 1 {
        return Err(EvalError::InvalidInput {
            what: "need at least one node",
        });
    }
    if stream.is_empty() {
        return Err(EvalError::InvalidInput {
            what: "empty arrival stream",
        });
    }
    if stream
        .iter()
        .any(|a| !(a.input_mb.is_finite() && a.input_mb > 0.0))
    {
        return Err(EvalError::InvalidInput {
            what: "arrival input sizes must be finite and positive",
        });
    }
    if stream
        .iter()
        .any(|a| !(a.at_s.is_finite() && a.at_s >= 0.0))
    {
        return Err(EvalError::InvalidInput {
            what: "arrival times must be finite and non-negative",
        });
    }
    Ok(())
}

/// Open-cluster ECoST over an arrival stream, driven by the event-calendar
/// scheduler ([`crate::scheduler::calendar`]): per-event cost scales with
/// the jobs that actually changed, not with cluster size or arrival
/// history, so 100k-arrival traces on hundreds of nodes are tractable.
/// Partner scans are bounded to the first `opts.eligible_window` queue
/// positions. Decision-equivalent to [`run_ecost_faulted`] on the same
/// stream (asserted by equivalence tests), though not bit-identical — the
/// per-node float accumulation order differs.
pub fn run_ecost_open_stream(
    engine: &EvalEngine,
    n: usize,
    stream: &[OpenArrival],
    opts: OpenOptions,
    ctx: &EcostContext<'_>,
    setup: &FaultSetup,
) -> Result<FaultedRun, EvalError> {
    validate_stream_input(n, stream)?;
    opts.validate()?;
    let prepared = prepare_stream(engine, stream, ctx)?;
    let arrivals: Vec<f64> = stream.iter().map(|a| a.at_s).collect();
    let policy = EcostPolicy::new(engine, ctx);
    let (run, mut report) = run_stream_calendar(
        engine,
        n,
        prepared,
        Some(&arrivals),
        opts.max_head_skips,
        &policy,
        setup,
        opts.eligible_window,
    )?;
    report.config_fallbacks += policy.config_fallbacks.get();
    Ok(FaultedRun { run, report })
}

/// Profile + classify one open-stream arrival. Deterministic in the
/// arrival alone (the engine memo only changes hit/miss counts, never
/// values), so shards of a fleet can prepare their arrivals in any
/// interleaving and still produce identical `Prepared` jobs.
pub(crate) fn prepare_one(
    engine: &EvalEngine,
    a: &OpenArrival,
    ctx: &EcostContext<'_>,
) -> Result<Prepared, EvalError> {
    let sig = profile_app(engine, a.app.profile(), a.input_mb, ctx.noise, ctx.seed)?;
    let class = ctx.classifier.classify(&sig.features);
    Ok(Prepared { sig, class })
}

/// Profile + classify every arrival of an open stream.
fn prepare_stream(
    engine: &EvalEngine,
    stream: &[OpenArrival],
    ctx: &EcostContext<'_>,
) -> Result<Vec<Prepared>, EvalError> {
    stream.iter().map(|a| prepare_one(engine, a, ctx)).collect()
}

/// [`run_ecost_open_stream`] with every tuning decision routed through
/// the service layer ([`crate::service`]): admission control, deadlines,
/// the degradation tier ladder and the circuit breaker all apply, per
/// decision, on the simulated clock. Returns the schedule outcome plus
/// the service's outcome counters.
///
/// Decision latency is accounted in
/// [`ServiceReport::decision_time_s`], *not* folded into the schedule's
/// makespan — the service models a tuning control plane beside the
/// cluster, not inside it. With [`ServiceConfig::unlimited`] and a
/// healthy fault spec every decision is granted a free full sweep and
/// the run is bit-identical to [`run_ecost_open_stream`] (asserted by
/// an integration test).
#[allow(clippy::too_many_arguments)]
pub fn run_ecost_open_stream_serviced(
    engine: &EvalEngine,
    n: usize,
    stream: &[OpenArrival],
    opts: OpenOptions,
    ctx: &EcostContext<'_>,
    setup: &FaultSetup,
    svc_cfg: ServiceConfig,
    svc_faults: ecost_sim::ServiceFaultSpec,
) -> Result<(FaultedRun, ServiceReport), EvalError> {
    validate_stream_input(n, stream)?;
    opts.validate()?;
    let core = ServiceCore::new(svc_cfg, svc_faults).map_err(|e| match e {
        crate::service::ServiceError::InvalidConfig { what } => EvalError::InvalidInput { what },
        _ => EvalError::Internal {
            what: "service core construction failed",
        },
    })?;
    let prepared = prepare_stream(engine, stream, ctx)?;
    let arrivals: Vec<f64> = stream.iter().map(|a| a.at_s).collect();
    let policy = ServicedPolicy::new(engine, ctx, core);
    let (run, mut report) = run_stream_calendar(
        engine,
        n,
        prepared,
        Some(&arrivals),
        opts.max_head_skips,
        &policy,
        setup,
        opts.eligible_window,
    )?;
    report.config_fallbacks += policy.config_fallbacks();
    let svc_report = policy.into_service_report();
    Ok((FaultedRun { run, report }, svc_report))
}

/// [`EcostPolicy`] behind the service front door: every pick/solo
/// decision first passes admission → deadline → tier ladder → breaker on
/// the simulated clock, then the granted tier bounds how much of the
/// normal decision logic runs. Rejected decisions (shed, deadline blown)
/// degrade to FIFO partners on class-default knobs — the schedule always
/// proceeds; the rejection is visible in the [`ServiceReport`].
pub(crate) struct ServicedPolicy<'a, 'b> {
    inner: EcostPolicy<'a, 'b>,
    /// Interior mutability: [`StreamPolicy`] methods take `&self`, and
    /// the calendar driver is single-threaded.
    core: std::cell::RefCell<ServiceCore>,
    seq: std::cell::Cell<u64>,
}

impl<'a, 'b> ServicedPolicy<'a, 'b> {
    pub(crate) fn new(
        engine: &'a EvalEngine,
        ctx: &'a EcostContext<'b>,
        core: ServiceCore,
    ) -> ServicedPolicy<'a, 'b> {
        ServicedPolicy {
            inner: EcostPolicy::new(engine, ctx),
            core: std::cell::RefCell::new(core),
            seq: std::cell::Cell::new(0),
        }
    }

    /// See [`EcostPolicy::config_fallbacks`].
    pub(crate) fn config_fallbacks(&self) -> u64 {
        self.inner.config_fallbacks()
    }

    /// Consume the policy, yielding the service's outcome counters.
    pub(crate) fn into_service_report(self) -> ServiceReport {
        self.core.into_inner().report().clone()
    }
}

impl ServicedPolicy<'_, '_> {
    /// Run one decision through the service core, in calendar order.
    fn admit(&self, now: f64) -> Result<Option<crate::service::DecisionTier>, EvalError> {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        let mut core = self.core.borrow_mut();
        let deadline = core.deadline_s();
        match core.admit(seq, now, deadline, None) {
            Ok(grant) => Ok(Some(grant.tier)),
            Err(
                crate::service::ServiceError::Overloaded { .. }
                | crate::service::ServiceError::DeadlineExceeded { .. },
            ) => Ok(None),
            Err(_) => Err(EvalError::Internal {
                what: "service rejected a streaming decision",
            }),
        }
    }

    fn fallback_pair(
        &self,
        now: f64,
        anchor: &Prepared,
        candidates: &[&Prepared],
        cores: u32,
    ) -> (usize, ecost_mapreduce::PairConfig) {
        self.inner.note_config_fallback(now);
        let b_share = (cores / 2).max(1);
        let a_share = (cores - b_share).max(1);
        (
            0,
            ecost_mapreduce::PairConfig {
                a: class_default_config(anchor.class, a_share),
                b: class_default_config(candidates[0].class, b_share),
            },
        )
    }
}

impl StreamPolicy for ServicedPolicy<'_, '_> {
    fn pick(
        &self,
        now: f64,
        anchor: &Prepared,
        candidates: &[&Prepared],
        cores: u32,
    ) -> Result<(usize, ecost_mapreduce::PairConfig), EvalError> {
        use crate::service::DecisionTier;
        match self.admit(now)? {
            Some(DecisionTier::FullSweep) => self.inner.pick(now, anchor, candidates, cores),
            Some(DecisionTier::Windowed) => {
                // Degraded scan: only the queue head is considered.
                self.inner.pick(now, anchor, &candidates[..1], cores)
            }
            Some(DecisionTier::ClassDefault) | None => {
                Ok(self.fallback_pair(now, anchor, candidates, cores))
            }
        }
    }

    fn solo_config(&self, now: f64, job: &Prepared, cores: u32) -> Result<TuningConfig, EvalError> {
        use crate::service::DecisionTier;
        match self.admit(now)? {
            Some(DecisionTier::FullSweep) | Some(DecisionTier::Windowed) => {
                self.inner.solo_config(now, job, cores)
            }
            Some(DecisionTier::ClassDefault) | None => {
                self.inner.note_config_fallback(now);
                Ok(class_default_config(job.class, cores))
            }
        }
    }
}

/// The untuned streaming baseline over an arrival stream (two half-node
/// jobs per node at Hadoop defaults, FIFO partners), on the same
/// event-calendar driver as [`run_ecost_open_stream`] — the "EDP vs
/// untuned" arm of the scale-out bench.
pub fn run_untuned_open_stream(
    engine: &EvalEngine,
    n: usize,
    stream: &[OpenArrival],
    opts: OpenOptions,
    setup: &FaultSetup,
) -> Result<FaultedRun, EvalError> {
    validate_stream_input(n, stream)?;
    opts.validate()?;
    let cores = engine.testbed().node.cores;
    let half_cfg = TuningConfig {
        mappers: (cores / 2).max(1),
        ..TuningConfig::hadoop_default(cores)
    };
    let prepared = stream
        .iter()
        .map(|a| {
            let sig = profile_app(engine, a.app.profile(), a.input_mb, 0.0, 0)?;
            Ok(Prepared {
                sig,
                class: a.app.class(),
            })
        })
        .collect::<Result<Vec<_>, EvalError>>()?;
    let arrivals: Vec<f64> = stream.iter().map(|a| a.at_s).collect();
    let policy = FixedPolicy {
        pair: ecost_mapreduce::PairConfig {
            a: half_cfg,
            b: half_cfg,
        },
        solo: TuningConfig::hadoop_default(cores),
    };
    let (run, report) = run_stream_calendar(
        engine,
        n,
        prepared,
        Some(&arrivals),
        opts.max_head_skips,
        &policy,
        setup,
        opts.eligible_window,
    )?;
    Ok(FaultedRun { run, report })
}

/// Fixed, untuned decisions: FIFO partner, half-node Hadoop defaults.
struct FixedPolicy {
    pair: ecost_mapreduce::PairConfig,
    solo: TuningConfig,
}

impl StreamPolicy for FixedPolicy {
    fn pick(
        &self,
        _now: f64,
        _anchor: &Prepared,
        _candidates: &[&Prepared],
        _cores: u32,
    ) -> Result<(usize, ecost_mapreduce::PairConfig), EvalError> {
        Ok((0, self.pair))
    }

    fn solo_config(
        &self,
        _now: f64,
        _job: &Prepared,
        _cores: u32,
    ) -> Result<TuningConfig, EvalError> {
        Ok(self.solo)
    }
}

/// Learning period + classification for every workload job.
fn prepare_jobs(
    engine: &EvalEngine,
    n: usize,
    workload: &Workload,
    ctx: &EcostContext<'_>,
) -> Result<Vec<Prepared>, EvalError> {
    workload
        .jobs
        .iter()
        .map(|(app, size)| {
            let input = share_mb(size.per_node_mb(), n, 1);
            let sig = profile_app(engine, app.profile(), input, ctx.noise, ctx.seed)?;
            let class = ctx.classifier.classify(&sig.features);
            Ok(Prepared { sig, class })
        })
        .collect()
}

/// ECoST: the full classify → enqueue → pair → tune loop of §5.
fn run_ecost(
    engine: &EvalEngine,
    n: usize,
    workload: &Workload,
    ctx: &EcostContext<'_>,
) -> Result<ClusterRun, EvalError> {
    let prepared = prepare_jobs(engine, n, workload, ctx)?;
    run_stream(engine, n, prepared, &EcostPolicy::new(engine, ctx))
}

/// UB: the better of two brute-force schedules —
///
/// 1. **oracle-streamed**: the same streaming scheduler ECoST uses, but with
///    the partner chosen by the true pair oracle and every configuration the
///    brute-forced optimum ("ECoST with a perfect predictor");
/// 2. **matched pairs**: exact minimum-EDP perfect matching (bitmask DP) over
///    the workload, pairs placed LPT onto nodes, each pair at its oracle
///    configuration, pairs running back-to-back.
///
/// Streaming usually wins (no barrier between pairs); the matching candidate
/// covers workloads where synchronised pairs happen to pack better.
fn run_ub(
    engine: &EvalEngine,
    n: usize,
    workload: &Workload,
    ctx: &EcostContext<'_>,
) -> Result<ClusterRun, EvalError> {
    let streamed = {
        let prepared = prepare_jobs(engine, n, workload, ctx)?;
        run_stream(engine, n, prepared, &OraclePolicy { engine })?
    };
    let matched = run_ub_matched(engine, n, workload)?;
    let idle = engine.idle_w();
    Ok(if streamed.edp_wall(idle) <= matched.edp_wall(idle) {
        streamed
    } else {
        matched
    })
}

/// The matched-pairs UB candidate (see [`run_ub`]). The DP's cost matrix is
/// plain local state; every entry comes from the engine's shared memo, so
/// pairs the database build already swept cost nothing here.
fn run_ub_matched(
    engine: &EvalEngine,
    n: usize,
    workload: &Workload,
) -> Result<ClusterRun, EvalError> {
    let jobs: Vec<(ecost_apps::AppProfile, f64)> = workload
        .jobs
        .iter()
        .map(|(app, size)| (app.profile().clone(), share_mb(size.per_node_mb(), n, 1)))
        .collect();
    let k = jobs.len();
    if k > 20 {
        return Err(EvalError::InvalidInput {
            what: "bitmask matching is sized for Table 3 workloads (≤ 20 jobs)",
        });
    }
    let idle = engine.idle_w();

    // Pairwise oracle results, all served by the engine.
    let mut pair_best: Vec<Vec<Option<PairRun>>> = vec![vec![None; k]; k];
    for i in 0..k {
        for j in i + 1..k {
            let run = engine.best_pair(&jobs[i].0, jobs[i].1, &jobs[j].0, jobs[j].1)?;
            pair_best[i][j] = Some(run);
        }
    }
    let pair_cost = |i: usize, j: usize| -> Result<&PairRun, EvalError> {
        pair_best[i.min(j)][i.max(j)]
            .as_ref()
            .ok_or(EvalError::Internal {
                what: "pair cost missing from the DP matrix",
            })
    };
    // DP over subsets: minimal total pair EDP perfect matching (odd tail: one
    // job may stay single at its solo optimum).
    let full: usize = (1 << k) - 1;
    let mut dp = vec![f64::INFINITY; 1 << k];
    let mut choice: Vec<Option<(usize, usize)>> = vec![None; 1 << k];
    dp[0] = 0.0;
    let solo_edp: Vec<f64> = jobs
        .iter()
        .map(|(p, mb)| Ok(engine.best_solo(p, *mb)?.metrics.edp_wall(idle)))
        .collect::<Result<_, EvalError>>()?;
    for mask in 0..=full {
        if dp[mask].is_infinite() {
            continue;
        }
        let Some(i) = (0..k).find(|i| mask & (1 << i) == 0) else {
            continue;
        };
        // Pair i with some j…
        for j in i + 1..k {
            if mask & (1 << j) != 0 {
                continue;
            }
            let cost = pair_cost(i, j)?.metrics.edp_wall(idle);
            let nm = mask | (1 << i) | (1 << j);
            if dp[mask] + cost < dp[nm] {
                dp[nm] = dp[mask] + cost;
                choice[nm] = Some((i, j));
            }
        }
        // …or leave i single (covers odd workloads).
        let nm = mask | (1 << i);
        if dp[mask] + solo_edp[i] < dp[nm] {
            dp[nm] = dp[mask] + solo_edp[i];
            choice[nm] = None;
        }
    }

    // Recover the matching.
    let mut pairs: Vec<(usize, Option<usize>)> = Vec::new();
    let mut mask = full;
    while mask != 0 {
        let Some(i) = (0..k).find(|i| mask & (1 << i) != 0) else {
            break;
        };
        match choice[mask] {
            Some((a, b)) if mask & (1 << a) != 0 && mask & (1 << b) != 0 => {
                pairs.push((a, Some(b)));
                mask &= !((1 << a) | (1 << b));
            }
            _ => {
                pairs.push((i, None));
                mask &= !(1 << i);
            }
        }
    }

    // Run each pair at its oracle config; LPT-assign onto nodes.
    let mut runs: Vec<(f64, f64)> = Vec::with_capacity(pairs.len());
    for (i, j) in pairs {
        match j {
            Some(j) => {
                let best = pair_cost(i, j)?;
                runs.push((best.metrics.makespan_s, best.metrics.energy_j));
            }
            None => {
                let solo = engine.best_solo(&jobs[i].0, jobs[i].1)?;
                runs.push((solo.metrics.exec_time_s, solo.metrics.energy_j));
            }
        }
    }
    runs.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut node_time = vec![0.0_f64; n];
    let mut energy = 0.0;
    for (t, e) in runs {
        let node = earliest(&node_time);
        node_time[node] += t;
        energy += e;
    }
    Ok(ClusterRun {
        makespan_s: node_time.into_iter().fold(0.0, f64::max),
        energy_dyn_j: energy,
        nodes: n,
    })
}

/// Drive a set of nodes to completion, calling `refill` for each node after
/// every event so it can top up from its queue.
fn drive_cluster(
    nodes: &mut [NodeSim],
    mut refill: impl FnMut(&mut NodeSim) -> Result<(), EvalError>,
) -> Result<(), EvalError> {
    loop {
        let mut any = false;
        let mut dt = f64::INFINITY;
        for node in nodes.iter_mut() {
            if let Some(t) = node.time_to_next_event()? {
                any = true;
                dt = dt.min(t);
            }
        }
        if !any {
            break;
        }
        for node in nodes.iter_mut() {
            node.advance(dt)?;
            refill(node)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecost_apps::{InputSize, WorkloadScenario};

    fn run_untuned(
        engine: &EvalEngine,
        n: usize,
        w: &Workload,
        policy: MappingPolicy,
    ) -> ClusterRun {
        let p = ConfiguredPolicy::new(policy, None).expect("untuned policy");
        run_policy(engine, n, w, &p).expect("cluster run")
    }

    #[test]
    fn untuned_policies_complete_and_work_is_conserved() {
        let eng = EvalEngine::atom();
        // Small workload to keep tests quick: 4 I/O jobs.
        let mut w = WorkloadScenario::Ws3.workload(InputSize::Small);
        w.jobs.truncate(4);
        let sm = run_untuned(&eng, 2, &w, MappingPolicy::Sm);
        let snm = run_untuned(&eng, 2, &w, MappingPolicy::Snm);
        assert!(sm.makespan_s > 0.0 && snm.makespan_s > 0.0);
        // Without co-location or tuning, total work is conserved: spreading
        // each job across the cluster (SM) and spreading jobs across nodes
        // (SNM) land within a modest factor of each other. The wins in Fig 9
        // come from pairing + tuning, not from the untuned layouts.
        let ratio = sm.makespan_s / snm.makespan_s;
        assert!((0.6..=1.6).contains(&ratio), "sm/snm {ratio}");
        // CBM co-locates two I/O jobs per node and must beat both layouts.
        let cbm = run_untuned(&eng, 2, &w, MappingPolicy::Cbm);
        assert!(cbm.makespan_s < snm.makespan_s.min(sm.makespan_s));
    }

    #[test]
    fn cbm_packs_two_jobs_per_node() {
        let eng = EvalEngine::atom();
        let mut w = WorkloadScenario::Ws3.workload(InputSize::Small);
        w.jobs.truncate(4);
        let cbm = run_untuned(&eng, 1, &w, MappingPolicy::Cbm);
        let snm = run_untuned(&eng, 1, &w, MappingPolicy::Snm);
        // For I/O-bound jobs co-location wins on makespan.
        assert!(
            cbm.makespan_s < snm.makespan_s,
            "cbm {} snm {}",
            cbm.makespan_s,
            snm.makespan_s
        );
    }

    #[test]
    fn lanes_fall_back_gracefully_on_one_node() {
        let eng = EvalEngine::atom();
        let mut w = WorkloadScenario::Ws1.workload(InputSize::Small);
        w.jobs.truncate(2);
        let sm = run_untuned(&eng, 1, &w, MappingPolicy::Sm);
        let mnm1 = run_untuned(&eng, 1, &w, MappingPolicy::Mnm1);
        // With one node MNM1 degenerates to SM.
        assert!((sm.makespan_s - mnm1.makespan_s).abs() < 1e-6);
    }

    #[test]
    fn tuned_policy_without_context_is_a_typed_error() {
        for policy in [MappingPolicy::Ptm, MappingPolicy::Ecost, MappingPolicy::Ub] {
            assert!(policy.needs_context());
            let err = ConfiguredPolicy::new(policy, None)
                .err()
                .expect("must fail");
            assert!(
                matches!(err, EvalError::MissingContext { .. }),
                "{policy:?}: {err}"
            );
        }
        assert!(ConfiguredPolicy::new(MappingPolicy::Sm, None).is_ok());
    }

    #[test]
    fn invalid_cluster_inputs_are_typed_errors() {
        let eng = EvalEngine::atom();
        let w = WorkloadScenario::Ws1.workload(InputSize::Small);
        let sm = ConfiguredPolicy::new(MappingPolicy::Sm, None).expect("untuned");
        assert!(matches!(
            run_policy(&eng, 0, &w, &sm),
            Err(EvalError::InvalidInput { .. })
        ));
        let empty = Workload {
            name: "empty".into(),
            jobs: Vec::new(),
        };
        assert!(matches!(
            run_policy(&eng, 2, &empty, &sm),
            Err(EvalError::InvalidInput { .. })
        ));
    }

    #[test]
    fn open_queue_respects_arrivals() {
        // Without a tuned context we can't run ECoST here, but the arrival
        // machinery is policy-independent: jobs that arrive late must finish
        // later than the same jobs arriving at t=0 under CBM-style packing.
        // Exercise it through run_stream_open with a trivial policy via the
        // public open API using a minimal context… the cheap path: verify
        // the Poisson plumbing with a two-job workload and big gaps.
        let eng = EvalEngine::atom();
        let mut w = WorkloadScenario::Ws3.workload(InputSize::Small);
        w.jobs.truncate(2);
        // Build a minimal context around a mini database.
        let db = crate::database::ConfigDatabase::build(&eng, 0.0, 1).expect("db build");
        let classifier = crate::classify::RuleClassifier::fit(&db.signatures);
        let lkt = crate::stp::LktStp::from_database(&db);
        let pairing = PairingPolicy::default();
        let ctx = EcostContext {
            db: &db,
            stp: &lkt,
            classifier: &classifier,
            pairing: &pairing,
            noise: 0.0,
            seed: 1,
            pairing_mode: crate::pairing::PairingMode::DecisionTree,
        };
        let closed = run_ecost_open(&eng, 1, &w, &[0.0, 0.0], 2, &ctx).expect("closed run");
        let open = run_ecost_open(&eng, 1, &w, &[0.0, 400.0], 2, &ctx).expect("open run");
        assert!(
            open.makespan_s > closed.makespan_s + 100.0,
            "open {} closed {}",
            open.makespan_s,
            closed.makespan_s
        );
        // Energy (work) is similar either way.
        assert!((open.energy_dyn_j / closed.energy_dyn_j - 1.0).abs() < 0.35);
    }

    #[test]
    fn edp_wall_charges_all_nodes_idle() {
        let run = ClusterRun {
            makespan_s: 100.0,
            energy_dyn_j: 1000.0,
            nodes: 4,
        };
        // E_wall = 1000 + 16·4·100 = 7400; EDP = 100·7400.
        assert!((run.edp_wall(16.0) - 740_000.0).abs() < 1e-9);
    }
}
