//! Cluster-level application mapping policies (§8 of the paper) and the
//! discrete-event cluster scheduler that runs them.
//!
//! A workload is a stream of 16 applications (Table 3). An application's
//! *total* input scales with the cluster — "10GB input data size per node
//! presents 80GB … in an 8-node cluster" (§2.3) — so a job that spans
//! `s` of the `n` nodes processes `size·n/s` per node.
//!
//! Policies (the paper's names in brackets):
//!
//! * [`MappingPolicy::Sm`] — Serial Mapping [NT]: one application at a time
//!   over the whole cluster, untuned defaults.
//! * [`MappingPolicy::Mnm1`]/[`MappingPolicy::Mnm2`] — Multi-Node Mapping
//!   [NT]: 2 (resp. 4) applications in parallel, each on an equal share of
//!   the nodes. On clusters smaller than the lane count they degrade to the
//!   available parallelism.
//! * [`MappingPolicy::Snm`] — Single Node Mapping [NT]: one application per
//!   node, all 8 cores.
//! * [`MappingPolicy::Cbm`] — Core Balance Mapping [NT]: two applications
//!   per node, 4+4 cores, untuned.
//! * [`MappingPolicy::Ptm`] — Predict Tuning Mapping [NP, T]: one
//!   application per node, knobs predicted per application (no pairing).
//! * [`MappingPolicy::Ecost`] — the full controller [P, T]: classify →
//!   queue → pair (decision tree) → self-tune (STP).
//! * [`MappingPolicy::Ub`] — upper bound: brute-force best pairing (exact
//!   minimum-EDP perfect matching via bitmask DP) with oracle pair configs.

use crate::classify::RuleClassifier;
use crate::database::ConfigDatabase;
use crate::features::{profile_app, AppSignature, Testbed};
use crate::oracle::SweepCache;
use crate::pairing::PairingPolicy;
use crate::queue::WaitQueue;
use crate::stp::Stp;
use ecost_apps::{AppClass, Workload};
use ecost_mapreduce::executor::NodeSim;
use ecost_mapreduce::{JobSpec, TuningConfig};

/// One of the §8 mapping policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingPolicy {
    /// Serial Mapping [NT].
    Sm,
    /// Multi-Node Level 1 (2 lanes) [NT].
    Mnm1,
    /// Multi-Node Level 2 (4 lanes) [NT].
    Mnm2,
    /// Single Node Mapping [NT].
    Snm,
    /// Core Balance Mapping [NT].
    Cbm,
    /// Predict Tuning Mapping [NP, T].
    Ptm,
    /// The proposed controller [P, T].
    Ecost,
    /// Brute-force upper bound.
    Ub,
}

impl MappingPolicy {
    /// All policies in the paper's presentation order.
    pub const ALL: [MappingPolicy; 8] = [
        MappingPolicy::Sm,
        MappingPolicy::Mnm1,
        MappingPolicy::Mnm2,
        MappingPolicy::Snm,
        MappingPolicy::Cbm,
        MappingPolicy::Ptm,
        MappingPolicy::Ecost,
        MappingPolicy::Ub,
    ];

    /// Label as used in Fig 9.
    pub fn label(self) -> &'static str {
        match self {
            MappingPolicy::Sm => "SM",
            MappingPolicy::Mnm1 => "MNM1",
            MappingPolicy::Mnm2 => "MNM2",
            MappingPolicy::Snm => "SNM",
            MappingPolicy::Cbm => "CBM",
            MappingPolicy::Ptm => "PTM",
            MappingPolicy::Ecost => "ECoST",
            MappingPolicy::Ub => "UB",
        }
    }
}

/// Result of running a workload on the cluster under one policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterRun {
    /// Workload completion time, seconds.
    pub makespan_s: f64,
    /// Total dynamic energy across all nodes, joules.
    pub energy_dyn_j: f64,
    /// Cluster size the run used.
    pub nodes: usize,
}

impl ClusterRun {
    /// Wall EDP: every node draws idle power for the whole makespan.
    pub fn edp_wall(&self, node_idle_w: f64) -> f64 {
        let wall_energy = self.energy_dyn_j + node_idle_w * self.nodes as f64 * self.makespan_s;
        self.makespan_s * wall_energy
    }
}

/// Everything the tuned policies need, built once from the training set.
pub struct EcostContext<'a> {
    /// The §6.2 database (PTM's solo lookups, signature source).
    pub db: &'a ConfigDatabase,
    /// The self-tuning predictor used by ECoST.
    pub stp: &'a dyn Stp,
    /// Incoming-application classifier.
    pub classifier: &'a RuleClassifier,
    /// Pairing decision tree.
    pub pairing: &'a PairingPolicy,
    /// Shared sweep cache (UB).
    pub cache: &'a SweepCache,
    /// Counter measurement noise for the learning periods.
    pub noise: f64,
    /// Seed for the learning periods.
    pub seed: u64,
    /// Partner-selection mode (decision tree, or an ablation variant).
    pub pairing_mode: crate::pairing::PairingMode,
}

/// A workload job prepared for cluster scheduling.
#[derive(Clone)]
struct Prepared {
    sig: AppSignature,
    class: AppClass,
}

/// Run `workload` on an `n`-node cluster under `policy`.
///
/// `ctx` may be `None` for the untuned policies (SM/MNM/SNM/CBM); the tuned
/// ones (PTM/ECoST/UB) require it.
pub fn run_policy(
    tb: &Testbed,
    n: usize,
    workload: &Workload,
    policy: MappingPolicy,
    ctx: Option<&EcostContext<'_>>,
) -> ClusterRun {
    assert!(n >= 1, "need at least one node");
    assert!(!workload.is_empty(), "empty workload");
    match policy {
        MappingPolicy::Sm => run_lanes(tb, n, workload, 1),
        MappingPolicy::Mnm1 => run_lanes(tb, n, workload, 2.min(n)),
        MappingPolicy::Mnm2 => run_lanes(tb, n, workload, 4.min(n)),
        MappingPolicy::Snm => run_per_node(tb, n, workload, PerNodeMode::Default),
        MappingPolicy::Cbm => run_cbm(tb, n, workload),
        MappingPolicy::Ptm => run_per_node(
            tb,
            n,
            workload,
            PerNodeMode::Predicted(ctx.expect("PTM needs a context")),
        ),
        MappingPolicy::Ecost => run_ecost(tb, n, workload, ctx.expect("ECoST needs a context")),
        MappingPolicy::Ub => run_ub(tb, n, workload, ctx.expect("UB needs a context")),
    }
}

/// Per-node input share for a job spanning `span` of `n` nodes.
fn share_mb(size_per_node_mb: f64, n: usize, span: usize) -> f64 {
    size_per_node_mb * n as f64 / span as f64
}

/// SM / MNM: `lanes` groups of `n/lanes` nodes each run jobs serially.
/// Shards within a lane are symmetric, so one representative node is
/// simulated per job and its energy scaled by the lane's span.
fn run_lanes(tb: &Testbed, n: usize, workload: &Workload, lanes: usize) -> ClusterRun {
    let lanes = lanes.max(1).min(n);
    let span = (n / lanes).max(1);
    let cluster = ecost_sim::ClusterSpec::atom_cluster(n);
    let remote = ecost_sim::ClusterSpec::remote_shuffle_fraction(span);
    // Greedy: next job goes to the lane that frees up first.
    let mut lane_time = vec![0.0_f64; lanes];
    let mut energy = 0.0;
    for (app, size) in &workload.jobs {
        let lane = (0..lanes)
            .min_by(|&a, &b| lane_time[a].partial_cmp(&lane_time[b]).expect("finite"))
            .expect("lanes >= 1");
        let cfg = TuningConfig::hadoop_default(tb.node.cores);
        let job = JobSpec::from_profile(
            app.profile().clone(),
            share_mb(size.per_node_mb(), n, span),
            cfg,
        )
        .with_remote_shuffle(remote);
        let mut node = NodeSim::with_nic(
            tb.node.clone(),
            tb.fw.clone(),
            cluster.nic_bw_mbps,
            cluster.nic_active_power_w,
        );
        node.submit(job).expect("full node available");
        node.run_to_completion().expect("simulation");
        lane_time[lane] += node.now();
        energy += node.energy_j() * span as f64;
    }
    ClusterRun {
        makespan_s: lane_time.into_iter().fold(0.0, f64::max),
        energy_dyn_j: energy,
        nodes: n,
    }
}

enum PerNodeMode<'a, 'b> {
    /// Untuned Hadoop defaults (SNM).
    Default,
    /// Per-application predicted solo config (PTM).
    Predicted(&'a EcostContext<'b>),
}

/// SNM / PTM: one application per node, jobs dispatched to the earliest-free
/// node.
fn run_per_node(tb: &Testbed, n: usize, workload: &Workload, mode: PerNodeMode<'_, '_>) -> ClusterRun {
    let mut node_time = vec![0.0_f64; n];
    let mut energy = 0.0;
    for (app, size) in &workload.jobs {
        let input = share_mb(size.per_node_mb(), n, 1);
        let cfg = match &mode {
            PerNodeMode::Default => TuningConfig::hadoop_default(tb.node.cores),
            PerNodeMode::Predicted(ctx) => {
                let sig = profile_app(tb, app.profile(), input, ctx.noise, ctx.seed);
                ctx.db.nearest_solo(&sig.key()).config
            }
        };
        let node = (0..n)
            .min_by(|&a, &b| node_time[a].partial_cmp(&node_time[b]).expect("finite"))
            .expect("n >= 1");
        let mut sim = NodeSim::new(tb.node.clone(), tb.fw.clone());
        sim.submit(JobSpec::from_profile(app.profile().clone(), input, cfg))
            .expect("empty node");
        sim.run_to_completion().expect("simulation");
        node_time[node] += sim.now();
        energy += sim.energy_j();
    }
    ClusterRun {
        makespan_s: node_time.into_iter().fold(0.0, f64::max),
        energy_dyn_j: energy,
        nodes: n,
    }
}

/// CBM: two applications per node at 4+4 cores, untuned; a finishing job is
/// immediately replaced from the queue (FIFO).
fn run_cbm(tb: &Testbed, n: usize, workload: &Workload) -> ClusterRun {
    let half = (tb.node.cores / 2).max(1);
    let cfg = TuningConfig {
        mappers: half,
        ..TuningConfig::hadoop_default(tb.node.cores)
    };
    let mut queue: std::collections::VecDeque<JobSpec> = workload
        .jobs
        .iter()
        .map(|(app, size)| {
            JobSpec::from_profile(app.profile().clone(), share_mb(size.per_node_mb(), n, 1), cfg)
        })
        .collect();
    let mut nodes: Vec<NodeSim> = (0..n)
        .map(|_| NodeSim::new(tb.node.clone(), tb.fw.clone()))
        .collect();
    // Initial fill: two jobs per node.
    for node in &mut nodes {
        for _ in 0..2 {
            if let Some(job) = queue.pop_front() {
                node.submit(job).expect("fits");
            }
        }
    }
    drive_cluster(&mut nodes, |node| {
        while node.active_jobs() < 2 {
            match queue.pop_front() {
                Some(job) => {
                    node.submit(job).expect("half the cores are free");
                }
                None => break,
            }
        }
    });
    collect(nodes, n)
}

/// How a streaming scheduler picks partners and configurations. Implemented
/// by ECoST (classifier + decision tree + STP) and by the oracle-streamed
/// upper bound (perfect pairing + perfect tuning).
trait StreamPolicy {
    /// Given the job that anchors the node (already running or just taken
    /// from the head) and the eligible queue candidates, return the position
    /// *within `candidates`* of the chosen partner and the full pair
    /// configuration (`.a` for the anchor, `.b` for the partner).
    fn pick(
        &self,
        anchor: &Prepared,
        candidates: &[&Prepared],
        cores: u32,
    ) -> (usize, ecost_mapreduce::PairConfig);

    /// Configuration for a job running alone (tail of the workload).
    fn solo_config(&self, job: &Prepared, cores: u32) -> TuningConfig;
}

/// ECoST's decisions: partner class by the Fig 4 decision tree, knobs by STP.
struct EcostPolicy<'a, 'b> {
    ctx: &'a EcostContext<'b>,
}

impl StreamPolicy for EcostPolicy<'_, '_> {
    fn pick(
        &self,
        anchor: &Prepared,
        candidates: &[&Prepared],
        cores: u32,
    ) -> (usize, ecost_mapreduce::PairConfig) {
        let classes: Vec<AppClass> = candidates.iter().map(|p| p.class).collect();
        let pick = match self.ctx.pairing_mode {
            crate::pairing::PairingMode::DecisionTree => self
                .ctx
                .pairing
                .choose(&classes)
                .expect("candidates non-empty"),
            crate::pairing::PairingMode::Fifo => 0,
            crate::pairing::PairingMode::Random(seed) => {
                // Deterministic pseudo-pick from the anchor's identity.
                let mut h = seed ^ anchor.sig.input_mb.to_bits();
                for b in anchor.sig.profile.name.bytes() {
                    h = h.wrapping_mul(0x100000001b3).wrapping_add(u64::from(b));
                }
                (h as usize) % candidates.len()
            }
        };
        let mut cfg = self.ctx.stp.choose(&anchor.sig, &candidates[pick].sig, cores);
        if cfg.cores() > cores {
            cfg.b.mappers = (cores - cfg.a.mappers.min(cores - 1)).max(1);
        }
        (pick, cfg)
    }

    fn solo_config(&self, job: &Prepared, _cores: u32) -> TuningConfig {
        self.ctx.db.nearest_solo(&job.sig.key()).config
    }
}

/// Perfect decisions (upper bound): partner and knobs from the brute-force
/// pair oracle.
struct OraclePolicy<'a, 'b> {
    tb: &'a Testbed,
    ctx: &'a EcostContext<'b>,
}

impl StreamPolicy for OraclePolicy<'_, '_> {
    fn pick(
        &self,
        anchor: &Prepared,
        candidates: &[&Prepared],
        cores: u32,
    ) -> (usize, ecost_mapreduce::PairConfig) {
        let idle = self.tb.idle_w();
        let (pick, run) = candidates
            .iter()
            .enumerate()
            .map(|(i, cand)| {
                let run = self.ctx.cache.best_pair(
                    self.tb,
                    &anchor.sig.profile,
                    anchor.sig.input_mb,
                    &cand.sig.profile,
                    cand.sig.input_mb,
                );
                (i, run)
            })
            .min_by(|a, b| {
                a.1.metrics
                    .edp_wall(idle)
                    .partial_cmp(&b.1.metrics.edp_wall(idle))
                    .expect("finite")
            })
            .expect("candidates non-empty");
        let mut cfg = run.config;
        if cfg.cores() > cores {
            cfg.b.mappers = (cores - cfg.a.mappers.min(cores - 1)).max(1);
        }
        (pick, cfg)
    }

    fn solo_config(&self, job: &Prepared, _cores: u32) -> TuningConfig {
        crate::oracle::best_solo(self.tb, &job.sig.profile, job.sig.input_mb).config
    }
}

/// Shared streaming driver: two jobs per node, replacements admitted the
/// moment a slot frees, decisions delegated to `policy`.
fn run_stream(
    tb: &Testbed,
    n: usize,
    prepared: Vec<Prepared>,
    policy: &dyn StreamPolicy,
) -> ClusterRun {
    run_stream_open(tb, n, prepared, None, 2, policy)
}

/// As [`run_stream`] but with explicit arrival times (open-queue operation)
/// and a configurable head-reservation allowance. `arrivals[i]` is the
/// submission time of `prepared[i]`; `None` submits everything at t = 0.
fn run_stream_open(
    tb: &Testbed,
    n: usize,
    prepared: Vec<Prepared>,
    arrivals: Option<&[f64]>,
    max_head_skips: u32,
    policy: &dyn StreamPolicy,
) -> ClusterRun {
    let cores = tb.node.cores;
    let mut queue: WaitQueue<Prepared> = WaitQueue::new(max_head_skips);
    // Jobs not yet arrived, soonest first; the stable sort keeps FIFO order
    // among simultaneous arrivals.
    let mut pending: std::collections::VecDeque<(f64, Prepared)> = {
        let times: Vec<f64> = match arrivals {
            Some(t) => {
                assert_eq!(t.len(), prepared.len(), "one arrival per job");
                t.to_vec()
            }
            None => vec![0.0; prepared.len()],
        };
        let mut v: Vec<(f64, Prepared)> = times.into_iter().zip(prepared).collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite arrival"));
        v.into()
    };

    let mut nodes: Vec<NodeSim> = (0..n)
        .map(|_| NodeSim::new(tb.node.clone(), tb.fw.clone()))
        .collect();
    let mut running: Vec<Vec<(ecost_mapreduce::JobHandle, Prepared, u32)>> = vec![Vec::new(); n];

    let dispatch = |node: &mut NodeSim,
                    running: &mut Vec<(ecost_mapreduce::JobHandle, Prepared, u32)>,
                    queue: &mut WaitQueue<Prepared>| {
        while running.len() < 2 && !queue.is_empty() && node.free_cores() >= 1 {
            if running.is_empty() {
                // Empty node: honour FIFO for the first job…
                let first = queue.take(0).payload;
                let eligible = queue.eligible();
                if eligible.is_empty() {
                    // Lone tail job: the whole node, solo-tuned.
                    let solo = policy.solo_config(&first, cores);
                    let h = node
                        .submit(JobSpec::from_profile(
                            first.sig.profile.clone(),
                            first.sig.input_mb,
                            solo,
                        ))
                        .expect("empty node");
                    running.push((h, first, solo.mappers));
                    continue;
                }
                let cands: Vec<&Prepared> =
                    eligible.iter().map(|(i, _)| &queue.peek(*i).payload).collect();
                let (pick, cfg) = policy.pick(&first, &cands, cores);
                let second = queue.take(eligible[pick].0).payload;
                let ha = node
                    .submit(JobSpec::from_profile(
                        first.sig.profile.clone(),
                        first.sig.input_mb,
                        cfg.a,
                    ))
                    .expect("empty node");
                let hb = node
                    .submit(JobSpec::from_profile(
                        second.sig.profile.clone(),
                        second.sig.input_mb,
                        cfg.b,
                    ))
                    .expect("budget checked");
                running.push((ha, first, cfg.a.mappers));
                running.push((hb, second, cfg.b.mappers));
            } else {
                // One job running: pick a partner for it.
                let eligible = queue.eligible();
                if eligible.is_empty() {
                    break;
                }
                let cands: Vec<&Prepared> =
                    eligible.iter().map(|(i, _)| &queue.peek(*i).payload).collect();
                let (pick, cfg) = policy.pick(&running[0].1, &cands, cores);
                let partner = queue.take(eligible[pick].0).payload;
                let free = node.free_cores();
                let mut bcfg = cfg.b;
                bcfg.mappers = bcfg.mappers.min(free).max(1);
                let h = node
                    .submit(JobSpec::from_profile(
                        partner.sig.profile.clone(),
                        partner.sig.input_mb,
                        bcfg,
                    ))
                    .expect("clamped to free cores");
                running.push((h, partner, bcfg.mappers));
            }
        }
    };

    let mut now = 0.0_f64;
    // Admit everything that has arrived by `now` into the wait queue.
    let admit = |now: f64, pending: &mut std::collections::VecDeque<(f64, Prepared)>,
                     queue: &mut WaitQueue<Prepared>| {
        while pending.front().is_some_and(|(t, _)| *t <= now + 1e-9) {
            let (_, p) = pending.pop_front().expect("checked non-empty");
            // "Small job" for the leap-forward rule = short estimated
            // runtime; the learning-period execution time is the estimate.
            let est = p.sig.profile_time_s;
            let class = p.class;
            queue.push(p, class, est);
        }
    };

    admit(now, &mut pending, &mut queue);
    for (node, run) in nodes.iter_mut().zip(&mut running) {
        dispatch(node, run, &mut queue);
    }
    loop {
        let mut any_active = false;
        let mut dt = f64::INFINITY;
        for node in &mut nodes {
            if let Some(t) = node.time_to_next_event().expect("rates solve") {
                any_active = true;
                dt = dt.min(t);
            }
        }
        // Next arrival can preempt the next completion; an idle cluster
        // fast-forwards to it.
        if let Some((t_arrive, _)) = pending.front() {
            dt = dt.min((t_arrive - now).max(0.0));
            any_active = true;
        }
        if !any_active {
            assert!(queue.is_empty(), "jobs stranded in queue");
            break;
        }
        debug_assert!(dt.is_finite());
        for node in &mut nodes {
            node.advance(dt).expect("advance");
        }
        now += dt;
        admit(now, &mut pending, &mut queue);
        for (node, run) in nodes.iter_mut().zip(&mut running) {
            let finished: Vec<ecost_mapreduce::JobHandle> =
                node.finished().iter().map(|o| o.id).collect();
            run.retain(|(h, _, _)| !finished.contains(h));
            dispatch(node, run, &mut queue);
        }
    }
    collect(nodes, n)
}

/// Open-queue ECoST: jobs arrive over time (the §5 "new jobs are arriving
/// to the datacenter" operation), with a configurable head-reservation
/// allowance. Used by the open-queue extension experiment.
pub fn run_ecost_open(
    tb: &Testbed,
    n: usize,
    workload: &Workload,
    arrivals: &[f64],
    max_head_skips: u32,
    ctx: &EcostContext<'_>,
) -> ClusterRun {
    let prepared = prepare_jobs(tb, n, workload, ctx);
    run_stream_open(
        tb,
        n,
        prepared,
        Some(arrivals),
        max_head_skips,
        &EcostPolicy { ctx },
    )
}

/// Learning period + classification for every workload job.
fn prepare_jobs(tb: &Testbed, n: usize, workload: &Workload, ctx: &EcostContext<'_>) -> Vec<Prepared> {
    workload
        .jobs
        .iter()
        .map(|(app, size)| {
            let input = share_mb(size.per_node_mb(), n, 1);
            let sig = profile_app(tb, app.profile(), input, ctx.noise, ctx.seed);
            let class = ctx.classifier.classify(&sig.features);
            Prepared { sig, class }
        })
        .collect()
}

/// ECoST: the full classify → enqueue → pair → tune loop of §5.
fn run_ecost(tb: &Testbed, n: usize, workload: &Workload, ctx: &EcostContext<'_>) -> ClusterRun {
    let prepared = prepare_jobs(tb, n, workload, ctx);
    run_stream(tb, n, prepared, &EcostPolicy { ctx })
}

/// UB: the better of two brute-force schedules —
///
/// 1. **oracle-streamed**: the same streaming scheduler ECoST uses, but with
///    the partner chosen by the true pair oracle and every configuration the
///    brute-forced optimum ("ECoST with a perfect predictor");
/// 2. **matched pairs**: exact minimum-EDP perfect matching (bitmask DP) over
///    the workload, pairs placed LPT onto nodes, each pair at its oracle
///    configuration, pairs running back-to-back.
///
/// Streaming usually wins (no barrier between pairs); the matching candidate
/// covers workloads where synchronised pairs happen to pack better.
fn run_ub(tb: &Testbed, n: usize, workload: &Workload, ctx: &EcostContext<'_>) -> ClusterRun {
    let streamed = {
        let prepared = prepare_jobs(tb, n, workload, ctx);
        run_stream(tb, n, prepared, &OraclePolicy { tb, ctx })
    };
    let matched = run_ub_matched(tb, n, workload, ctx);
    let idle = tb.idle_w();
    if streamed.edp_wall(idle) <= matched.edp_wall(idle) {
        streamed
    } else {
        matched
    }
}

/// The matched-pairs UB candidate (see [`run_ub`]).
fn run_ub_matched(tb: &Testbed, n: usize, workload: &Workload, ctx: &EcostContext<'_>) -> ClusterRun {
    let jobs: Vec<(ecost_apps::AppProfile, f64)> = workload
        .jobs
        .iter()
        .map(|(app, size)| (app.profile().clone(), share_mb(size.per_node_mb(), n, 1)))
        .collect();
    let k = jobs.len();
    assert!(k <= 20, "bitmask matching is sized for Table 3 workloads");
    let idle = tb.idle_w();

    // Pairwise oracle results (memoised by the shared cache).
    let mut pair_best = vec![vec![None; k]; k];
    for i in 0..k {
        for j in i + 1..k {
            let run = ctx
                .cache
                .best_pair(tb, &jobs[i].0, jobs[i].1, &jobs[j].0, jobs[j].1);
            pair_best[i][j] = Some(run);
        }
    }
    // DP over subsets: minimal total pair EDP perfect matching (odd tail: one
    // job may stay single at its solo optimum).
    let full: usize = (1 << k) - 1;
    let mut dp = vec![f64::INFINITY; 1 << k];
    let mut choice: Vec<Option<(usize, usize)>> = vec![None; 1 << k];
    dp[0] = 0.0;
    let solo_edp: Vec<f64> = (0..k)
        .map(|i| {
            crate::oracle::best_solo(tb, &jobs[i].0, jobs[i].1)
                .metrics
                .edp_wall(idle)
        })
        .collect();
    for mask in 0..=full {
        if dp[mask].is_infinite() {
            continue;
        }
        let Some(i) = (0..k).find(|i| mask & (1 << i) == 0) else {
            continue;
        };
        // Pair i with some j…
        for j in i + 1..k {
            if mask & (1 << j) != 0 {
                continue;
            }
            let cost = pair_best[i][j]
                .as_ref()
                .expect("computed above")
                .metrics
                .edp_wall(idle);
            let nm = mask | (1 << i) | (1 << j);
            if dp[mask] + cost < dp[nm] {
                dp[nm] = dp[mask] + cost;
                choice[nm] = Some((i, j));
            }
        }
        // …or leave i single (covers odd workloads).
        let nm = mask | (1 << i);
        if dp[mask] + solo_edp[i] < dp[nm] {
            dp[nm] = dp[mask] + solo_edp[i];
            choice[nm] = None;
        }
    }

    // Recover the matching.
    let mut pairs: Vec<(usize, Option<usize>)> = Vec::new();
    let mut mask = full;
    while mask != 0 {
        let i = (0..k).find(|i| mask & (1 << i) != 0).expect("mask non-zero");
        match choice[mask] {
            Some((a, b)) if mask & (1 << a) != 0 && mask & (1 << b) != 0 => {
                pairs.push((a, Some(b)));
                mask &= !((1 << a) | (1 << b));
            }
            _ => {
                pairs.push((i, None));
                mask &= !(1 << i);
            }
        }
    }

    // Run each pair at its oracle config; LPT-assign onto nodes.
    let mut runs: Vec<(f64, f64)> = pairs
        .into_iter()
        .map(|(i, j)| match j {
            Some(j) => {
                let best = pair_best[i.min(j)][i.max(j)].as_ref().expect("computed");
                (best.metrics.makespan_s, best.metrics.energy_j)
            }
            None => {
                let solo = crate::oracle::best_solo(tb, &jobs[i].0, jobs[i].1);
                (solo.metrics.exec_time_s, solo.metrics.energy_j)
            }
        })
        .collect();
    runs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    let mut node_time = vec![0.0_f64; n];
    let mut energy = 0.0;
    for (t, e) in runs {
        let node = (0..n)
            .min_by(|&a, &b| node_time[a].partial_cmp(&node_time[b]).expect("finite"))
            .expect("n >= 1");
        node_time[node] += t;
        energy += e;
    }
    ClusterRun {
        makespan_s: node_time.into_iter().fold(0.0, f64::max),
        energy_dyn_j: energy,
        nodes: n,
    }
}

/// Drive a set of nodes to completion, calling `refill` for each node after
/// every event so it can top up from its queue.
fn drive_cluster(nodes: &mut [NodeSim], mut refill: impl FnMut(&mut NodeSim)) {
    loop {
        let mut any = false;
        let mut dt = f64::INFINITY;
        for node in nodes.iter_mut() {
            if let Some(t) = node.time_to_next_event().expect("rates solve") {
                any = true;
                dt = dt.min(t);
            }
        }
        if !any {
            break;
        }
        for node in nodes.iter_mut() {
            node.advance(dt).expect("advance");
            refill(node);
        }
    }
}

fn collect(nodes: Vec<NodeSim>, n: usize) -> ClusterRun {
    ClusterRun {
        makespan_s: nodes.iter().map(NodeSim::now).fold(0.0, f64::max),
        energy_dyn_j: nodes.iter().map(NodeSim::energy_j).sum(),
        nodes: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecost_apps::{InputSize, WorkloadScenario};

    #[test]
    fn untuned_policies_complete_and_work_is_conserved() {
        let tb = Testbed::atom();
        // Small workload to keep tests quick: 4 I/O jobs.
        let mut w = WorkloadScenario::Ws3.workload(InputSize::Small);
        w.jobs.truncate(4);
        let sm = run_policy(&tb, 2, &w, MappingPolicy::Sm, None);
        let snm = run_policy(&tb, 2, &w, MappingPolicy::Snm, None);
        assert!(sm.makespan_s > 0.0 && snm.makespan_s > 0.0);
        // Without co-location or tuning, total work is conserved: spreading
        // each job across the cluster (SM) and spreading jobs across nodes
        // (SNM) land within a modest factor of each other. The wins in Fig 9
        // come from pairing + tuning, not from the untuned layouts.
        let ratio = sm.makespan_s / snm.makespan_s;
        assert!((0.6..=1.6).contains(&ratio), "sm/snm {ratio}");
        // CBM co-locates two I/O jobs per node and must beat both layouts.
        let cbm = run_policy(&tb, 2, &w, MappingPolicy::Cbm, None);
        assert!(cbm.makespan_s < snm.makespan_s.min(sm.makespan_s));
    }

    #[test]
    fn cbm_packs_two_jobs_per_node() {
        let tb = Testbed::atom();
        let mut w = WorkloadScenario::Ws3.workload(InputSize::Small);
        w.jobs.truncate(4);
        let cbm = run_policy(&tb, 1, &w, MappingPolicy::Cbm, None);
        let snm = run_policy(&tb, 1, &w, MappingPolicy::Snm, None);
        // For I/O-bound jobs co-location wins on makespan.
        assert!(cbm.makespan_s < snm.makespan_s, "cbm {} snm {}", cbm.makespan_s, snm.makespan_s);
    }

    #[test]
    fn lanes_fall_back_gracefully_on_one_node() {
        let tb = Testbed::atom();
        let mut w = WorkloadScenario::Ws1.workload(InputSize::Small);
        w.jobs.truncate(2);
        let sm = run_policy(&tb, 1, &w, MappingPolicy::Sm, None);
        let mnm1 = run_policy(&tb, 1, &w, MappingPolicy::Mnm1, None);
        // With one node MNM1 degenerates to SM.
        assert!((sm.makespan_s - mnm1.makespan_s).abs() < 1e-6);
    }

    #[test]
    fn open_queue_respects_arrivals() {
        // Without a tuned context we can't run ECoST here, but the arrival
        // machinery is policy-independent: jobs that arrive late must finish
        // later than the same jobs arriving at t=0 under CBM-style packing.
        // Exercise it through run_stream_open with a trivial policy via the
        // public open API using a minimal context… the cheap path: verify
        // the Poisson plumbing with a two-job workload and big gaps.
        let tb = Testbed::atom();
        let mut w = WorkloadScenario::Ws3.workload(InputSize::Small);
        w.jobs.truncate(2);
        // Build a minimal context around a mini database.
        let cache = crate::oracle::SweepCache::new();
        let db = crate::database::ConfigDatabase::build(&tb, &cache, 0.0, 1);
        let classifier = crate::classify::RuleClassifier::fit(&db.signatures);
        let lkt = crate::stp::LktStp::from_database(&db);
        let pairing = PairingPolicy::default();
        let ctx = EcostContext {
            db: &db,
            stp: &lkt,
            classifier: &classifier,
            pairing: &pairing,
            cache: &cache,
            noise: 0.0,
            seed: 1,
            pairing_mode: crate::pairing::PairingMode::DecisionTree,
        };
        let closed = run_ecost_open(&tb, 1, &w, &[0.0, 0.0], 2, &ctx);
        let open = run_ecost_open(&tb, 1, &w, &[0.0, 400.0], 2, &ctx);
        assert!(open.makespan_s > closed.makespan_s + 100.0,
            "open {} closed {}", open.makespan_s, closed.makespan_s);
        // Energy (work) is similar either way.
        assert!((open.energy_dyn_j / closed.energy_dyn_j - 1.0).abs() < 0.35);
    }

    #[test]
    fn edp_wall_charges_all_nodes_idle() {
        let run = ClusterRun {
            makespan_s: 100.0,
            energy_dyn_j: 1000.0,
            nodes: 4,
        };
        // E_wall = 1000 + 16·4·100 = 7400; EDP = 100·7400.
        assert!((run.edp_wall(16.0) - 740_000.0).abs() < 1e-9);
    }
}
