//! Pairing policy — Fig 4's decision tree driven by Fig 5's ranking.
//!
//! Fig 5 ranks every class pair by the best EDP it can reach over all core
//! partitionings with tuned knobs. Because absolute pair EDP mixes in the
//! applications' own job lengths, the ranking here uses the *normalised*
//! quantity `COLAO EDP / ILAO EDP` (how much a class combination gains from
//! being co-located) — on the paper's measurements both orderings coincide:
//! I-I first, then I-H/I-C and the H/C combinations, with every M-containing
//! pair last. The scheduler's decision tree follows: an I partner is always
//! preferred, then H, then C, and M only when nothing else waits.

use crate::database::ConfigDatabase;
use crate::engine::{EvalEngine, EvalError};
use ecost_apps::class::ClassPair;
use ecost_apps::{AppClass, InputSize, TRAINING_APPS};

/// How the scheduler picks a partner from the wait queue — the paper's
/// decision tree, plus the ablation modes used to quantify its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairingMode {
    /// Fig 4's class-priority decision tree (the proposed technique).
    DecisionTree,
    /// Ignore classes entirely: always pair with the queue head (what a
    /// class-blind FIFO scheduler would do).
    Fifo,
    /// Uniformly random eligible candidate (seeded) — the lower bar.
    Random(u64),
}

/// Class-priority pairing policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairingPolicy {
    /// Partner classes from most to least preferred.
    pub priority: [AppClass; 4],
}

impl Default for PairingPolicy {
    /// The paper's derived priority: I ≻ H ≻ C ≻ M.
    fn default() -> PairingPolicy {
        PairingPolicy {
            priority: [AppClass::I, AppClass::H, AppClass::C, AppClass::M],
        }
    }
}

impl PairingPolicy {
    /// Derive the policy from a class-pair ranking (lower score = better
    /// pair): each class scores the mean of its pairs' scores; classes sort
    /// ascending.
    pub fn from_ranking(ranking: &[(ClassPair, f64)]) -> PairingPolicy {
        let mut scores: Vec<(AppClass, f64, usize)> =
            AppClass::ALL.iter().map(|&c| (c, 0.0, 0)).collect();
        for (cp, score) in ranking {
            for entry in &mut scores {
                if cp.first == entry.0 || cp.second == entry.0 {
                    entry.1 += score;
                    entry.2 += 1;
                }
            }
        }
        let mut order: Vec<(AppClass, f64)> = scores
            .into_iter()
            .map(|(c, s, n)| (c, if n > 0 { s / n as f64 } else { f64::INFINITY }))
            .collect();
        order.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut priority = [AppClass::C; 4];
        for (slot, (c, _)) in priority.iter_mut().zip(order) {
            *slot = c;
        }
        PairingPolicy { priority }
    }

    /// Preference rank of a partner class (0 = most preferred; an absent
    /// class — impossible for a well-formed policy — ranks last).
    pub fn rank(&self, class: AppClass) -> usize {
        self.priority
            .iter()
            .position(|c| *c == class)
            .unwrap_or(self.priority.len())
    }

    /// Among candidate partner classes, the index of the preferred one
    /// (ties resolve to the earliest candidate — FIFO order).
    pub fn choose(&self, candidates: &[AppClass]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(i, c)| (self.rank(**c), *i))
            .map(|(i, _)| i)
    }
}

/// Fig 5's measurement: for every class pair, the best normalised EDP
/// (COLAO/ILAO) across the training pairs of those classes at `size`.
/// Lower = the classes co-locate better. Sorted ascending (best first).
/// All sweeps come from the shared engine memo.
pub fn derive_ranking(
    engine: &EvalEngine,
    size: InputSize,
) -> Result<Vec<(ClassPair, f64)>, EvalError> {
    let idle = engine.idle_w();
    let mb = size.per_node_mb();
    let mut best: std::collections::HashMap<ClassPair, f64> = std::collections::HashMap::new();
    for (i, &a) in TRAINING_APPS.iter().enumerate() {
        for &b in &TRAINING_APPS[i..] {
            let cp = ClassPair::new(a.class(), b.class());
            let colao = engine.best_pair(a.profile(), mb, b.profile(), mb)?;
            let sa = engine.best_solo(a.profile(), mb)?;
            let sb = engine.best_solo(b.profile(), mb)?;
            let ilao = ecost_mapreduce::PairMetrics::serial(&[sa.metrics, sb.metrics]);
            let ratio = colao.metrics.edp_wall(idle) / ilao.edp_wall(idle);
            let slot = best.entry(cp).or_insert(f64::INFINITY);
            *slot = slot.min(ratio);
        }
    }
    let mut out: Vec<(ClassPair, f64)> = best.into_iter().collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1));
    Ok(out)
}

/// Same ranking from an already-built database plus ILAO solos (no extra
/// simulation). Fails on a database missing the solo entries its pairs
/// reference.
pub fn ranking_from_database(db: &ConfigDatabase) -> Result<Vec<(ClassPair, f64)>, EvalError> {
    let mut best: std::collections::HashMap<ClassPair, f64> = std::collections::HashMap::new();
    for p in &db.pairs {
        let solo = |app: ecost_apps::App| {
            db.solos
                .iter()
                .find(|s| s.app == app && s.size == p.size)
                .ok_or(EvalError::NoCandidates {
                    what: "solo entry missing from the database",
                })
        };
        let sa = solo(p.a)?;
        let sb = solo(p.b)?;
        // ILAO wall EDP from stored per-app numbers: delay adds, energy adds.
        let ta = sa.exec_time_s;
        let tb_ = sb.exec_time_s;
        let ea = sa.edp_wall / ta; // wall energy (EDP = T·E_wall)
        let eb = sb.edp_wall / tb_;
        let ilao = (ta + tb_) * (ea + eb);
        let ratio = p.edp_wall / ilao;
        let slot = best.entry(p.classes).or_insert(f64::INFINITY);
        *slot = slot.min(ratio);
    }
    let mut out: Vec<(ClassPair, f64)> = best.into_iter().collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecost_apps::AppClass::*;

    #[test]
    fn default_priority_matches_paper() {
        let p = PairingPolicy::default();
        assert_eq!(p.priority, [I, H, C, M]);
        assert_eq!(p.rank(I), 0);
        assert_eq!(p.rank(M), 3);
    }

    #[test]
    fn choose_prefers_io_then_fifo() {
        let p = PairingPolicy::default();
        assert_eq!(p.choose(&[C, I, M, I]), Some(1)); // first I wins
        assert_eq!(p.choose(&[M, M, C]), Some(2));
        assert_eq!(p.choose(&[M, M]), Some(0));
        assert_eq!(p.choose(&[]), None);
    }

    #[test]
    fn from_ranking_orders_classes_by_pair_scores() {
        // Hand-built ranking where M pairs are terrible and I pairs great.
        let ranking = vec![
            (ClassPair::new(I, I), 0.3),
            (ClassPair::new(I, H), 0.4),
            (ClassPair::new(H, H), 0.5),
            (ClassPair::new(C, I), 0.55),
            (ClassPair::new(C, H), 0.6),
            (ClassPair::new(C, C), 0.8),
            (ClassPair::new(I, M), 0.85),
            (ClassPair::new(H, M), 0.9),
            (ClassPair::new(C, M), 0.95),
            (ClassPair::new(M, M), 1.0),
        ];
        let p = PairingPolicy::from_ranking(&ranking);
        assert_eq!(p.priority[0], I);
        assert_eq!(p.priority[3], M);
    }
}
