//! Deterministic arrival routing across fleet shards.
//!
//! The router is the only component that sees the whole arrival stream;
//! everything downstream of it is per-shard. Both policies are pure
//! functions of (seed, arrival sequence, epoch backlog snapshots), so the
//! shard assignment — and therefore every merged fleet result — is
//! byte-identical across runs and across worker-thread interleavings.

use crate::scheduler::class_char;
use ecost_apps::AppClass;

/// How the fleet assigns arrivals to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Seeded rendezvous (highest-random-weight) hashing on the arrival's
    /// behaviour class: every arrival of a class lands on the same shard
    /// for the fleet's lifetime, concentrating that class's profiling and
    /// sweep entries in one shard's engine cache. Adding or removing
    /// shards only moves the classes whose winning shard changed — the
    /// rendezvous property. Backlog-blind: with fewer classes than
    /// shards, some shards receive no work.
    Rendezvous {
        /// Hash seed; different seeds give different class→shard maps.
        seed: u64,
    },
    /// Route each arrival to the shard with the fewest outstanding jobs:
    /// the per-shard backlog gauges sampled at the last epoch barrier,
    /// plus the arrivals already routed in the current epoch. Ties break
    /// to the lowest shard index. Load-aware, class-blind.
    LeastOutstanding,
}

/// The dispatcher in front of the shards. Routing state is epoch-scoped:
/// [`ArrivalRouter::begin_epoch`] installs the backlog snapshot the
/// least-outstanding policy works from, and [`ArrivalRouter::route`]
/// assigns one arrival (counting it against its shard so in-epoch batches
/// spread instead of piling onto one shard).
pub(crate) struct ArrivalRouter {
    policy: RoutePolicy,
    /// Per-shard outstanding-job estimate: last barrier snapshot plus
    /// in-epoch routed arrivals.
    outstanding: Vec<u64>,
}

impl ArrivalRouter {
    pub(crate) fn new(policy: RoutePolicy, shards: usize) -> ArrivalRouter {
        ArrivalRouter {
            policy,
            outstanding: vec![0; shards],
        }
    }

    /// Install the backlog snapshot sampled at an epoch barrier.
    pub(crate) fn begin_epoch(&mut self, backlogs: &[u64]) {
        debug_assert_eq!(backlogs.len(), self.outstanding.len());
        self.outstanding.copy_from_slice(backlogs);
    }

    /// Assign one arrival of class `class` to a shard.
    pub(crate) fn route(&mut self, class: AppClass) -> usize {
        let shard = match self.policy {
            RoutePolicy::Rendezvous { seed } => self.rendezvous(seed, class),
            RoutePolicy::LeastOutstanding => self.least_outstanding(),
        };
        self.outstanding[shard] += 1;
        shard
    }

    /// Highest-random-weight pick: every (class, shard) pair hashes to a
    /// score, the arrival goes to the argmax. Ties break to the lowest
    /// shard index (`>` comparison on a strictly increasing scan).
    fn rendezvous(&self, seed: u64, class: AppClass) -> usize {
        let mut best = 0usize;
        let mut best_score = 0u64;
        for shard in 0..self.outstanding.len() {
            let score = mix(seed, class, shard as u64);
            if shard == 0 || score > best_score {
                best = shard;
                best_score = score;
            }
        }
        best
    }

    /// Argmin of the outstanding estimates, ties to the lowest index.
    fn least_outstanding(&self) -> usize {
        let mut best = 0usize;
        for (shard, &load) in self.outstanding.iter().enumerate() {
            if load < self.outstanding[best] {
                best = shard;
            }
        }
        best
    }
}

/// FNV-1a fold of (seed, class, shard) into a rendezvous score.
fn mix(seed: u64, class: AppClass, shard: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in seed
        .to_le_bytes()
        .into_iter()
        .chain([class_char(class) as u8])
        .chain(shard.to_le_bytes())
    {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLASSES: [AppClass; 4] = [AppClass::C, AppClass::H, AppClass::I, AppClass::M];

    #[test]
    fn rendezvous_is_deterministic_and_class_stable() {
        let mut r1 = ArrivalRouter::new(RoutePolicy::Rendezvous { seed: 7 }, 8);
        let mut r2 = ArrivalRouter::new(RoutePolicy::Rendezvous { seed: 7 }, 8);
        for class in CLASSES {
            let s = r1.route(class);
            assert_eq!(s, r2.route(class));
            // Same class always lands on the same shard.
            assert_eq!(s, r1.route(class));
        }
    }

    #[test]
    fn rendezvous_reshuffles_with_the_seed() {
        let maps: Vec<Vec<usize>> = (0..16)
            .map(|seed| {
                let mut r = ArrivalRouter::new(RoutePolicy::Rendezvous { seed }, 16);
                CLASSES.iter().map(|&c| r.route(c)).collect()
            })
            .collect();
        assert!(maps.iter().any(|m| m != &maps[0]));
    }

    #[test]
    fn least_outstanding_balances_and_breaks_ties_low() {
        let mut r = ArrivalRouter::new(RoutePolicy::LeastOutstanding, 3);
        r.begin_epoch(&[5, 0, 0]);
        // Empty shards fill round-robin-like (ties to lowest index)…
        assert_eq!(r.route(AppClass::C), 1);
        assert_eq!(r.route(AppClass::C), 2);
        assert_eq!(r.route(AppClass::C), 1);
        assert_eq!(r.route(AppClass::C), 2);
        // …and the loaded shard only gets work once the others catch up.
        assert_eq!(r.route(AppClass::C), 1);
        r.begin_epoch(&[0, 9, 9]);
        assert_eq!(r.route(AppClass::H), 0);
    }
}
