//! The fleet layer: N independent calendar-scheduler shards behind a
//! deterministic arrival router.
//!
//! One event-calendar driver bounds decision throughput by a single heap
//! and one engine's memo tables. Production co-location clusters absorb
//! "millions of users" scale differently: machines are partitioned into
//! independently scheduled groups behind a common dispatcher. This module
//! reproduces that shape in simulation:
//!
//! * **Shards.** Each shard owns `nodes_per_shard` nodes, one
//!   [`CalendarShard`] event loop, one [`EvalEngine`] with its own
//!   (optionally bounded) memo tables and scoped telemetry counters
//!   (`fleet.shard<i>.engine.*`), and optionally a service front — the
//!   admission/deadline/breaker ladder of [`crate::service`] wrapped
//!   around its tuning decisions.
//! * **Router.** Arrivals are assigned to shards by a [`RoutePolicy`]:
//!   seeded rendezvous hashing on the application's behaviour class, or
//!   least-outstanding-jobs balancing driven by the per-shard backlog
//!   gauges (`fleet.shard<i>.backlog`).
//! * **Epoch barrier.** Shards advance in lockstep over virtual-time
//!   epochs of `epoch_s` simulated seconds: the router drains every
//!   arrival due in the epoch, hands each shard its batch, all shards
//!   advance to the epoch horizon *in parallel*, and the barrier samples
//!   backlogs for the next routing round.
//!
//! # Determinism contract
//!
//! Merged fleet results are byte-identical across runs, worker-thread
//! counts and interleavings, because every cross-shard interaction is
//! pinned to the barrier:
//!
//! * routing decisions depend only on (seed, arrival sequence, backlog
//!   snapshots taken at barriers) — never on wall-clock or thread timing;
//! * within an epoch shards share nothing but the (thread-safe,
//!   order-insensitive) metrics registry; each shard's event loop is
//!   sequential and self-contained;
//! * merging reads shard outcomes in shard-index order.
//!
//! A single-shard fleet is **bit-identical** to
//! [`crate::mapping::run_ecost_open_stream`] on the same stream — same
//! makespan/energy bits, same fault report ([`FleetRun::assert_single_shard_identity`]
//! checks this at runtime, the way `ServiceConfig::unlimited` pins the
//! serviced driver). Engine cache *activity* (hit/miss/eviction counts)
//! is not part of that contract: the fleet profiles arrivals epoch by
//! epoch while the monolithic driver profiles the whole stream up front,
//! which reorders memo probes without changing any value.
//!
//! With a recording (non-noop) recorder, trace-event *order* across
//! shards follows thread interleaving; metrics and results stay exact.

mod router;

pub use router::RoutePolicy;

use crate::engine::{CacheBudget, EngineStats, EvalEngine, EvalError};
use crate::features::Testbed;
use crate::mapping::{
    prepare_one, ClusterRun, EcostContext, EcostPolicy, FaultReport, FaultSetup, FaultedRun,
    OpenArrival, OpenOptions, ServicedPolicy,
};
use crate::scheduler::calendar::TIE_EPS;
use crate::scheduler::{CalendarShard, StreamPolicy};
use crate::service::{ServiceConfig, ServiceCore, ServiceReport};
use ecost_sim::ServiceFaultSpec;
use ecost_telemetry::{Gauge, Recorder};
use rayon::prelude::*;
use router::ArrivalRouter;

/// Service front configuration for a fleet: one [`ServiceConfig`] shared
/// by every shard, with per-shard fault injection.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetService {
    /// Service knobs, applied to every shard's service core.
    pub config: ServiceConfig,
    /// Injected service faults: one spec broadcast to every shard, or
    /// exactly one spec per shard (e.g. to open a single shard's
    /// breaker).
    pub faults: Vec<ServiceFaultSpec>,
}

/// Shape and policies of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of independent scheduler shards (≥ 1).
    pub shards: usize,
    /// Nodes owned by each shard (≥ 1).
    pub nodes_per_shard: usize,
    /// Epoch-barrier length, simulated seconds (finite, > 0). Smaller
    /// epochs give the least-outstanding router fresher backlog data;
    /// the schedule itself is epoch-length-invariant.
    pub epoch_s: f64,
    /// Arrival-to-shard routing policy.
    pub route: RoutePolicy,
    /// Calendar-driver knobs, applied per shard.
    pub open: OpenOptions,
    /// Fault injection, applied per shard: the plan's node indices are
    /// local to each shard's `nodes_per_shard` node set.
    pub setup: FaultSetup,
    /// Memo budget for every shard engine ([`CacheBudget::unbounded`]
    /// for the classic unbounded tables).
    pub cache_budget: CacheBudget,
    /// Optional service front (admission, deadlines, breaker) on every
    /// shard's tuning decisions.
    pub service: Option<FleetService>,
}

impl FleetConfig {
    /// A plain fleet: no faults, no service front, unbounded caches,
    /// default calendar knobs, 60-second epochs, rendezvous routing.
    pub fn rendezvous(shards: usize, nodes_per_shard: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            shards,
            nodes_per_shard,
            epoch_s: 60.0,
            route: RoutePolicy::Rendezvous { seed },
            open: OpenOptions::default(),
            setup: FaultSetup::default(),
            cache_budget: CacheBudget::unbounded(),
            service: None,
        }
    }

    fn validate(&self) -> Result<(), EvalError> {
        let bad = |what| Err(EvalError::InvalidInput { what });
        if self.shards < 1 {
            return bad("fleet needs at least one shard");
        }
        if self.nodes_per_shard < 1 {
            return bad("fleet shards need at least one node");
        }
        if !(self.epoch_s.is_finite() && self.epoch_s > 0.0) {
            return bad("fleet epoch_s must be finite and positive");
        }
        self.open.validate()?;
        if let Some(svc) = &self.service {
            if svc.faults.len() != 1 && svc.faults.len() != self.shards {
                return bad("fleet service faults must be one spec or one per shard");
            }
        }
        Ok(())
    }
}

/// One shard's share of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Arrivals the router assigned to this shard.
    pub arrivals: u64,
    /// The shard's schedule outcome over its own node set.
    pub run: ClusterRun,
    /// The shard's fault/degradation counters.
    pub report: FaultReport,
    /// The shard engine's lifetime counters (its scoped telemetry rows).
    pub stats: EngineStats,
    /// Service outcome counters, when the fleet ran a service front.
    pub service: Option<ServiceReport>,
}

/// Merged outcome of a fleet run, plus the per-shard breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRun {
    /// Per-shard outcomes, in shard-index order.
    pub shards: Vec<ShardReport>,
    /// Fleet-level outcome: makespan is the max over shards (the shards
    /// run concurrently), energy and node count sum.
    pub run: ClusterRun,
    /// Fault/degradation counters summed over shards.
    pub report: FaultReport,
    /// Engine counters summed over shards (per-shard counters are
    /// scoped, so this is a true sum — no double-counting).
    pub stats: EngineStats,
    /// Merged service counters (sums; `queue_peak` is the max), when a
    /// service front ran.
    pub service: Option<ServiceReport>,
    /// Total arrivals routed ( = scheduling decisions made by the fleet).
    pub arrivals: u64,
    /// Epoch barriers executed (empty epochs are fast-forwarded, so this
    /// counts barrier rounds, not elapsed virtual epochs).
    pub epochs: u64,
    /// Largest single-epoch arrival batch — the fleet's peak resident
    /// trace footprint, independent of total arrival count.
    pub peak_epoch_arrivals: usize,
}

impl FleetRun {
    /// Runtime assertion of the single-shard identity contract: a
    /// 1-shard fleet's outcome must be bit-identical (makespan, energy,
    /// node count, every fault counter) to the monolithic calendar
    /// driver's [`FaultedRun`] on the same stream. Call it from benches
    /// the way [`ServiceConfig::unlimited`] callers assert serviced
    /// identity; returns an [`EvalError::Internal`] on any divergence so
    /// CI fails loudly instead of publishing drifted numbers.
    pub fn assert_single_shard_identity(&self, mono: &FaultedRun) -> Result<(), EvalError> {
        let drift = EvalError::Internal {
            what: "single-shard fleet diverged from the monolithic calendar driver",
        };
        if self.shards.len() != 1 {
            return Err(EvalError::InvalidInput {
                what: "single-shard identity check needs a 1-shard fleet",
            });
        }
        let same_run = self.run.makespan_s.to_bits() == mono.run.makespan_s.to_bits()
            && self.run.energy_dyn_j.to_bits() == mono.run.energy_dyn_j.to_bits()
            && self.run.nodes == mono.run.nodes;
        let same_report = self.report == mono.report
            && self.report.retry_backoff_s.to_bits() == mono.report.retry_backoff_s.to_bits();
        if same_run && same_report {
            Ok(())
        } else {
            Err(drift)
        }
    }
}

/// A shard's policy: plain ECoST decisions, or the same decisions behind
/// a per-shard service core.
enum LanePolicy<'a, 'b> {
    Plain(EcostPolicy<'a, 'b>),
    // Boxed: the service core is an order of magnitude larger than the
    // plain policy, and a fleet holds one LanePolicy per shard.
    Serviced(Box<ServicedPolicy<'a, 'b>>),
}

impl LanePolicy<'_, '_> {
    fn as_stream(&self) -> &dyn StreamPolicy {
        match self {
            LanePolicy::Plain(p) => p,
            LanePolicy::Serviced(p) => p.as_ref(),
        }
    }

    fn config_fallbacks(&self) -> u64 {
        match self {
            LanePolicy::Plain(p) => p.config_fallbacks(),
            LanePolicy::Serviced(p) => p.config_fallbacks(),
        }
    }

    fn into_service_report(self) -> Option<ServiceReport> {
        match self {
            LanePolicy::Plain(_) => None,
            LanePolicy::Serviced(p) => Some(p.into_service_report()),
        }
    }
}

/// One shard's working state: its event loop, policy, this epoch's inbox
/// and a sticky error (the parallel map cannot short-circuit, so a failed
/// shard goes inert and the barrier surfaces the error afterwards).
struct Lane<'e, 'c> {
    shard: CalendarShard<'e>,
    policy: LanePolicy<'e, 'c>,
    engine: &'e EvalEngine,
    inbox: Vec<OpenArrival>,
    backlog_gauge: Gauge,
    arrivals: u64,
    err: Option<EvalError>,
}

impl Lane<'_, '_> {
    /// Prepare and push this epoch's inbox (in arrival order), then
    /// advance the event loop to the epoch horizon.
    fn step(&mut self, ctx: &EcostContext<'_>, horizon: f64) {
        let inbox = std::mem::take(&mut self.inbox);
        if self.err.is_some() {
            return;
        }
        for a in &inbox {
            let pushed = prepare_one(self.engine, a, ctx)
                .and_then(|job| self.shard.push_arrival(a.at_s, job));
            if let Err(e) = pushed {
                self.err = Some(e);
                return;
            }
        }
        if let Err(e) = self.shard.advance(self.policy.as_stream(), horizon) {
            self.err = Some(e);
        }
    }

    /// Drain the shard to completion and fold it into its report.
    fn finish(self) -> Result<ShardReport, EvalError> {
        let Lane {
            shard,
            policy,
            engine,
            arrivals,
            err,
            ..
        } = self;
        if let Some(e) = err {
            return Err(e);
        }
        let (run, mut report) = shard.finish(policy.as_stream())?;
        report.config_fallbacks += policy.config_fallbacks();
        let service = policy.into_service_report();
        Ok(ShardReport {
            arrivals,
            run,
            report,
            stats: engine.stats(),
            service,
        })
    }
}

/// Validate one arrival as it is pulled from the stream; the fleet never
/// holds more than one epoch of the trace, so validation is streaming
/// too.
fn validated(a: OpenArrival, last_at: &mut f64) -> Result<OpenArrival, EvalError> {
    if !(a.input_mb.is_finite() && a.input_mb > 0.0) {
        return Err(EvalError::InvalidInput {
            what: "arrival input sizes must be finite and positive",
        });
    }
    if !(a.at_s.is_finite() && a.at_s >= 0.0) {
        return Err(EvalError::InvalidInput {
            what: "arrival times must be finite and non-negative",
        });
    }
    if a.at_s < *last_at {
        return Err(EvalError::InvalidInput {
            what: "fleet arrivals must be in non-decreasing time order",
        });
    }
    *last_at = a.at_s;
    Ok(a)
}

/// Run ECoST over an arrival stream on a sharded fleet.
///
/// `arrivals` is consumed lazily — one epoch's batch at a time — so a
/// generator-backed stream (e.g. [`ecost_sim::TraceStream`] mapped into
/// [`OpenArrival`]s) replays millions of arrivals with peak memory
/// proportional to the densest epoch, not the trace length. Arrival
/// times must be non-decreasing (sorted streams; typed error otherwise).
///
/// Shard engines are built over clones of `tb` with counters scoped
/// `fleet.shard<i>` in `recorder`'s registry; pass [`Recorder::noop`]
/// when telemetry is not being collected. See the module docs for the
/// determinism contract.
pub fn run_fleet<I>(
    tb: &Testbed,
    cfg: &FleetConfig,
    arrivals: I,
    ctx: &EcostContext<'_>,
    recorder: &Recorder,
) -> Result<FleetRun, EvalError>
where
    I: IntoIterator<Item = OpenArrival>,
{
    cfg.validate()?;
    let shards = cfg.shards;

    let engines: Vec<EvalEngine> = (0..shards)
        .map(|i| {
            EvalEngine::with_scoped_recorder(
                tb.clone(),
                recorder.clone(),
                &format!("fleet.shard{i}"),
            )
            .with_cache_budget(cfg.cache_budget)
        })
        .collect();

    let mut lanes: Vec<Lane<'_, '_>> = Vec::with_capacity(shards);
    for (i, engine) in engines.iter().enumerate() {
        let policy = match &cfg.service {
            None => LanePolicy::Plain(EcostPolicy::new(engine, ctx)),
            Some(svc) => {
                let spec = if svc.faults.len() == 1 {
                    svc.faults[0]
                } else {
                    svc.faults[i]
                };
                let core = ServiceCore::new(svc.config.clone(), spec).map_err(|e| match e {
                    crate::service::ServiceError::InvalidConfig { what } => {
                        EvalError::InvalidInput { what }
                    }
                    _ => EvalError::Internal {
                        what: "fleet service core construction failed",
                    },
                })?;
                LanePolicy::Serviced(Box::new(ServicedPolicy::new(engine, ctx, core)))
            }
        };
        lanes.push(Lane {
            shard: CalendarShard::new(
                engine,
                cfg.nodes_per_shard,
                cfg.open.max_head_skips,
                &cfg.setup,
                cfg.open.eligible_window,
            ),
            policy,
            engine,
            inbox: Vec::new(),
            backlog_gauge: recorder.metrics().gauge(&format!("fleet.shard{i}.backlog")),
            arrivals: 0,
            err: None,
        });
    }

    let mut router = ArrivalRouter::new(cfg.route, shards);
    let mut backlogs = vec![0u64; shards];
    let mut stream = arrivals.into_iter();
    let mut last_at = 0.0f64;
    let mut next = match stream.next() {
        Some(a) => Some(validated(a, &mut last_at)?),
        None => {
            return Err(EvalError::InvalidInput {
                what: "empty arrival stream",
            })
        }
    };

    let mut epochs = 0u64;
    let mut total_arrivals = 0u64;
    let mut peak_epoch_arrivals = 0usize;
    // Index of the next epoch boundary, as a float so the horizon is a
    // *product* (`k * epoch_s`), never an accumulated sum — byte-stable
    // no matter how many epochs run or are skipped.
    let mut epoch_floor = 0.0f64;

    while let Some(head) = next {
        // Fast-forward empty epochs: jump straight to the epoch that
        // contains the next arrival.
        let k = (head.at_s / cfg.epoch_s).floor().max(epoch_floor);
        let horizon = (k + 1.0) * cfg.epoch_s;

        // Route every arrival due this epoch. The drain rule over-includes
        // by the calendar's tie window: an event just inside the horizon
        // admits arrivals up to TIE_EPS past itself, so those arrivals
        // must already be pushed (see the CalendarShard contract).
        router.begin_epoch(&backlogs);
        let mut batch = 0usize;
        loop {
            match next {
                Some(a) if a.at_s < horizon + TIE_EPS => {
                    let s = router.route(a.app.class());
                    lanes[s].inbox.push(a);
                    lanes[s].arrivals += 1;
                    batch += 1;
                    next = match stream.next() {
                        Some(raw) => Some(validated(raw, &mut last_at)?),
                        None => None,
                    };
                }
                _ => break,
            }
        }
        total_arrivals += batch as u64;
        peak_epoch_arrivals = peak_epoch_arrivals.max(batch);

        // The barrier: every shard advances to the horizon in parallel.
        lanes = lanes
            .into_par_iter()
            .map(|mut lane| {
                lane.step(ctx, horizon);
                lane
            })
            .collect();
        for lane in &mut lanes {
            if let Some(e) = lane.err.take() {
                return Err(e);
            }
        }

        // Sample backlogs for the next routing round.
        for (i, lane) in lanes.iter().enumerate() {
            let b = lane.shard.outstanding() as u64;
            backlogs[i] = b;
            lane.backlog_gauge.sample(b);
        }

        epochs += 1;
        epoch_floor = k + 1.0;
    }

    // Drain every shard to completion, still in parallel.
    let outcomes: Vec<Result<ShardReport, EvalError>> =
        lanes.into_par_iter().map(|lane| lane.finish()).collect();
    let mut shard_reports = Vec::with_capacity(shards);
    for outcome in outcomes {
        shard_reports.push(outcome?);
    }

    let run = ClusterRun {
        makespan_s: shard_reports
            .iter()
            .map(|s| s.run.makespan_s)
            .fold(0.0, f64::max),
        energy_dyn_j: shard_reports.iter().map(|s| s.run.energy_dyn_j).sum(),
        nodes: shards * cfg.nodes_per_shard,
    };
    let mut report = FaultReport::default();
    for s in &shard_reports {
        report += s.report;
    }
    let stats: EngineStats = shard_reports.iter().map(|s| s.stats).sum();
    let service = if cfg.service.is_some() {
        let mut merged = ServiceReport::default();
        for s in &shard_reports {
            if let Some(sr) = &s.service {
                merged.merge(sr);
            }
        }
        Some(merged)
    } else {
        None
    };

    Ok(FleetRun {
        shards: shard_reports,
        run,
        report,
        stats,
        service,
        arrivals: total_arrivals,
        epochs,
        peak_epoch_arrivals,
    })
}
