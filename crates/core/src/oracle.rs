//! Brute-force configuration search — the offline machinery of the paper.
//!
//! §7 of the paper examines 84 480 application runs to find the best offline
//! tuning parameters. The same searches back four things here:
//!
//! * **ILAO** — best standalone config per application (160 points);
//! * **COLAO / UB** — best co-located config per pair (11 200 points);
//! * the **database** of §6.2 (store the winners);
//! * the **training data** for the MLM-STP models (store *all* the points).
//!
//! Sweeps are embarrassingly parallel and run under Rayon; a [`SweepCache`]
//! memoises full pair sweeps so the database build, the baselines and the
//! training-set construction share one pass.

use crate::features::Testbed;
use ecost_apps::AppProfile;
use ecost_mapreduce::executor::run_colocated;
use ecost_mapreduce::{JobSpec, JobMetrics, PairConfig, PairMetrics, TuningConfig};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Result of a standalone run at one configuration.
#[derive(Debug, Clone)]
pub struct SoloRun {
    /// The configuration.
    pub config: TuningConfig,
    /// Measured metrics.
    pub metrics: JobMetrics,
}

/// Result of a co-located run at one pair configuration.
#[derive(Debug, Clone)]
pub struct PairRun {
    /// The pair configuration.
    pub config: PairConfig,
    /// Makespan + energy of the pair.
    pub metrics: PairMetrics,
}

/// Simulate one standalone run.
pub fn solo_metrics(tb: &Testbed, profile: &AppProfile, input_mb: f64, cfg: TuningConfig) -> JobMetrics {
    let job = JobSpec::from_profile(profile.clone(), input_mb, cfg);
    ecost_mapreduce::executor::run_standalone(&tb.node, &tb.fw, job)
        .expect("standalone simulation")
        .metrics
}

/// Simulate one co-located pair run.
pub fn pair_metrics(
    tb: &Testbed,
    a: &AppProfile,
    input_a_mb: f64,
    b: &AppProfile,
    input_b_mb: f64,
    pc: PairConfig,
) -> PairMetrics {
    let jobs = vec![
        JobSpec::from_profile(a.clone(), input_a_mb, pc.a),
        JobSpec::from_profile(b.clone(), input_b_mb, pc.b),
    ];
    let (outs, makespan) = run_colocated(&tb.node, &tb.fw, jobs).expect("pair simulation");
    PairMetrics {
        makespan_s: makespan,
        energy_j: outs.iter().map(|o| o.metrics.energy_j).sum(),
    }
}

/// Sweep the full 160-point standalone space; returns runs in sweep order.
pub fn sweep_solo(tb: &Testbed, profile: &AppProfile, input_mb: f64) -> Vec<SoloRun> {
    let configs: Vec<TuningConfig> = TuningConfig::space(tb.node.cores).collect();
    configs
        .into_par_iter()
        .map(|config| SoloRun {
            config,
            metrics: solo_metrics(tb, profile, input_mb, config),
        })
        .collect()
}

/// Best standalone config under wall EDP (ILAO's per-application step).
pub fn best_solo(tb: &Testbed, profile: &AppProfile, input_mb: f64) -> SoloRun {
    let idle = tb.idle_w();
    sweep_solo(tb, profile, input_mb)
        .into_iter()
        .min_by(|x, y| {
            x.metrics
                .edp_wall(idle)
                .partial_cmp(&y.metrics.edp_wall(idle))
                .expect("finite EDP")
        })
        .expect("non-empty sweep")
}

/// Sweep the full pair space (11 200 points on the 8-core node).
pub fn sweep_pair(
    tb: &Testbed,
    a: &AppProfile,
    input_a_mb: f64,
    b: &AppProfile,
    input_b_mb: f64,
) -> Vec<PairRun> {
    PairConfig::space(tb.node.cores)
        .into_par_iter()
        .map(|config| PairRun {
            config,
            metrics: pair_metrics(tb, a, input_a_mb, b, input_b_mb, config),
        })
        .collect()
}

/// Pick the wall-EDP winner out of a sweep.
pub fn best_of(tb: &Testbed, runs: &[PairRun]) -> PairRun {
    let idle = tb.idle_w();
    runs.iter()
        .min_by(|x, y| {
            x.metrics
                .edp_wall(idle)
                .partial_cmp(&y.metrics.edp_wall(idle))
                .expect("finite EDP")
        })
        .expect("non-empty sweep")
        .clone()
}

/// COLAO's oracle: best co-located configuration for a pair.
pub fn best_pair(
    tb: &Testbed,
    a: &AppProfile,
    input_a_mb: f64,
    b: &AppProfile,
    input_b_mb: f64,
) -> PairRun {
    best_of(tb, &sweep_pair(tb, a, input_a_mb, b, input_b_mb))
}

/// Best pair config with the core partition fixed (Fig 5's per-partition
/// series).
pub fn best_pair_with_partition(
    tb: &Testbed,
    a: &AppProfile,
    input_a_mb: f64,
    b: &AppProfile,
    input_b_mb: f64,
    (ma, mb): (u32, u32),
) -> PairRun {
    let idle = tb.idle_w();
    let configs: Vec<PairConfig> = TuningConfig::space_fixed_mappers(ma)
        .flat_map(|ca| TuningConfig::space_fixed_mappers(mb).map(move |cb| PairConfig { a: ca, b: cb }))
        .collect();
    configs
        .into_par_iter()
        .map(|config| PairRun {
            config,
            metrics: pair_metrics(tb, a, input_a_mb, b, input_b_mb, config),
        })
        .min_by(|x, y| {
            x.metrics
                .edp_wall(idle)
                .partial_cmp(&y.metrics.edp_wall(idle))
                .expect("finite EDP")
        })
        .expect("non-empty sweep")
}

/// Key identifying a memoised pair sweep. Profiles are keyed by name +
/// input, which is unique within one experiment run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SweepKey {
    a: &'static str,
    a_mb: u64,
    b: &'static str,
    b_mb: u64,
}

/// Memoising wrapper around [`sweep_pair`]. Cheap to clone (shared cache).
#[derive(Clone, Default)]
pub struct SweepCache {
    inner: Arc<Mutex<HashMap<SweepKey, Arc<Vec<PairRun>>>>>,
    /// Wall-clock seconds spent computing sweeps (cache misses only) — the
    /// brute-force cost the lookup table's "training" amortises (Fig 8).
    spent: Arc<Mutex<f64>>,
}

impl SweepCache {
    /// Fresh empty cache.
    pub fn new() -> SweepCache {
        SweepCache::default()
    }

    /// Number of cached sweeps.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total wall-clock seconds spent computing sweeps so far.
    pub fn sweep_seconds(&self) -> f64 {
        *self.spent.lock()
    }

    /// Fetch or compute the full sweep for an (ordered) pair.
    pub fn pair_sweep(
        &self,
        tb: &Testbed,
        a: &AppProfile,
        input_a_mb: f64,
        b: &AppProfile,
        input_b_mb: f64,
    ) -> Arc<Vec<PairRun>> {
        // Normalise order so (a,b) and (b,a) share an entry.
        let swap = (b.name, input_b_mb as u64) < (a.name, input_a_mb as u64);
        let key = if swap {
            SweepKey {
                a: b.name,
                a_mb: input_b_mb as u64,
                b: a.name,
                b_mb: input_a_mb as u64,
            }
        } else {
            SweepKey {
                a: a.name,
                a_mb: input_a_mb as u64,
                b: b.name,
                b_mb: input_b_mb as u64,
            }
        };
        if let Some(hit) = self.inner.lock().get(&key) {
            return Arc::clone(hit);
        }
        let t0 = std::time::Instant::now();
        let runs = if swap {
            sweep_pair(tb, b, input_b_mb, a, input_a_mb)
        } else {
            sweep_pair(tb, a, input_a_mb, b, input_b_mb)
        };
        *self.spent.lock() += t0.elapsed().as_secs_f64();
        let arc = Arc::new(runs);
        self.inner.lock().insert(key, Arc::clone(&arc));
        arc
    }

    /// Best run for a pair, via the cache. The returned config is oriented
    /// so `.a` applies to `a` and `.b` to `b` even when the cache stored the
    /// swapped order.
    pub fn best_pair(
        &self,
        tb: &Testbed,
        a: &AppProfile,
        input_a_mb: f64,
        b: &AppProfile,
        input_b_mb: f64,
    ) -> PairRun {
        let swap = (b.name, input_b_mb as u64) < (a.name, input_a_mb as u64);
        let sweep = self.pair_sweep(tb, a, input_a_mb, b, input_b_mb);
        let mut best = best_of(tb, &sweep);
        if swap {
            best.config = best.config.swapped();
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecost_apps::{App, InputSize};

    fn tb() -> Testbed {
        Testbed::atom()
    }

    #[test]
    fn best_solo_beats_default_config() {
        let tb = tb();
        let p = App::St.profile();
        let mb = InputSize::Small.per_node_mb();
        let best = best_solo(&tb, p, mb);
        let default = solo_metrics(&tb, p, mb, TuningConfig::hadoop_default(8));
        assert!(best.metrics.edp_wall(tb.idle_w()) <= default.edp_wall(tb.idle_w()) * 1.0 + 1e-9);
    }

    #[test]
    fn pair_oracle_never_loses_to_any_swept_point() {
        let tb = tb();
        let a = App::Gp.profile();
        let b = App::St.profile();
        let mb = InputSize::Small.per_node_mb();
        let sweep = sweep_pair(&tb, a, mb, b, mb);
        let best = best_of(&tb, &sweep);
        let idle = tb.idle_w();
        for run in sweep.iter().step_by(997) {
            assert!(best.metrics.edp_wall(idle) <= run.metrics.edp_wall(idle) + 1e-9);
        }
    }

    #[test]
    fn cache_hits_are_shared_and_order_insensitive() {
        let tb = tb();
        let cache = SweepCache::new();
        let a = App::Gp.profile();
        let b = App::St.profile();
        let mb = InputSize::Small.per_node_mb();
        let s1 = cache.pair_sweep(&tb, a, mb, b, mb);
        let s2 = cache.pair_sweep(&tb, b, mb, a, mb);
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&s1, &s2));
    }

    #[test]
    fn cached_best_pair_is_reoriented_after_swap() {
        let tb = tb();
        let cache = SweepCache::new();
        let gp = App::Gp.profile();
        let st = App::St.profile();
        let mb = InputSize::Small.per_node_mb();
        let fwd = cache.best_pair(&tb, gp, mb, st, mb);
        let rev = cache.best_pair(&tb, st, mb, gp, mb);
        assert_eq!(cache.len(), 1);
        assert_eq!(fwd.config.a, rev.config.b);
        assert_eq!(fwd.config.b, rev.config.a);
        assert!((fwd.metrics.edp_wall(tb.idle_w()) - rev.metrics.edp_wall(tb.idle_w())).abs() < 1e-9);
    }

    #[test]
    fn partition_restricted_search_respects_partition() {
        let tb = tb();
        let a = App::Wc.profile();
        let b = App::St.profile();
        let mb = InputSize::Small.per_node_mb();
        let run = best_pair_with_partition(&tb, a, mb, b, mb, (6, 2));
        assert_eq!(run.config.a.mappers, 6);
        assert_eq!(run.config.b.mappers, 2);
    }
}
