//! Brute-force configuration search — the offline machinery of the paper.
//!
//! §7 of the paper examines 84 480 application runs to find the best offline
//! tuning parameters. The same searches back four things here:
//!
//! * **ILAO** — best standalone config per application (160 points);
//! * **COLAO / UB** — best co-located config per pair (11 200 points);
//! * the **database** of §6.2 (store the winners);
//! * the **training data** for the MLM-STP models (store *all* the points).
//!
//! All evaluation goes through the [`EvalEngine`](crate::engine::EvalEngine):
//! sweeps are embarrassingly parallel under Rayon, every point is memoized
//! in the engine's shared cache, and every function is fallible — the
//! simulator's errors surface as [`EvalError`](crate::engine::EvalError)
//! instead of panics. This module is the oracle-flavoured face of the
//! engine; the functions below are thin delegates kept so call sites read
//! as the paper does (`oracle::best_pair`, `oracle::sweep_solo`, ...).

use crate::engine::{EvalEngine, EvalError};
use ecost_apps::AppProfile;
use ecost_mapreduce::{JobMetrics, PairConfig, PairMetrics, TuningConfig};

pub use crate::engine::{PairRun, PairSweep, SoloRun};

/// Simulate one standalone run (memoized).
pub fn solo_metrics(
    engine: &EvalEngine,
    profile: &AppProfile,
    input_mb: f64,
    cfg: TuningConfig,
) -> Result<JobMetrics, EvalError> {
    engine.solo_metrics(profile, input_mb, cfg)
}

/// Simulate one co-located pair run (memoized).
pub fn pair_metrics(
    engine: &EvalEngine,
    a: &AppProfile,
    input_a_mb: f64,
    b: &AppProfile,
    input_b_mb: f64,
    pc: PairConfig,
) -> Result<PairMetrics, EvalError> {
    engine.pair_metrics(a, input_a_mb, b, input_b_mb, pc)
}

/// Sweep the full 160-point standalone space; returns runs in sweep order.
pub fn sweep_solo(
    engine: &EvalEngine,
    profile: &AppProfile,
    input_mb: f64,
) -> Result<Vec<SoloRun>, EvalError> {
    engine.sweep_solo(profile, input_mb)
}

/// Best standalone config under wall EDP (ILAO's per-application step).
pub fn best_solo(
    engine: &EvalEngine,
    profile: &AppProfile,
    input_mb: f64,
) -> Result<SoloRun, EvalError> {
    engine.best_solo(profile, input_mb)
}

/// Fetch or compute the full pair sweep (11 200 points on the 8-core node).
pub fn sweep_pair(
    engine: &EvalEngine,
    a: &AppProfile,
    input_a_mb: f64,
    b: &AppProfile,
    input_b_mb: f64,
) -> Result<PairSweep, EvalError> {
    engine.pair_sweep(a, input_a_mb, b, input_b_mb)
}

/// Pick the wall-EDP winner out of a sweep.
pub fn best_of(engine: &EvalEngine, runs: &[PairRun]) -> Result<PairRun, EvalError> {
    engine.best_of(runs)
}

/// COLAO's oracle: best co-located configuration for a pair.
pub fn best_pair(
    engine: &EvalEngine,
    a: &AppProfile,
    input_a_mb: f64,
    b: &AppProfile,
    input_b_mb: f64,
) -> Result<PairRun, EvalError> {
    engine.best_pair(a, input_a_mb, b, input_b_mb)
}

/// Best pair config with the core partition fixed (Fig 5's per-partition
/// series).
pub fn best_pair_with_partition(
    engine: &EvalEngine,
    a: &AppProfile,
    input_a_mb: f64,
    b: &AppProfile,
    input_b_mb: f64,
    partition: (u32, u32),
) -> Result<PairRun, EvalError> {
    engine.best_pair_with_partition(a, input_a_mb, b, input_b_mb, partition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecost_apps::{App, InputSize};

    #[test]
    fn best_solo_beats_default_config() {
        let eng = EvalEngine::atom();
        let p = App::St.profile();
        let mb = InputSize::Small.per_node_mb();
        let best = best_solo(&eng, p, mb).unwrap();
        let default = solo_metrics(&eng, p, mb, TuningConfig::hadoop_default(8)).unwrap();
        let idle = eng.idle_w();
        assert!(best.metrics.edp_wall(idle) <= default.edp_wall(idle) + 1e-9);
    }

    #[test]
    fn pair_oracle_never_loses_to_any_swept_point() {
        let eng = EvalEngine::atom();
        let a = App::Gp.profile();
        let b = App::St.profile();
        let mb = InputSize::Small.per_node_mb();
        let sweep = sweep_pair(&eng, a, mb, b, mb).unwrap();
        let best = best_of(&eng, sweep.runs()).unwrap();
        let idle = eng.idle_w();
        for run in sweep.runs().iter().step_by(997) {
            assert!(best.metrics.edp_wall(idle) <= run.metrics.edp_wall(idle) + 1e-9);
        }
    }
}
