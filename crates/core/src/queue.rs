//! The wait queue of §5: FIFO with a head-of-queue reservation and
//! small-job leap-forward.
//!
//! Applications are enqueued at the tail and normally leave from the head.
//! The scheduler may prefer a non-head job (a better class match), but only
//! under the paper's fairness rules: a job may leap forward only if it is
//! *small* (its estimated runtime does not exceed the head's — it will not
//! delay the head beyond what the head already waits for), and the head can
//! be skipped at most a bounded number of times before its reservation
//! forces it out next (starvation avoidance, citing [24, 40]).

use ecost_apps::AppClass;
use std::collections::VecDeque;

/// A queued application.
#[derive(Debug, Clone, PartialEq)]
pub struct Queued<T> {
    /// Scheduler payload (signature, job spec, …).
    pub payload: T,
    /// Classified behaviour class.
    pub class: AppClass,
    /// Estimated runtime, seconds (from the learning period).
    pub est_time_s: f64,
}

/// A leaper's estimated runtime may exceed the head's by at most this
/// factor. The paper's rule is "no larger than the head" — exactly 1; kept
/// as a named constant so the fairness knob is explicit and tunable.
pub const LEAP_HEADROOM: f64 = 1.0;

/// Absolute tolerance on the leap-forward comparison, so ties survive
/// floating-point noise in the runtime estimates.
const LEAP_MARGIN_S: f64 = 1e-9;

/// FIFO wait queue with reservation.
///
/// ```
/// use ecost_core::WaitQueue;
/// use ecost_apps::AppClass;
///
/// let mut q = WaitQueue::new(2);
/// q.push("big-job", AppClass::C, 500.0);
/// q.push("small-job", AppClass::I, 50.0);
/// // The small job may leap forward (it won't delay the head)…
/// let eligible = q.eligible();
/// assert_eq!(eligible.len(), 2);
/// // …and taking it counts against the head's skip allowance.
/// assert_eq!(q.take(1).expect("in range").payload, "small-job");
/// // Out-of-range indices are None, not a panic.
/// assert!(q.take(7).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct WaitQueue<T> {
    items: VecDeque<Queued<T>>,
    head_skips: u32,
    max_head_skips: u32,
}

impl<T> WaitQueue<T> {
    /// New queue allowing the head to be skipped `max_head_skips` times
    /// before its reservation becomes binding. The paper doesn't fix the
    /// constant; 2 keeps leap-forward useful while bounding head delay.
    pub fn new(max_head_skips: u32) -> WaitQueue<T> {
        WaitQueue {
            items: VecDeque::new(),
            head_skips: 0,
            max_head_skips,
        }
    }

    /// Enqueue at the tail.
    pub fn push(&mut self, payload: T, class: AppClass, est_time_s: f64) {
        self.items.push_back(Queued {
            payload,
            class,
            est_time_s,
        });
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing waits.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Classes currently eligible for selection, in queue order, paired
    /// with their queue index: the head always, plus any job that may leap
    /// forward. When the head's reservation is binding, only the head.
    pub fn eligible(&self) -> Vec<(usize, AppClass)> {
        self.eligible_windowed(usize::MAX)
    }

    /// As [`WaitQueue::eligible`], but scanning only the first `window`
    /// queue positions (clamped to at least the head). The fairness rules
    /// are unchanged within the window; jobs beyond it simply wait their
    /// FIFO turn. Open-cluster schedulers use this to keep a dispatch
    /// decision O(window) under a deep backlog.
    pub fn eligible_windowed(&self, window: usize) -> Vec<(usize, AppClass)> {
        let Some(head) = self.items.front() else {
            return Vec::new();
        };
        if self.head_skips >= self.max_head_skips {
            return vec![(0, head.class)];
        }
        self.items
            .iter()
            .enumerate()
            .take(window.max(1))
            .filter(|(i, q)| {
                *i == 0 || q.est_time_s <= head.est_time_s * LEAP_HEADROOM + LEAP_MARGIN_S
            })
            .map(|(i, q)| (i, q.class))
            .collect()
    }

    /// Remove and return the job at queue index `idx` (as reported by
    /// [`WaitQueue::eligible`]), or `None` when `idx` is out of range.
    /// Head-skip accounting is updated only on a successful take.
    pub fn take(&mut self, idx: usize) -> Option<Queued<T>> {
        let item = self.items.remove(idx)?;
        if idx == 0 {
            self.head_skips = 0;
        } else {
            self.head_skips += 1;
        }
        Some(item)
    }

    /// Re-enqueue a displaced job at the head: it had already been
    /// admitted (a node crash pushed it back), so it outranks everything
    /// still waiting. Does not touch the head-skip accounting.
    pub fn push_front(&mut self, payload: T, class: AppClass, est_time_s: f64) {
        self.items.push_front(Queued {
            payload,
            class,
            est_time_s,
        });
    }

    /// Peek the head.
    pub fn head(&self) -> Option<&Queued<T>> {
        self.items.front()
    }

    /// Peek any queue position (as reported by [`WaitQueue::eligible`]),
    /// or `None` when `idx` is out of range.
    pub fn peek(&self, idx: usize) -> Option<&Queued<T>> {
        self.items.get(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecost_apps::AppClass::*;

    fn q3() -> WaitQueue<&'static str> {
        let mut q = WaitQueue::new(2);
        q.push("big-c", C, 500.0);
        q.push("small-i", I, 100.0);
        q.push("big-m", M, 800.0);
        q
    }

    #[test]
    fn small_jobs_may_leap_forward() {
        let q = q3();
        let el = q.eligible();
        // Head always eligible; small-i (100 ≤ 500) may leap; big-m may not.
        assert_eq!(el, vec![(0, C), (1, I)]);
    }

    #[test]
    fn reservation_binds_after_max_skips() {
        let mut q = q3();
        q.push("small-i2", I, 50.0);
        // Skip the head twice by taking the leapers.
        let t1 = q.take(1).expect("in range");
        assert_eq!(t1.payload, "small-i");
        let el = q.eligible();
        assert!(el.iter().any(|(_, c)| *c == I));
        let idx = el.iter().find(|(_, c)| *c == I).expect("eligible I").0;
        q.take(idx).expect("in range");
        // Two skips consumed → only the head is now eligible.
        assert_eq!(q.eligible(), vec![(0, C)]);
        // Taking the head resets the allowance.
        let h = q.take(0).expect("in range");
        assert_eq!(h.payload, "big-c");
        assert_eq!(q.eligible().len(), 1); // only big-m left
    }

    #[test]
    fn fifo_when_everything_equal() {
        let mut q = WaitQueue::new(2);
        q.push("a", H, 100.0);
        q.push("b", H, 100.0);
        // Both eligible (b is not larger than a), head first.
        assert_eq!(q.eligible()[0], (0, H));
        assert_eq!(q.take(0).expect("in range").payload, "a");
        assert_eq!(q.take(0).expect("in range").payload, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let mut q: WaitQueue<()> = WaitQueue::new(2);
        assert!(q.eligible().is_empty());
        assert!(q.head().is_none());
        assert!(q.peek(0).is_none());
        assert!(q.take(0).is_none());
    }

    #[test]
    fn out_of_range_take_leaves_skip_accounting_untouched() {
        let mut q = q3();
        assert!(q.take(99).is_none());
        assert!(q.peek(99).is_none());
        // The failed take must not burn the head's skip allowance.
        assert_eq!(q.eligible(), vec![(0, C), (1, I)]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn windowed_eligibility_bounds_the_scan() {
        let mut q = WaitQueue::new(2);
        q.push("head", C, 500.0);
        q.push("big", M, 800.0);
        q.push("small-in", I, 100.0);
        q.push("small-out", I, 50.0);
        // Full scan sees both leapers; a window of 3 stops before the last.
        assert_eq!(q.eligible(), vec![(0, C), (2, I), (3, I)]);
        assert_eq!(q.eligible_windowed(3), vec![(0, C), (2, I)]);
        // Degenerate windows still yield the head.
        assert_eq!(q.eligible_windowed(0), vec![(0, C)]);
        // A binding reservation overrides the window entirely.
        q.take(2).expect("in range");
        q.take(2).expect("in range");
        assert_eq!(q.eligible_windowed(4), vec![(0, C)]);
    }

    #[test]
    fn push_front_outranks_waiting_jobs() {
        let mut q = q3();
        q.push_front("displaced-h", H, 300.0);
        assert_eq!(q.head().expect("non-empty").payload, "displaced-h");
        assert_eq!(q.len(), 4);
        // The displaced job is the new head; the old head now leaps only if
        // small enough (500 > 300 → no longer eligible).
        let el = q.eligible();
        assert_eq!(el[0], (0, H));
        assert!(!el.iter().any(|(_, c)| *c == C));
    }
}
