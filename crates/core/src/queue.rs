//! The wait queue of §5: FIFO with a head-of-queue reservation and
//! small-job leap-forward.
//!
//! Applications are enqueued at the tail and normally leave from the head.
//! The scheduler may prefer a non-head job (a better class match), but only
//! under the paper's fairness rules: a job may leap forward only if it is
//! *small* (its estimated runtime does not exceed the head's — it will not
//! delay the head beyond what the head already waits for), and the head can
//! be skipped at most a bounded number of times before its reservation
//! forces it out next (starvation avoidance, citing [24, 40]).

use ecost_apps::AppClass;
use std::collections::VecDeque;

/// A queued application.
#[derive(Debug, Clone, PartialEq)]
pub struct Queued<T> {
    /// Scheduler payload (signature, job spec, …).
    pub payload: T,
    /// Classified behaviour class.
    pub class: AppClass,
    /// Estimated runtime, seconds (from the learning period).
    pub est_time_s: f64,
}

/// FIFO wait queue with reservation.
///
/// ```
/// use ecost_core::WaitQueue;
/// use ecost_apps::AppClass;
///
/// let mut q = WaitQueue::new(2);
/// q.push("big-job", AppClass::C, 500.0);
/// q.push("small-job", AppClass::I, 50.0);
/// // The small job may leap forward (it won't delay the head)…
/// let eligible = q.eligible();
/// assert_eq!(eligible.len(), 2);
/// // …and taking it counts against the head's skip allowance.
/// assert_eq!(q.take(1).payload, "small-job");
/// ```
#[derive(Debug, Clone)]
pub struct WaitQueue<T> {
    items: VecDeque<Queued<T>>,
    head_skips: u32,
    max_head_skips: u32,
}

impl<T> WaitQueue<T> {
    /// New queue allowing the head to be skipped `max_head_skips` times
    /// before its reservation becomes binding. The paper doesn't fix the
    /// constant; 2 keeps leap-forward useful while bounding head delay.
    pub fn new(max_head_skips: u32) -> WaitQueue<T> {
        WaitQueue {
            items: VecDeque::new(),
            head_skips: 0,
            max_head_skips,
        }
    }

    /// Enqueue at the tail.
    pub fn push(&mut self, payload: T, class: AppClass, est_time_s: f64) {
        self.items.push_back(Queued {
            payload,
            class,
            est_time_s,
        });
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing waits.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Classes currently eligible for selection, in queue order, paired
    /// with their queue index: the head always, plus any job that may leap
    /// forward. When the head's reservation is binding, only the head.
    pub fn eligible(&self) -> Vec<(usize, AppClass)> {
        let Some(head) = self.items.front() else {
            return Vec::new();
        };
        if self.head_skips >= self.max_head_skips {
            return vec![(0, head.class)];
        }
        self.items
            .iter()
            .enumerate()
            .filter(|(i, q)| *i == 0 || q.est_time_s <= head.est_time_s * 1.0 + 1e-9)
            .map(|(i, q)| (i, q.class))
            .collect()
    }

    /// Remove and return the job at queue index `idx` (as reported by
    /// [`WaitQueue::eligible`]); updates the head-skip accounting.
    pub fn take(&mut self, idx: usize) -> Queued<T> {
        if idx == 0 {
            self.head_skips = 0;
        } else {
            self.head_skips += 1;
        }
        let Some(item) = self.items.remove(idx) else {
            panic!("queue index {idx} out of range");
        };
        item
    }

    /// Peek the head.
    pub fn head(&self) -> Option<&Queued<T>> {
        self.items.front()
    }

    /// Peek any queue position (as reported by [`WaitQueue::eligible`]).
    pub fn peek(&self, idx: usize) -> &Queued<T> {
        &self.items[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecost_apps::AppClass::*;

    fn q3() -> WaitQueue<&'static str> {
        let mut q = WaitQueue::new(2);
        q.push("big-c", C, 500.0);
        q.push("small-i", I, 100.0);
        q.push("big-m", M, 800.0);
        q
    }

    #[test]
    fn small_jobs_may_leap_forward() {
        let q = q3();
        let el = q.eligible();
        // Head always eligible; small-i (100 ≤ 500) may leap; big-m may not.
        assert_eq!(el, vec![(0, C), (1, I)]);
    }

    #[test]
    fn reservation_binds_after_max_skips() {
        let mut q = q3();
        q.push("small-i2", I, 50.0);
        // Skip the head twice by taking the leapers.
        let t1 = q.take(1);
        assert_eq!(t1.payload, "small-i");
        let el = q.eligible();
        assert!(el.iter().any(|(_, c)| *c == I));
        let idx = el.iter().find(|(_, c)| *c == I).expect("eligible I").0;
        q.take(idx);
        // Two skips consumed → only the head is now eligible.
        assert_eq!(q.eligible(), vec![(0, C)]);
        // Taking the head resets the allowance.
        let h = q.take(0);
        assert_eq!(h.payload, "big-c");
        assert_eq!(q.eligible().len(), 1); // only big-m left
    }

    #[test]
    fn fifo_when_everything_equal() {
        let mut q = WaitQueue::new(2);
        q.push("a", H, 100.0);
        q.push("b", H, 100.0);
        // Both eligible (b is not larger than a), head first.
        assert_eq!(q.eligible()[0], (0, H));
        assert_eq!(q.take(0).payload, "a");
        assert_eq!(q.take(0).payload, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let q: WaitQueue<()> = WaitQueue::new(2);
        assert!(q.eligible().is_empty());
        assert!(q.head().is_none());
    }
}
