//! The §4.2 optimisation strategies: ILAO and COLAO.
//!
//! * **ILAO** — individually-located application optimisation: each
//!   application runs alone on the node at its individually brute-forced
//!   best configuration; the pair's delay is the serial sum.
//! * **COLAO** — co-located application optimisation: both applications run
//!   together, with the *pair* configuration brute-forced jointly. This is
//!   also the oracle STP is judged against in §7.
//!
//! Both strategies evaluate through the shared [`EvalEngine`], so the
//! COLAO sweep computed here is the same memo entry the database build and
//! the training set read.

use crate::engine::{EvalEngine, EvalError, PairRun, SoloRun};
use crate::oracle;
use ecost_apps::AppProfile;
use ecost_mapreduce::PairMetrics;

/// ILAO outcome for a pair of applications.
#[derive(Debug, Clone)]
pub struct IlaoResult {
    /// First application's tuned standalone run.
    pub a: SoloRun,
    /// Second application's tuned standalone run.
    pub b: SoloRun,
    /// Serial pair accounting (delays add, energies add).
    pub metrics: PairMetrics,
}

/// Run ILAO for two applications with per-node inputs in MB.
pub fn ilao(
    engine: &EvalEngine,
    a: &AppProfile,
    input_a_mb: f64,
    b: &AppProfile,
    input_b_mb: f64,
) -> Result<IlaoResult, EvalError> {
    let ra = oracle::best_solo(engine, a, input_a_mb)?;
    let rb = oracle::best_solo(engine, b, input_b_mb)?;
    let metrics = PairMetrics::serial(&[ra.metrics, rb.metrics]);
    Ok(IlaoResult {
        a: ra,
        b: rb,
        metrics,
    })
}

/// Run COLAO (the co-located oracle) for two applications.
pub fn colao(
    engine: &EvalEngine,
    a: &AppProfile,
    input_a_mb: f64,
    b: &AppProfile,
    input_b_mb: f64,
) -> Result<PairRun, EvalError> {
    engine.best_pair(a, input_a_mb, b, input_b_mb)
}

/// The Fig 3 quantity: ILAO wall EDP over COLAO wall EDP (>1 means
/// co-location wins by that factor).
pub fn colao_over_ilao_gain(
    engine: &EvalEngine,
    a: &AppProfile,
    b: &AppProfile,
    input_mb: f64,
) -> Result<f64, EvalError> {
    let idle = engine.idle_w();
    let il = ilao(engine, a, input_mb, b, input_mb)?;
    let co = colao(engine, a, input_mb, b, input_mb)?;
    Ok(il.metrics.edp_wall(idle) / co.metrics.edp_wall(idle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecost_apps::{App, InputSize};

    #[test]
    fn io_pair_gains_substantially_from_colocation() {
        // The paper's headline: I-I benefits most (4.52× there; the shape
        // requirement here is a clear >2× win).
        let eng = EvalEngine::atom();
        let gain = colao_over_ilao_gain(
            &eng,
            App::St.profile(),
            App::St.profile(),
            InputSize::Small.per_node_mb(),
        )
        .unwrap();
        assert!(gain > 2.0, "I-I gain {gain}");
    }

    #[test]
    fn memory_pair_gains_least() {
        let eng = EvalEngine::atom();
        let mm = colao_over_ilao_gain(
            &eng,
            App::Fp.profile(),
            App::Fp.profile(),
            InputSize::Small.per_node_mb(),
        )
        .unwrap();
        let ii = colao_over_ilao_gain(
            &eng,
            App::St.profile(),
            App::St.profile(),
            InputSize::Small.per_node_mb(),
        )
        .unwrap();
        assert!(mm < ii, "M-M {mm} vs I-I {ii}");
        // COLAO never loses catastrophically (it can fall slightly below 1
        // for M-M when sharing is genuinely harmful).
        assert!(mm > 0.8, "M-M {mm}");
    }

    #[test]
    fn ilao_components_are_individually_optimal() {
        let eng = EvalEngine::atom();
        let mb = InputSize::Small.per_node_mb();
        let r = ilao(&eng, App::Wc.profile(), mb, App::St.profile(), mb).unwrap();
        // Serial delay equals the sum of parts.
        assert!(
            (r.metrics.makespan_s - r.a.metrics.exec_time_s - r.b.metrics.exec_time_s).abs() < 1e-9
        );
        assert!(r.metrics.energy_j > 0.0);
    }
}
