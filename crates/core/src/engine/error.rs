//! Typed error for the evaluation path.
//!
//! Everything between a caller asking "what does this (pair of) job(s) cost
//! under this config?" and the fluid simulator answering is fallible: the
//! AMVA fixed point can fail to converge, a config can oversubscribe the
//! node, a database can be empty, a policy can be invoked without the
//! context it needs. [`EvalError`] is the single error type threaded as
//! `Result` through engine → oracle → strategies → stp → mapping, so
//! library code never panics on the evaluation path — `unwrap`/`expect`
//! survive only in bins, benches and tests.

use std::fmt;

use ecost_sim::SimError;

/// Error raised anywhere on the evaluation path.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The simulation substrate failed (non-convergence, core budget,
    /// invalid demand, missing node).
    Sim(SimError),
    /// A tuned mapping policy was invoked without an [`EcostContext`]
    /// (`crate::mapping::EcostContext`).
    MissingContext {
        /// Label of the policy that needs the context (e.g. `"PTM"`).
        policy: &'static str,
    },
    /// A sweep or argmin ran over an empty candidate set.
    EmptySweep {
        /// What was being searched (e.g. `"solo config space"`).
        what: &'static str,
    },
    /// A lookup found no usable entry (empty database, no pairing
    /// candidate, unknown class pair).
    NoCandidates {
        /// What was being looked up.
        what: &'static str,
    },
    /// Caller-supplied input was structurally invalid (empty workload,
    /// zero nodes, oversized matching instance, ...).
    InvalidInput {
        /// What was wrong.
        what: &'static str,
    },
    /// An internal invariant did not hold (e.g. jobs stranded in the
    /// scheduler queue after the event loop drained).
    Internal {
        /// Which invariant broke.
        what: &'static str,
    },
    /// The evaluation completed only by degrading: a fault (node loss,
    /// exhausted cluster) forced a fallback path that could not fully
    /// satisfy the request.
    Degraded {
        /// What degraded (e.g. `"all nodes failed with jobs remaining"`).
        what: &'static str,
    },
    /// A learned model produced a non-finite prediction (NaN/∞ EDP). The
    /// self-tuner treats this as "no usable entry" and falls back to the
    /// class-default configuration.
    NonFinite {
        /// Which prediction was non-finite.
        what: &'static str,
    },
    /// A transient failure worth retrying under a
    /// [`RetryPolicy`](super::RetryPolicy).
    Transient {
        /// What failed transiently.
        what: &'static str,
    },
}

impl EvalError {
    /// True for failures a bounded [`RetryPolicy`](super::RetryPolicy)
    /// retry may cure: explicit transients and AMVA non-convergence (a
    /// perturbed re-evaluation can land inside the convergence basin).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            EvalError::Transient { .. } | EvalError::Sim(SimError::NoConvergence { .. })
        )
    }

    /// True for failures the scheduler degrades through instead of
    /// aborting: missing lookup entries, non-finite predictions, empty
    /// sweeps and explicit degradations. The fallback is the class-default
    /// configuration (self-tuning) or solo placement (pairing).
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            EvalError::NoCandidates { .. }
                | EvalError::NonFinite { .. }
                | EvalError::EmptySweep { .. }
                | EvalError::Degraded { .. }
        )
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Sim(e) => write!(f, "simulation failed: {e}"),
            EvalError::MissingContext { policy } => {
                write!(
                    f,
                    "policy {policy} needs an EcostContext but none was given"
                )
            }
            EvalError::EmptySweep { what } => write!(f, "empty sweep: {what}"),
            EvalError::NoCandidates { what } => write!(f, "no candidates: {what}"),
            EvalError::InvalidInput { what } => write!(f, "invalid input: {what}"),
            EvalError::Internal { what } => write!(f, "internal invariant violated: {what}"),
            EvalError::Degraded { what } => write!(f, "degraded: {what}"),
            EvalError::NonFinite { what } => write!(f, "non-finite prediction: {what}"),
            EvalError::Transient { what } => write!(f, "transient failure: {what}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for EvalError {
    fn from(e: SimError) -> Self {
        EvalError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e: EvalError = SimError::NoSuchNode(3).into();
        assert!(e.to_string().contains("no such node"));
        assert!(EvalError::MissingContext { policy: "PTM" }
            .to_string()
            .contains("PTM"));
        assert!(EvalError::EmptySweep { what: "pair space" }
            .to_string()
            .contains("pair space"));
    }

    #[test]
    fn transient_and_degradable_classes_are_disjoint() {
        let t = EvalError::Transient { what: "eval" };
        assert!(t.is_transient() && !t.is_degradable());
        let nc: EvalError = SimError::NoConvergence {
            iterations: 10,
            residual: 1.0,
        }
        .into();
        assert!(nc.is_transient());
        for e in [
            EvalError::NoCandidates { what: "lkt" },
            EvalError::NonFinite { what: "mlm" },
            EvalError::EmptySweep { what: "pair" },
            EvalError::Degraded { what: "cluster" },
        ] {
            assert!(e.is_degradable() && !e.is_transient(), "{e}");
        }
        assert!(!EvalError::Internal { what: "queue" }.is_degradable());
    }

    #[test]
    fn source_chains_to_sim_error() {
        use std::error::Error;
        let e: EvalError = SimError::InvalidDemand("neg").into();
        assert!(e.source().is_some());
        assert!(EvalError::Internal { what: "queue" }.source().is_none());
    }
}
