//! Sharded, lock-based memo table used by the evaluation engine.
//!
//! A plain `Mutex<HashMap>` serialises every probe; under the rayon sweeps
//! all workers hammer the table at once. Sharding by key hash keeps the
//! critical sections independent without pulling in a concurrent-map
//! dependency. Correctness does not depend on shard count or thread
//! interleaving: values are keyed, and [`ShardedCache::get_or_try_insert`]
//! tolerates duplicate computation by keeping the first-inserted value.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::Mutex;

const SHARDS: usize = 16;

/// A hash map split into independently locked shards.
#[derive(Debug)]
pub(crate) struct ShardedCache<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
    hasher: RandomState,
}

impl<K: Eq + Hash, V: Clone> ShardedCache<K, V> {
    pub(crate) fn new() -> Self {
        ShardedCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        &self.shards[(self.hasher.hash_one(key) as usize) % SHARDS]
    }

    /// Clone the cached value for `key`, if present.
    pub(crate) fn get(&self, key: &K) -> Option<V> {
        let guard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        guard.get(key).cloned()
    }

    /// Insert `value` unless `key` is already present; either way return
    /// the value now stored under `key`. Keeping the incumbent makes
    /// concurrent duplicate computations converge on one shared value.
    pub(crate) fn insert_or_keep(&self, key: K, value: V) -> V {
        let mut guard = self.shard(&key).lock().unwrap_or_else(|e| e.into_inner());
        match guard.entry(key) {
            Entry::Occupied(e) => e.get().clone(),
            Entry::Vacant(e) => e.insert(value).clone(),
        }
    }

    /// Total entries across all shards.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn first_insert_wins() {
        let c: ShardedCache<u64, Arc<u64>> = ShardedCache::new();
        assert!(c.get(&7).is_none());
        let a = c.insert_or_keep(7, Arc::new(1));
        let b = c.insert_or_keep(7, Arc::new(2));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*c.get(&7).unwrap(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn keys_spread_over_shards() {
        let c: ShardedCache<u64, u64> = ShardedCache::new();
        for k in 0..1000 {
            c.insert_or_keep(k, k * k);
        }
        assert_eq!(c.len(), 1000);
        assert_eq!(c.get(&31), Some(961));
    }
}
