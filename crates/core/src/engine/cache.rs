//! Sharded, lock-based memo table used by the evaluation engine, with an
//! optional capacity-bounded mode.
//!
//! A plain `Mutex<HashMap>` serialises every probe; under the rayon sweeps
//! all workers hammer the table at once. Sharding by key hash keeps the
//! critical sections independent without pulling in a concurrent-map
//! dependency. Correctness does not depend on shard count or thread
//! interleaving: values are keyed, and [`ShardedCache::insert_or_keep`]
//! tolerates duplicate computation by keeping the first-inserted value.
//!
//! ## Bounded mode
//!
//! An open arrival stream produces an unbounded set of distinct keys (every
//! job carries its own continuous input size), so an unbounded memo is a
//! slow memory leak: resident entries scale with *history*, not with live
//! work. [`ShardedCache::with_budget`] caps the table at a fixed number of
//! entries, split evenly across the shards, and evicts with a per-shard
//! CLOCK (second-chance) sweep — an LRU approximation whose state is one
//! referenced bit per slot and one hand index per shard, with none of the
//! linked-list churn of exact LRU. Hits set the referenced bit; the hand
//! clears bits until it finds an unreferenced victim, so recently probed
//! entries survive and cold entries are recycled in deterministic slot
//! order.
//!
//! ## Determinism
//!
//! Shard choice uses a fixed-seed FNV-1a hasher (not `RandomState`, which
//! reseeds per process), so shard occupancy — and therefore the CLOCK
//! eviction order — is reproducible run-to-run. The scale-out bench relies
//! on this: CI replays the same seeded trace twice and byte-diffs the
//! reports, including hit/miss/eviction counts.

use ecost_telemetry::Counter;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};
use std::sync::Mutex;

const SHARDS: usize = 16;

/// Fixed seed for the shard/table hasher. Any constant works; this one is
/// arbitrary but stable, which is the point — see the module docs.
const CACHE_HASH_SEED: u64 = 0x5EED_0CAC_4E00_0001;

/// `BuildHasher` producing seeded FNV-1a hashers with a strong finalizer.
///
/// FNV-1a mixes low bits weakly, so [`SeededFnv::finish`] applies a
/// SplitMix64-style avalanche; both the shard index (low bits, mod 16) and
/// the `HashMap` bucket choice come out well distributed.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SeededState;

impl BuildHasher for SeededState {
    type Hasher = SeededFnv;

    fn build_hasher(&self) -> SeededFnv {
        SeededFnv(CACHE_HASH_SEED ^ 0xcbf2_9ce4_8422_2325)
    }
}

/// Seeded FNV-1a with a SplitMix64 finalizer.
#[derive(Debug)]
pub(crate) struct SeededFnv(u64);

impl Hasher for SeededFnv {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One cache slot: the stored pair plus the CLOCK referenced bit.
#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    referenced: bool,
}

/// One independently locked shard: a slab of slots indexed by a hash map,
/// plus the CLOCK hand. Unbounded shards simply never reach `cap`.
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, usize, SeededState>,
    slots: Vec<Slot<K, V>>,
    hand: usize,
    cap: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> Shard<K, V> {
    fn new(cap: usize) -> Shard<K, V> {
        Shard {
            map: HashMap::with_hasher(SeededState),
            slots: Vec::new(),
            hand: 0,
            cap,
        }
    }

    /// CLOCK sweep: give referenced slots a second chance, evict the first
    /// unreferenced one. Terminates within two laps (the first lap clears
    /// every bit). Only called when `slots` is non-empty.
    fn evict_one(&mut self) -> usize {
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            if self.slots[i].referenced {
                self.slots[i].referenced = false;
            } else {
                self.map.remove(&self.slots[i].key);
                return i;
            }
        }
    }
}

/// A hash map split into independently locked shards, optionally bounded.
#[derive(Debug)]
pub(crate) struct ShardedCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    hasher: SeededState,
    evictions: Counter,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedCache<K, V> {
    /// Unbounded cache (the classic memo): entries are never evicted and
    /// the counter never fires.
    pub(crate) fn new(evictions: Counter) -> Self {
        Self::with_budget(None, evictions)
    }

    /// Cache with an optional total entry budget. `Some(n)` caps the table
    /// at `n / 16` entries per shard (minimum 1), so the total never
    /// exceeds `max(n, 16)`; each eviction bumps `evictions`. `None` is
    /// unbounded.
    pub(crate) fn with_budget(budget: Option<usize>, evictions: Counter) -> Self {
        let per_shard = match budget {
            Some(n) => (n / SHARDS).max(1),
            None => usize::MAX,
        };
        ShardedCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            hasher: SeededState,
            evictions,
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        &self.shards[(self.hasher.hash_one(key) as usize) % SHARDS]
    }

    /// Clone the cached value for `key`, if present. A hit marks the slot
    /// recently used for the CLOCK sweep.
    pub(crate) fn get(&self, key: &K) -> Option<V> {
        let mut guard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        let idx = guard.map.get(key).copied()?;
        guard.slots[idx].referenced = true;
        Some(guard.slots[idx].value.clone())
    }

    /// Insert `value` unless `key` is already present; either way return
    /// the value now stored under `key`. Keeping the incumbent makes
    /// concurrent duplicate computations converge on one shared value.
    /// A full bounded shard evicts one cold entry first.
    pub(crate) fn insert_or_keep(&self, key: K, value: V) -> V {
        let mut guard = self.shard(&key).lock().unwrap_or_else(|e| e.into_inner());
        if let Some(idx) = guard.map.get(&key).copied() {
            guard.slots[idx].referenced = true;
            return guard.slots[idx].value.clone();
        }
        if guard.slots.len() >= guard.cap {
            let victim = guard.evict_one();
            self.evictions.inc();
            guard.map.insert(key.clone(), victim);
            guard.slots[victim] = Slot {
                key,
                value: value.clone(),
                referenced: true,
            };
        } else {
            let idx = guard.slots.len();
            guard.map.insert(key.clone(), idx);
            guard.slots.push(Slot {
                key,
                value: value.clone(),
                referenced: true,
            });
        }
        value
    }

    /// Probe a whole window of keys with at most one lock acquisition per
    /// touched shard, writing `keys[i]`'s cached value (or `None`) to
    /// `out[i]`. Hits mark their slots referenced, and within each shard
    /// keys are visited in input order, so the CLOCK state afterwards is
    /// identical to a sequence of [`ShardedCache::get`] calls — shards are
    /// independent, so cross-shard ordering cannot be observed.
    pub(crate) fn get_many(&self, keys: &[K], out: &mut Vec<Option<V>>) {
        out.clear();
        out.resize_with(keys.len(), || None);
        let mut shard_of: Vec<u8> = Vec::with_capacity(keys.len());
        let mut touched = [false; SHARDS];
        for key in keys {
            let s = (self.hasher.hash_one(key) as usize) % SHARDS;
            shard_of.push(s as u8);
            touched[s] = true;
        }
        for (s, shard) in self.shards.iter().enumerate() {
            if !touched[s] {
                continue;
            }
            let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (i, key) in keys.iter().enumerate() {
                if shard_of[i] as usize != s {
                    continue;
                }
                if let Some(idx) = guard.map.get(key).copied() {
                    guard.slots[idx].referenced = true;
                    out[i] = Some(guard.slots[idx].value.clone());
                }
            }
        }
    }

    /// Insert a window of entries with at most one lock acquisition per
    /// touched shard, pushing the value now stored under each key (the
    /// incumbent on a duplicate, first-insert-wins like
    /// [`ShardedCache::insert_or_keep`]) to `out` in input order. Within a
    /// shard, entries land in input order, so bounded-mode CLOCK eviction
    /// takes exactly the victims sequential inserts would; the eviction
    /// counter is bumped once per window with the accumulated delta.
    pub(crate) fn insert_many(&self, entries: &[(K, V)], out: &mut Vec<V>) {
        out.clear();
        out.reserve(entries.len());
        let mut shard_of: Vec<u8> = Vec::with_capacity(entries.len());
        let mut touched = [false; SHARDS];
        for (key, _) in entries {
            let s = (self.hasher.hash_one(key) as usize) % SHARDS;
            shard_of.push(s as u8);
            touched[s] = true;
        }
        let mut evicted = 0u64;
        // `out` must come back in input order, but each shard is visited
        // once; stage values keyed by input index, then emit in order.
        let mut staged: Vec<Option<V>> = Vec::new();
        staged.resize_with(entries.len(), || None);
        for (s, shard) in self.shards.iter().enumerate() {
            if !touched[s] {
                continue;
            }
            let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (i, (key, value)) in entries.iter().enumerate() {
                if shard_of[i] as usize != s {
                    continue;
                }
                if let Some(idx) = guard.map.get(key).copied() {
                    guard.slots[idx].referenced = true;
                    staged[i] = Some(guard.slots[idx].value.clone());
                    continue;
                }
                let idx = if guard.slots.len() >= guard.cap {
                    let victim = guard.evict_one();
                    evicted += 1;
                    guard.map.insert(key.clone(), victim);
                    guard.slots[victim] = Slot {
                        key: key.clone(),
                        value: value.clone(),
                        referenced: true,
                    };
                    victim
                } else {
                    let idx = guard.slots.len();
                    guard.map.insert(key.clone(), idx);
                    guard.slots.push(Slot {
                        key: key.clone(),
                        value: value.clone(),
                        referenced: true,
                    });
                    idx
                };
                staged[i] = Some(guard.slots[idx].value.clone());
            }
        }
        if evicted > 0 {
            self.evictions.add(evicted);
        }
        // Every index was staged by exactly one shard pass; `flatten`
        // (rather than unwrap) keeps this free of panic paths anyway.
        out.extend(staged.into_iter().flatten());
    }

    /// True when `key` is resident, *without* touching its CLOCK
    /// referenced bit (a diagnostic probe, not a use).
    #[cfg(test)]
    pub(crate) fn contains(&self, key: &K) -> bool {
        let guard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        guard.map.contains_key(key)
    }

    /// Total entries across all shards.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).slots.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecost_telemetry::Registry;
    use std::sync::Arc;

    fn counter() -> Counter {
        Registry::default().counter("test.evictions")
    }

    #[test]
    fn first_insert_wins() {
        let c: ShardedCache<u64, Arc<u64>> = ShardedCache::new(counter());
        assert!(c.get(&7).is_none());
        let a = c.insert_or_keep(7, Arc::new(1));
        let b = c.insert_or_keep(7, Arc::new(2));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*c.get(&7).unwrap(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn keys_spread_over_shards() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(counter());
        for k in 0..1000 {
            c.insert_or_keep(k, k * k);
        }
        assert_eq!(c.len(), 1000);
        assert_eq!(c.get(&31), Some(961));
    }

    #[test]
    fn bounded_cache_never_exceeds_budget_and_counts_evictions() {
        let ev = counter();
        let c: ShardedCache<u64, u64> = ShardedCache::with_budget(Some(64), ev.clone());
        for k in 0..10_000 {
            c.insert_or_keep(k, k);
            assert!(c.len() <= 64, "len {} at key {k}", c.len());
        }
        assert!(c.len() <= 64);
        assert!(ev.get() > 0);
        // Conservation: every insert either grew the table or evicted.
        assert_eq!(c.len() as u64 + ev.get(), 10_000);
    }

    #[test]
    fn clock_gives_hot_entries_a_second_chance() {
        // Flood one shard with cold keys; the watched key survives strictly
        // longer when probed before every insert (its referenced bit keeps
        // getting re-armed) than when left cold. The watched key must not
        // occupy the slot the hand parks on — when every bit is set, a full
        // lap clears them all and evicts the hand's own slot regardless of
        // probing — so a filler key takes that slot first. Everything is
        // seeded, so the two survival horizons are exact, not statistical.
        let shard_of = |k: &u64| (SeededState.hash_one(k) as usize) % SHARDS;
        let same_shard: Vec<u64> = (1..10_000)
            .filter(|k| shard_of(k) == shard_of(&0))
            .collect();
        assert!(same_shard.len() > 100, "seeded hasher starves the shard");
        let survival = |probe: bool| -> usize {
            let c: ShardedCache<u64, u64> = ShardedCache::with_budget(Some(64), counter());
            c.insert_or_keep(same_shard[0], 0); // filler under the hand
            c.insert_or_keep(0, 0); // the watched key
            for (i, &k) in same_shard[1..].iter().enumerate() {
                if probe {
                    c.get(&0);
                }
                c.insert_or_keep(k, k);
                if !c.contains(&0) {
                    return i;
                }
            }
            same_shard.len()
        };
        let cold = survival(false);
        let hot = survival(true);
        assert!(cold < same_shard.len(), "cold key never evicted");
        assert!(hot > cold, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn eviction_order_is_deterministic() {
        // Same insert/probe sequence on two caches → identical survivors.
        let survivors = || {
            let c: ShardedCache<u64, u64> = ShardedCache::with_budget(Some(32), counter());
            for k in 0..200 {
                c.insert_or_keep(k, k);
                if k % 3 == 0 {
                    c.get(&(k / 2));
                }
            }
            (0..200).filter(|k| c.get(k).is_some()).collect::<Vec<_>>()
        };
        assert_eq!(survivors(), survivors());
    }

    #[test]
    fn get_many_matches_sequential_gets_and_marks_hits() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(counter());
        for k in (0..200).step_by(2) {
            c.insert_or_keep(k, k + 1);
        }
        let keys: Vec<u64> = (0..200).collect();
        let mut bulk = Vec::new();
        c.get_many(&keys, &mut bulk);
        assert_eq!(bulk.len(), keys.len());
        for (k, got) in keys.iter().zip(&bulk) {
            assert_eq!(*got, c.get(k), "key {k}");
        }
        // Repeated keys in one window are each answered.
        let dup = [4u64, 4, 5, 4];
        c.get_many(&dup, &mut bulk);
        assert_eq!(bulk, vec![Some(5), Some(5), None, Some(5)]);
    }

    #[test]
    fn insert_many_is_first_insert_wins_in_input_order() {
        let c: ShardedCache<u64, Arc<u64>> = ShardedCache::new(counter());
        let incumbent = c.insert_or_keep(7, Arc::new(1));
        // A window carrying an incumbent key AND an internal duplicate:
        // the incumbent survives, and the window's own first insert wins
        // over its later duplicate.
        let entries = vec![(7u64, Arc::new(2u64)), (8, Arc::new(10)), (8, Arc::new(20))];
        let mut stored = Vec::new();
        c.insert_many(&entries, &mut stored);
        assert_eq!(stored.len(), 3);
        assert!(Arc::ptr_eq(&stored[0], &incumbent));
        assert_eq!(*stored[1], 10);
        assert_eq!(*stored[2], 10, "later duplicate must see the first insert");
        assert_eq!(*c.get(&8).unwrap(), 10);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn bulk_ops_leave_the_same_clock_state_as_sequential_ops() {
        // Identical logical traffic — bulk vs per-key — must leave the
        // bounded CLOCK rings in identical states: same survivors, same
        // eviction count. This is what lets the engine switch the sweep
        // memo to get_many/insert_many without perturbing eviction order.
        let run = |bulk: bool| -> (Vec<u64>, u64) {
            let ev = counter();
            let c: ShardedCache<u64, u64> = ShardedCache::with_budget(Some(32), ev.clone());
            for round in 0..4u64 {
                let keys: Vec<u64> = (round * 40..round * 40 + 80).collect();
                if bulk {
                    let mut out = Vec::new();
                    c.get_many(&keys, &mut out);
                    let entries: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k * 3)).collect();
                    let mut stored = Vec::new();
                    c.insert_many(&entries, &mut stored);
                } else {
                    for &k in &keys {
                        c.get(&k);
                    }
                    for &k in &keys {
                        c.insert_or_keep(k, k * 3);
                    }
                }
            }
            let survivors = (0..400).filter(|k| c.contains(k)).collect();
            (survivors, ev.get())
        };
        let (seq_survivors, seq_evictions) = run(false);
        let (bulk_survivors, bulk_evictions) = run(true);
        assert_eq!(bulk_survivors, seq_survivors);
        assert_eq!(bulk_evictions, seq_evictions);
        assert!(seq_evictions > 0, "the sequence must actually thrash");
    }

    #[test]
    fn bounded_insert_many_conserves_entries() {
        let ev = counter();
        let c: ShardedCache<u64, u64> = ShardedCache::with_budget(Some(64), ev.clone());
        let mut inserted = 0u64;
        for round in 0..10u64 {
            let entries: Vec<(u64, u64)> =
                (round * 500..(round + 1) * 500).map(|k| (k, k)).collect();
            let mut stored = Vec::new();
            c.insert_many(&entries, &mut stored);
            inserted += entries.len() as u64;
            assert!(c.len() <= 64, "len {} after round {round}", c.len());
        }
        // Every distinct key inserted exactly one entry; each is resident
        // or was evicted — the per-window eviction delta loses nothing.
        assert_eq!(c.len() as u64 + ev.get(), inserted);
    }

    #[test]
    fn tiny_budget_is_clamped_to_one_slot_per_shard() {
        let ev = counter();
        let c: ShardedCache<u64, u64> = ShardedCache::with_budget(Some(0), ev.clone());
        for k in 0..100 {
            c.insert_or_keep(k, k);
        }
        assert!(c.len() <= SHARDS);
        assert!(ev.get() > 0);
    }
}
