//! Bounded retry with simulated-time backoff for transient evaluation
//! failures.
//!
//! The AMVA fixed point can fail to converge on a pathological demand mix;
//! in a real deployment the tuner would simply retry the measurement a
//! moment later. [`RetryPolicy`] bounds that loop and prices it: every
//! retry costs *simulated* seconds of backoff, which the scheduler adds to
//! its makespan, so a flaky evaluation path shows up in the EDP numbers
//! instead of hiding in wall-clock noise.

/// Bounded retry schedule for transient [`super::EvalError`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Simulated backoff before the first retry, seconds.
    pub backoff_s: f64,
    /// Geometric growth factor applied per subsequent retry.
    pub backoff_multiplier: f64,
}

impl RetryPolicy {
    /// Fail on the first transient error (no retries, no backoff).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff_s: 0.0,
            backoff_multiplier: 1.0,
        }
    }

    /// Simulated backoff charged before retry number `attempt` (0-based).
    pub fn backoff_for(&self, attempt: u32) -> f64 {
        let mult = if self.backoff_multiplier.is_finite() && self.backoff_multiplier > 0.0 {
            self.backoff_multiplier
        } else {
            1.0
        };
        self.backoff_s.max(0.0) * mult.powi(attempt.min(64) as i32)
    }

    /// [`Self::backoff_for`] stretched by a seeded jitter: up to `frac`
    /// of the base backoff, drawn deterministically from `key` (callers
    /// derive it from a request identity). Requests retrying in lockstep
    /// would otherwise resynchronise on every geometric step; the jitter
    /// spreads them while staying fully reproducible. A non-finite or
    /// non-positive `frac` degrades to the unjittered backoff.
    pub fn jittered_backoff_for(&self, attempt: u32, frac: f64, key: u64) -> f64 {
        let base = self.backoff_for(attempt);
        if !(frac.is_finite() && frac > 0.0) || base == 0.0 {
            return base;
        }
        let mixed = splitmix64(key ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Top 53 bits → uniform in [0, 1).
        let u = (mixed >> 11) as f64 / (1u64 << 53) as f64;
        base * (1.0 + frac * u)
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash for deriving
/// per-(request, attempt) jitter without threading an RNG through the
/// retry path.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Default for RetryPolicy {
    /// Two retries, one simulated second, doubling: 1 s + 2 s worst case.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            backoff_s: 1.0,
            backoff_multiplier: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_for(0), 1.0);
        assert_eq!(p.backoff_for(1), 2.0);
        assert_eq!(p.backoff_for(2), 4.0);
    }

    #[test]
    fn none_never_waits() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.backoff_for(0), 0.0);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy::default();
        for attempt in 0..4 {
            let base = p.backoff_for(attempt);
            let j = p.jittered_backoff_for(attempt, 0.5, 12345);
            assert_eq!(j, p.jittered_backoff_for(attempt, 0.5, 12345));
            if attempt == 0 {
                assert!((base..base * 1.5).contains(&j), "jitter {j} vs base {base}");
            }
        }
        // Different keys spread.
        assert_ne!(
            p.jittered_backoff_for(0, 0.5, 1),
            p.jittered_backoff_for(0, 0.5, 2)
        );
        // Degenerate fractions degrade to the plain backoff.
        assert_eq!(p.jittered_backoff_for(1, 0.0, 7), p.backoff_for(1));
        assert_eq!(p.jittered_backoff_for(1, f64::NAN, 7), p.backoff_for(1));
    }

    #[test]
    fn degenerate_multipliers_are_sanitised() {
        let p = RetryPolicy {
            max_retries: 1,
            backoff_s: 2.0,
            backoff_multiplier: f64::NAN,
        };
        assert_eq!(p.backoff_for(3), 2.0);
    }
}
