//! Bounded retry with simulated-time backoff for transient evaluation
//! failures.
//!
//! The AMVA fixed point can fail to converge on a pathological demand mix;
//! in a real deployment the tuner would simply retry the measurement a
//! moment later. [`RetryPolicy`] bounds that loop and prices it: every
//! retry costs *simulated* seconds of backoff, which the scheduler adds to
//! its makespan, so a flaky evaluation path shows up in the EDP numbers
//! instead of hiding in wall-clock noise.

/// Bounded retry schedule for transient [`super::EvalError`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Simulated backoff before the first retry, seconds.
    pub backoff_s: f64,
    /// Geometric growth factor applied per subsequent retry.
    pub backoff_multiplier: f64,
}

impl RetryPolicy {
    /// Fail on the first transient error (no retries, no backoff).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff_s: 0.0,
            backoff_multiplier: 1.0,
        }
    }

    /// Simulated backoff charged before retry number `attempt` (0-based).
    pub fn backoff_for(&self, attempt: u32) -> f64 {
        let mult = if self.backoff_multiplier.is_finite() && self.backoff_multiplier > 0.0 {
            self.backoff_multiplier
        } else {
            1.0
        };
        self.backoff_s.max(0.0) * mult.powi(attempt.min(64) as i32)
    }
}

impl Default for RetryPolicy {
    /// Two retries, one simulated second, doubling: 1 s + 2 s worst case.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            backoff_s: 1.0,
            backoff_multiplier: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_for(0), 1.0);
        assert_eq!(p.backoff_for(1), 2.0);
        assert_eq!(p.backoff_for(2), 4.0);
    }

    #[test]
    fn none_never_waits() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.backoff_for(0), 0.0);
    }

    #[test]
    fn degenerate_multipliers_are_sanitised() {
        let p = RetryPolicy {
            max_retries: 1,
            backoff_s: 2.0,
            backoff_multiplier: f64::NAN,
        };
        assert_eq!(p.backoff_for(3), 2.0);
    }
}
