//! Simulator pool for the engine's miss paths.
//!
//! A sweep evaluates hundreds to thousands of configurations; before this
//! pool every point constructed a fresh [`NodeSim`] (node spec + framework
//! clone, power model, solver scratch) just to throw it away milliseconds
//! later. The pool keeps finished simulators and hands them back out after
//! [`NodeSim::reset`], so a rayon worker crunching a sweep reuses one warm
//! simulator — and its grown solver scratch — for point after point.
//!
//! Correctness: `reset` restores every observable field to its
//! freshly-constructed value (the executor's property tests hold pooled
//! runs bit-identical to fresh ones), and the pool is owned by one engine,
//! so the node spec and framework of every pooled simulator always match.
//! A simulator is returned to the pool only after a *successful* run;
//! error paths drop it, trading a rebuild for never caching a simulator in
//! a half-advanced state.

use ecost_mapreduce::{BatchScratch, FrameworkSpec, NodeSim};
use ecost_sim::NodeSpec;
use std::sync::Mutex;

pub(crate) struct SimPool {
    free: Mutex<Vec<NodeSim>>,
    /// Warm [`BatchScratch`]es for the batched sweep windows. Scratches are
    /// fully re-initialised per solve, so unlike simulators they are safe
    /// to pool even after a failed window.
    scratch: Mutex<Vec<BatchScratch>>,
}

impl SimPool {
    pub(crate) fn new() -> SimPool {
        SimPool {
            free: Mutex::new(Vec::new()),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Check out a batch scratch (warm when available).
    pub(crate) fn acquire_scratch(&self) -> BatchScratch {
        match self.scratch.lock() {
            Ok(mut v) => v.pop().unwrap_or_default(),
            Err(_) => BatchScratch::new(),
        }
    }

    /// Shelve a batch scratch, keeping its grown lane buffers warm.
    pub(crate) fn release_scratch(&self, s: BatchScratch) {
        if let Ok(mut v) = self.scratch.lock() {
            v.push(s);
        }
    }

    /// Check out a simulator: a pooled one when available, otherwise a
    /// fresh construction. The second element reports which happened
    /// (`true` = reused), so the engine can account allocations saved.
    pub(crate) fn acquire(&self, spec: &NodeSpec, fw: &FrameworkSpec) -> (NodeSim, bool) {
        // A poisoned lock (a panicking thread mid-push) only costs us the
        // pooled simulators; fall back to fresh construction.
        let pooled = match self.free.lock() {
            Ok(mut v) => v.pop(),
            Err(_) => None,
        };
        match pooled {
            Some(sim) => (sim, true),
            None => (NodeSim::new(spec.clone(), fw.clone()), false),
        }
    }

    /// Return a simulator after a successful run: reset to pristine state
    /// (warm buffers kept) and shelve it for the next acquire.
    pub(crate) fn release(&self, mut sim: NodeSim) {
        sim.reset();
        if let Ok(mut v) = self.free.lock() {
            v.push(sim);
        }
    }

    /// Check out `k` simulators under one lock acquisition — the batched
    /// window's counterpart of [`SimPool::acquire`]. Appends to `out` and
    /// returns `(reused, built)` so the engine can account pool hits with
    /// one counter bump per window instead of one per lane.
    pub(crate) fn acquire_window(
        &self,
        spec: &NodeSpec,
        fw: &FrameworkSpec,
        k: usize,
        out: &mut Vec<NodeSim>,
    ) -> (u64, u64) {
        let mut reused = 0u64;
        if let Ok(mut v) = self.free.lock() {
            let take = k.min(v.len());
            let at = v.len() - take;
            out.extend(v.drain(at..));
            reused = take as u64;
        }
        let built = (k as u64).saturating_sub(reused);
        for _ in 0..built {
            out.push(NodeSim::new(spec.clone(), fw.clone()));
        }
        (reused, built)
    }

    /// Return a whole window of simulators after a successful run: reset
    /// each, then shelve them all under one lock acquisition.
    pub(crate) fn release_window(&self, sims: &mut Vec<NodeSim>) {
        for sim in sims.iter_mut() {
            sim.reset();
        }
        if let Ok(mut v) = self.free.lock() {
            v.append(sims);
        }
        // Poisoned lock: the drained sims are dropped with the Vec's
        // contents, same outcome as scalar `release` losing its push.
        sims.clear();
    }

    /// Simulators currently shelved (diagnostics).
    pub(crate) fn idle(&self) -> usize {
        self.free.lock().map(|v| v.len()).unwrap_or(0)
    }
}

impl std::fmt::Debug for SimPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimPool")
            .field("idle", &self.idle())
            .finish()
    }
}
