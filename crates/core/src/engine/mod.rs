//! The unified evaluation engine — one fallible, memoized simulation
//! service behind everything that asks "what does this (pair of) job(s)
//! cost under this configuration?".
//!
//! Before this module existed, the oracle sweeps, the COLAO/ILAO baselines,
//! the §6.2 database build, the MLM training-set construction and the
//! cluster scheduler each drove the executor directly, with ad-hoc caching
//! (`SweepCache`, `mapping.rs`'s private `pair_best` table) scattered
//! between them. [`EvalEngine`] replaces all of that: it owns the
//! [`Testbed`] and a sharded, concurrent memo of every solo and pair
//! evaluation, keyed on an application-profile fingerprint × input size ×
//! configuration. The database build, the baselines and the training set
//! now simulate each pair configuration at most once, and the engine's
//! [`EngineStats`] expose exactly how much simulation the run really paid
//! for (Fig 8's overhead accounting).
//!
//! Every entry point returns `Result<_, EvalError>`: the AMVA substrate's
//! failures ([`ecost_sim::SimError`]) propagate as typed errors instead of
//! panics, so `unwrap`/`expect` survive only in bins, benches and tests.

mod cache;
mod error;
mod pool;
mod retry;

pub use error::EvalError;
pub use retry::RetryPolicy;

use crate::features::Testbed;
use cache::ShardedCache;
use ecost_apps::AppProfile;
use ecost_mapreduce::executor::JobOutcome;
use ecost_mapreduce::reference::ReferenceNodeSim;
use ecost_mapreduce::{
    run_batch_to_completion, JobMetrics, JobSpec, PairConfig, PairMetrics, TuningConfig,
    MAX_BATCH_LANES,
};
use ecost_sim::{SimError, SimdBackend};
use ecost_telemetry::{Counter, Event, Recorder, Registry};
use pool::SimPool;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Lane windows one batch-resident span drives between pool checkouts.
///
/// The resident sweeps hold a whole span's simulators (and one batch
/// scratch) checked out across consecutive windows, resetting lane state in
/// place between windows, so the pool's lock and the multi-KB per-simulator
/// moves are paid once per span instead of once per window. Kept small
/// enough that a full sweep still splits into plenty of spans for the
/// rayon workers.
const FUSED_WINDOWS_PER_SPAN: usize = 8;

/// Wall-clock cost breakdown of the engine's batched miss path, measured
/// (not estimated) when phase timing is on ([`EvalEngine::set_phase_timing`])
/// and drained with [`EvalEngine::take_phase_breakdown`]. All buckets are
/// nanoseconds summed across windows and worker threads; buckets overlap
/// wall time when sweeps run on several rayon workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Inside the lane-interleaved AMVA kernel.
    pub solve_ns: u64,
    /// Outer contention fixed-point bookkeeping around the kernel.
    pub outer_ns: u64,
    /// Simulator checkout, job submit, reset and pool return.
    pub submit_reset_ns: u64,
    /// Memo-table traffic: key building, probes, inserts.
    pub memo_ns: u64,
    /// Event-loop bookkeeping between solves.
    pub event_loop_ns: u64,
}

impl PhaseBreakdown {
    /// Sum of all buckets.
    pub fn total_ns(&self) -> u64 {
        self.solve_ns + self.outer_ns + self.submit_reset_ns + self.memo_ns + self.event_loop_ns
    }
}

/// Relaxed atomic accumulators behind [`PhaseBreakdown`] — bumped from
/// rayon workers without any lock.
#[derive(Debug, Default)]
struct PhaseNs {
    solve: AtomicU64,
    outer: AtomicU64,
    submit_reset: AtomicU64,
    memo: AtomicU64,
    event_loop: AtomicU64,
}

impl PhaseNs {
    fn take(&self) -> PhaseBreakdown {
        PhaseBreakdown {
            solve_ns: self.solve.swap(0, Ordering::Relaxed),
            outer_ns: self.outer.swap(0, Ordering::Relaxed),
            submit_reset_ns: self.submit_reset.swap(0, Ordering::Relaxed),
            memo_ns: self.memo.swap(0, Ordering::Relaxed),
            event_loop_ns: self.event_loop.swap(0, Ordering::Relaxed),
        }
    }
}

/// Result of a standalone run at one configuration.
#[derive(Debug, Clone)]
pub struct SoloRun {
    /// The configuration.
    pub config: TuningConfig,
    /// Measured metrics.
    pub metrics: JobMetrics,
}

/// Result of a co-located run at one pair configuration.
#[derive(Debug, Clone)]
pub struct PairRun {
    /// The pair configuration.
    pub config: PairConfig,
    /// Makespan + energy of the pair.
    pub metrics: PairMetrics,
}

/// A memoized full pair sweep, in the engine's *stored* orientation.
///
/// The engine normalises `(a, b)` and `(b, a)` to one cache entry; when
/// [`PairSweep::swapped`] is true the stored runs' `config.a` applies to
/// the *second* application of the caller's query. [`PairSweep::best`]
/// reorients the winner automatically.
#[derive(Debug, Clone)]
pub struct PairSweep {
    runs: Arc<Vec<PairRun>>,
    swapped: bool,
}

impl PairSweep {
    /// The swept runs, in stored orientation (shared with the cache).
    pub fn runs(&self) -> &Arc<Vec<PairRun>> {
        &self.runs
    }

    /// True when the stored orientation is the reverse of the query's.
    pub fn swapped(&self) -> bool {
        self.swapped
    }

    /// Number of swept configurations.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when the sweep is empty (never for a real config space).
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Wall-EDP winner, reoriented to the query's `(a, b)` order.
    pub fn best(&self, idle_w: f64) -> Result<PairRun, EvalError> {
        let mut best = best_of_slice(&self.runs, idle_w)?;
        if self.swapped {
            best.config = best.config.swapped();
        }
        Ok(best)
    }
}

/// Wall-EDP argmin over a slice of pair runs.
fn best_of_slice(runs: &[PairRun], idle_w: f64) -> Result<PairRun, EvalError> {
    runs.iter()
        .min_by(|x, y| {
            x.metrics
                .edp_wall(idle_w)
                .total_cmp(&y.metrics.edp_wall(idle_w))
        })
        .cloned()
        .ok_or(EvalError::EmptySweep { what: "pair sweep" })
}

/// Counter snapshot of an engine's lifetime activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStats {
    /// Cache probes answered from the memo.
    pub hits: u64,
    /// Cache probes that had to simulate.
    pub misses: u64,
    /// Individual executor runs actually simulated (solo runs count 1,
    /// pair-configuration points count 1).
    pub runs_simulated: u64,
    /// Wall-clock seconds spent inside miss-path simulation (whole-sweep
    /// elapsed for sweeps, per-run elapsed for single evaluations).
    pub wall_seconds: f64,
    /// Fault events (crashes, slowdowns, stragglers) applied to runs driven
    /// through this engine.
    pub faults_injected: u64,
    /// Transient-failure retries performed under a [`RetryPolicy`].
    pub retries: u64,
    /// Graceful degradations taken (solo placement instead of a pair,
    /// class-default configuration instead of a learned one).
    pub fallbacks: u64,
    /// Miss-path runs that had to construct a fresh simulator (pool
    /// empty). Scheduling-dependent: roughly one per concurrently active
    /// worker thread, not one per run.
    pub sims_created: u64,
    /// Miss-path runs served by a reset, pooled simulator — each one is a
    /// full `NodeSim` construction (spec/framework clones + solver
    /// scratch) that was *not* allocated.
    pub sims_reused: u64,
    /// Memo entries evicted under a [`CacheBudget`] (always 0 on an
    /// unbounded engine). Eviction changes hit counts, never values:
    /// a re-probed evicted key re-simulates to the identical result.
    pub evictions: u64,
}

impl EngineStats {
    /// Fraction of probes served from cache (0 when nothing was probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The all-zero snapshot (what a fresh engine reports).
    pub fn zero() -> EngineStats {
        EngineStats {
            hits: 0,
            misses: 0,
            runs_simulated: 0,
            wall_seconds: 0.0,
            faults_injected: 0,
            retries: 0,
            fallbacks: 0,
            sims_created: 0,
            sims_reused: 0,
            evictions: 0,
        }
    }
}

impl std::ops::Add for EngineStats {
    type Output = EngineStats;

    fn add(self, rhs: EngineStats) -> EngineStats {
        EngineStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            runs_simulated: self.runs_simulated + rhs.runs_simulated,
            wall_seconds: self.wall_seconds + rhs.wall_seconds,
            faults_injected: self.faults_injected + rhs.faults_injected,
            retries: self.retries + rhs.retries,
            fallbacks: self.fallbacks + rhs.fallbacks,
            sims_created: self.sims_created + rhs.sims_created,
            sims_reused: self.sims_reused + rhs.sims_reused,
            evictions: self.evictions + rhs.evictions,
        }
    }
}

impl std::ops::AddAssign for EngineStats {
    fn add_assign(&mut self, rhs: EngineStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for EngineStats {
    fn sum<I: Iterator<Item = EngineStats>>(iter: I) -> EngineStats {
        iter.fold(EngineStats::zero(), |acc, s| acc + s)
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} runs simulated, {:.1}% cache hit rate ({} hits / {} misses), {:.2} s simulating, \
             {} faults / {} retries / {} fallbacks",
            self.runs_simulated,
            100.0 * self.hit_rate(),
            self.hits,
            self.misses,
            self.wall_seconds,
            self.faults_injected,
            self.retries,
            self.fallbacks
        )?;
        write!(
            f,
            ", {} sims created / {} reused from pool, {} evictions",
            self.sims_created, self.sims_reused, self.evictions
        )
    }
}

/// Entry budgets for the engine's three memo tables; `None` fields are
/// unbounded (the classic memo). Budgets count *entries*, not bytes: a
/// solo entry is one [`JobOutcome`], a pair-point entry one
/// [`PairMetrics`], but a sweep entry is a whole configuration sweep
/// (thousands of points), so sweep budgets deserve the smallest numbers.
///
/// Bounding a cache changes hit counts, never values — an evicted key that
/// gets re-probed is re-simulated to the bit-identical result (pinned by a
/// property test). Each table splits its budget over 16 shards, so the
/// effective minimum is 16 entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheBudget {
    /// Max memoized solo outcomes.
    pub solo: Option<usize>,
    /// Max memoized full pair sweeps.
    pub sweeps: Option<usize>,
    /// Max memoized single pair-configuration points.
    pub pair_points: Option<usize>,
}

impl CacheBudget {
    /// No bounds anywhere — entries accumulate for the engine's lifetime.
    pub fn unbounded() -> CacheBudget {
        CacheBudget::default()
    }

    /// The same entry budget on all three tables.
    pub fn entries(n: usize) -> CacheBudget {
        CacheBudget {
            solo: Some(n),
            sweeps: Some(n),
            pair_points: Some(n),
        }
    }
}

/// FNV-1a folder for profile fingerprints.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn f64(&mut self, x: f64) {
        self.bytes(&x.to_bits().to_le_bytes());
    }
}

/// Fingerprint of an application profile: name plus the bit patterns of
/// every numeric demand field. Two profiles with the same name but
/// perturbed demands (e.g. noisy clones) therefore key separately.
fn fingerprint(p: &AppProfile) -> u64 {
    let mut h = Fnv::new();
    h.bytes(p.name.as_bytes());
    h.bytes(&[p.class as u8]);
    for x in [
        p.map_cycles_per_mb,
        p.task_overhead_cycles,
        p.map_selectivity,
        p.spill_factor,
        p.reduce_cycles_per_mb,
        p.output_selectivity,
        p.job_overhead_s,
        p.llc_mpki,
        p.ipc_base,
        p.mem_stall_frac,
        p.icache_mpki,
        p.branch_misp_pct,
        p.working_set_frac,
        p.footprint_base_mb,
    ] {
        h.f64(x);
    }
    h.0
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SoloKey {
    fp: u64,
    mb: u64,
    cfg: TuningConfig,
    /// Fault context: bit pattern of the node slowdown factor (1.0 =
    /// healthy). Degraded evaluations must not poison healthy entries.
    slow: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PairKey {
    fp_a: u64,
    a_mb: u64,
    fp_b: u64,
    b_mb: u64,
    /// Fault context: bit pattern of the node slowdown factor (1.0 =
    /// healthy).
    slow: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PairPointKey {
    pair: PairKey,
    cfg: PairConfig,
}

/// Cached handles into the telemetry registry — one per engine metric, so
/// the hot paths pay exactly one relaxed atomic add per probe and never a
/// registry lookup. [`EngineStats`] is a read-only view over these: the
/// registry is the single source of truth.
#[derive(Debug, Clone)]
struct EngineCounters {
    hits: Counter,
    misses: Counter,
    runs: Counter,
    wall_ns: Counter,
    faults: Counter,
    retries: Counter,
    fallbacks: Counter,
    sims_created: Counter,
    sims_reused: Counter,
    evictions: Counter,
}

impl EngineCounters {
    /// Counters under a per-engine namespace. The registry interns
    /// counters by name, so two engines built on the same registry with
    /// the bare names would *alias* each other's counters and every
    /// per-engine stat would double-count. A non-empty scope prefixes the
    /// names (`<scope>.engine.cache_hits`, …), giving each engine its own
    /// rows while the shared registry still sees them all.
    fn scoped(reg: &Registry, scope: &str) -> EngineCounters {
        let name = |leaf: &str| {
            if scope.is_empty() {
                format!("engine.{leaf}")
            } else {
                format!("{scope}.engine.{leaf}")
            }
        };
        EngineCounters {
            hits: reg.counter(&name("cache_hits")),
            misses: reg.counter(&name("cache_misses")),
            runs: reg.counter(&name("runs_simulated")),
            wall_ns: reg.counter(&name("wall_ns")),
            faults: reg.counter(&name("faults_injected")),
            retries: reg.counter(&name("retries")),
            fallbacks: reg.counter(&name("fallbacks")),
            sims_created: reg.counter(&name("sims_created")),
            sims_reused: reg.counter(&name("sims_reused")),
            evictions: reg.counter(&name("cache_evictions")),
        }
    }
}

/// The evaluation service. Owns the testbed and every memo table; share it
/// by reference (all methods take `&self` and are thread-safe).
#[derive(Debug)]
pub struct EvalEngine {
    tb: Testbed,
    solo: ShardedCache<SoloKey, Arc<JobOutcome>>,
    sweeps: ShardedCache<PairKey, Arc<Vec<PairRun>>>,
    pair_points: ShardedCache<PairPointKey, PairMetrics>,
    pool: SimPool,
    recorder: Recorder,
    counters: EngineCounters,
    budget: CacheBudget,
    /// Lane width for batched sweep windows (1 = scalar solves). Clamped
    /// to `1..=MAX_BATCH_LANES`; every lane is bit-identical to a scalar
    /// solve, so this is purely a throughput knob.
    batch_lanes: usize,
    /// Route miss-path runs through the frozen `ReferenceNodeSim` instead
    /// of the optimized pooled executor (benchmark baseline arm).
    reference: bool,
    /// AMVA vector backend for batched sweep windows, detected at
    /// construction ([`Self::set_simd`] pins the scalar kernel instead).
    simd: SimdBackend,
    /// Batch-resident window execution (on by default): pooled window
    /// checkout, resident outer fixed points, bulk memo traffic. Off pins
    /// the pre-resident per-lane drivers — bit-identical results, kept as
    /// the frozen benchmark comparator.
    batch_resident: bool,
    /// Warm-started outer fixed points (off by default; results change
    /// within tolerance, so goldens pin this off).
    warm_start: bool,
    /// Collect the [`PhaseBreakdown`] buckets (off by default: the hot
    /// path takes no timestamps unless asked).
    phase_timing: bool,
    phases: PhaseNs,
}

impl EvalEngine {
    /// Engine over an explicit testbed, with a no-op recorder (metrics
    /// live, trace events dropped).
    pub fn new(tb: Testbed) -> EvalEngine {
        EvalEngine::with_recorder(tb, Recorder::noop())
    }

    /// Engine reporting into an explicit telemetry recorder.
    pub fn with_recorder(tb: Testbed, recorder: Recorder) -> EvalEngine {
        EvalEngine::with_scoped_recorder(tb, recorder, "")
    }

    /// Engine reporting into `recorder` under a per-engine metric scope.
    ///
    /// Multiple engines sharing one registry must use distinct non-empty
    /// scopes: the registry interns counters by name, so unscoped engines
    /// on the same registry alias the same `engine.*` rows and each
    /// engine's [`Self::stats`] reports the *sum* of all traffic instead
    /// of its own. A scope `s` renames the rows `s.engine.cache_hits`
    /// etc., keeping per-engine snapshots independent while still landing
    /// in the shared registry for fleet-wide aggregation.
    pub fn with_scoped_recorder(tb: Testbed, recorder: Recorder, scope: &str) -> EvalEngine {
        let counters = EngineCounters::scoped(recorder.metrics(), scope);
        let ev = &counters.evictions;
        EvalEngine {
            tb,
            solo: ShardedCache::new(ev.clone()),
            sweeps: ShardedCache::new(ev.clone()),
            pair_points: ShardedCache::new(ev.clone()),
            pool: SimPool::new(),
            recorder,
            counters,
            budget: CacheBudget::unbounded(),
            batch_lanes: MAX_BATCH_LANES,
            reference: false,
            simd: SimdBackend::detect(),
            batch_resident: true,
            warm_start: false,
            phase_timing: false,
            phases: PhaseNs::default(),
        }
    }

    /// Builder form of [`Self::set_cache_budget`].
    pub fn with_cache_budget(mut self, budget: CacheBudget) -> EvalEngine {
        self.set_cache_budget(budget);
        self
    }

    /// Bound the memo tables to `budget` entries each (see [`CacheBudget`]
    /// for the per-table semantics). Replaces the tables, so any entries
    /// memoized so far are discarded — set the budget before warming the
    /// engine. Eviction activity shows up in [`EngineStats::evictions`]
    /// and the `engine.cache_evictions` telemetry counter.
    pub fn set_cache_budget(&mut self, budget: CacheBudget) {
        self.budget = budget;
        let ev = &self.counters.evictions;
        self.solo = ShardedCache::with_budget(budget.solo, ev.clone());
        self.sweeps = ShardedCache::with_budget(budget.sweeps, ev.clone());
        self.pair_points = ShardedCache::with_budget(budget.pair_points, ev.clone());
    }

    /// The configured memo budgets (unbounded by default).
    pub fn cache_budget(&self) -> CacheBudget {
        self.budget
    }

    /// Builder form of [`Self::set_batch_lanes`].
    pub fn with_batch_lanes(mut self, lanes: usize) -> EvalEngine {
        self.set_batch_lanes(lanes);
        self
    }

    /// Set the lane width for batched sweep windows. Clamped to
    /// `1..=MAX_BATCH_LANES`; 1 selects the scalar per-point path. Every
    /// lane of a batched window is bit-identical to a scalar solve of the
    /// same point, so this knob changes throughput, never results.
    pub fn set_batch_lanes(&mut self, lanes: usize) {
        self.batch_lanes = lanes.clamp(1, MAX_BATCH_LANES);
    }

    /// Current lane width for batched sweep windows.
    pub fn batch_lanes(&self) -> usize {
        self.batch_lanes
    }

    /// Route every miss-path run through the frozen `ReferenceNodeSim`
    /// instead of the optimized pooled executor. This is the benchmark
    /// baseline arm: reference runs construct a fresh simulator per point
    /// (counted under `sims_created`) and never touch the pool or the
    /// batched windows; the memo layers still apply.
    pub fn set_reference_executor(&mut self, on: bool) {
        self.reference = on;
    }

    /// True when miss-path runs use the frozen reference executor.
    pub fn reference_executor(&self) -> bool {
        self.reference
    }

    /// Builder form of [`Self::set_simd`].
    pub fn with_simd(mut self, on: bool) -> EvalEngine {
        self.set_simd(on);
        self
    }

    /// Toggle the explicit `f64x4` AMVA kernel for batched sweep windows.
    /// `false` pins the always-available scalar lane loop (the bench
    /// `--no-simd` arm); `true` re-detects the best backend for this CPU.
    /// Every backend is bit-identical to a scalar solve, so this knob
    /// changes throughput, never results.
    pub fn set_simd(&mut self, on: bool) {
        self.simd = if on {
            SimdBackend::detect()
        } else {
            SimdBackend::Scalar
        };
    }

    /// The AMVA vector backend batched sweep windows will use.
    pub fn simd_backend(&self) -> SimdBackend {
        self.simd
    }

    /// Toggle batch-resident window execution (on by default). Off pins
    /// the pre-resident per-lane sweep drivers — per-point submit/reset,
    /// per-point memo probes, per-round outer bookkeeping — which are
    /// bit-identical in results and kept as the frozen benchmark
    /// comparator arm.
    pub fn set_batch_resident(&mut self, on: bool) {
        self.batch_resident = on;
    }

    /// True when batched sweep windows run batch-resident.
    pub fn batch_resident(&self) -> bool {
        self.batch_resident
    }

    /// Builder form of [`Self::set_warm_start`].
    pub fn with_warm_start(mut self, on: bool) -> EvalEngine {
        self.set_warm_start(on);
        self
    }

    /// Toggle warm-started outer fixed points (off by default). When on,
    /// batch-resident re-solves within a window seed their (θ, slow)
    /// iterations from the previous converged fixed point instead of
    /// (1, 1): the same solution within tolerance (property-tested), in
    /// fewer outer rounds. Off is bit-identical to the scalar path, which
    /// is why the golden results pin it off.
    pub fn set_warm_start(&mut self, on: bool) {
        self.warm_start = on;
    }

    /// True when warm-started outer fixed points are enabled.
    pub fn warm_start(&self) -> bool {
        self.warm_start
    }

    /// Toggle [`PhaseBreakdown`] collection (off by default; timing never
    /// changes simulated results).
    pub fn set_phase_timing(&mut self, on: bool) {
        self.phase_timing = on;
    }

    /// Drain the accumulated phase breakdown, resetting all buckets.
    pub fn take_phase_breakdown(&self) -> PhaseBreakdown {
        self.phases.take()
    }

    /// True when sweeps should solve cache misses in lane-wide batches.
    fn batched(&self) -> bool {
        self.batch_lanes > 1 && !self.reference
    }

    /// The telemetry recorder this engine (and every run driven through
    /// it) reports into.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Engine over the paper's Atom testbed (the common case).
    pub fn atom() -> EvalEngine {
        EvalEngine::new(Testbed::atom())
    }

    /// The testbed this engine simulates on.
    pub fn testbed(&self) -> &Testbed {
        &self.tb
    }

    /// Idle power of one testbed node, watts.
    pub fn idle_w(&self) -> f64 {
        self.tb.idle_w()
    }

    /// Snapshot of lifetime counters — a read-only view over the telemetry
    /// registry (the counters live there; this struct holds no state of
    /// its own).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            hits: self.counters.hits.get(),
            misses: self.counters.misses.get(),
            runs_simulated: self.counters.runs.get(),
            wall_seconds: self.counters.wall_ns.get() as f64 * 1e-9,
            faults_injected: self.counters.faults.get(),
            retries: self.counters.retries.get(),
            fallbacks: self.counters.fallbacks.get(),
            sims_created: self.counters.sims_created.get(),
            sims_reused: self.counters.sims_reused.get(),
            evictions: self.counters.evictions.get(),
        }
    }

    /// Number of full pair sweeps currently memoized.
    pub fn cached_pair_sweeps(&self) -> usize {
        self.sweeps.len()
    }

    /// Number of memoized solo outcomes.
    pub fn cached_solo_runs(&self) -> usize {
        self.solo.len()
    }

    /// Number of memoized single pair-configuration points.
    pub fn cached_pair_points(&self) -> usize {
        self.pair_points.len()
    }

    /// Total resident memo entries across all three tables — the scale
    /// bench's peak-RSS proxy. Under a [`CacheBudget`] this never exceeds
    /// the sum of the per-table budgets.
    pub fn cached_entries(&self) -> usize {
        self.solo.len() + self.sweeps.len() + self.pair_points.len()
    }

    /// Simulators currently idle in the pool (diagnostics; equals
    /// `sims_created` whenever no run is in flight, since every successful
    /// run returns its simulator).
    pub fn pooled_sims(&self) -> usize {
        self.pool.idle()
    }

    /// Cache probe served from the memo. Cache events carry no simulated
    /// timestamp of their own — the engine has no clock — so they are
    /// stamped t = 0.
    fn hit(&self, cache: &'static str) {
        self.counters.hits.inc();
        self.recorder
            .emit(0.0, None, None, || Event::CacheHit { cache });
    }

    /// Cache probe that has to simulate.
    fn miss(&self, cache: &'static str) {
        self.counters.misses.inc();
        self.recorder
            .emit(0.0, None, None, || Event::CacheMiss { cache });
    }

    fn charge(&self, runs: u64, elapsed_ns: u64) {
        self.counters.runs.add(runs);
        self.counters.wall_ns.add(elapsed_ns);
    }

    /// Run `jobs` co-located on a pooled simulator degraded by `slowdown`.
    /// Semantically identical to the executor's
    /// `run_colocated_degraded` convenience (same submit order, same event
    /// loop), but the simulator comes from — and, on success, returns to —
    /// the engine's pool instead of being constructed per run. This is the
    /// kernel under every sweep: a rayon worker grinding through thousands
    /// of configurations reuses one warm simulator and its grown solver
    /// scratch instead of allocating a fresh `NodeSim` per point.
    fn run_pooled(
        &self,
        jobs: impl IntoIterator<Item = JobSpec>,
        slowdown: f64,
    ) -> Result<(Vec<JobOutcome>, f64), EvalError> {
        if self.reference {
            return self.run_reference(jobs, slowdown);
        }
        let (mut sim, reused) = self.pool.acquire(&self.tb.node, &self.tb.fw);
        if reused {
            self.counters.sims_reused.inc();
        } else {
            self.counters.sims_created.inc();
        }
        let run = (|| -> Result<(Vec<JobOutcome>, f64), SimError> {
            sim.set_slowdown(slowdown)?;
            for j in jobs {
                sim.submit(j)?;
            }
            sim.run_to_completion()?;
            let makespan = sim.now();
            Ok((sim.take_finished(), makespan))
        })();
        match run {
            Ok(out) => {
                self.pool.release(sim);
                Ok(out)
            }
            // A failed run drops its simulator: a rebuild on the next miss
            // is cheaper than ever pooling half-advanced state.
            Err(e) => Err(e.into()),
        }
    }

    /// [`Self::run_pooled`]'s baseline twin: a fresh, frozen
    /// `ReferenceNodeSim` per run (one `sims_created` each, nothing
    /// pooled). Semantics are pinned to the optimized executor by the
    /// mapreduce crate's equivalence property tests.
    fn run_reference(
        &self,
        jobs: impl IntoIterator<Item = JobSpec>,
        slowdown: f64,
    ) -> Result<(Vec<JobOutcome>, f64), EvalError> {
        let mut sim = ReferenceNodeSim::new(self.tb.node.clone(), self.tb.fw.clone());
        self.counters.sims_created.inc();
        sim.set_slowdown(slowdown)?;
        for j in jobs {
            sim.submit(j)?;
        }
        sim.run_to_completion()?;
        let makespan = sim.now();
        Ok((sim.take_finished(), makespan))
    }

    /// Solve one window of cache-missed solo points in a single batched
    /// rate solve. One pooled simulator per lane (accounted exactly like
    /// the scalar path), one pooled [`BatchScratch`] per window; on any
    /// failure the window's simulators are dropped, mirroring
    /// [`Self::run_pooled`]'s error policy. Returns `(sweep index,
    /// outcome)` per lane.
    fn simulate_solo_window(
        &self,
        profile: &AppProfile,
        input_mb: f64,
        window: &[(usize, TuningConfig)],
    ) -> Result<Vec<(usize, JobOutcome)>, EvalError> {
        // Phase timing covers the same checkout/submit and return work the
        // fused driver buckets, so the bench can compare shares per arm.
        let t0 = self.phase_timing.then(Instant::now);
        let mut sims = Vec::with_capacity(window.len());
        // One template spec per window: the points differ only in their
        // tuning config, so cloning the template skips re-deriving the
        // label (a float format) for every lane.
        let template = JobSpec::from_profile(profile.clone(), input_mb, window[0].1);
        for &(_, cfg) in window {
            let (mut sim, reused) = self.pool.acquire(&self.tb.node, &self.tb.fw);
            if reused {
                self.counters.sims_reused.inc();
            } else {
                self.counters.sims_created.inc();
            }
            let mut spec = template.clone();
            spec.config = cfg;
            sim.submit(spec)?;
            sims.push(sim);
        }
        if let Some(t) = t0 {
            self.phases
                .submit_reset
                .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        let mut scratch = self.pool.acquire_scratch();
        scratch.set_simd_backend(self.simd);
        // Pooled scratches remember their last flags; the legacy driver
        // pins the pre-resident path so it stays an honest comparator.
        scratch.set_batch_resident(false);
        scratch.set_warm_start(false);
        scratch.set_phase_timing(false);
        let run = run_batch_to_completion(&mut sims, &mut scratch);
        self.pool.release_scratch(scratch);
        run?;
        let t1 = self.phase_timing.then(Instant::now);
        let mut out = Vec::with_capacity(window.len());
        for (&(i, _), mut sim) in window.iter().zip(sims) {
            let outcome = sim
                .take_finished()
                .pop()
                .ok_or(SimError::Internal("one job submitted, none finished"))?;
            self.pool.release(sim);
            out.push((i, outcome));
        }
        if let Some(t) = t1 {
            self.phases
                .submit_reset
                .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        Ok(out)
    }

    /// Batch-resident twin of [`Self::simulate_solo_window`], driving a
    /// *span* of consecutive lane windows: the span's simulators and batch
    /// scratch are checked out once, every window submits into the resident
    /// lanes, runs to completion, and resets lane state in place — so the
    /// pool's lock and the multi-KB per-simulator moves are paid once per
    /// span instead of once per window. Per-lane results are bit-identical
    /// to the legacy driver (warm starts, when enabled, change results only
    /// within tolerance).
    fn simulate_solo_span_fused(
        &self,
        profile: &AppProfile,
        input_mb: f64,
        span: &[(usize, TuningConfig)],
    ) -> Result<Vec<(usize, JobOutcome)>, EvalError> {
        let mut sr_ns = 0u64;
        let t0 = self.phase_timing.then(Instant::now);
        let width = span.len().min(self.batch_lanes);
        let mut sims = Vec::with_capacity(width);
        let (reused, built) =
            self.pool
                .acquire_window(&self.tb.node, &self.tb.fw, width, &mut sims);
        if built > 0 {
            self.counters.sims_created.add(built);
        }
        // Every lane run past the first window reuses a resident simulator;
        // count those too, so pool accounting keeps meaning "runs served by
        // a warm simulator".
        let reused_runs = reused + (span.len() as u64).saturating_sub(width as u64);
        if reused_runs > 0 {
            self.counters.sims_reused.add(reused_runs);
        }
        let template = JobSpec::from_profile(profile.clone(), input_mb, span[0].1);
        if let Some(t) = t0 {
            sr_ns += t.elapsed().as_nanos() as u64;
        }
        let mut scratch = self.pool.acquire_scratch();
        scratch.set_simd_backend(self.simd);
        scratch.set_batch_resident(true);
        scratch.set_warm_start(self.warm_start);
        scratch.set_phase_timing(self.phase_timing);
        let mut out = Vec::with_capacity(span.len());
        let mut failed: Option<EvalError> = None;
        'span: for window in span.chunks(self.batch_lanes) {
            let w = window.len();
            let t = self.phase_timing.then(Instant::now);
            for (sim, &(_, cfg)) in sims[..w].iter_mut().zip(window) {
                let mut spec = template.clone();
                spec.config = cfg;
                if let Err(e) = sim.submit(spec) {
                    failed = Some(e.into());
                    break 'span;
                }
            }
            if let Some(t) = t {
                sr_ns += t.elapsed().as_nanos() as u64;
            }
            if let Err(e) = run_batch_to_completion(&mut sims[..w], &mut scratch) {
                failed = Some(e.into());
                break 'span;
            }
            let t = self.phase_timing.then(Instant::now);
            for (&(i, _), sim) in window.iter().zip(sims[..w].iter_mut()) {
                // `pop_finished` leaves the finished list's capacity with
                // the resident simulator (`take_finished` would steal it
                // every run), and the in-place reset readies the lane for
                // the next window without touching the pool.
                match sim.pop_finished() {
                    Some(outcome) => out.push((i, outcome)),
                    None => {
                        failed =
                            Some(SimError::Internal("one job submitted, none finished").into());
                        break 'span;
                    }
                }
                sim.reset();
            }
            if let Some(t) = t {
                sr_ns += t.elapsed().as_nanos() as u64;
            }
        }
        if self.phase_timing {
            let p = scratch.take_phases();
            self.phases.solve.fetch_add(p.solve_ns, Ordering::Relaxed);
            self.phases.outer.fetch_add(p.outer_ns, Ordering::Relaxed);
            self.phases
                .event_loop
                .fetch_add(p.event_ns, Ordering::Relaxed);
        }
        self.pool.release_scratch(scratch);
        if let Some(e) = failed {
            // Simulators from a failed span are dropped, never shelved —
            // the pool's half-advanced-state policy.
            return Err(e);
        }
        let t1 = self.phase_timing.then(Instant::now);
        self.pool.release_window(&mut sims);
        if let Some(t) = t1 {
            sr_ns += t.elapsed().as_nanos() as u64;
        }
        if sr_ns > 0 {
            self.phases.submit_reset.fetch_add(sr_ns, Ordering::Relaxed);
        }
        Ok(out)
    }

    /// Solve one window of pair-sweep points in a single batched rate
    /// solve — the pair twin of [`Self::simulate_solo_window`], with each
    /// lane carrying one co-located pair.
    fn simulate_pair_window(
        &self,
        a: &AppProfile,
        input_a_mb: f64,
        b: &AppProfile,
        input_b_mb: f64,
        window: &[PairConfig],
    ) -> Result<Vec<PairRun>, EvalError> {
        // Engine-side phase timing mirrors `simulate_solo_window`'s.
        let t0 = self.phase_timing.then(Instant::now);
        let mut sims = Vec::with_capacity(window.len());
        // Template specs per window (see `simulate_solo_window`): lanes
        // differ only in their tuning configs.
        let ta = JobSpec::from_profile(a.clone(), input_a_mb, window[0].a);
        let tb = JobSpec::from_profile(b.clone(), input_b_mb, window[0].b);
        for &pc in window {
            let (mut sim, reused) = self.pool.acquire(&self.tb.node, &self.tb.fw);
            if reused {
                self.counters.sims_reused.inc();
            } else {
                self.counters.sims_created.inc();
            }
            let (mut sa, mut sb) = (ta.clone(), tb.clone());
            sa.config = pc.a;
            sb.config = pc.b;
            sim.submit(sa)?;
            sim.submit(sb)?;
            sims.push(sim);
        }
        if let Some(t) = t0 {
            self.phases
                .submit_reset
                .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        let mut scratch = self.pool.acquire_scratch();
        scratch.set_simd_backend(self.simd);
        // Pin the pre-resident comparator path (see `simulate_solo_window`).
        scratch.set_batch_resident(false);
        scratch.set_warm_start(false);
        scratch.set_phase_timing(false);
        let run = run_batch_to_completion(&mut sims, &mut scratch);
        self.pool.release_scratch(scratch);
        run?;
        let t1 = self.phase_timing.then(Instant::now);
        let mut out = Vec::with_capacity(window.len());
        for (&config, mut sim) in window.iter().zip(sims) {
            let makespan_s = sim.now();
            let outs = sim.take_finished();
            self.pool.release(sim);
            out.push(PairRun {
                config,
                metrics: PairMetrics {
                    makespan_s,
                    energy_j: outs.iter().map(|o| o.metrics.energy_j).sum(),
                },
            });
        }
        if let Some(t) = t1 {
            self.phases
                .submit_reset
                .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        Ok(out)
    }

    /// Batch-resident twin of [`Self::simulate_pair_window`], driving a
    /// span of consecutive lane windows with one co-located pair per lane.
    /// See [`Self::simulate_solo_span_fused`] for the span structure (one
    /// pool checkout per span, in-place lane resets between windows).
    fn simulate_pair_span_fused(
        &self,
        a: &AppProfile,
        input_a_mb: f64,
        b: &AppProfile,
        input_b_mb: f64,
        span: &[PairConfig],
    ) -> Result<Vec<PairRun>, EvalError> {
        let mut sr_ns = 0u64;
        let t0 = self.phase_timing.then(Instant::now);
        let width = span.len().min(self.batch_lanes);
        let mut sims = Vec::with_capacity(width);
        let (reused, built) =
            self.pool
                .acquire_window(&self.tb.node, &self.tb.fw, width, &mut sims);
        if built > 0 {
            self.counters.sims_created.add(built);
        }
        let reused_runs = reused + (span.len() as u64).saturating_sub(width as u64);
        if reused_runs > 0 {
            self.counters.sims_reused.add(reused_runs);
        }
        // Templates are window-invariant (the label depends only on profile
        // and input share; the config is overwritten per lane), so one pair
        // per span serves every window.
        let ta = JobSpec::from_profile(a.clone(), input_a_mb, span[0].a);
        let tb = JobSpec::from_profile(b.clone(), input_b_mb, span[0].b);
        if let Some(t) = t0 {
            sr_ns += t.elapsed().as_nanos() as u64;
        }
        let mut scratch = self.pool.acquire_scratch();
        scratch.set_simd_backend(self.simd);
        scratch.set_batch_resident(true);
        scratch.set_warm_start(self.warm_start);
        scratch.set_phase_timing(self.phase_timing);
        let mut out = Vec::with_capacity(span.len());
        let mut failed: Option<EvalError> = None;
        'span: for window in span.chunks(self.batch_lanes) {
            let w = window.len();
            let t = self.phase_timing.then(Instant::now);
            for (sim, &pc) in sims[..w].iter_mut().zip(window) {
                let (mut sa, mut sb) = (ta.clone(), tb.clone());
                sa.config = pc.a;
                sb.config = pc.b;
                if let Err(e) = sim.submit(sa).and_then(|_| sim.submit(sb)) {
                    failed = Some(e.into());
                    break 'span;
                }
            }
            if let Some(t) = t {
                sr_ns += t.elapsed().as_nanos() as u64;
            }
            if let Err(e) = run_batch_to_completion(&mut sims[..w], &mut scratch) {
                failed = Some(e.into());
                break 'span;
            }
            let t = self.phase_timing.then(Instant::now);
            for (&config, sim) in window.iter().zip(sims[..w].iter_mut()) {
                let makespan_s = sim.now();
                // Pair points only need the aggregate: the drain recycles
                // the outcome buffers into the resident simulator instead
                // of freeing them, summing energy in the same completion
                // order as the legacy driver's caller-side sum; the reset
                // readies the lane for the next window in place.
                out.push(PairRun {
                    config,
                    metrics: PairMetrics {
                        makespan_s,
                        energy_j: sim.drain_finished_energy(),
                    },
                });
                sim.reset();
            }
            if let Some(t) = t {
                sr_ns += t.elapsed().as_nanos() as u64;
            }
        }
        if self.phase_timing {
            let p = scratch.take_phases();
            self.phases.solve.fetch_add(p.solve_ns, Ordering::Relaxed);
            self.phases.outer.fetch_add(p.outer_ns, Ordering::Relaxed);
            self.phases
                .event_loop
                .fetch_add(p.event_ns, Ordering::Relaxed);
        }
        self.pool.release_scratch(scratch);
        if let Some(e) = failed {
            return Err(e);
        }
        let t1 = self.phase_timing.then(Instant::now);
        self.pool.release_window(&mut sims);
        if let Some(t) = t1 {
            sr_ns += t.elapsed().as_nanos() as u64;
        }
        if sr_ns > 0 {
            self.phases.submit_reset.fetch_add(sr_ns, Ordering::Relaxed);
        }
        Ok(out)
    }

    /// Record a fault event applied at simulated time `t_s` to a run
    /// driven through this engine. `kind` is the fault's short name
    /// ("node-crash", "node-slowdown", "straggler").
    pub fn note_fault(&self, t_s: f64, kind: &str) {
        self.counters.faults.inc();
        self.recorder.emit(t_s, None, None, || Event::FaultFired {
            kind: kind.to_string(),
        });
    }

    /// Record a transient-failure retry at simulated time `t_s`, charging
    /// `backoff_s` simulated seconds.
    pub fn note_retry(&self, t_s: f64, backoff_s: f64) {
        self.counters.retries.inc();
        self.recorder
            .emit(t_s, None, None, || Event::Retry { backoff_s });
    }

    /// Record a graceful degradation at simulated time `t_s` (solo
    /// placement, class-default config).
    pub fn note_fallback(&self, t_s: f64, what: &'static str) {
        self.counters.fallbacks.inc();
        self.recorder
            .emit(t_s, None, None, || Event::Fallback { what });
    }

    /// Run `op`, retrying transient failures under `policy`. `t_s` is the
    /// simulated time the evaluation is issued at (used to stamp retry
    /// events). Returns the value plus the *simulated* backoff seconds
    /// accrued; the caller adds those to its simulated clock so retries
    /// cost EDP, not just wall time. Non-transient errors and exhausted
    /// budgets propagate.
    pub fn with_retry<T>(
        &self,
        policy: &RetryPolicy,
        t_s: f64,
        mut op: impl FnMut() -> Result<T, EvalError>,
    ) -> Result<(T, f64), EvalError> {
        let mut backoff_s = 0.0;
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok((v, backoff_s)),
                Err(e) if e.is_transient() && attempt < policy.max_retries => {
                    let step_s = policy.backoff_for(attempt);
                    backoff_s += step_s;
                    attempt += 1;
                    self.note_retry(t_s, step_s);
                }
                Err(e) => return Err(e),
            }
        }
    }

    // ---- solo evaluations --------------------------------------------------

    /// Full outcome (metrics, usage record, timeline) of one standalone
    /// run. This is the memo primitive behind [`Self::solo_metrics`],
    /// [`Self::sweep_solo`] and the profiling/learning period.
    pub fn solo_outcome(
        &self,
        profile: &AppProfile,
        input_mb: f64,
        cfg: TuningConfig,
    ) -> Result<Arc<JobOutcome>, EvalError> {
        self.solo_outcome_degraded(profile, input_mb, cfg, 1.0)
    }

    /// [`Self::solo_outcome`] on a node degraded by `slowdown` (≥ 1; 1 is
    /// the healthy path). Degraded evaluations key separately in the memo,
    /// so a chaos run never poisons healthy entries.
    pub fn solo_outcome_degraded(
        &self,
        profile: &AppProfile,
        input_mb: f64,
        cfg: TuningConfig,
        slowdown: f64,
    ) -> Result<Arc<JobOutcome>, EvalError> {
        if !slowdown.is_finite() || slowdown < 1.0 {
            return Err(EvalError::InvalidInput {
                what: "slowdown factor must be finite and >= 1",
            });
        }
        let key = SoloKey {
            fp: fingerprint(profile),
            mb: input_mb.to_bits(),
            cfg,
            slow: slowdown.to_bits(),
        };
        if let Some(hit) = self.solo.get(&key) {
            self.hit("solo");
            return Ok(hit);
        }
        self.miss("solo");
        let t0 = Instant::now();
        let job = JobSpec::from_profile(profile.clone(), input_mb, cfg);
        let (mut outs, _) = self.run_pooled([job], slowdown)?;
        let out = outs
            .pop()
            .ok_or(SimError::Internal("one job submitted, none finished"))?;
        self.charge(1, t0.elapsed().as_nanos() as u64);
        Ok(self.solo.insert_or_keep(key, Arc::new(out)))
    }

    /// Metrics of one standalone run.
    pub fn solo_metrics(
        &self,
        profile: &AppProfile,
        input_mb: f64,
        cfg: TuningConfig,
    ) -> Result<JobMetrics, EvalError> {
        Ok(self.solo_outcome(profile, input_mb, cfg)?.metrics)
    }

    /// Sweep the full standalone space (160 points on the 8-core node);
    /// runs are returned in sweep order. Every point is individually
    /// memoized, so repeated sweeps re-simulate nothing; cache misses are
    /// solved in lane-wide batched windows (see [`Self::set_batch_lanes`])
    /// spread across rayon workers, each lane bit-identical to the scalar
    /// per-point path.
    pub fn sweep_solo(
        &self,
        profile: &AppProfile,
        input_mb: f64,
    ) -> Result<Vec<SoloRun>, EvalError> {
        let configs: Vec<TuningConfig> = TuningConfig::space(self.tb.node.cores).collect();
        if !self.batched() {
            return configs
                .into_par_iter()
                .map(|config| {
                    self.solo_metrics(profile, input_mb, config)
                        .map(|metrics| SoloRun { config, metrics })
                })
                .collect();
        }
        // Batched miss path. Probe the memo first — identical hit/miss
        // accounting and keying to the scalar path — then solve only the
        // misses, chunked into lane-wide windows. Batch-resident engines
        // probe and insert the whole sweep in bulk (grouped shard lookups,
        // one counter delta per sweep); the legacy comparator keeps the
        // per-point traffic.
        let fp = fingerprint(profile);
        let key_of = |cfg: TuningConfig| SoloKey {
            fp,
            mb: input_mb.to_bits(),
            cfg,
            slow: 1.0_f64.to_bits(),
        };
        let mut metrics: Vec<Option<JobMetrics>> = vec![None; configs.len()];
        let mut missing: Vec<(usize, TuningConfig)> = Vec::new();
        let keys: Vec<SoloKey> = configs.iter().map(|&cfg| key_of(cfg)).collect();
        if self.batch_resident {
            let t_memo = self.phase_timing.then(Instant::now);
            let mut probed: Vec<Option<Arc<JobOutcome>>> = Vec::new();
            self.solo.get_many(&keys, &mut probed);
            let mut nh = 0u64;
            for (i, cached) in probed.into_iter().enumerate() {
                match cached {
                    Some(out) => {
                        nh += 1;
                        self.recorder
                            .emit(0.0, None, None, || Event::CacheHit { cache: "solo" });
                        metrics[i] = Some(out.metrics);
                    }
                    None => {
                        self.recorder
                            .emit(0.0, None, None, || Event::CacheMiss { cache: "solo" });
                        missing.push((i, configs[i]));
                    }
                }
            }
            // One delta per sweep; totals match the per-point path.
            self.counters.hits.add(nh);
            self.counters.misses.add(missing.len() as u64);
            if let Some(t) = t_memo {
                self.phases
                    .memo
                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        } else {
            let t_memo = self.phase_timing.then(Instant::now);
            for (i, &config) in configs.iter().enumerate() {
                if let Some(cached) = self.solo.get(&keys[i]) {
                    self.hit("solo");
                    metrics[i] = Some(cached.metrics);
                } else {
                    self.miss("solo");
                    missing.push((i, config));
                }
            }
            if let Some(t) = t_memo {
                self.phases
                    .memo
                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }
        if !missing.is_empty() {
            let t0 = Instant::now();
            // Resident engines chunk the misses into multi-window spans
            // (one pool checkout per span); the legacy comparator keeps
            // per-window checkouts. Both chunkings are order-preserving
            // over the same consecutive windows, so the flattened solve
            // order — and every lane's window composition — is identical.
            let chunk = if self.batch_resident {
                self.batch_lanes * FUSED_WINDOWS_PER_SPAN
            } else {
                self.batch_lanes
            };
            let windows: Vec<Vec<(usize, TuningConfig)>> =
                missing.chunks(chunk).map(<[_]>::to_vec).collect();
            let solved: Vec<Vec<(usize, JobOutcome)>> = windows
                .into_par_iter()
                .map(|window| {
                    if self.batch_resident {
                        self.simulate_solo_span_fused(profile, input_mb, &window)
                    } else {
                        self.simulate_solo_window(profile, input_mb, &window)
                    }
                })
                .collect::<Result<_, EvalError>>()?;
            self.charge(missing.len() as u64, t0.elapsed().as_nanos() as u64);
            if self.batch_resident {
                let t_memo = self.phase_timing.then(Instant::now);
                let mut idxs: Vec<usize> = Vec::new();
                let mut entries: Vec<(SoloKey, Arc<JobOutcome>)> = Vec::new();
                for (i, out) in solved.into_iter().flatten() {
                    idxs.push(i);
                    entries.push((keys[i], Arc::new(out)));
                }
                // Bulk insert under one lock acquisition per touched shard;
                // first-insert-wins exactly like `insert_or_keep`.
                let mut stored: Vec<Arc<JobOutcome>> = Vec::new();
                self.solo.insert_many(&entries, &mut stored);
                for (&i, out) in idxs.iter().zip(&stored) {
                    metrics[i] = Some(out.metrics);
                }
                if let Some(t) = t_memo {
                    self.phases
                        .memo
                        .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            } else {
                let t_memo = self.phase_timing.then(Instant::now);
                for (i, out) in solved.into_iter().flatten() {
                    let out = self.solo.insert_or_keep(keys[i], Arc::new(out));
                    metrics[i] = Some(out.metrics);
                }
                if let Some(t) = t_memo {
                    self.phases
                        .memo
                        .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            }
        }
        configs
            .into_iter()
            .zip(metrics)
            .map(|(config, m)| {
                m.map(|metrics| SoloRun { config, metrics })
                    .ok_or_else(|| SimError::Internal("batched sweep left a point unsolved").into())
            })
            .collect()
    }

    /// Best standalone config under wall EDP (ILAO's per-application step).
    pub fn best_solo(&self, profile: &AppProfile, input_mb: f64) -> Result<SoloRun, EvalError> {
        let idle = self.idle_w();
        self.sweep_solo(profile, input_mb)?
            .into_iter()
            .min_by(|x, y| {
                x.metrics
                    .edp_wall(idle)
                    .total_cmp(&y.metrics.edp_wall(idle))
            })
            .ok_or(EvalError::EmptySweep {
                what: "solo config space",
            })
    }

    // ---- pair evaluations --------------------------------------------------

    /// Normalised key + swap flag for a pair query. `(a, b)` and `(b, a)`
    /// share an entry; `swap` says the stored orientation is `(b, a)`.
    fn pair_key(
        &self,
        a: &AppProfile,
        input_a_mb: f64,
        b: &AppProfile,
        input_b_mb: f64,
        slowdown: f64,
    ) -> (PairKey, bool) {
        let ka = (a.name, input_a_mb.to_bits(), fingerprint(a));
        let kb = (b.name, input_b_mb.to_bits(), fingerprint(b));
        let swap = kb < ka;
        let ((fp_a, a_mb), (fp_b, b_mb)) = if swap {
            ((kb.2, kb.1), (ka.2, ka.1))
        } else {
            ((ka.2, ka.1), (kb.2, kb.1))
        };
        (
            PairKey {
                fp_a,
                a_mb,
                fp_b,
                b_mb,
                slow: slowdown.to_bits(),
            },
            swap,
        )
    }

    /// Simulate one co-located pair point (uncached inner step).
    fn simulate_pair(
        &self,
        a: &AppProfile,
        input_a_mb: f64,
        b: &AppProfile,
        input_b_mb: f64,
        pc: PairConfig,
        slowdown: f64,
    ) -> Result<PairMetrics, EvalError> {
        let jobs = [
            JobSpec::from_profile(a.clone(), input_a_mb, pc.a),
            JobSpec::from_profile(b.clone(), input_b_mb, pc.b),
        ];
        let (outs, makespan) = self.run_pooled(jobs, slowdown)?;
        Ok(PairMetrics {
            makespan_s: makespan,
            energy_j: outs.iter().map(|o| o.metrics.energy_j).sum(),
        })
    }

    /// Metrics of one co-located pair run at one configuration. Served
    /// from the point memo, or from a previously computed full sweep,
    /// before falling back to simulation.
    pub fn pair_metrics(
        &self,
        a: &AppProfile,
        input_a_mb: f64,
        b: &AppProfile,
        input_b_mb: f64,
        pc: PairConfig,
    ) -> Result<PairMetrics, EvalError> {
        self.pair_metrics_degraded(a, input_a_mb, b, input_b_mb, pc, 1.0)
    }

    /// [`Self::pair_metrics`] on a node degraded by `slowdown` (≥ 1; 1 is
    /// the healthy path). Keys separately in every memo layer.
    pub fn pair_metrics_degraded(
        &self,
        a: &AppProfile,
        input_a_mb: f64,
        b: &AppProfile,
        input_b_mb: f64,
        pc: PairConfig,
        slowdown: f64,
    ) -> Result<PairMetrics, EvalError> {
        if !slowdown.is_finite() || slowdown < 1.0 {
            return Err(EvalError::InvalidInput {
                what: "slowdown factor must be finite and >= 1",
            });
        }
        let (pair, swap) = self.pair_key(a, input_a_mb, b, input_b_mb, slowdown);
        let cfg = if swap { pc.swapped() } else { pc };
        let key = PairPointKey { pair, cfg };
        if let Some(hit) = self.pair_points.get(&key) {
            self.hit("pair");
            return Ok(hit);
        }
        // A full sweep for this pair already holds every point.
        if let Some(sweep) = self.sweeps.get(&pair) {
            if let Some(run) = sweep.iter().find(|r| r.config == cfg) {
                self.hit("pair");
                return Ok(self.pair_points.insert_or_keep(key, run.metrics));
            }
        }
        self.miss("pair");
        let t0 = Instant::now();
        let metrics = self.simulate_pair(a, input_a_mb, b, input_b_mb, pc, slowdown)?;
        self.charge(1, t0.elapsed().as_nanos() as u64);
        Ok(self.pair_points.insert_or_keep(key, metrics))
    }

    /// Fetch or compute the full pair sweep (11 200 points on the 8-core
    /// node). The result is shared: `(a, b)` and `(b, a)` hit the same
    /// entry, with [`PairSweep::swapped`] flagging the orientation.
    pub fn pair_sweep(
        &self,
        a: &AppProfile,
        input_a_mb: f64,
        b: &AppProfile,
        input_b_mb: f64,
    ) -> Result<PairSweep, EvalError> {
        let (key, swap) = self.pair_key(a, input_a_mb, b, input_b_mb, 1.0);
        if let Some(runs) = self.sweeps.get(&key) {
            self.hit("sweep");
            return Ok(PairSweep {
                runs,
                swapped: swap,
            });
        }
        self.miss("sweep");
        // Simulate in the *stored* orientation so the cached runs are
        // identical no matter which orientation asked first.
        let (sa, sa_mb, sb, sb_mb) = if swap {
            (b, input_b_mb, a, input_a_mb)
        } else {
            (a, input_a_mb, b, input_b_mb)
        };
        let t0 = Instant::now();
        let configs = PairConfig::space(self.tb.node.cores);
        let n = configs.len() as u64;
        let runs: Vec<PairRun> = if self.batched() {
            // Partition the space into lane-wide windows (grouped into
            // multi-window spans on the resident path — same consecutive
            // windows, one pool checkout per span); the shim's map is
            // order-preserving, so flattening restores sweep order.
            let chunk = if self.batch_resident {
                self.batch_lanes * FUSED_WINDOWS_PER_SPAN
            } else {
                self.batch_lanes
            };
            let windows: Vec<Vec<PairConfig>> = configs.chunks(chunk).map(<[_]>::to_vec).collect();
            windows
                .into_par_iter()
                .map(|window| {
                    if self.batch_resident {
                        self.simulate_pair_span_fused(sa, sa_mb, sb, sb_mb, &window)
                    } else {
                        self.simulate_pair_window(sa, sa_mb, sb, sb_mb, &window)
                    }
                })
                .collect::<Result<Vec<Vec<PairRun>>, EvalError>>()?
                .into_iter()
                .flatten()
                .collect()
        } else {
            configs
                .into_par_iter()
                .map(|config| {
                    self.simulate_pair(sa, sa_mb, sb, sb_mb, config, 1.0)
                        .map(|metrics| PairRun { config, metrics })
                })
                .collect::<Result<_, EvalError>>()?
        };
        self.charge(n, t0.elapsed().as_nanos() as u64);
        let runs = self.sweeps.insert_or_keep(key, Arc::new(runs));
        Ok(PairSweep {
            runs,
            swapped: swap,
        })
    }

    /// COLAO's oracle: best co-located configuration for a pair, oriented
    /// so `.a` applies to `a` and `.b` to `b`.
    pub fn best_pair(
        &self,
        a: &AppProfile,
        input_a_mb: f64,
        b: &AppProfile,
        input_b_mb: f64,
    ) -> Result<PairRun, EvalError> {
        self.pair_sweep(a, input_a_mb, b, input_b_mb)?
            .best(self.idle_w())
    }

    /// Wall-EDP winner out of an explicit run list.
    pub fn best_of(&self, runs: &[PairRun]) -> Result<PairRun, EvalError> {
        best_of_slice(runs, self.idle_w())
    }

    /// Best pair config with the core partition fixed (Fig 5's
    /// per-partition series). The restricted space is small (Fig 5 sweeps
    /// it per partition), so points go through the point memo rather than
    /// the full-sweep table.
    pub fn best_pair_with_partition(
        &self,
        a: &AppProfile,
        input_a_mb: f64,
        b: &AppProfile,
        input_b_mb: f64,
        (ma, mb): (u32, u32),
    ) -> Result<PairRun, EvalError> {
        let idle = self.idle_w();
        let configs: Vec<PairConfig> = TuningConfig::space_fixed_mappers(ma)
            .flat_map(|ca| {
                TuningConfig::space_fixed_mappers(mb).map(move |cb| PairConfig { a: ca, b: cb })
            })
            .collect();
        let runs: Vec<PairRun> = configs
            .into_par_iter()
            .map(|config| {
                self.pair_metrics(a, input_a_mb, b, input_b_mb, config)
                    .map(|metrics| PairRun { config, metrics })
            })
            .collect::<Result<_, EvalError>>()?;
        runs.into_iter()
            .min_by(|x, y| {
                x.metrics
                    .edp_wall(idle)
                    .total_cmp(&y.metrics.edp_wall(idle))
            })
            .ok_or(EvalError::EmptySweep {
                what: "partition-restricted pair space",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecost_apps::{App, InputSize};

    #[test]
    fn fingerprint_separates_perturbed_profiles() {
        let p = App::Wc.profile();
        let mut q = p.clone();
        q.llc_mpki *= 1.01;
        assert_ne!(fingerprint(p), fingerprint(&q));
        assert_eq!(fingerprint(p), fingerprint(&p.clone()));
    }

    #[test]
    fn solo_outcome_is_memoized() {
        let eng = EvalEngine::atom();
        let p = App::Wc.profile();
        let mb = InputSize::Small.per_node_mb();
        let cfg = TuningConfig::hadoop_default(8);
        let a = eng.solo_outcome(p, mb, cfg).unwrap();
        let b = eng.solo_outcome(p, mb, cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = eng.stats();
        assert_eq!(s.runs_simulated, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn scoped_engines_on_a_shared_registry_do_not_alias() {
        // Two engines on ONE registry: unscoped they would intern the same
        // `engine.*` counter rows and each stats() snapshot would report
        // the sum of both engines' traffic. Scopes keep them separate.
        let rec = Recorder::noop();
        let e0 = EvalEngine::with_scoped_recorder(Testbed::atom(), rec.clone(), "shard0");
        let e1 = EvalEngine::with_scoped_recorder(Testbed::atom(), rec.clone(), "shard1");
        let p = App::Wc.profile();
        let q = App::St.profile();
        let mb = InputSize::Small.per_node_mb();
        let cfg = TuningConfig::hadoop_default(8);
        // shard0: one miss + one hit; shard1: two distinct misses, no hit.
        e0.solo_outcome(p, mb, cfg).unwrap();
        e0.solo_outcome(p, mb, cfg).unwrap();
        e1.solo_outcome(p, mb, cfg).unwrap();
        e1.solo_outcome(q, mb, cfg).unwrap();
        let (s0, s1) = (e0.stats(), e1.stats());
        assert_eq!((s0.hits, s0.misses, s0.runs_simulated), (1, 1, 1));
        assert_eq!((s1.hits, s1.misses, s1.runs_simulated), (0, 2, 2));
        // The shared registry carries both engines' rows under their scopes.
        let snap = rec.metrics().snapshot();
        assert_eq!(snap.counter("shard0.engine.cache_hits"), 1);
        assert_eq!(snap.counter("shard1.engine.cache_misses"), 2);
        assert_eq!(snap.counter("engine.cache_hits"), 0);
        // Fleet aggregation: summed stats equal the elementwise totals.
        let total: EngineStats = [s0, s1].into_iter().sum();
        assert_eq!(total.hits, 1);
        assert_eq!(total.misses, 3);
        assert_eq!(total.runs_simulated, 3);
        let mut acc = EngineStats::zero();
        acc += s0;
        acc += s1;
        assert_eq!(acc, total);
    }

    #[test]
    fn pair_sweep_is_shared_and_order_insensitive() {
        let eng = EvalEngine::atom();
        let a = App::Gp.profile();
        let b = App::St.profile();
        let mb = InputSize::Small.per_node_mb();
        let s1 = eng.pair_sweep(a, mb, b, mb).unwrap();
        let s2 = eng.pair_sweep(b, mb, a, mb).unwrap();
        assert_eq!(eng.cached_pair_sweeps(), 1);
        assert!(Arc::ptr_eq(s1.runs(), s2.runs()));
        assert_ne!(s1.swapped(), s2.swapped());
        let runs = eng.stats().runs_simulated;
        assert_eq!(runs as usize, s1.len());
    }

    #[test]
    fn best_pair_is_reoriented_after_swap() {
        let eng = EvalEngine::atom();
        let gp = App::Gp.profile();
        let st = App::St.profile();
        let mb = InputSize::Small.per_node_mb();
        let fwd = eng.best_pair(gp, mb, st, mb).unwrap();
        let rev = eng.best_pair(st, mb, gp, mb).unwrap();
        assert_eq!(eng.cached_pair_sweeps(), 1);
        assert_eq!(fwd.config.a, rev.config.b);
        assert_eq!(fwd.config.b, rev.config.a);
        let idle = eng.idle_w();
        assert!((fwd.metrics.edp_wall(idle) - rev.metrics.edp_wall(idle)).abs() < 1e-9);
    }

    #[test]
    fn pair_point_is_served_from_a_prior_sweep() {
        let eng = EvalEngine::atom();
        let a = App::Wc.profile();
        let b = App::St.profile();
        let mb = InputSize::Small.per_node_mb();
        let best = eng.best_pair(a, mb, b, mb).unwrap();
        let before = eng.stats().runs_simulated;
        let m = eng.pair_metrics(a, mb, b, mb, best.config).unwrap();
        assert_eq!(eng.stats().runs_simulated, before);
        assert_eq!(m, best.metrics);
        // And in the swapped orientation too.
        let m2 = eng
            .pair_metrics(b, mb, a, mb, best.config.swapped())
            .unwrap();
        assert_eq!(eng.stats().runs_simulated, before);
        assert!((m2.makespan_s - m.makespan_s).abs() < 1e-12);
    }

    #[test]
    fn degraded_evaluations_key_separately() {
        let eng = EvalEngine::atom();
        let p = App::Wc.profile();
        let mb = InputSize::Small.per_node_mb();
        let cfg = TuningConfig::hadoop_default(8);
        let healthy = eng.solo_outcome(p, mb, cfg).unwrap();
        let degraded = eng.solo_outcome_degraded(p, mb, cfg, 2.0).unwrap();
        assert!(!Arc::ptr_eq(&healthy, &degraded));
        assert!(degraded.metrics.exec_time_s > 1.5 * healthy.metrics.exec_time_s);
        assert_eq!(eng.cached_solo_runs(), 2);
        // slowdown = 1 hits the healthy entry exactly.
        let again = eng.solo_outcome_degraded(p, mb, cfg, 1.0).unwrap();
        assert!(Arc::ptr_eq(&healthy, &again));
        // Bad factors are typed errors.
        assert!(eng.solo_outcome_degraded(p, mb, cfg, 0.5).is_err());
        let half = TuningConfig::hadoop_default(4);
        assert!(eng
            .pair_metrics_degraded(p, mb, p, mb, PairConfig { a: half, b: half }, f64::NAN)
            .is_err());
    }

    #[test]
    fn degraded_pair_points_do_not_poison_healthy_cache() {
        let eng = EvalEngine::atom();
        let a = App::Wc.profile();
        let b = App::St.profile();
        let mb = InputSize::Small.per_node_mb();
        let half = TuningConfig::hadoop_default(4);
        let pc = PairConfig { a: half, b: half };
        let healthy = eng.pair_metrics(a, mb, b, mb, pc).unwrap();
        let degraded = eng.pair_metrics_degraded(a, mb, b, mb, pc, 2.0).unwrap();
        assert!(degraded.makespan_s > healthy.makespan_s);
        let healthy_again = eng.pair_metrics(a, mb, b, mb, pc).unwrap();
        assert_eq!(healthy, healthy_again);
    }

    #[test]
    fn with_retry_counts_retries_and_charges_backoff() {
        let eng = EvalEngine::atom();
        let policy = RetryPolicy::default();
        let mut failures_left = 2;
        let (v, backoff) = eng
            .with_retry(&policy, 0.0, || {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err(EvalError::Transient { what: "flaky eval" })
                } else {
                    Ok(7)
                }
            })
            .unwrap();
        assert_eq!(v, 7);
        assert_eq!(backoff, 3.0); // 1 s + 2 s
        assert_eq!(eng.stats().retries, 2);
        // Budget exhaustion propagates the transient error.
        let err = eng.with_retry(&RetryPolicy::none(), 0.0, || {
            Err::<(), _>(EvalError::Transient { what: "flaky eval" })
        });
        assert!(matches!(err, Err(EvalError::Transient { .. })));
        // Non-transient errors are not retried.
        let mut calls = 0;
        let err = eng.with_retry(&policy, 0.0, || {
            calls += 1;
            Err::<(), _>(EvalError::InvalidInput { what: "bad" })
        });
        assert!(err.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn fault_counters_round_trip_through_stats() {
        let eng = EvalEngine::atom();
        eng.note_fault(10.0, "node-crash");
        eng.note_fault(20.0, "straggler");
        eng.note_fallback(30.0, "config");
        let s = eng.stats();
        assert_eq!(s.faults_injected, 2);
        assert_eq!(s.fallbacks, 1);
        assert_eq!(s.retries, 0);
        let line = s.to_string();
        assert!(line.contains("2 faults"), "{line}");
        assert!(line.contains("1 fallbacks"), "{line}");
    }

    #[test]
    fn stats_is_a_view_over_the_telemetry_registry() {
        // Satellite guarantee: `EngineStats` holds no state of its own —
        // every field equals the corresponding registry counter.
        let eng = EvalEngine::atom();
        let p = App::Wc.profile();
        let mb = InputSize::Small.per_node_mb();
        let cfg = TuningConfig::hadoop_default(8);
        eng.solo_outcome(p, mb, cfg).unwrap();
        eng.solo_outcome(p, mb, cfg).unwrap();
        eng.note_fault(1.0, "node-crash");
        eng.note_retry(2.0, 1.0);
        eng.note_fallback(3.0, "config");

        let s = eng.stats();
        let snap = eng.recorder().metrics().snapshot();
        assert_eq!(s.hits, snap.counter("engine.cache_hits"));
        assert_eq!(s.misses, snap.counter("engine.cache_misses"));
        assert_eq!(s.runs_simulated, snap.counter("engine.runs_simulated"));
        assert_eq!(s.faults_injected, snap.counter("engine.faults_injected"));
        assert_eq!(s.retries, snap.counter("engine.retries"));
        assert_eq!(s.fallbacks, snap.counter("engine.fallbacks"));
        assert_eq!(s.sims_created, snap.counter("engine.sims_created"));
        assert_eq!(s.sims_reused, snap.counter("engine.sims_reused"));
        assert_eq!(s.evictions, snap.counter("engine.cache_evictions"));
        assert_eq!(s.wall_seconds, snap.counter("engine.wall_ns") as f64 * 1e-9);
    }

    #[test]
    fn cache_budget_bounds_entries_and_counts_evictions() {
        let mut eng = EvalEngine::atom();
        eng.set_cache_budget(CacheBudget {
            solo: Some(16),
            ..CacheBudget::unbounded()
        });
        assert_eq!(eng.cache_budget().solo, Some(16));
        let p = App::Wc.profile();
        let cfg = TuningConfig::hadoop_default(8);
        // 64 distinct input sizes through a 16-entry solo budget.
        for i in 0..64 {
            eng.solo_outcome(p, 100.0 + f64::from(i), cfg).unwrap();
            assert!(eng.cached_solo_runs() <= 16, "{}", eng.cached_solo_runs());
        }
        let s = eng.stats();
        assert!(s.evictions > 0, "{s}");
        assert_eq!(s.evictions, 64 - eng.cached_solo_runs() as u64);
        // An evicted key re-probes as a miss but re-simulates to the
        // identical outcome (determinism is the engine's contract).
        let fresh = EvalEngine::atom();
        let a = eng.solo_outcome(p, 100.0, cfg).unwrap();
        let b = fresh.solo_outcome(p, 100.0, cfg).unwrap();
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn sweeps_reuse_pooled_simulators() {
        let eng = EvalEngine::atom();
        let p = App::Wc.profile();
        let mb = InputSize::Small.per_node_mb();
        eng.sweep_solo(p, mb).unwrap();
        let s = eng.stats();
        // Every miss ran on exactly one simulator, pooled or fresh.
        assert_eq!(s.sims_created + s.sims_reused, s.runs_simulated);
        // Far more sweep points than worker threads, so the pool must have
        // turned over, and every simulator came back after its run.
        assert!(s.sims_reused > 0, "{s}");
        assert_eq!(eng.pooled_sims() as u64, s.sims_created);
        // A cached re-sweep touches no simulators at all.
        eng.sweep_solo(p, mb).unwrap();
        let s2 = eng.stats();
        assert_eq!(s2.sims_created, s.sims_created);
        assert_eq!(s2.sims_reused, s.sims_reused);
    }

    #[test]
    fn pooled_runs_match_the_direct_executor_bit_for_bit() {
        let eng = EvalEngine::atom();
        let p = App::Wc.profile();
        let mb = InputSize::Small.per_node_mb();
        let cfg = TuningConfig::hadoop_default(8);
        // Warm the pool with a different config so the evaluation under
        // test is served by a *reused* simulator.
        eng.solo_outcome(p, mb, TuningConfig::hadoop_default(4))
            .unwrap();
        let pooled = eng.solo_outcome(p, mb, cfg).unwrap();
        assert!(eng.stats().sims_reused >= 1);
        let direct = ecost_mapreduce::run_standalone(
            &eng.testbed().node,
            &eng.testbed().fw,
            JobSpec::from_profile(p.clone(), mb, cfg),
        )
        .unwrap();
        assert_eq!(
            pooled.metrics.exec_time_s.to_bits(),
            direct.metrics.exec_time_s.to_bits()
        );
        assert_eq!(
            pooled.metrics.energy_j.to_bits(),
            direct.metrics.energy_j.to_bits()
        );
        assert_eq!(
            pooled.metrics.avg_power_w.to_bits(),
            direct.metrics.avg_power_w.to_bits()
        );
    }

    #[test]
    fn recorded_trace_event_counts_match_stats() {
        // Events are emitted inside the same functions that bump the
        // counters, so a recorded trace always agrees with `EngineStats`.
        let eng = EvalEngine::with_recorder(Testbed::atom(), Recorder::recording());
        let p = App::Wc.profile();
        let mb = InputSize::Small.per_node_mb();
        let cfg = TuningConfig::hadoop_default(8);
        eng.solo_outcome(p, mb, cfg).unwrap();
        eng.solo_outcome(p, mb, cfg).unwrap();
        eng.note_fault(5.0, "straggler");
        eng.note_fallback(6.0, "solo");
        let policy = RetryPolicy::default();
        let mut failures_left = 1;
        eng.with_retry(&policy, 7.0, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(EvalError::Transient { what: "flaky eval" })
            } else {
                Ok(())
            }
        })
        .unwrap();

        let count = |name: &str| {
            eng.recorder()
                .events()
                .iter()
                .filter(|e| match e {
                    ecost_telemetry::TraceEvent::Instant { event, .. } => event.name() == name,
                    _ => false,
                })
                .count() as u64
        };
        let s = eng.stats();
        assert_eq!(count("cache-hit"), s.hits);
        assert_eq!(count("cache-miss"), s.misses);
        assert_eq!(count("fault-fired"), s.faults_injected);
        assert_eq!(count("retry"), s.retries);
        assert_eq!(count("fallback"), s.fallbacks);
    }

    #[test]
    fn batched_solo_sweep_is_bit_identical_to_scalar_at_every_lane_width() {
        let scalar = EvalEngine::atom().with_batch_lanes(1);
        let p = App::Gp.profile();
        let mb = InputSize::Small.per_node_mb();
        let want = scalar.sweep_solo(p, mb).unwrap();
        for lanes in [2, 3, 8] {
            let eng = EvalEngine::atom().with_batch_lanes(lanes);
            assert_eq!(eng.batch_lanes(), lanes);
            let got = eng.sweep_solo(p, mb).unwrap();
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.config, w.config);
                assert_eq!(
                    g.metrics.exec_time_s.to_bits(),
                    w.metrics.exec_time_s.to_bits()
                );
                assert_eq!(g.metrics.energy_j.to_bits(), w.metrics.energy_j.to_bits());
            }
            // Same memo/telemetry contract as the scalar sweep: one miss
            // per point, every point charged, all hits on a re-sweep.
            let s = eng.stats();
            assert_eq!(s.misses as usize, want.len());
            assert_eq!(s.runs_simulated as usize, want.len());
            assert_eq!(s.sims_created + s.sims_reused, s.runs_simulated);
            assert_eq!(eng.pooled_sims() as u64, s.sims_created);
            eng.sweep_solo(p, mb).unwrap();
            let s2 = eng.stats();
            assert_eq!(s2.runs_simulated, s.runs_simulated);
            assert_eq!(s2.hits as usize, s.hits as usize + want.len());
        }
    }

    #[test]
    fn batched_pair_sweep_is_bit_identical_to_scalar() {
        let scalar = EvalEngine::atom().with_batch_lanes(1);
        let batched = EvalEngine::atom();
        assert_eq!(batched.batch_lanes(), ecost_mapreduce::MAX_BATCH_LANES);
        let a = App::Wc.profile();
        let b = App::St.profile();
        let mb = InputSize::Small.per_node_mb();
        let want = scalar.pair_sweep(a, mb, b, mb).unwrap();
        let got = batched.pair_sweep(a, mb, b, mb).unwrap();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.runs().iter().zip(want.runs().iter()) {
            assert_eq!(g.config, w.config);
            assert_eq!(
                g.metrics.makespan_s.to_bits(),
                w.metrics.makespan_s.to_bits()
            );
            assert_eq!(g.metrics.energy_j.to_bits(), w.metrics.energy_j.to_bits());
        }
        let s = batched.stats();
        assert_eq!(s.runs_simulated as usize, want.len());
        assert_eq!(s.sims_created + s.sims_reused, s.runs_simulated);
        assert_eq!(batched.pooled_sims() as u64, s.sims_created);
    }

    #[test]
    fn reference_executor_matches_optimized_results_without_pooling() {
        let mut reference = EvalEngine::atom();
        reference.set_reference_executor(true);
        assert!(reference.reference_executor());
        let optimized = EvalEngine::atom();
        let p = App::Wc.profile();
        let mb = InputSize::Small.per_node_mb();
        let cfg = TuningConfig::hadoop_default(8);
        let r = reference.solo_outcome(p, mb, cfg).unwrap();
        let o = optimized.solo_outcome(p, mb, cfg).unwrap();
        assert_eq!(
            r.metrics.exec_time_s.to_bits(),
            o.metrics.exec_time_s.to_bits()
        );
        assert_eq!(r.metrics.energy_j.to_bits(), o.metrics.energy_j.to_bits());
        // Reference runs construct fresh simulators and never pool them.
        let s = reference.stats();
        assert_eq!(s.sims_created, 1);
        assert_eq!(s.sims_reused, 0);
        assert_eq!(reference.pooled_sims(), 0);
    }

    #[test]
    fn batch_lane_width_is_clamped() {
        let mut eng = EvalEngine::atom();
        eng.set_batch_lanes(0);
        assert_eq!(eng.batch_lanes(), 1);
        eng.set_batch_lanes(usize::MAX);
        assert_eq!(eng.batch_lanes(), ecost_mapreduce::MAX_BATCH_LANES);
    }

    #[test]
    fn partition_restricted_search_respects_partition() {
        let eng = EvalEngine::atom();
        let a = App::Wc.profile();
        let b = App::St.profile();
        let mb = InputSize::Small.per_node_mb();
        let run = eng.best_pair_with_partition(a, mb, b, mb, (6, 2)).unwrap();
        assert_eq!(run.config.a.mappers, 6);
        assert_eq!(run.config.b.mappers, 2);
    }
}
