//! The database of §6.2: best configurations for the known applications.
//!
//! Built once, offline, from exhaustive sweeps over the training set (the
//! paper's 84 480-run study); stores, per same-size training pair, the
//! winning pair configuration together with both applications' counter
//! signatures, plus each application's best standalone configuration. STP
//! queries it instead of re-running brute force for every unknown arrival.

use crate::engine::{EvalEngine, EvalError};
use crate::features::{profile_catalog_app, AppSignature};
use crate::oracle::best_solo;
use ecost_apps::class::ClassPair;
use ecost_apps::{App, AppClass, InputSize, TRAINING_APPS};
use ecost_mapreduce::{PairConfig, TuningConfig};
use std::time::Instant;

/// One co-located entry.
#[derive(Debug, Clone)]
pub struct PairEntry {
    /// Training applications (paper short names).
    pub a: App,
    /// Second application.
    pub b: App,
    /// Input size (same for both, as in Fig 3).
    pub size: InputSize,
    /// Class pair.
    pub classes: ClassPair,
    /// Signature keys (7 counters + magnitude anchors) at this size.
    pub sig_a: [f64; 9],
    /// Signature of the second application.
    pub sig_b: [f64; 9],
    /// The oracle-optimal pair configuration.
    pub config: PairConfig,
    /// Its wall EDP (s²·W).
    pub edp_wall: f64,
}

/// One standalone entry (ILAO's building block, also used by PTM).
#[derive(Debug, Clone)]
pub struct SoloEntry {
    /// Application.
    pub app: App,
    /// Input size.
    pub size: InputSize,
    /// Signature at this size.
    pub sig: [f64; 9],
    /// Best standalone configuration.
    pub config: TuningConfig,
    /// Its wall EDP.
    pub edp_wall: f64,
    /// Its execution time (scheduling estimate).
    pub exec_time_s: f64,
}

/// The §6.2 database.
#[derive(Debug, Clone)]
pub struct ConfigDatabase {
    /// All same-size training pairs × sizes.
    pub pairs: Vec<PairEntry>,
    /// All training apps × sizes, standalone.
    pub solos: Vec<SoloEntry>,
    /// Labelled training signatures (classifier training set).
    pub signatures: Vec<(AppSignature, AppClass)>,
    /// Wall-clock seconds the exhaustive construction took — the paper
    /// reports this as LkT's (one-off) training cost in Fig 8.
    pub build_seconds: f64,
}

impl ConfigDatabase {
    /// Build the database over the training applications and all three
    /// input sizes. `noise`/`seed` control the counter measurement jitter.
    pub fn build(engine: &EvalEngine, noise: f64, seed: u64) -> Result<ConfigDatabase, EvalError> {
        ConfigDatabase::build_subset(engine, &TRAINING_APPS, &InputSize::ALL, noise, seed)
    }

    /// Build over an explicit subset of apps × sizes. The full [`build`]
    /// is this over the whole training catalog; tests use small subsets to
    /// assert the engine's exactly-once memoization without paying for all
    /// 45 sweeps.
    ///
    /// [`build`]: ConfigDatabase::build
    pub fn build_subset(
        engine: &EvalEngine,
        apps: &[App],
        sizes: &[InputSize],
        noise: f64,
        seed: u64,
    ) -> Result<ConfigDatabase, EvalError> {
        let start = Instant::now();
        let idle = engine.idle_w();

        // sig_key[i][j] is apps[i] at sizes[j] — index-addressed so lookups
        // below cannot miss.
        let mut signatures = Vec::new();
        let mut sig_key: Vec<Vec<[f64; 9]>> = Vec::with_capacity(apps.len());
        for &app in apps {
            let mut row = Vec::with_capacity(sizes.len());
            for &size in sizes {
                let sig = profile_catalog_app(engine, app, size, noise, seed)?;
                row.push(sig.key());
                signatures.push((sig, app.class()));
            }
            sig_key.push(row);
        }

        let mut solos = Vec::new();
        for (i, &app) in apps.iter().enumerate() {
            for (j, &size) in sizes.iter().enumerate() {
                let run = best_solo(engine, app.profile(), size.per_node_mb())?;
                solos.push(SoloEntry {
                    app,
                    size,
                    sig: sig_key[i][j],
                    config: run.config,
                    edp_wall: run.metrics.edp_wall(idle),
                    exec_time_s: run.metrics.exec_time_s,
                });
            }
        }

        let mut pairs = Vec::new();
        for (i, &a) in apps.iter().enumerate() {
            for (k, &b) in apps.iter().enumerate().skip(i) {
                for (j, &size) in sizes.iter().enumerate() {
                    let mb = size.per_node_mb();
                    let run = engine.best_pair(a.profile(), mb, b.profile(), mb)?;
                    pairs.push(PairEntry {
                        a,
                        b,
                        size,
                        classes: ClassPair::new(a.class(), b.class()),
                        sig_a: sig_key[i][j],
                        sig_b: sig_key[k][j],
                        config: run.config,
                        edp_wall: run.metrics.edp_wall(idle),
                    });
                }
            }
        }

        Ok(ConfigDatabase {
            pairs,
            solos,
            signatures,
            build_seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// Look up the standalone entry whose signature is nearest to `sig`
    /// (z-scored distance over the stored solos) — PTM's tuning step.
    /// `None` only when the database holds no solo entries.
    pub fn nearest_solo(&self, sig: &[f64; 9]) -> Option<&SoloEntry> {
        let rows: Vec<Vec<f64>> = self.solos.iter().map(|s| s.sig.to_vec()).collect();
        if rows.is_empty() {
            return None;
        }
        let scaler = ecost_ml::ZScore::fit(&rows);
        let q = scaler.transform(sig);
        let idx = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let d = ecost_ml::knn::euclidean(&scaler.transform(r), &q);
                (i, d)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))?
            .0;
        self.solos.get(idx)
    }

    /// The per-class-pair minimum EDP over stored entries (the raw material
    /// for Fig 5's ranking).
    pub fn class_pair_best_edp(&self, classes: ClassPair) -> Option<f64> {
        self.pairs
            .iter()
            .filter(|p| p.classes == classes)
            .map(|p| p.edp_wall)
            .min_by(f64::total_cmp)
    }

    /// Serialise the sweep results (solos + pairs) to a plain-text format.
    ///
    /// The labelled signatures are *not* persisted — they are re-measured in
    /// seconds and carry the full application profile, which belongs to the
    /// run, not the database.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("ecost-db v1\n");
        let cfg =
            |c: &TuningConfig| format!("{} {} {}", c.freq.index(), c.block.index(), c.mappers);
        let nums = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{x:.6e}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        for e in &self.solos {
            let _ = writeln!(
                s,
                "solo {} {} | {} | {} | {:.6e} {:.6e}",
                e.app.name(),
                e.size.index(),
                nums(&e.sig),
                cfg(&e.config),
                e.edp_wall,
                e.exec_time_s
            );
        }
        for e in &self.pairs {
            let _ = writeln!(
                s,
                "pair {} {} {} | {} | {} | {} {} | {:.6e}",
                e.a.name(),
                e.b.name(),
                e.size.index(),
                nums(&e.sig_a),
                nums(&e.sig_b),
                cfg(&e.config.a),
                cfg(&e.config.b),
                e.edp_wall
            );
        }
        s
    }

    /// Parse the format produced by [`ConfigDatabase::to_text`].
    pub fn from_text(text: &str) -> Result<ConfigDatabase, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty database file")?;
        if header.trim() != "ecost-db v1" {
            return Err(format!("unknown database header: {header}"));
        }
        let parse_cfg = |tok: &str| -> Result<TuningConfig, String> {
            let parts: Vec<&str> = tok.split_whitespace().collect();
            if parts.len() != 3 {
                return Err(format!("bad config: {tok}"));
            }
            let freq = ecost_sim::Frequency::from_index(
                parts[0].parse().map_err(|e| format!("freq: {e}"))?,
            )
            .ok_or("bad freq index")?;
            let blocks = ecost_mapreduce::BlockSize::ALL;
            let bi: usize = parts[1].parse().map_err(|e| format!("block: {e}"))?;
            let block = *blocks.get(bi).ok_or("bad block index")?;
            let mappers = parts[2].parse().map_err(|e| format!("mappers: {e}"))?;
            Ok(TuningConfig {
                freq,
                block,
                mappers,
            })
        };
        let parse_sig = |tok: &str| -> Result<[f64; 9], String> {
            let vals: Result<Vec<f64>, _> = tok.split_whitespace().map(str::parse).collect();
            let vals = vals.map_err(|e| format!("sig: {e}"))?;
            vals.try_into().map_err(|_| "sig arity".to_string())
        };
        let parse_size = |tok: &str| -> Result<InputSize, String> {
            let i: usize = tok.parse().map_err(|e| format!("size: {e}"))?;
            InputSize::ALL
                .get(i)
                .copied()
                .ok_or_else(|| "bad size index".into())
        };
        let parse_app = |tok: &str| -> Result<App, String> {
            App::from_name(tok).ok_or_else(|| format!("unknown app {tok}"))
        };

        let mut db = ConfigDatabase {
            pairs: Vec::new(),
            solos: Vec::new(),
            signatures: Vec::new(),
            build_seconds: 0.0,
        };
        for (no, line) in lines.enumerate() {
            let fields: Vec<&str> = line.split('|').map(str::trim).collect();
            let head: Vec<&str> = fields[0].split_whitespace().collect();
            let err = |what: &str| format!("line {}: {what}", no + 2);
            match head.first() {
                Some(&"solo") => {
                    if fields.len() != 4 || head.len() != 3 {
                        return Err(err("malformed solo record"));
                    }
                    let tail: Vec<&str> = fields[3].split_whitespace().collect();
                    if tail.len() != 2 {
                        return Err(err("solo tail"));
                    }
                    let app = parse_app(head[1]).map_err(|e| err(&e))?;
                    db.solos.push(SoloEntry {
                        app,
                        size: parse_size(head[2]).map_err(|e| err(&e))?,
                        sig: parse_sig(fields[1]).map_err(|e| err(&e))?,
                        config: parse_cfg(fields[2]).map_err(|e| err(&e))?,
                        edp_wall: tail[0].parse().map_err(|_| err("edp"))?,
                        exec_time_s: tail[1].parse().map_err(|_| err("time"))?,
                    });
                }
                Some(&"pair") => {
                    if fields.len() != 5 || head.len() != 4 {
                        return Err(err("malformed pair record"));
                    }
                    let cfgs: Vec<&str> = fields[3].split_whitespace().collect();
                    if cfgs.len() != 6 {
                        return Err(err("pair configs"));
                    }
                    let a = parse_app(head[1]).map_err(|e| err(&e))?;
                    let b = parse_app(head[2]).map_err(|e| err(&e))?;
                    db.pairs.push(PairEntry {
                        a,
                        b,
                        size: parse_size(head[3]).map_err(|e| err(&e))?,
                        classes: ClassPair::new(a.class(), b.class()),
                        sig_a: parse_sig(fields[1]).map_err(|e| err(&e))?,
                        sig_b: parse_sig(fields[2]).map_err(|e| err(&e))?,
                        config: PairConfig {
                            a: parse_cfg(&cfgs[..3].join(" ")).map_err(|e| err(&e))?,
                            b: parse_cfg(&cfgs[3..].join(" ")).map_err(|e| err(&e))?,
                        },
                        edp_wall: fields[4].parse().map_err(|_| err("edp"))?,
                    });
                }
                _ => return Err(err("unknown record kind")),
            }
        }
        Ok(db)
    }

    /// Write to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Read from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<ConfigDatabase> {
        let text = std::fs::read_to_string(path)?;
        ConfigDatabase::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::sync::OnceLock;

    /// One engine shared by every test in this module: the mini builds all
    /// read the same memoized sweeps, so the suite pays for them once.
    fn engine() -> &'static EvalEngine {
        static E: OnceLock<EvalEngine> = OnceLock::new();
        E.get_or_init(EvalEngine::atom)
    }

    /// A miniature database (2 apps × 1 size) — full builds are exercised by
    /// the experiment binaries; tests keep it small.
    fn mini_db(engine: &EvalEngine) -> ConfigDatabase {
        ConfigDatabase::build_subset(engine, &[App::Wc, App::St], &[InputSize::Small], 0.0, 0)
            .expect("mini build")
    }

    #[test]
    fn nearest_solo_retrieves_own_entry() {
        let db = mini_db(engine());
        let hit = db.nearest_solo(&db.solos[1].sig).expect("non-empty db");
        assert_eq!(hit.app, App::St);
    }

    #[test]
    fn nearest_solo_on_empty_database_is_none() {
        let db = ConfigDatabase {
            pairs: Vec::new(),
            solos: Vec::new(),
            signatures: Vec::new(),
            build_seconds: 0.0,
        };
        assert!(db.nearest_solo(&[0.0; 9]).is_none());
    }

    #[test]
    fn class_pair_lookup() {
        let db = mini_db(engine());
        assert!(db
            .class_pair_best_edp(ClassPair::new(AppClass::C, AppClass::I))
            .is_some());
        assert!(db
            .class_pair_best_edp(ClassPair::new(AppClass::M, AppClass::M))
            .is_none());
    }

    #[test]
    fn text_round_trip() {
        let db = mini_db(engine());
        let text = db.to_text();
        let back = ConfigDatabase::from_text(&text).expect("parse own output");
        assert_eq!(back.solos.len(), db.solos.len());
        assert_eq!(back.pairs.len(), db.pairs.len());
        assert_eq!(back.pairs[0].config, db.pairs[0].config);
        assert_eq!(back.solos[1].config, db.solos[1].config);
        assert!(
            (back.pairs[0].edp_wall - db.pairs[0].edp_wall).abs() / db.pairs[0].edp_wall < 1e-5
        );
        for (x, y) in back.solos[0].sig.iter().zip(db.solos[0].sig) {
            assert!((x - y).abs() <= 1e-5 * y.abs().max(1.0));
        }
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(ConfigDatabase::from_text("").is_err());
        assert!(ConfigDatabase::from_text("wrong header\n").is_err());
        assert!(ConfigDatabase::from_text("ecost-db v1\nbogus line\n").is_err());
        assert!(ConfigDatabase::from_text("ecost-db v1\nsolo wc 0 | 1 2 | 0 0 1 | 1 2\n").is_err());
    }

    #[test]
    fn pair_entries_respect_core_budget() {
        let db = mini_db(engine());
        for p in &db.pairs {
            assert!(p.config.cores() <= engine().testbed().node.cores);
            assert!(p.edp_wall > 0.0);
        }
    }
}
