//! Circuit breaker over the engine-backed decision tiers, on the
//! simulated clock.
//!
//! When consecutive tuning requests fail their evaluation tier (retry
//! budget exhausted against a transient-failure burst), hammering the
//! engine with more full sweeps only burns deadline budget. The breaker
//! *trips* after a configurable failure streak: subsequent requests
//! short-circuit straight to the class-default fallback tier without
//! touching the engine. After a cooldown — measured on the simulated
//! clock, like every duration in this repo — the breaker *half-opens*:
//! the next request is allowed through as a probe. A successful probe
//! closes the breaker; a failing one re-trips it and restarts the
//! cooldown.
//!
//! The breaker is driven strictly in request-sequence order by the
//! service's admission turnstile, so its transitions are a deterministic
//! function of the request stream — concurrency never changes which
//! requests see an open breaker.

/// Breaker tuning: when to trip, how long to stay open.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive evaluation-tier failures that trip the breaker.
    /// 0 disables the breaker entirely.
    pub threshold: u32,
    /// Simulated seconds the breaker stays open before half-opening.
    pub cooldown_s: f64,
}

impl BreakerConfig {
    /// No breaker: engine tiers are always admitted.
    pub fn disabled() -> BreakerConfig {
        BreakerConfig {
            threshold: 0,
            cooldown_s: 0.0,
        }
    }
}

impl Default for BreakerConfig {
    /// Trip after 5 consecutive failures, half-open after 30 simulated
    /// seconds.
    fn default() -> BreakerConfig {
        BreakerConfig {
            threshold: 5,
            cooldown_s: 30.0,
        }
    }
}

/// Observable breaker position at a given simulated instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Failures below threshold; engine tiers admitted.
    Closed,
    /// Tripped and still cooling down; engine tiers short-circuited.
    Open,
    /// Cooldown elapsed; the next request probes the engine tiers.
    HalfOpen,
}

/// The breaker state machine. Not synchronised — the owning service
/// drives it under its admission lock, in request order.
#[derive(Debug, Clone)]
pub(crate) struct CircuitBreaker {
    cfg: BreakerConfig,
    /// Current failure streak (reset by any success).
    consecutive: u32,
    /// Simulated trip instant while open/half-open.
    opened_at_s: Option<f64>,
    /// Lifetime trips (re-trips after a failed probe included).
    trips: u64,
}

impl CircuitBreaker {
    pub(crate) fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            consecutive: 0,
            opened_at_s: None,
            trips: 0,
        }
    }

    /// Breaker position for a request arriving at `t_s`.
    pub(crate) fn state(&self, t_s: f64) -> BreakerState {
        match self.opened_at_s {
            None => BreakerState::Closed,
            Some(at) if t_s - at >= self.cfg.cooldown_s => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// May a request arriving at `t_s` attempt the engine tiers? True
    /// when closed or half-open (the half-open caller is the probe; its
    /// outcome must be reported via [`Self::on_success`] /
    /// [`Self::on_failure`] before the next request is admitted).
    pub(crate) fn allows_engine(&self, t_s: f64) -> bool {
        self.cfg.threshold == 0 || self.state(t_s) != BreakerState::Open
    }

    /// An evaluation tier succeeded: reset the streak, close the breaker.
    pub(crate) fn on_success(&mut self) {
        self.consecutive = 0;
        self.opened_at_s = None;
    }

    /// An evaluation tier exhausted its retries at `t_s`. Returns true
    /// when this failure tripped (or re-tripped) the breaker.
    pub(crate) fn on_failure(&mut self, t_s: f64) -> bool {
        if self.cfg.threshold == 0 {
            return false;
        }
        self.consecutive = self.consecutive.saturating_add(1);
        let trip = match self.state(t_s) {
            // A failing half-open probe re-trips immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive >= self.cfg.threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.opened_at_s = Some(t_s);
            self.trips += 1;
        }
        trip
    }

    /// Lifetime trip count (including re-trips after failed probes).
    pub(crate) fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_half_opens_on_the_clock() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            threshold: 2,
            cooldown_s: 10.0,
        });
        assert!(b.allows_engine(0.0));
        assert!(!b.on_failure(1.0));
        assert_eq!(b.state(1.0), BreakerState::Closed);
        assert!(b.on_failure(2.0), "second failure must trip");
        assert_eq!(b.state(2.0), BreakerState::Open);
        assert!(!b.allows_engine(5.0));
        // Cooldown elapsed → half-open probe admitted.
        assert_eq!(b.state(12.0), BreakerState::HalfOpen);
        assert!(b.allows_engine(12.0));
        // Failing probe re-trips and restarts the cooldown.
        assert!(b.on_failure(12.0));
        assert!(!b.allows_engine(20.0));
        assert_eq!(b.trips(), 2);
        // Successful probe closes.
        assert!(b.allows_engine(25.0));
        b.on_success();
        assert_eq!(b.state(25.0), BreakerState::Closed);
        assert!(b.allows_engine(25.0));
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut b = CircuitBreaker::new(BreakerConfig::disabled());
        for t in 0..100 {
            assert!(!b.on_failure(t as f64));
            assert!(b.allows_engine(t as f64));
        }
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            threshold: 3,
            cooldown_s: 5.0,
        });
        b.on_failure(0.0);
        b.on_failure(1.0);
        b.on_success();
        b.on_failure(2.0);
        b.on_failure(3.0);
        assert_eq!(b.state(3.0), BreakerState::Closed, "streak was reset");
        assert!(b.on_failure(4.0));
    }
}
