//! Typed failures of the tuning service front door.
//!
//! Every way a [`super::TuningService`] request can fail is a variant
//! here, mirroring the [`EvalError`] house pattern: callers match on the
//! variant, never on a message string. The service-specific variants
//! ([`ServiceError::Overloaded`], [`ServiceError::DeadlineExceeded`])
//! carry the numbers a caller needs to react — back off, resubmit with a
//! longer budget, or route the job through a static default.

use crate::engine::EvalError;
use std::fmt;

/// Why a tuning request was not answered with a decision.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The admission controller shed the request: all service workers
    /// were busy and the bounded wait queue was full at the request's
    /// arrival instant. The request was rejected *immediately* — the
    /// service never blocks a caller forever on a full queue.
    Overloaded {
        /// Requests already waiting when this one arrived.
        queued: usize,
        /// The configured wait-queue bound.
        limit: usize,
    },
    /// The request could not finish any decision tier — not even the
    /// class-default fallback — inside its deadline on the simulated
    /// clock.
    DeadlineExceeded {
        /// The request's deadline budget, simulated seconds.
        deadline_s: f64,
        /// Simulated seconds the request had already consumed (queue
        /// wait plus any evaluation attempts) when it was abandoned.
        spent_s: f64,
    },
    /// The request itself was malformed (non-finite times, zero-sized
    /// inputs, an out-of-order sequence number).
    InvalidRequest {
        /// Which invariant failed.
        what: &'static str,
    },
    /// The service configuration was malformed at construction.
    InvalidConfig {
        /// Which invariant failed.
        what: &'static str,
    },
    /// The underlying engine evaluation failed in a way the tier ladder
    /// could not absorb (e.g. an internal simulator error).
    Eval(EvalError),
    /// An internal service invariant broke (telemetry wiring).
    Internal {
        /// What broke.
        what: &'static str,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { queued, limit } => write!(
                f,
                "service overloaded: {queued} requests already waiting (queue bound {limit})"
            ),
            ServiceError::DeadlineExceeded {
                deadline_s,
                spent_s,
            } => write!(
                f,
                "deadline exceeded: {spent_s:.3}s consumed of a {deadline_s:.3}s budget"
            ),
            ServiceError::InvalidRequest { what } => write!(f, "invalid request: {what}"),
            ServiceError::InvalidConfig { what } => write!(f, "invalid service config: {what}"),
            ServiceError::Eval(e) => write!(f, "evaluation failed: {e}"),
            ServiceError::Internal { what } => write!(f, "internal service error: {what}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for ServiceError {
    fn from(e: EvalError) -> ServiceError {
        ServiceError::Eval(e)
    }
}
