//! # ECoST-as-a-service: a concurrent tuning front door
//!
//! The batch and streaming drivers in [`crate::mapping`] assume every
//! tuning decision is free and infallible: the policy calls straight
//! into the [`EvalEngine`] and waits however long the sweep takes. A
//! shared tuning daemon cannot — decisions arrive concurrently, cost
//! real evaluation time, and must answer *something* inside a deadline
//! or say why not. This module turns the engine into such a service:
//!
//! * **Admission control** — a bounded number of simulated service
//!   workers plus a bounded wait queue. A request arriving when every
//!   worker is busy and the queue is full is shed immediately with
//!   [`ServiceError::Overloaded`]; the service never blocks a caller
//!   forever.
//! * **Deadlines** — every request carries a budget in simulated
//!   seconds. Queue wait and evaluation attempts are charged against
//!   it; a request that cannot finish even the class-default fallback
//!   fails with [`ServiceError::DeadlineExceeded`].
//! * **Retry with seeded jitter** — injected transient evaluation
//!   failures are retried under the engine's [`RetryPolicy`] with
//!   deterministic per-request jitter
//!   ([`RetryPolicy::jittered_backoff_for`]).
//! * **Graceful degradation** — a tier ladder [`DecisionTier::FullSweep`]
//!   → [`DecisionTier::Windowed`] → [`DecisionTier::ClassDefault`],
//!   selected by the remaining deadline budget and engine health; the
//!   chosen tier is recorded in telemetry and on the decision.
//! * **Circuit breaker** — consecutive evaluation-tier failures trip a
//!   breaker that short-circuits straight to the fallback tier until a
//!   cooldown elapses on the simulated clock ([`BreakerConfig`]).
//!
//! ## Determinism under concurrency
//!
//! The service is driven from many threads, yet every run with the same
//! request stream must produce byte-identical reports. The trick is a
//! **sequence turnstile**: requests carry dense sequence numbers, and
//! all *simulated* state transitions — admission, queueing, deadline
//! accounting, tier selection, breaker movement — happen under one lock
//! in strict sequence order, as pure arithmetic on the simulated clock
//! (no waiting happens while holding it beyond the turnstile itself).
//! Only the *real* engine computation (memoized sweeps) runs outside
//! the turnstile, in parallel, bounded by a real in-flight limit whose
//! observed peak is exposed for tests. Thread interleaving can change
//! which core computes a sweep, never what the service decides.
//!
//! Two deliberate simplifications keep the arithmetic exact: a request
//! that is shed or abandons its deadline releases its simulated worker
//! immediately (only decided requests occupy capacity), and real engine
//! errors — which would surface in interleaving-dependent order — never
//! feed the breaker; they degrade deterministically to the class-default
//! configuration and are counted separately.

mod breaker;
mod error;

pub use breaker::{BreakerConfig, BreakerState};
pub use error::ServiceError;

pub(crate) use breaker::CircuitBreaker;

use crate::engine::{EvalEngine, RetryPolicy};
use crate::mapping::class_default_config;
use ecost_apps::App;
use ecost_mapreduce::{PairConfig, TuningConfig};
use ecost_sim::{RequestFaults, ServiceFaultSpec};
use ecost_telemetry::{Counter, Gauge, Histogram};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Latency histogram bucket upper bounds, simulated seconds.
const LATENCY_BOUNDS: [f64; 14] = [
    0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
];

/// Golden-ratio mixing constant shared with the repo's seeded streams.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// How a decision was produced, from most to least thorough.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionTier {
    /// Full pair/solo sweep over the whole configuration space.
    FullSweep,
    /// Restricted sweep: core partition fixed at an even split, only
    /// frequency × block size explored.
    Windowed,
    /// Static class-default knobs; no engine evaluation at all.
    ClassDefault,
}

impl DecisionTier {
    /// Stable lowercase name for telemetry and JSON.
    pub fn name(self) -> &'static str {
        match self {
            DecisionTier::FullSweep => "full",
            DecisionTier::Windowed => "windowed",
            DecisionTier::ClassDefault => "fallback",
        }
    }
}

/// Simulated cost of one evaluation attempt at each tier, seconds.
///
/// These model what a decision *costs the service* on the simulated
/// clock — the currency deadlines are spent in. The real memoized
/// engine work is far cheaper and is never charged against deadlines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionCosts {
    /// One full-sweep attempt.
    pub full_s: f64,
    /// One windowed attempt.
    pub windowed_s: f64,
    /// The class-default fallback (table lookup).
    pub fallback_s: f64,
}

impl DecisionCosts {
    /// Free decisions at every tier (used by [`ServiceConfig::unlimited`]).
    pub fn zero() -> DecisionCosts {
        DecisionCosts {
            full_s: 0.0,
            windowed_s: 0.0,
            fallback_s: 0.0,
        }
    }

    fn of(self, tier: DecisionTier) -> f64 {
        match tier {
            DecisionTier::FullSweep => self.full_s,
            DecisionTier::Windowed => self.windowed_s,
            DecisionTier::ClassDefault => self.fallback_s,
        }
    }
}

impl Default for DecisionCosts {
    /// A full sweep costs 5 simulated seconds, a windowed sweep 0.5,
    /// the fallback lookup 0.01.
    fn default() -> DecisionCosts {
        DecisionCosts {
            full_s: 5.0,
            windowed_s: 0.5,
            fallback_s: 0.01,
        }
    }
}

/// Service-level knobs: capacity, deadlines, retries, breaker, costs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Simulated service workers evaluating decisions concurrently.
    /// `None` = unbounded (requests never queue or shed).
    pub max_inflight: Option<usize>,
    /// Bound on the wait queue when all workers are busy. `None` =
    /// unbounded queue; `Some(0)` = shed whenever no worker is free.
    /// Requires `max_inflight` to be set.
    pub max_queue: Option<usize>,
    /// Default per-request deadline, simulated seconds (a request may
    /// carry its own). `f64::INFINITY` disables deadlines.
    pub deadline_s: f64,
    /// Retry budget and backoff for injected transient failures.
    pub retry: RetryPolicy,
    /// Jitter fraction applied to retry backoffs (0 = none); the jitter
    /// is seeded per request, so it is deterministic.
    pub retry_jitter_frac: f64,
    /// Circuit breaker over the engine-backed tiers.
    pub breaker: BreakerConfig,
    /// Simulated decision costs per tier.
    pub costs: DecisionCosts,
}

impl ServiceConfig {
    /// No limits, no deadlines, no retries, no breaker, free decisions.
    /// A service in this configuration always grants a full sweep and
    /// charges nothing — its decisions are bit-identical to calling the
    /// engine directly.
    pub fn unlimited() -> ServiceConfig {
        ServiceConfig {
            max_inflight: None,
            max_queue: None,
            deadline_s: f64::INFINITY,
            retry: RetryPolicy::none(),
            retry_jitter_frac: 0.0,
            breaker: BreakerConfig::disabled(),
            costs: DecisionCosts::zero(),
        }
    }

    /// Check every invariant; typed error on the first violation.
    pub fn validate(&self) -> Result<(), ServiceError> {
        let bad = |what| Err(ServiceError::InvalidConfig { what });
        if self.max_inflight == Some(0) {
            return bad("max_inflight must be at least 1 when set");
        }
        if self.max_queue.is_some() && self.max_inflight.is_none() {
            return bad("max_queue without max_inflight never binds");
        }
        if self.deadline_s.is_nan() || self.deadline_s <= 0.0 {
            return bad("deadline_s must be positive (infinity disables deadlines)");
        }
        if !(self.retry.backoff_s.is_finite() && self.retry.backoff_s >= 0.0) {
            return bad("retry backoff_s must be finite and non-negative");
        }
        if !(self.retry.backoff_multiplier.is_finite() && self.retry.backoff_multiplier > 0.0) {
            return bad("retry backoff_multiplier must be finite and positive");
        }
        if !(self.retry_jitter_frac.is_finite() && self.retry_jitter_frac >= 0.0) {
            return bad("retry_jitter_frac must be finite and non-negative");
        }
        if !(self.breaker.cooldown_s.is_finite() && self.breaker.cooldown_s >= 0.0) {
            return bad("breaker cooldown_s must be finite and non-negative");
        }
        for c in [
            self.costs.full_s,
            self.costs.windowed_s,
            self.costs.fallback_s,
        ] {
            if !(c.is_finite() && c >= 0.0) {
                return bad("decision costs must be finite and non-negative");
            }
        }
        Ok(())
    }
}

impl Default for ServiceConfig {
    /// 8 workers, a 64-deep queue, 60-second deadlines, two jittered
    /// retries, the default breaker, default costs.
    fn default() -> ServiceConfig {
        ServiceConfig {
            max_inflight: Some(8),
            max_queue: Some(64),
            deadline_s: 60.0,
            retry: RetryPolicy {
                max_retries: 2,
                backoff_s: 0.5,
                backoff_multiplier: 2.0,
            },
            retry_jitter_frac: 0.5,
            breaker: BreakerConfig::default(),
            costs: DecisionCosts::default(),
        }
    }
}

/// Aggregate service outcome counters, all deterministic under a fixed
/// request stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceReport {
    /// Requests answered with a configuration.
    pub decided: u64,
    /// Requests shed by the admission controller.
    pub shed: u64,
    /// Requests abandoned for blowing their deadline.
    pub deadline_exceeded: u64,
    /// Decisions served by the full sweep tier.
    pub tier_full: u64,
    /// Decisions served by the windowed tier.
    pub tier_windowed: u64,
    /// Decisions served by the class-default fallback tier.
    pub tier_fallback: u64,
    /// Retries burned against injected transient failures.
    pub retries: u64,
    /// Evaluation-tier attempts that exhausted their retry budget.
    pub tier_failures: u64,
    /// Circuit-breaker trips (re-trips after failed probes included).
    pub breaker_trips: u64,
    /// Requests that skipped the engine tiers because the breaker was
    /// open.
    pub breaker_short_circuits: u64,
    /// Real engine evaluation errors absorbed by degrading to the
    /// class-default configuration (zero in fault-free runs).
    pub engine_fallbacks: u64,
    /// Peak simulated wait-queue occupancy.
    pub queue_peak: u64,
    /// Total simulated decision latency (queue wait + evaluation) over
    /// all decided requests, seconds.
    pub decision_time_s: f64,
}

impl ServiceReport {
    /// Fold another report into this one: counters and latency sum,
    /// `queue_peak` takes the max (per-shard peaks do not add — the
    /// shards' queues never share a worker pool).
    pub fn merge(&mut self, rhs: &ServiceReport) {
        self.decided += rhs.decided;
        self.shed += rhs.shed;
        self.deadline_exceeded += rhs.deadline_exceeded;
        self.tier_full += rhs.tier_full;
        self.tier_windowed += rhs.tier_windowed;
        self.tier_fallback += rhs.tier_fallback;
        self.retries += rhs.retries;
        self.tier_failures += rhs.tier_failures;
        self.breaker_trips += rhs.breaker_trips;
        self.breaker_short_circuits += rhs.breaker_short_circuits;
        self.engine_fallbacks += rhs.engine_fallbacks;
        self.queue_peak = self.queue_peak.max(rhs.queue_peak);
        self.decision_time_s += rhs.decision_time_s;
    }
}

/// What the sequenced admission pass granted a request: its tier and
/// its simulated timeline, before any real engine work happens.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Grant {
    /// Tier the ladder settled on.
    pub(crate) tier: DecisionTier,
    /// Simulated seconds spent waiting for a service worker.
    pub(crate) queued_s: f64,
    /// Simulated seconds spent evaluating (attempts + backoffs).
    pub(crate) service_s: f64,
    /// Retries burned by this request.
    pub(crate) retries: u32,
    /// The breaker was open: engine tiers were skipped outright.
    pub(crate) breaker_short_circuit: bool,
    /// Wait-queue occupancy observed at this request's arrival.
    pub(crate) queue_depth: usize,
}

/// The sequenced, single-threaded heart of the service: admission,
/// queueing, deadlines, the tier ladder and the breaker, all as pure
/// arithmetic on the simulated clock. [`TuningService`] drives it under
/// the turnstile; the streaming driver's serviced policy drives it
/// directly.
#[derive(Debug, Clone)]
pub(crate) struct ServiceCore {
    cfg: ServiceConfig,
    faults: ServiceFaultSpec,
    breaker: CircuitBreaker,
    /// Per-worker next-free instants (`Some` iff `max_inflight` set).
    workers: Option<Vec<f64>>,
    /// Start instants of admitted requests still waiting at the time
    /// they were granted; non-decreasing, purged as the clock passes.
    waiting: VecDeque<f64>,
    /// High-water arrival instant (arrivals are clamped monotone).
    clock_s: f64,
    report: ServiceReport,
}

impl ServiceCore {
    pub(crate) fn new(
        cfg: ServiceConfig,
        faults: ServiceFaultSpec,
    ) -> Result<ServiceCore, ServiceError> {
        cfg.validate()?;
        let workers = cfg.max_inflight.map(|n| vec![0.0; n]);
        let breaker = CircuitBreaker::new(cfg.breaker);
        Ok(ServiceCore {
            cfg,
            faults,
            breaker,
            workers,
            waiting: VecDeque::new(),
            clock_s: 0.0,
            report: ServiceReport::default(),
        })
    }

    pub(crate) fn report(&self) -> &ServiceReport {
        &self.report
    }

    /// The configured default deadline budget.
    pub(crate) fn deadline_s(&self) -> f64 {
        self.cfg.deadline_s
    }

    /// Breaker position at the core's current high-water instant.
    pub(crate) fn breaker_state(&self) -> BreakerState {
        self.breaker.state(self.clock_s)
    }

    /// Run one request through admission → deadline → tier ladder →
    /// breaker, in pure simulated arithmetic. `faults` overrides the
    /// per-sequence draw from the service's fault spec (tests use this
    /// to script exact failure patterns).
    pub(crate) fn admit(
        &mut self,
        seq: u64,
        submit_t_s: f64,
        deadline_s: f64,
        faults: Option<RequestFaults>,
    ) -> Result<Grant, ServiceError> {
        if !(submit_t_s.is_finite() && submit_t_s >= 0.0) {
            return Err(ServiceError::InvalidRequest {
                what: "submit time must be finite and non-negative",
            });
        }
        if deadline_s.is_nan() || deadline_s <= 0.0 {
            return Err(ServiceError::InvalidRequest {
                what: "deadline must be positive",
            });
        }
        let t = submit_t_s.max(self.clock_s);
        self.clock_s = t;
        while self.waiting.front().is_some_and(|&s| s <= t) {
            self.waiting.pop_front();
        }
        let queue_depth = self.waiting.len();

        // Admission: find the earliest-free simulated worker; queue (or
        // shed) when none is free at `t`.
        let slot = self.workers.as_ref().map(|w| {
            let mut best = 0usize;
            for (i, free) in w.iter().enumerate() {
                if *free < w[best] {
                    best = i;
                }
            }
            (best, w[best])
        });
        let start = match slot {
            Some((_, free)) if free > t => {
                if let Some(maxq) = self.cfg.max_queue {
                    if queue_depth >= maxq {
                        self.report.shed += 1;
                        return Err(ServiceError::Overloaded {
                            queued: queue_depth,
                            limit: maxq,
                        });
                    }
                }
                free
            }
            _ => t,
        };
        let queued_s = start - t;
        let mut spent = queued_s;
        let fallback_cost = self.cfg.costs.fallback_s;
        if spent + fallback_cost > deadline_s {
            self.report.deadline_exceeded += 1;
            return Err(ServiceError::DeadlineExceeded {
                deadline_s,
                spent_s: spent,
            });
        }

        let f = faults.unwrap_or_else(|| self.faults.draw(seq));
        let slow = if f.slow_factor.is_finite() && f.slow_factor > 1.0 {
            f.slow_factor
        } else {
            1.0
        };
        let jitter_key = self.faults.seed ^ seq.wrapping_mul(PHI);

        // Tier ladder. One breaker check per request: an open breaker
        // short-circuits both engine tiers.
        let mut retries = 0u32;
        let mut granted: Option<DecisionTier> = None;
        let breaker_short_circuit = !self.breaker.allows_engine(t + spent);
        if breaker_short_circuit {
            self.report.breaker_short_circuits += 1;
        } else {
            'ladder: for tier in [DecisionTier::FullSweep, DecisionTier::Windowed] {
                let cost = self.cfg.costs.of(tier) * slow;
                // Affordability: this attempt plus the guaranteed-cost
                // fallback must still fit the budget.
                if spent + cost + fallback_cost > deadline_s {
                    continue;
                }
                spent += cost;
                let mut attempt = 0u32;
                let mut ok = f.transient_failures == 0;
                while !ok {
                    // Attempt `attempt` failed; can we retry?
                    if attempt >= self.cfg.retry.max_retries {
                        break;
                    }
                    let backoff = self.cfg.retry.jittered_backoff_for(
                        attempt,
                        self.cfg.retry_jitter_frac,
                        jitter_key,
                    );
                    if spent + backoff + cost + fallback_cost > deadline_s {
                        break;
                    }
                    spent += backoff + cost;
                    retries += 1;
                    attempt += 1;
                    ok = attempt >= f.transient_failures;
                }
                if ok {
                    self.breaker.on_success();
                    granted = Some(tier);
                    break 'ladder;
                }
                self.report.tier_failures += 1;
                if self.breaker.on_failure(t + spent) {
                    self.report.breaker_trips += 1;
                    // Freshly tripped: skip any remaining engine tier.
                    break 'ladder;
                }
            }
        }
        let tier = match granted {
            Some(tier) => tier,
            None => {
                // Class-default fallback; its cost was reserved above,
                // except when engine tiers were skipped without burning
                // budget — re-check for clarity.
                if spent + fallback_cost > deadline_s {
                    self.report.deadline_exceeded += 1;
                    return Err(ServiceError::DeadlineExceeded {
                        deadline_s,
                        spent_s: spent,
                    });
                }
                spent += fallback_cost;
                DecisionTier::ClassDefault
            }
        };
        // Occupy the simulated worker for the full service time.
        let service_s = spent - queued_s;
        if let (Some(workers), Some((idx, _))) = (self.workers.as_mut(), slot) {
            workers[idx] = start + service_s;
        }
        if start > t {
            self.waiting.push_back(start);
        }
        self.report.queue_peak = self.report.queue_peak.max(self.waiting.len() as u64);
        self.report.decided += 1;
        match tier {
            DecisionTier::FullSweep => self.report.tier_full += 1,
            DecisionTier::Windowed => self.report.tier_windowed += 1,
            DecisionTier::ClassDefault => self.report.tier_fallback += 1,
        }
        self.report.retries += u64::from(retries);
        self.report.decision_time_s += spent;
        Ok(Grant {
            tier,
            queued_s,
            service_s,
            retries,
            breaker_short_circuit,
            queue_depth,
        })
    }
}

/// One tuning question for the service.
#[derive(Debug, Clone)]
pub struct TuningRequest {
    /// Dense per-service sequence number starting at 0. The turnstile
    /// admits requests in exactly this order; every sequence number
    /// must be submitted exactly once.
    pub seq: u64,
    /// Simulated submission instant, seconds.
    pub submit_t_s: f64,
    /// Deadline budget, simulated seconds (`f64::INFINITY` = none).
    pub deadline_s: f64,
    /// The application to tune.
    pub app: App,
    /// Its input size, MB.
    pub input_mb: f64,
    /// Optional co-runner (application, input MB): tune the pair.
    pub partner: Option<(App, f64)>,
    /// Scripted fault override for this request; `None` draws from the
    /// service's seeded fault spec.
    pub faults: Option<RequestFaults>,
}

impl TuningRequest {
    /// A solo request with the service-default deadline semantics.
    pub fn solo(seq: u64, submit_t_s: f64, deadline_s: f64, app: App, input_mb: f64) -> Self {
        TuningRequest {
            seq,
            submit_t_s,
            deadline_s,
            app,
            input_mb,
            partner: None,
            faults: None,
        }
    }

    /// A pair request.
    pub fn pair(seq: u64, submit_t_s: f64, deadline_s: f64, a: (App, f64), b: (App, f64)) -> Self {
        TuningRequest {
            seq,
            submit_t_s,
            deadline_s,
            app: a.0,
            input_mb: a.1,
            partner: Some(b),
            faults: None,
        }
    }
}

/// The configuration a decision settled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecidedConfig {
    /// Knobs for a standalone run.
    Solo(TuningConfig),
    /// Knobs for a co-located pair (`.a` is the request's app, `.b` the
    /// partner).
    Pair(PairConfig),
}

/// A successful service answer.
#[derive(Debug, Clone)]
pub struct TuningDecision {
    /// Tier that produced the configuration.
    pub tier: DecisionTier,
    /// The chosen knobs.
    pub config: DecidedConfig,
    /// Simulated seconds queued before evaluation started.
    pub queued_s: f64,
    /// Simulated seconds of evaluation (attempts + backoffs).
    pub service_s: f64,
    /// Retries burned against injected transient failures.
    pub retries: u32,
    /// The breaker was open; engine tiers were skipped.
    pub breaker_short_circuit: bool,
    /// The granted tier's real engine evaluation failed and the config
    /// degraded to the class default.
    pub degraded: bool,
}

impl TuningDecision {
    /// Total simulated decision latency, seconds.
    pub fn latency_s(&self) -> f64 {
        self.queued_s + self.service_s
    }
}

/// Telemetry handles registered on the engine's recorder.
struct SvcCounters {
    decided: Counter,
    shed: Counter,
    deadline_exceeded: Counter,
    tier_full: Counter,
    tier_windowed: Counter,
    tier_fallback: Counter,
    retries: Counter,
    breaker_trips: Counter,
    breaker_short_circuits: Counter,
    engine_fallbacks: Counter,
    queue_depth: Gauge,
}

struct Gate {
    next_seq: u64,
    core: ServiceCore,
}

struct Slots {
    inflight: usize,
    peak: usize,
}

/// Thread-safe tuning daemon over a shared [`EvalEngine`].
///
/// Call [`TuningService::decide`] from any number of threads; requests
/// must carry dense sequence numbers (0, 1, 2, …) and each sequence
/// number must be submitted exactly once — the turnstile blocks a
/// request until all lower sequence numbers have passed admission, which
/// is what makes every simulated outcome independent of thread timing.
pub struct TuningService<'e> {
    engine: &'e EvalEngine,
    gate: Mutex<Gate>,
    turnstile: Condvar,
    slots: Mutex<Slots>,
    slots_cv: Condvar,
    max_inflight: Option<usize>,
    counters: SvcCounters,
    latency: Histogram,
    engine_fallbacks: AtomicU64,
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl<'e> TuningService<'e> {
    /// Build a service over `engine` with the given limits and seeded
    /// fault spec. Fails with [`ServiceError::InvalidConfig`] on a
    /// malformed configuration.
    pub fn new(
        engine: &'e EvalEngine,
        cfg: ServiceConfig,
        faults: ServiceFaultSpec,
    ) -> Result<TuningService<'e>, ServiceError> {
        let max_inflight = cfg.max_inflight;
        let core = ServiceCore::new(cfg, faults)?;
        let m = engine.recorder().metrics();
        let counters = SvcCounters {
            decided: m.counter("service.decided"),
            shed: m.counter("service.shed"),
            deadline_exceeded: m.counter("service.deadline_exceeded"),
            tier_full: m.counter("service.tier.full"),
            tier_windowed: m.counter("service.tier.windowed"),
            tier_fallback: m.counter("service.tier.fallback"),
            retries: m.counter("service.retries"),
            breaker_trips: m.counter("service.breaker.trips"),
            breaker_short_circuits: m.counter("service.breaker.short_circuits"),
            engine_fallbacks: m.counter("service.engine_fallbacks"),
            queue_depth: m.gauge("service.queue_depth"),
        };
        let latency = Histogram::new(&LATENCY_BOUNDS).map_err(|_| ServiceError::Internal {
            what: "latency histogram bounds rejected",
        })?;
        Ok(TuningService {
            engine,
            gate: Mutex::new(Gate { next_seq: 0, core }),
            turnstile: Condvar::new(),
            slots: Mutex::new(Slots {
                inflight: 0,
                peak: 0,
            }),
            slots_cv: Condvar::new(),
            max_inflight,
            counters,
            latency,
            engine_fallbacks: AtomicU64::new(0),
        })
    }

    /// Answer one tuning request, or fail with a typed error.
    ///
    /// Blocks until all lower sequence numbers have passed admission
    /// (the turnstile), then runs the simulated admission/ladder pass,
    /// then — for granted requests — performs the real engine work for
    /// the granted tier under the real in-flight limit.
    pub fn decide(&self, req: &TuningRequest) -> Result<TuningDecision, ServiceError> {
        let grant = self.sequenced_admit(req)?;
        // Real engine work happens outside the turnstile, bounded by a
        // real in-flight limit (its peak is asserted on by tests).
        let _slot = self.acquire_slot();
        let config = match self.tier_work(req, grant.tier) {
            Ok(config) => config,
            Err(e) if e.is_transient() || e.is_degradable() => {
                // Deterministic degradation: real engine failures never
                // feed the breaker (their arrival order is a thread
                // race); the answer falls back to class defaults.
                self.engine.note_fallback(req.submit_t_s, "service");
                self.counters.engine_fallbacks.inc();
                self.engine_fallbacks.fetch_add(1, Ordering::Relaxed);
                return Ok(TuningDecision {
                    tier: grant.tier,
                    config: self.fallback_config(req),
                    queued_s: grant.queued_s,
                    service_s: grant.service_s,
                    retries: grant.retries,
                    breaker_short_circuit: grant.breaker_short_circuit,
                    degraded: true,
                });
            }
            Err(e) => return Err(ServiceError::Eval(e)),
        };
        Ok(TuningDecision {
            tier: grant.tier,
            config,
            queued_s: grant.queued_s,
            service_s: grant.service_s,
            retries: grant.retries,
            breaker_short_circuit: grant.breaker_short_circuit,
            degraded: false,
        })
    }

    /// The turnstiled admission pass: waits for `req.seq`'s turn, runs
    /// the simulated core, records telemetry, advances the turnstile.
    fn sequenced_admit(&self, req: &TuningRequest) -> Result<Grant, ServiceError> {
        let mut gate = relock(&self.gate);
        loop {
            if gate.next_seq == req.seq {
                break;
            }
            if gate.next_seq > req.seq {
                return Err(ServiceError::InvalidRequest {
                    what: "sequence number already consumed",
                });
            }
            gate = self.turnstile.wait(gate).unwrap_or_else(|p| p.into_inner());
        }
        // From here on the sequence number is consumed no matter the
        // outcome, so later requests never deadlock on a failed one.
        let outcome = self.validated_admit(&mut gate, req);
        match &outcome {
            Ok(grant) => {
                self.counters.decided.inc();
                match grant.tier {
                    DecisionTier::FullSweep => self.counters.tier_full.inc(),
                    DecisionTier::Windowed => self.counters.tier_windowed.inc(),
                    DecisionTier::ClassDefault => self.counters.tier_fallback.inc(),
                }
                self.counters.retries.add(u64::from(grant.retries));
                if grant.breaker_short_circuit {
                    self.counters.breaker_short_circuits.inc();
                }
                self.counters.queue_depth.sample(grant.queue_depth as u64);
                self.latency.record(grant.queued_s + grant.service_s);
            }
            Err(ServiceError::Overloaded { .. }) => self.counters.shed.inc(),
            Err(ServiceError::DeadlineExceeded { .. }) => self.counters.deadline_exceeded.inc(),
            Err(_) => {}
        }
        gate.next_seq += 1;
        self.turnstile.notify_all();
        drop(gate);
        outcome
    }

    fn validated_admit(&self, gate: &mut Gate, req: &TuningRequest) -> Result<Grant, ServiceError> {
        if !(req.input_mb.is_finite() && req.input_mb > 0.0) {
            return Err(ServiceError::InvalidRequest {
                what: "input_mb must be finite and positive",
            });
        }
        if let Some((_, mb)) = req.partner {
            if !(mb.is_finite() && mb > 0.0) {
                return Err(ServiceError::InvalidRequest {
                    what: "partner input_mb must be finite and positive",
                });
            }
        }
        let trips_before = gate.core.breaker.trips();
        let out = gate
            .core
            .admit(req.seq, req.submit_t_s, req.deadline_s, req.faults);
        let tripped = gate.core.breaker.trips() - trips_before;
        if tripped > 0 {
            self.counters.breaker_trips.add(tripped);
        }
        out
    }

    /// Real engine work for a granted tier.
    fn tier_work(
        &self,
        req: &TuningRequest,
        tier: DecisionTier,
    ) -> Result<DecidedConfig, crate::engine::EvalError> {
        let cores = self.engine.testbed().node.cores;
        let half_b = (cores / 2).max(1);
        let half_a = cores.saturating_sub(half_b).max(1);
        match req.partner {
            Some((partner, partner_mb)) => {
                let cfg = match tier {
                    DecisionTier::FullSweep => {
                        self.engine
                            .best_pair(
                                req.app.profile(),
                                req.input_mb,
                                partner.profile(),
                                partner_mb,
                            )?
                            .config
                    }
                    DecisionTier::Windowed => {
                        self.engine
                            .best_pair_with_partition(
                                req.app.profile(),
                                req.input_mb,
                                partner.profile(),
                                partner_mb,
                                (half_a, half_b),
                            )?
                            .config
                    }
                    DecisionTier::ClassDefault => PairConfig {
                        a: class_default_config(req.app.class(), half_a),
                        b: class_default_config(partner.class(), half_b),
                    },
                };
                Ok(DecidedConfig::Pair(cfg))
            }
            None => {
                let cfg = match tier {
                    DecisionTier::FullSweep => {
                        self.engine
                            .best_solo(req.app.profile(), req.input_mb)?
                            .config
                    }
                    DecisionTier::Windowed => {
                        // Mapper count pinned to the whole node; only
                        // frequency × block size explored.
                        let idle = self.engine.idle_w();
                        let mut best: Option<(f64, TuningConfig)> = None;
                        for cfg in TuningConfig::space_fixed_mappers(cores) {
                            let m =
                                self.engine
                                    .solo_metrics(req.app.profile(), req.input_mb, cfg)?;
                            let edp = m.edp_wall(idle);
                            if best.as_ref().is_none_or(|(b, _)| edp < *b) {
                                best = Some((edp, cfg));
                            }
                        }
                        match best {
                            Some((_, cfg)) => cfg,
                            None => class_default_config(req.app.class(), cores),
                        }
                    }
                    DecisionTier::ClassDefault => class_default_config(req.app.class(), cores),
                };
                Ok(DecidedConfig::Solo(cfg))
            }
        }
    }

    /// The zero-engine fallback answer for a request.
    fn fallback_config(&self, req: &TuningRequest) -> DecidedConfig {
        let cores = self.engine.testbed().node.cores;
        match req.partner {
            Some((partner, _)) => {
                let half_b = (cores / 2).max(1);
                let half_a = cores.saturating_sub(half_b).max(1);
                DecidedConfig::Pair(PairConfig {
                    a: class_default_config(req.app.class(), half_a),
                    b: class_default_config(partner.class(), half_b),
                })
            }
            None => DecidedConfig::Solo(class_default_config(req.app.class(), cores)),
        }
    }

    fn acquire_slot(&self) -> Option<SlotGuard<'_, 'e>> {
        let limit = self.max_inflight?;
        let mut slots = relock(&self.slots);
        while slots.inflight >= limit {
            slots = self.slots_cv.wait(slots).unwrap_or_else(|p| p.into_inner());
        }
        slots.inflight += 1;
        slots.peak = slots.peak.max(slots.inflight);
        drop(slots);
        Some(SlotGuard { svc: self })
    }

    /// Snapshot of the deterministic outcome counters.
    pub fn report(&self) -> ServiceReport {
        let mut r = relock(&self.gate).core.report().clone();
        r.engine_fallbacks = self.engine_fallbacks.load(Ordering::Relaxed);
        r
    }

    /// Breaker position at the service's current simulated high-water
    /// instant.
    pub fn breaker_state(&self) -> BreakerState {
        relock(&self.gate).core.breaker_state()
    }

    /// Simulated decision-latency quantile (bucketed upper bound), or
    /// `None` before any decision.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        self.latency.quantile(q)
    }

    /// Mean simulated decision latency, seconds (0 before any decision).
    pub fn latency_mean(&self) -> f64 {
        self.latency.mean()
    }

    /// Highest number of real engine evaluations ever in flight at
    /// once (0 when no in-flight limit is configured).
    pub fn inflight_peak(&self) -> usize {
        relock(&self.slots).peak
    }
}

/// RAII release of a real compute slot.
struct SlotGuard<'s, 'e> {
    svc: &'s TuningService<'e>,
}

impl Drop for SlotGuard<'_, '_> {
    fn drop(&mut self) {
        let mut slots = relock(&self.svc.slots);
        slots.inflight = slots.inflight.saturating_sub(1);
        drop(slots);
        self.svc.slots_cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(cfg: ServiceConfig) -> ServiceCore {
        match ServiceCore::new(cfg, ServiceFaultSpec::healthy(7)) {
            Ok(c) => c,
            Err(e) => panic!("core construction failed: {e}"),
        }
    }

    #[test]
    fn unlimited_core_always_grants_a_free_full_sweep() {
        let mut c = core(ServiceConfig::unlimited());
        for seq in 0..10 {
            let g = match c.admit(seq, seq as f64, f64::INFINITY, None) {
                Ok(g) => g,
                Err(e) => panic!("unlimited admit failed: {e}"),
            };
            assert_eq!(g.tier, DecisionTier::FullSweep);
            assert_eq!(g.queued_s, 0.0);
            assert_eq!(g.service_s, 0.0);
            assert_eq!(g.retries, 0);
        }
        assert_eq!(c.report().decided, 10);
        assert_eq!(c.report().tier_full, 10);
        assert_eq!(c.report().decision_time_s, 0.0);
    }

    #[test]
    fn busy_workers_and_full_queue_shed() {
        let mut c = core(ServiceConfig {
            max_inflight: Some(1),
            max_queue: Some(1),
            ..ServiceConfig::default()
        });
        // Worker busy for costs.full_s = 5 s after the first request.
        assert!(c.admit(0, 0.0, f64::INFINITY, None).is_ok());
        // Second request queues (depth 1)...
        let g = match c.admit(1, 1.0, f64::INFINITY, None) {
            Ok(g) => g,
            Err(e) => panic!("queued admit failed: {e}"),
        };
        assert!(g.queued_s > 0.0);
        // ...third finds the queue full and is shed.
        match c.admit(2, 1.0, f64::INFINITY, None) {
            Err(ServiceError::Overloaded { queued, limit }) => {
                assert_eq!(queued, 1);
                assert_eq!(limit, 1);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(c.report().shed, 1);
        assert_eq!(c.report().queue_peak, 1);
    }

    #[test]
    fn budget_selects_the_affordable_tier() {
        let mut c = core(ServiceConfig {
            max_inflight: None,
            max_queue: None,
            ..ServiceConfig::default()
        });
        // Defaults: full 5 s, windowed 0.5 s, fallback 0.01 s.
        let g = match c.admit(0, 0.0, 6.0, None) {
            Ok(g) => g,
            Err(e) => panic!("admit failed: {e}"),
        };
        assert_eq!(g.tier, DecisionTier::FullSweep);
        let g = match c.admit(1, 0.0, 1.0, None) {
            Ok(g) => g,
            Err(e) => panic!("admit failed: {e}"),
        };
        assert_eq!(g.tier, DecisionTier::Windowed);
        let g = match c.admit(2, 0.0, 0.1, None) {
            Ok(g) => g,
            Err(e) => panic!("admit failed: {e}"),
        };
        assert_eq!(g.tier, DecisionTier::ClassDefault);
        match c.admit(3, 0.0, 0.001, None) {
            Err(ServiceError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let r = c.report();
        assert_eq!(
            (
                r.tier_full,
                r.tier_windowed,
                r.tier_fallback,
                r.deadline_exceeded
            ),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn transient_bursts_are_retried_then_degrade() {
        let cfg = ServiceConfig {
            max_inflight: None,
            max_queue: None,
            retry: RetryPolicy {
                max_retries: 2,
                backoff_s: 0.1,
                backoff_multiplier: 2.0,
            },
            retry_jitter_frac: 0.0,
            ..ServiceConfig::default()
        };
        let mut c = core(cfg);
        // Burst of 2 ≤ 2 retries: cured on the full tier.
        let g = match c.admit(
            0,
            0.0,
            f64::INFINITY,
            Some(RequestFaults {
                transient_failures: 2,
                slow_factor: 1.0,
            }),
        ) {
            Ok(g) => g,
            Err(e) => panic!("admit failed: {e}"),
        };
        assert_eq!(g.tier, DecisionTier::FullSweep);
        assert_eq!(g.retries, 2);
        // Burst of 3 > 2 retries: full and windowed both fail, falls
        // back to class defaults.
        let g = match c.admit(
            1,
            0.0,
            f64::INFINITY,
            Some(RequestFaults {
                transient_failures: 3,
                slow_factor: 1.0,
            }),
        ) {
            Ok(g) => g,
            Err(e) => panic!("admit failed: {e}"),
        };
        assert_eq!(g.tier, DecisionTier::ClassDefault);
        let r = c.report();
        assert_eq!(r.retries, 2 + 4);
        assert_eq!(r.tier_failures, 2);
    }

    #[test]
    fn admission_is_deterministic_in_sequence_order() {
        let run = || {
            let mut c = match ServiceCore::new(
                ServiceConfig::default(),
                ServiceFaultSpec {
                    transient_rate: 0.3,
                    transient_burst: 4,
                    slow_rate: 0.2,
                    slow_factor: 3.0,
                    seed: 42,
                },
            ) {
                Ok(c) => c,
                Err(e) => panic!("core construction failed: {e}"),
            };
            let mut log = Vec::new();
            for seq in 0..200u64 {
                let out = c.admit(seq, seq as f64 * 0.7, 20.0, None);
                log.push(format!("{out:?}"));
            }
            (log, c.report().clone())
        };
        let (log_a, rep_a) = run();
        let (log_b, rep_b) = run();
        assert_eq!(log_a, log_b);
        assert_eq!(rep_a, rep_b);
        assert!(rep_a.decided > 0);
    }
}
