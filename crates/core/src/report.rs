//! Plain-text table rendering and results-file helpers for the experiment
//! binaries.

use crate::engine::EngineStats;
use ecost_telemetry::Recorder;
use std::fmt::Write as _;
use std::path::Path;

/// A fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "column mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of displayable items.
    pub fn row_disp(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Table {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = width[i]);
            }
            let _ = writeln!(out);
        };
        line(&self.header, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * cols;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Render as CSV (title omitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Print a table to stdout and save both text and CSV renderings under
/// `results/<name>.{txt,csv}` (directory created if needed).
pub fn emit(table: &Table, results_dir: impl AsRef<Path>, name: &str) -> std::io::Result<()> {
    let rendered = table.render();
    print!("{rendered}");
    let dir = results_dir.as_ref();
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{name}.txt")), &rendered)?;
    std::fs::write(dir.join(format!("{name}.csv")), table.to_csv())?;
    Ok(())
}

/// Render an [`EngineStats`] snapshot as a table: how much simulation ran
/// vs was served from the memo, and what the fault machinery did (fault
/// events applied, transient retries, graceful fallbacks).
pub fn engine_stats_table(title: &str, stats: &EngineStats) -> Table {
    let mut t = Table::new(title, &["metric", "value"]);
    t.row(&["runs simulated".into(), stats.runs_simulated.to_string()]);
    t.row(&["cache hits".into(), stats.hits.to_string()]);
    t.row(&["cache misses".into(), stats.misses.to_string()]);
    t.row(&["cache hit rate %".into(), f(100.0 * stats.hit_rate(), 1)]);
    t.row(&["simulation wall s".into(), f(stats.wall_seconds, 2)]);
    t.row(&["faults injected".into(), stats.faults_injected.to_string()]);
    t.row(&["transient retries".into(), stats.retries.to_string()]);
    t.row(&["graceful fallbacks".into(), stats.fallbacks.to_string()]);
    t.row(&["simulators created".into(), stats.sims_created.to_string()]);
    t.row(&["simulators reused".into(), stats.sims_reused.to_string()]);
    t
}

/// [`engine_stats_table`] extended with wait-queue depth statistics from
/// the telemetry registry (the `scheduler.queue_depth` gauge, sampled at
/// every scheduler decision point). Zero samples means the experiment
/// never drove the streaming scheduler.
pub fn telemetry_stats_table(title: &str, stats: &EngineStats, recorder: &Recorder) -> Table {
    let mut t = engine_stats_table(title, stats);
    let snapshot = recorder.metrics().snapshot();
    let (samples, mean, max) = match snapshot.gauge("scheduler.queue_depth") {
        Some(g) => (g.count, g.mean, g.max),
        None => (0, 0.0, 0),
    };
    t.row(&["queue depth samples".into(), samples.to_string()]);
    t.row(&["queue depth mean".into(), f(mean, 2)]);
    t.row(&["queue depth max".into(), max.to_string()]);
    t
}

/// Format a float with `prec` decimals (table-cell helper).
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Format a ratio as a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "2.50".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("longer"));
        assert_eq!(t.len(), 2);
        // All data lines have equal length (alignment).
        let lines: Vec<&str> = r.lines().skip(1).collect();
        assert_eq!(lines[1].len(), lines[3].len().max(lines[2].len()));
    }

    #[test]
    fn csv_is_parseable() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn row_arity_is_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn emit_writes_files() {
        let dir = std::env::temp_dir().join("ecost_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new("demo", &["a"]);
        t.row(&["1".into()]);
        emit(&t, &dir, "x").unwrap();
        assert!(dir.join("x.txt").exists());
        assert!(dir.join("x.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.0384), "3.84");
    }
}
