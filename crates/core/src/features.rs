//! The "learning period" (§6.4 step 1): profile an application at a fixed
//! reference configuration and collect its feature vector.
//!
//! ECoST never reads an application's ground-truth profile — everything
//! downstream (classification, pairing, tuning) sees only the counter
//! signature gathered here, exactly as the real system only sees Perf/dstat
//! output.

use crate::engine::{EvalEngine, EvalError};
use ecost_apps::{App, AppProfile, InputSize};
use ecost_mapreduce::config::BlockSize;
use ecost_mapreduce::{FeatureVector, FrameworkSpec, TuningConfig};
use ecost_sim::{Frequency, NodeSpec};

/// The fixed mid-range configuration used for profiling runs: middle block
/// size, half the cores, second-highest frequency. Using one fixed point
/// keeps signatures comparable across applications.
pub const REFERENCE_CONFIG: TuningConfig = TuningConfig {
    freq: Frequency::F2_0,
    block: BlockSize::B256,
    mappers: 4,
};

/// The hardware + framework pair every experiment runs against.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Node hardware.
    pub node: NodeSpec,
    /// Framework constants.
    pub fw: FrameworkSpec,
}

impl Testbed {
    /// The paper's testbed: Atom C2758 node, stock framework model.
    pub fn atom() -> Testbed {
        Testbed {
            node: NodeSpec::atom_c2758(),
            fw: FrameworkSpec::default(),
        }
    }

    /// Idle wall power of one node, watts (the wall-EDP constant).
    pub fn idle_w(&self) -> f64 {
        self.node.idle_power_w
    }
}

/// A profiled application: its measured signature plus what ECoST knows
/// about the job (the profile is carried along to *run* the job later, but
/// the controller's decisions only use `features`).
#[derive(Debug, Clone)]
pub struct AppSignature {
    /// Measured 14-feature vector.
    pub features: FeatureVector,
    /// The application's demand profile (opaque payload as far as the
    /// controller is concerned).
    pub profile: AppProfile,
    /// Input the job will process on its node, MB.
    pub input_mb: f64,
    /// Execution time of the learning-period run, seconds. A direct
    /// observation the scheduler gets for free, and the strongest magnitude
    /// anchor the prediction models have.
    pub profile_time_s: f64,
}

impl AppSignature {
    /// The paper's 7 selected features (classifier input).
    pub fn selected(&self) -> [f64; 7] {
        self.features.selected()
    }

    /// The retrieval/model key: the 7 selected features extended with the
    /// two magnitude observations, `ln(profile time)` and `ln(input MB)`.
    /// Raw counters fingerprint *behaviour*; these two anchor *scale*, which
    /// is what lets models trained on the known applications extrapolate to
    /// unknown ones of different sizes.
    pub fn key(&self) -> [f64; 9] {
        let s = self.features.selected();
        [
            s[0],
            s[1],
            s[2],
            s[3],
            s[4],
            s[5],
            s[6],
            self.profile_time_s.max(1e-3).ln(),
            self.input_mb.max(1.0).ln(),
        ]
    }
}

/// Run the learning period for an arbitrary profile: simulate it standalone
/// at [`REFERENCE_CONFIG`] (memoized by the engine — re-profiling a known
/// app costs nothing) and measure its counters with `noise` relative jitter
/// under `seed`.
pub fn profile_app(
    engine: &EvalEngine,
    profile: &AppProfile,
    input_mb: f64,
    noise: f64,
    seed: u64,
) -> Result<AppSignature, EvalError> {
    let out = engine.solo_outcome(profile, input_mb, REFERENCE_CONFIG)?;
    let mut rng = ecost_sim::rng::stream(seed, profile.name);
    let features = FeatureVector::measure(&out, noise, &mut rng);
    Ok(AppSignature {
        features,
        profile: profile.clone(),
        input_mb,
        profile_time_s: out.metrics.exec_time_s,
    })
}

/// Convenience: profile a catalog application at a standard size.
pub fn profile_catalog_app(
    engine: &EvalEngine,
    app: App,
    size: InputSize,
    noise: f64,
    seed: u64,
) -> Result<AppSignature, EvalError> {
    profile_app(engine, app.profile(), size.per_node_mb(), noise, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecost_mapreduce::Feature;

    #[test]
    fn profiling_is_deterministic_per_seed() {
        let eng = EvalEngine::atom();
        let a = profile_catalog_app(&eng, App::Gp, InputSize::Small, 0.03, 1).unwrap();
        let b = profile_catalog_app(&eng, App::Gp, InputSize::Small, 0.03, 1).unwrap();
        assert_eq!(a.features, b.features);
        let c = profile_catalog_app(&eng, App::Gp, InputSize::Small, 0.03, 2).unwrap();
        assert_ne!(a.features, c.features);
        // Three profiling calls, one simulated run: the engine memoizes the
        // reference-config outcome and only the counter jitter is re-drawn.
        assert_eq!(eng.stats().runs_simulated, 1);
    }

    #[test]
    fn signatures_separate_classes() {
        let eng = EvalEngine::atom();
        let wc = profile_catalog_app(&eng, App::Wc, InputSize::Medium, 0.0, 0).unwrap();
        let st = profile_catalog_app(&eng, App::St, InputSize::Medium, 0.0, 0).unwrap();
        let fp = profile_catalog_app(&eng, App::Fp, InputSize::Medium, 0.0, 0).unwrap();
        assert!(wc.features.get(Feature::CpuUser) > 2.0 * st.features.get(Feature::CpuUser));
        assert!(st.features.get(Feature::CpuIowait) > 2.0 * wc.features.get(Feature::CpuIowait));
        assert!(fp.features.get(Feature::LlcMpki) > 3.0 * wc.features.get(Feature::LlcMpki));
    }

    #[test]
    fn selected_has_seven_features() {
        let eng = EvalEngine::atom();
        let sig = profile_catalog_app(&eng, App::Ts, InputSize::Small, 0.0, 0).unwrap();
        assert_eq!(sig.selected().len(), 7);
        assert!(sig.selected().iter().all(|v| v.is_finite()));
    }
}
