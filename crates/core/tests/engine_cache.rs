//! Integration tests for the evaluation engine's memo: the exactly-once
//! guarantee across its consumers, determinism under Rayon thread counts,
//! and equivalence with the raw executor.

use ecost_apps::{App, InputSize};
use ecost_core::database::ConfigDatabase;
use ecost_core::engine::EvalEngine;
use ecost_core::stp::training::build_training_data_subset;
use ecost_core::strategies;
use ecost_mapreduce::executor::{run_colocated, run_standalone};
use ecost_mapreduce::{JobSpec, PairConfig, TuningConfig};
use proptest::prelude::*;

/// The acceptance criterion of the engine refactor: the database build, the
/// COLAO baseline and the MLM training-set construction all read the same
/// pair sweeps, so for a shared set of pairs the simulations are paid for
/// exactly once — by whoever asks first.
#[test]
fn database_colao_and_training_simulate_each_pair_once() {
    let eng = EvalEngine::atom();
    let apps = [App::Wc, App::St];
    let sizes = [InputSize::Small];

    let db = ConfigDatabase::build_subset(&eng, &apps, &sizes, 0.0, 7).expect("db build");
    assert_eq!(db.pairs.len(), 3, "wc-wc, wc-st, st-st");
    let after_build = eng.stats();
    assert!(after_build.runs_simulated > 0);

    // COLAO over every pair the database covers: all cache hits.
    let mb = sizes[0].per_node_mb();
    for (a, b) in [(App::Wc, App::Wc), (App::Wc, App::St), (App::St, App::St)] {
        strategies::colao(&eng, a.profile(), mb, b.profile(), mb).expect("colao");
    }
    // The training set samples the same sweeps (signatures come from the
    // database, not from new profiling runs).
    let sig_of = |app: App, size: InputSize| {
        db.solos
            .iter()
            .find(|s| s.app == app && s.size == size)
            .expect("solo entry")
            .sig
    };
    build_training_data_subset(&eng, &apps, &sizes, &sig_of, 50, 7).expect("training build");

    let end = eng.stats();
    assert_eq!(
        end.runs_simulated, after_build.runs_simulated,
        "COLAO + training-set construction must not re-simulate pairs the \
         database build already swept"
    );
    assert!(
        end.hits > after_build.hits,
        "the re-reads must register as cache hits"
    );
}

/// Results must not depend on how many Rayon workers split the sweep: the
/// shim hands out contiguous index-ordered chunks, and the collected order
/// is the config-space order either way.
#[test]
fn sweeps_are_bit_identical_across_thread_counts() {
    let mb = InputSize::Small.per_node_mb();

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial_eng = EvalEngine::atom();
    let serial_solo = serial_eng
        .sweep_solo(App::Gp.profile(), mb)
        .expect("solo sweep");
    let serial_pair = serial_eng
        .pair_sweep(App::Gp.profile(), mb, App::St.profile(), mb)
        .expect("pair sweep");
    std::env::remove_var("RAYON_NUM_THREADS");

    let par_eng = EvalEngine::atom();
    let par_solo = par_eng
        .sweep_solo(App::Gp.profile(), mb)
        .expect("solo sweep");
    let par_pair = par_eng
        .pair_sweep(App::Gp.profile(), mb, App::St.profile(), mb)
        .expect("pair sweep");

    assert_eq!(serial_solo.len(), par_solo.len());
    for (s, p) in serial_solo.iter().zip(par_solo.iter()) {
        assert_eq!(s.config, p.config);
        assert_eq!(
            s.metrics.exec_time_s.to_bits(),
            p.metrics.exec_time_s.to_bits()
        );
        assert_eq!(s.metrics.energy_j.to_bits(), p.metrics.energy_j.to_bits());
    }
    assert_eq!(serial_pair.swapped(), par_pair.swapped());
    assert_eq!(serial_pair.len(), par_pair.len());
    for (s, p) in serial_pair.runs().iter().zip(par_pair.runs().iter()) {
        assert_eq!(s.config, p.config);
        assert_eq!(
            s.metrics.makespan_s.to_bits(),
            p.metrics.makespan_s.to_bits()
        );
        assert_eq!(s.metrics.energy_j.to_bits(), p.metrics.energy_j.to_bits());
    }
}

/// Re-evaluating the same point is a hit, not a new simulation.
#[test]
fn repeat_evaluations_increment_the_hit_counter() {
    let eng = EvalEngine::atom();
    let mb = InputSize::Small.per_node_mb();
    let cfg = TuningConfig::hadoop_default(8);
    // Two jobs must share the 8-core node: 4 + 4.
    let half = TuningConfig { mappers: 4, ..cfg };
    let pc = PairConfig { a: half, b: half };

    let first = eng
        .solo_metrics(App::Wc.profile(), mb, cfg)
        .expect("solo sim");
    let s0 = eng.stats();
    let again = eng
        .solo_metrics(App::Wc.profile(), mb, cfg)
        .expect("solo sim");
    let s1 = eng.stats();
    assert_eq!(first, again);
    assert_eq!(s1.hits, s0.hits + 1);
    assert_eq!(s1.runs_simulated, s0.runs_simulated);

    eng.pair_metrics(App::Wc.profile(), mb, App::St.profile(), mb, pc)
        .expect("pair sim");
    let s2 = eng.stats();
    eng.pair_metrics(App::Wc.profile(), mb, App::St.profile(), mb, pc)
        .expect("pair sim");
    let s3 = eng.stats();
    assert_eq!(s3.hits, s2.hits + 1);
    assert_eq!(s3.runs_simulated, s2.runs_simulated);
}

const APPS: [App; 4] = [App::Wc, App::St, App::Gp, App::Fp];

fn cfg_from(f: usize, h: usize, m: u32) -> TuningConfig {
    TuningConfig {
        freq: ecost_sim::Frequency::ALL[f % ecost_sim::Frequency::ALL.len()],
        block: ecost_mapreduce::BlockSize::ALL[h % ecost_mapreduce::BlockSize::ALL.len()],
        mappers: m,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The engine is a memo, not a model: for any configuration its answer
    /// must be exactly what the executor computes directly.
    #[test]
    fn engine_matches_direct_executor(
        (ai, f, h) in (0usize..4, 0usize..8, 0usize..8),
        m in 1u32..=8,
        (bi, f2, h2, m2) in (0usize..4, 0usize..8, 0usize..8, 1u32..=4),
    ) {
        let eng = EvalEngine::atom();
        let tb = eng.testbed();
        let mb = InputSize::Small.per_node_mb();
        let a = APPS[ai].profile();
        let b = APPS[bi].profile();
        let cfg_a = cfg_from(f, h, m);
        // The co-located pair shares the 8-core node; cap the partition.
        let cfg_pair_a = cfg_from(f, h, m.min(4));
        let cfg_b = cfg_from(f2, h2, m2);

        let via_engine = eng.solo_metrics(a, mb, cfg_a).expect("engine solo");
        let direct = run_standalone(
            &tb.node,
            &tb.fw,
            JobSpec::from_profile(a.clone(), mb, cfg_a),
        )
        .expect("direct solo")
        .metrics;
        prop_assert_eq!(via_engine.exec_time_s.to_bits(), direct.exec_time_s.to_bits());
        prop_assert_eq!(via_engine.energy_j.to_bits(), direct.energy_j.to_bits());

        let pc = PairConfig { a: cfg_pair_a, b: cfg_b };
        let pair_engine = eng.pair_metrics(a, mb, b, mb, pc).expect("engine pair");
        let (outs, makespan) = run_colocated(
            &tb.node,
            &tb.fw,
            vec![
                JobSpec::from_profile(a.clone(), mb, cfg_pair_a),
                JobSpec::from_profile(b.clone(), mb, cfg_b),
            ],
        )
        .expect("direct pair");
        let direct_energy: f64 = outs.iter().map(|o| o.metrics.energy_j).sum();
        prop_assert_eq!(pair_engine.makespan_s.to_bits(), makespan.to_bits());
        prop_assert_eq!(pair_engine.energy_j.to_bits(), direct_energy.to_bits());
    }
}
