//! Acceptance tests for the telemetry subsystem: a recording [`Recorder`]
//! must not perturb a single bit of any schedule's results, and a recorded
//! chaos trace must agree with `EngineStats` event-for-event.

use ecost_apps::{App, InputSize, Workload};
use ecost_core::classify::RuleClassifier;
use ecost_core::database::ConfigDatabase;
use ecost_core::engine::{EvalEngine, RetryPolicy};
use ecost_core::features::Testbed;
use ecost_core::mapping::{run_ecost_faulted, run_ecost_open, FaultSetup};
use ecost_core::pairing::PairingPolicy;
use ecost_core::stp::LktStp;
use ecost_core::EcostContext;
use ecost_sim::{FaultKind, FaultPlan};
use ecost_telemetry::{Recorder, TraceEvent};

const SEED: u64 = 7;

fn small_workload() -> Workload {
    Workload {
        name: "telemetry-mix".into(),
        jobs: vec![
            (App::Wc, InputSize::Small),
            (App::St, InputSize::Small),
            (App::Wc, InputSize::Small),
            (App::St, InputSize::Small),
        ],
    }
}

fn fixture(eng: &EvalEngine) -> (ConfigDatabase, RuleClassifier, LktStp, PairingPolicy) {
    let db = ConfigDatabase::build_subset(eng, &[App::Wc, App::St], &[InputSize::Small], 0.0, SEED)
        .expect("db build");
    let classifier = RuleClassifier::fit(&db.signatures);
    let lkt = LktStp::from_database(&db);
    (db, classifier, lkt, PairingPolicy::default())
}

fn ctx<'a>(
    db: &'a ConfigDatabase,
    classifier: &'a RuleClassifier,
    lkt: &'a LktStp,
    pairing: &'a PairingPolicy,
) -> EcostContext<'a> {
    EcostContext {
        db,
        stp: lkt,
        classifier,
        pairing,
        noise: 0.0,
        seed: SEED,
        pairing_mode: ecost_core::pairing::PairingMode::DecisionTree,
    }
}

/// The tentpole guarantee: turning recording on changes nothing about the
/// simulation — healthy and faulted schedules are bit-identical between a
/// no-op and a recording engine.
#[test]
fn recording_is_bit_identical_to_noop() {
    let noop = EvalEngine::atom();
    let (db, cl, lkt, pp) = fixture(&noop);
    let cx = ctx(&db, &cl, &lkt, &pp);
    let w = small_workload();
    let arrivals = [0.0, 0.0, 120.0, 240.0];

    let recording = EvalEngine::with_recorder(Testbed::atom(), Recorder::recording());

    // Healthy open-queue schedule.
    let a = run_ecost_open(&noop, 2, &w, &arrivals, 2, &cx).expect("noop run");
    let b = run_ecost_open(&recording, 2, &w, &arrivals, 2, &cx).expect("recording run");
    assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
    assert_eq!(a.energy_dyn_j.to_bits(), b.energy_dyn_j.to_bits());

    // Chaos schedule under the same fault plan.
    let setup = FaultSetup {
        plan: FaultPlan::none()
            .with_event(10.0, 1, FaultKind::NodeCrash)
            .with_event(5.0, 0, FaultKind::Straggler { multiplier: 4.0 }),
        retry: RetryPolicy::default(),
    };
    let fa = run_ecost_faulted(&noop, 2, &w, Some(&arrivals), 2, &cx, &setup).expect("noop chaos");
    let fb = run_ecost_faulted(&recording, 2, &w, Some(&arrivals), 2, &cx, &setup)
        .expect("recording chaos");
    assert_eq!(fa.run.makespan_s.to_bits(), fb.run.makespan_s.to_bits());
    assert_eq!(fa.run.energy_dyn_j.to_bits(), fb.run.energy_dyn_j.to_bits());
    assert_eq!(fa.report, fb.report);

    // And the recording engine actually recorded something.
    assert!(!recording.recorder().events().is_empty());
}

/// The chaos-trace acceptance criterion: fault-fired / retry / fallback
/// instants in the trace match the engine's counters exactly.
#[test]
fn chaos_trace_event_counts_match_engine_stats() {
    let noop = EvalEngine::atom();
    let (db, cl, lkt, pp) = fixture(&noop);
    let cx = ctx(&db, &cl, &lkt, &pp);
    let w = small_workload();

    let recording = EvalEngine::with_recorder(Testbed::atom(), Recorder::recording());
    let setup = FaultSetup {
        plan: FaultPlan::none()
            .with_event(5.0, 0, FaultKind::Straggler { multiplier: 4.0 })
            .with_event(10.0, 1, FaultKind::NodeCrash)
            .with_event(15.0, 0, FaultKind::NodeSlowdown { factor: 2.0 }),
        retry: RetryPolicy::default(),
    };
    let out =
        run_ecost_faulted(&recording, 2, &w, None, 2, &cx, &setup).expect("recorded chaos run");
    assert_eq!(out.report.crashes, 1);

    let events = recording.recorder().events();
    let count = |name: &str| {
        events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Instant { event, .. } if event.name() == name))
            .count() as u64
    };
    let s = recording.stats();
    assert_eq!(count("fault-fired"), s.faults_injected);
    assert_eq!(count("retry"), s.retries);
    assert_eq!(count("fallback"), s.fallbacks);
    assert_eq!(count("fault-planned"), setup.plan.len() as u64);
    // The scheduler narrates the workload: every job is submitted, placed
    // at least once, and finishes.
    assert_eq!(count("job-submit"), w.jobs.len() as u64);
    assert!(count("job-place") >= w.jobs.len() as u64);
    assert_eq!(count("job-finish"), w.jobs.len() as u64);
    // Requeued work surfaces as requeue instants.
    assert_eq!(count("requeue"), out.report.requeued_jobs);
    // Stage spans exist for every job phase, on the simulated clock.
    let spans = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Span { .. }))
        .count();
    assert!(spans > 0, "executor must emit stage/job spans");
}
