//! Edge cases of the open-queue scheduler entry point
//! (`run_ecost_open`): degenerate inputs, simultaneous arrivals,
//! single-class workloads and a disabled head-skip allowance.

use ecost_apps::{App, InputSize, Workload};
use ecost_core::classify::RuleClassifier;
use ecost_core::database::ConfigDatabase;
use ecost_core::engine::{EvalEngine, EvalError};
use ecost_core::mapping::{run_ecost_open, run_policy, ConfiguredPolicy, MappingPolicy};
use ecost_core::pairing::PairingPolicy;
use ecost_core::stp::LktStp;
use ecost_core::EcostContext;

const SEED: u64 = 7;

struct Fixture {
    db: ConfigDatabase,
    classifier: RuleClassifier,
    lkt: LktStp,
    pairing: PairingPolicy,
}

impl Fixture {
    fn build(eng: &EvalEngine, apps: &[App]) -> Fixture {
        let db = ConfigDatabase::build_subset(eng, apps, &[InputSize::Small], 0.0, SEED)
            .expect("db build");
        let classifier = RuleClassifier::fit(&db.signatures);
        let lkt = LktStp::from_database(&db);
        Fixture {
            db,
            classifier,
            lkt,
            pairing: PairingPolicy::default(),
        }
    }

    fn ctx(&self) -> EcostContext<'_> {
        EcostContext {
            db: &self.db,
            stp: &self.lkt,
            classifier: &self.classifier,
            pairing: &self.pairing,
            noise: 0.0,
            seed: SEED,
            pairing_mode: ecost_core::pairing::PairingMode::DecisionTree,
        }
    }
}

fn mixed_workload() -> Workload {
    Workload {
        name: "open-mix".into(),
        jobs: vec![
            (App::Wc, InputSize::Small),
            (App::St, InputSize::Small),
            (App::Wc, InputSize::Small),
            (App::St, InputSize::Small),
        ],
    }
}

#[test]
fn empty_workload_and_zero_nodes_are_typed_errors() {
    let eng = EvalEngine::atom();
    let fx = Fixture::build(&eng, &[App::Wc, App::St]);
    let cx = fx.ctx();
    let empty = Workload {
        name: "empty".into(),
        jobs: Vec::new(),
    };
    assert!(matches!(
        run_ecost_open(&eng, 2, &empty, &[], 2, &cx),
        Err(EvalError::InvalidInput { .. })
    ));
    let w = mixed_workload();
    assert!(matches!(
        run_ecost_open(&eng, 0, &w, &[0.0; 4], 2, &cx),
        Err(EvalError::InvalidInput { .. })
    ));
    // One arrival time per job, or the call is rejected up front.
    assert!(matches!(
        run_ecost_open(&eng, 2, &w, &[0.0, 1.0], 2, &cx),
        Err(EvalError::InvalidInput { .. })
    ));
}

/// Everything arriving at t = 0 through the open-queue door must match the
/// closed-queue scheduler bit for bit — same queue, same decisions.
#[test]
fn simultaneous_arrivals_match_the_closed_queue() {
    let eng = EvalEngine::atom();
    let fx = Fixture::build(&eng, &[App::Wc, App::St]);
    let cx = fx.ctx();
    let w = mixed_workload();

    let open = run_ecost_open(&eng, 2, &w, &[0.0; 4], 2, &cx).expect("open run");
    let closed = {
        let p = ConfiguredPolicy::new(MappingPolicy::Ecost, Some(&cx)).expect("tuned policy");
        run_policy(&eng, 2, &w, &p).expect("closed run")
    };
    assert_eq!(open.makespan_s.to_bits(), closed.makespan_s.to_bits());
    assert_eq!(open.energy_dyn_j.to_bits(), closed.energy_dyn_j.to_bits());
}

/// A workload of nothing but memory-bound jobs still schedules: the
/// decision tree has no complementary class to reach for, so M pairs with
/// M rather than stranding the queue.
#[test]
fn all_memory_bound_workload_completes() {
    let eng = EvalEngine::atom();
    let fx = Fixture::build(&eng, &[App::Fp]);
    let cx = fx.ctx();
    let w = Workload {
        name: "all-m".into(),
        jobs: vec![(App::Fp, InputSize::Small); 4],
    };
    let run = run_ecost_open(&eng, 2, &w, &[0.0; 4], 2, &cx).expect("all-M run");
    assert!(run.makespan_s > 0.0 && run.energy_dyn_j > 0.0);
}

/// `max_head_skips = 0` disables leap-forward entirely: strict FIFO, and
/// the schedule still drains.
#[test]
fn zero_head_skips_is_strict_fifo_and_still_drains() {
    let eng = EvalEngine::atom();
    let fx = Fixture::build(&eng, &[App::Wc, App::St]);
    let cx = fx.ctx();
    let w = mixed_workload();
    let strict = run_ecost_open(&eng, 1, &w, &[0.0; 4], 0, &cx).expect("strict FIFO run");
    assert!(strict.makespan_s > 0.0);
    // Staggered arrivals behind a strict head must also drain.
    let staggered =
        run_ecost_open(&eng, 1, &w, &[0.0, 50.0, 100.0, 150.0], 0, &cx).expect("staggered run");
    assert!(staggered.makespan_s >= strict.makespan_s * 0.5);
}
