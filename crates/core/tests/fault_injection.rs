//! Integration tests for the fault-injection subsystem: the no-fault
//! regression guarantee, crash-driven requeueing, predictor degradation
//! and the all-nodes-lost failure mode.

use ecost_apps::{App, InputSize, Workload};
use ecost_core::classify::RuleClassifier;
use ecost_core::database::ConfigDatabase;
use ecost_core::engine::{EvalEngine, EvalError, RetryPolicy};
use ecost_core::mapping::{run_ecost_faulted, run_ecost_open, run_untuned_faulted, FaultSetup};
use ecost_core::pairing::PairingPolicy;
use ecost_core::stp::LktStp;
use ecost_core::{EcostContext, FaultReport};
use ecost_sim::{FaultKind, FaultPlan};

const SEED: u64 = 7;

fn small_workload() -> Workload {
    Workload {
        name: "chaos-mix".into(),
        jobs: vec![
            (App::Wc, InputSize::Small),
            (App::St, InputSize::Small),
            (App::Wc, InputSize::Small),
            (App::St, InputSize::Small),
        ],
    }
}

/// Build a minimal trained context over the two apps the tests use, plus
/// the pieces it borrows (caller keeps them alive).
fn fixture(eng: &EvalEngine) -> (ConfigDatabase, RuleClassifier, LktStp, PairingPolicy) {
    let db = ConfigDatabase::build_subset(eng, &[App::Wc, App::St], &[InputSize::Small], 0.0, SEED)
        .expect("db build");
    let classifier = RuleClassifier::fit(&db.signatures);
    let lkt = LktStp::from_database(&db);
    (db, classifier, lkt, PairingPolicy::default())
}

fn ctx<'a>(
    db: &'a ConfigDatabase,
    classifier: &'a RuleClassifier,
    lkt: &'a LktStp,
    pairing: &'a PairingPolicy,
) -> EcostContext<'a> {
    EcostContext {
        db,
        stp: lkt,
        classifier,
        pairing,
        noise: 0.0,
        seed: SEED,
        pairing_mode: ecost_core::pairing::PairingMode::DecisionTree,
    }
}

/// The acceptance criterion of the PR: a fault-free [`FaultSetup`] must be
/// **bit-identical** to the plain scheduler, and its report all-zero.
#[test]
fn fault_free_setup_is_identical_to_the_plain_scheduler() {
    let eng = EvalEngine::atom();
    let (db, cl, lkt, pp) = fixture(&eng);
    let cx = ctx(&db, &cl, &lkt, &pp);
    let w = small_workload();
    let arrivals = [0.0, 0.0, 120.0, 240.0];

    let plain = run_ecost_open(&eng, 2, &w, &arrivals, 2, &cx).expect("plain run");
    let setup = FaultSetup {
        plan: FaultPlan::none(),
        retry: RetryPolicy::none(),
    };
    let faulted =
        run_ecost_faulted(&eng, 2, &w, Some(&arrivals), 2, &cx, &setup).expect("faulted run");

    assert_eq!(
        plain.makespan_s.to_bits(),
        faulted.run.makespan_s.to_bits(),
        "makespan must be bit-identical without faults"
    );
    assert_eq!(
        plain.energy_dyn_j.to_bits(),
        faulted.run.energy_dyn_j.to_bits(),
        "energy must be bit-identical without faults"
    );
    assert_eq!(faulted.report, FaultReport::default());
}

/// A mid-run node crash displaces that node's jobs back into the queue;
/// the surviving node absorbs them and the schedule still completes —
/// slower, never silently dropping work.
#[test]
fn node_crash_requeues_jobs_onto_survivors() {
    let eng = EvalEngine::atom();
    let (db, cl, lkt, pp) = fixture(&eng);
    let cx = ctx(&db, &cl, &lkt, &pp);
    let w = small_workload();

    let healthy =
        run_ecost_faulted(&eng, 2, &w, None, 2, &cx, &FaultSetup::default()).expect("healthy run");
    assert_eq!(healthy.report.crashes, 0);

    let faults_before = eng.stats().faults_injected;
    let setup = FaultSetup {
        plan: FaultPlan::none().with_event(10.0, 1, FaultKind::NodeCrash),
        retry: RetryPolicy::default(),
    };
    let crashed = run_ecost_faulted(&eng, 2, &w, None, 2, &cx, &setup).expect("crashed run");

    assert_eq!(crashed.report.crashes, 1);
    assert!(
        crashed.report.requeued_jobs >= 1,
        "jobs running on the crashed node must be requeued: {}",
        crashed.report
    );
    assert!(
        crashed.run.makespan_s > healthy.run.makespan_s,
        "losing a node mid-run cannot speed the workload up"
    );
    assert!(
        eng.stats().faults_injected > faults_before,
        "applied faults must surface in EngineStats"
    );
}

/// Slowdown and straggler events stretch the schedule without aborting it.
#[test]
fn slowdown_and_straggler_events_degrade_gracefully() {
    let eng = EvalEngine::atom();
    let (db, cl, lkt, pp) = fixture(&eng);
    let cx = ctx(&db, &cl, &lkt, &pp);
    let w = small_workload();

    let healthy =
        run_ecost_faulted(&eng, 2, &w, None, 2, &cx, &FaultSetup::default()).expect("healthy");
    let setup = FaultSetup {
        plan: FaultPlan::none()
            .with_event(5.0, 0, FaultKind::NodeSlowdown { factor: 2.0 })
            .with_event(5.0, 1, FaultKind::Straggler { multiplier: 3.0 }),
        retry: RetryPolicy::default(),
    };
    let degraded = run_ecost_faulted(&eng, 2, &w, None, 2, &cx, &setup).expect("degraded");
    assert_eq!(degraded.report.slowdowns, 1);
    assert_eq!(degraded.report.stragglers, 1);
    assert!(
        degraded.run.makespan_s > healthy.run.makespan_s,
        "a halved node and a straggling wave must lengthen the makespan"
    );
}

/// An empty lookup table is a predictor gap, not a crash: the scheduler
/// completes on class-default configurations and counts the fallbacks.
#[test]
fn empty_lookup_table_degrades_to_class_defaults() {
    let eng = EvalEngine::atom();
    let (db, cl, _lkt, pp) = fixture(&eng);
    let empty_db = ConfigDatabase {
        pairs: Vec::new(),
        solos: Vec::new(),
        signatures: Vec::new(),
        build_seconds: 0.0,
    };
    let empty_lkt = LktStp::from_database(&empty_db);
    let cx = ctx(&db, &cl, &empty_lkt, &pp);
    let w = small_workload();

    let fallbacks_before = eng.stats().fallbacks;
    let run = run_ecost_faulted(&eng, 2, &w, None, 2, &cx, &FaultSetup::default())
        .expect("degraded run completes");
    assert!(
        run.report.config_fallbacks > 0,
        "every pairing must have fallen back to class defaults: {}",
        run.report
    );
    assert!(run.run.makespan_s > 0.0);
    assert!(
        eng.stats().fallbacks > fallbacks_before,
        "fallbacks must surface in EngineStats"
    );
}

/// When every node has crashed and jobs are still queued, the run fails
/// with the typed degradation error instead of hanging or panicking.
#[test]
fn losing_every_node_is_a_typed_degradation() {
    let eng = EvalEngine::atom();
    let (db, cl, lkt, pp) = fixture(&eng);
    let cx = ctx(&db, &cl, &lkt, &pp);
    let w = small_workload();

    let setup = FaultSetup {
        plan: FaultPlan::none().with_event(5.0, 0, FaultKind::NodeCrash),
        retry: RetryPolicy::default(),
    };
    let err = run_ecost_faulted(&eng, 1, &w, None, 2, &cx, &setup)
        .expect_err("one node, one crash, jobs left: must fail");
    assert!(
        matches!(err, EvalError::Degraded { .. }),
        "expected Degraded, got {err}"
    );
}

/// The untuned baseline survives the same crash schedule, so chaos sweeps
/// can compare tuned and untuned degradation curves.
#[test]
fn untuned_baseline_survives_crashes_too() {
    let eng = EvalEngine::atom();
    let w = small_workload();
    let setup = FaultSetup {
        plan: FaultPlan::none().with_event(10.0, 0, FaultKind::NodeCrash),
        retry: RetryPolicy::default(),
    };
    let run = run_untuned_faulted(&eng, 2, &w, None, &setup).expect("untuned chaos run");
    assert_eq!(run.report.crashes, 1);
    assert!(run.run.makespan_s > 0.0);
}
