//! Equivalence and edge tests for the event-calendar open-cluster driver.
//!
//! The calendar driver must make the *same scheduling decisions* as the
//! lockstep driver on the same stream: same placements, same fault
//! handling, same degradations — so makespan and energy agree to float
//! accumulation order (the per-node integration spans differ, so results
//! are equal to a tight relative tolerance rather than bit-identical;
//! the closed-workload goldens stay pinned to the lockstep driver).

use ecost_apps::{App, InputSize, Workload};
use ecost_core::classify::RuleClassifier;
use ecost_core::database::ConfigDatabase;
use ecost_core::engine::{EvalEngine, EvalError};
use ecost_core::mapping::{
    run_ecost_faulted, run_ecost_open_stream, run_untuned_faulted, run_untuned_open_stream,
    FaultSetup, FaultedRun, OpenArrival, OpenOptions,
};
use ecost_core::pairing::PairingPolicy;
use ecost_core::stp::LktStp;
use ecost_core::EcostContext;
use ecost_sim::{FaultKind, FaultPlan};

const SEED: u64 = 7;

struct Fixture {
    db: ConfigDatabase,
    classifier: RuleClassifier,
    lkt: LktStp,
    pairing: PairingPolicy,
}

impl Fixture {
    fn build(eng: &EvalEngine, apps: &[App]) -> Fixture {
        let db = ConfigDatabase::build_subset(eng, apps, &[InputSize::Small], 0.0, SEED)
            .expect("db build");
        let classifier = RuleClassifier::fit(&db.signatures);
        let lkt = LktStp::from_database(&db);
        Fixture {
            db,
            classifier,
            lkt,
            pairing: PairingPolicy::default(),
        }
    }

    fn ctx(&self) -> EcostContext<'_> {
        EcostContext {
            db: &self.db,
            stp: &self.lkt,
            classifier: &self.classifier,
            pairing: &self.pairing,
            noise: 0.0,
            seed: SEED,
            pairing_mode: ecost_core::pairing::PairingMode::DecisionTree,
        }
    }
}

fn mixed_workload() -> Workload {
    Workload {
        name: "open-mix".into(),
        jobs: vec![
            (App::Wc, InputSize::Small),
            (App::St, InputSize::Small),
            (App::Wc, InputSize::Small),
            (App::St, InputSize::Small),
        ],
    }
}

/// The stream twin of a closed workload on an `n`-node cluster: the same
/// per-node input share the lockstep entry points compute internally.
fn stream_of(w: &Workload, n: usize, arrivals: &[f64]) -> Vec<OpenArrival> {
    w.jobs
        .iter()
        .zip(arrivals)
        .map(|((app, size), at)| OpenArrival {
            app: *app,
            input_mb: size.per_node_mb() * n as f64,
            at_s: *at,
        })
        .collect()
}

/// Equal to float accumulation order: the two drivers chop each node's
/// integration into different spans, so demand tight relative agreement,
/// not bit identity.
fn assert_close(label: &str, a: f64, b: f64) {
    let scale = a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= 1e-6 * scale,
        "{label}: lockstep {a} vs calendar {b}"
    );
}

fn assert_equivalent(lockstep: &FaultedRun, calendar: &FaultedRun) {
    assert_close("makespan", lockstep.run.makespan_s, calendar.run.makespan_s);
    assert_close(
        "energy",
        lockstep.run.energy_dyn_j,
        calendar.run.energy_dyn_j,
    );
    // Decisions must be identical, so every counter matches exactly.
    assert_eq!(lockstep.report, calendar.report);
}

#[test]
fn calendar_matches_lockstep_on_simultaneous_arrivals() {
    let eng = EvalEngine::atom();
    let fx = Fixture::build(&eng, &[App::Wc, App::St]);
    let cx = fx.ctx();
    let w = mixed_workload();
    let arrivals = [0.0; 4];
    let setup = FaultSetup::default();

    let lockstep =
        run_ecost_faulted(&eng, 2, &w, Some(&arrivals), 2, &cx, &setup).expect("lockstep");
    let calendar = run_ecost_open_stream(
        &eng,
        2,
        &stream_of(&w, 2, &arrivals),
        OpenOptions::default(),
        &cx,
        &setup,
    )
    .expect("calendar");
    assert_equivalent(&lockstep, &calendar);
}

#[test]
fn calendar_matches_lockstep_on_staggered_and_tied_arrivals() {
    let eng = EvalEngine::atom();
    let fx = Fixture::build(&eng, &[App::Wc, App::St]);
    let cx = fx.ctx();
    let w = mixed_workload();
    let setup = FaultSetup::default();

    for arrivals in [[0.0, 40.0, 80.0, 120.0], [0.0, 0.0, 100.0, 100.0]] {
        let lockstep =
            run_ecost_faulted(&eng, 2, &w, Some(&arrivals), 2, &cx, &setup).expect("lockstep");
        let calendar = run_ecost_open_stream(
            &eng,
            2,
            &stream_of(&w, 2, &arrivals),
            OpenOptions::default(),
            &cx,
            &setup,
        )
        .expect("calendar");
        assert_equivalent(&lockstep, &calendar);
    }
}

#[test]
fn calendar_matches_lockstep_under_faults() {
    let eng = EvalEngine::atom();
    let fx = Fixture::build(&eng, &[App::Wc, App::St]);
    let cx = fx.ctx();
    let w = mixed_workload();
    let arrivals = [0.0, 0.0, 60.0, 90.0];
    // One of everything: a crash displacing in-flight work, a slowdown,
    // a straggler — the tie case included (fault at an arrival instant).
    let setup = FaultSetup {
        plan: FaultPlan::none()
            .with_event(10.0, 1, FaultKind::NodeCrash)
            .with_event(60.0, 0, FaultKind::NodeSlowdown { factor: 1.3 })
            .with_event(90.0, 0, FaultKind::Straggler { multiplier: 2.0 }),
        ..FaultSetup::default()
    };

    let lockstep =
        run_ecost_faulted(&eng, 2, &w, Some(&arrivals), 2, &cx, &setup).expect("lockstep");
    let calendar = run_ecost_open_stream(
        &eng,
        2,
        &stream_of(&w, 2, &arrivals),
        OpenOptions::default(),
        &cx,
        &setup,
    )
    .expect("calendar");
    assert!(calendar.report.crashes == 1);
    assert_equivalent(&lockstep, &calendar);
}

#[test]
fn untuned_calendar_matches_untuned_lockstep() {
    let eng = EvalEngine::atom();
    let w = mixed_workload();
    let arrivals = [0.0, 25.0, 50.0, 75.0];
    let setup = FaultSetup::default();

    let lockstep = run_untuned_faulted(&eng, 2, &w, Some(&arrivals), &setup).expect("lockstep");
    let calendar = run_untuned_open_stream(
        &eng,
        2,
        &stream_of(&w, 2, &arrivals),
        OpenOptions::default(),
        &setup,
    )
    .expect("calendar");
    assert_equivalent(&lockstep, &calendar);
}

/// Single-node cluster: every pair co-locates on the one node and the
/// calendar degenerates to a serial schedule — it must still match the
/// lockstep driver, on both the tuned and untuned paths.
#[test]
fn single_node_cluster_matches_lockstep() {
    let eng = EvalEngine::atom();
    let fx = Fixture::build(&eng, &[App::Wc, App::St]);
    let cx = fx.ctx();
    let w = mixed_workload();
    let arrivals = [0.0, 30.0, 60.0, 90.0];
    let setup = FaultSetup::default();

    let lockstep =
        run_ecost_faulted(&eng, 1, &w, Some(&arrivals), 2, &cx, &setup).expect("lockstep n=1");
    let calendar = run_ecost_open_stream(
        &eng,
        1,
        &stream_of(&w, 1, &arrivals),
        OpenOptions::default(),
        &cx,
        &setup,
    )
    .expect("calendar n=1");
    assert!(calendar.run.makespan_s.is_finite() && calendar.run.makespan_s > 0.0);
    assert_equivalent(&lockstep, &calendar);

    let lockstep_u = run_untuned_faulted(&eng, 1, &w, Some(&arrivals), &setup).expect("lockstep");
    let calendar_u = run_untuned_open_stream(
        &eng,
        1,
        &stream_of(&w, 1, &arrivals),
        OpenOptions::default(),
        &setup,
    )
    .expect("calendar");
    assert_equivalent(&lockstep_u, &calendar_u);
}

/// A burst of simultaneous arrivals hitting a long-idle cluster: the
/// calendar must fast-forward cleanly (no event before the burst) and
/// drain everything after it.
#[test]
fn empty_cluster_arrival_burst_drains() {
    let eng = EvalEngine::atom();
    let fx = Fixture::build(&eng, &[App::Wc, App::St]);
    let cx = fx.ctx();
    let w = mixed_workload();
    let arrivals = [500.0; 4];
    let setup = FaultSetup::default();

    let lockstep =
        run_ecost_faulted(&eng, 2, &w, Some(&arrivals), 2, &cx, &setup).expect("lockstep");
    let calendar = run_ecost_open_stream(
        &eng,
        2,
        &stream_of(&w, 2, &arrivals),
        OpenOptions::default(),
        &cx,
        &setup,
    )
    .expect("calendar");
    assert!(calendar.run.makespan_s > 500.0);
    assert_equivalent(&lockstep, &calendar);
}

/// Every node crashing with jobs still queued is a typed degradation on
/// the calendar path, exactly as on the lockstep path.
#[test]
fn all_crash_is_a_typed_degradation() {
    let eng = EvalEngine::atom();
    let fx = Fixture::build(&eng, &[App::Wc, App::St]);
    let cx = fx.ctx();
    let w = Workload {
        name: "overload".into(),
        jobs: vec![(App::Wc, InputSize::Small); 6],
    };
    let arrivals = [0.0; 6];
    let setup = FaultSetup {
        plan: FaultPlan::none()
            .with_event(5.0, 0, FaultKind::NodeCrash)
            .with_event(6.0, 1, FaultKind::NodeCrash),
        ..FaultSetup::default()
    };
    let err = run_ecost_open_stream(
        &eng,
        2,
        &stream_of(&w, 2, &arrivals),
        OpenOptions::default(),
        &cx,
        &setup,
    )
    .expect_err("must degrade");
    assert!(matches!(err, EvalError::Degraded { .. }), "{err}");
}

#[test]
fn invalid_streams_are_typed_errors() {
    let eng = EvalEngine::atom();
    let fx = Fixture::build(&eng, &[App::Wc]);
    let cx = fx.ctx();
    let setup = FaultSetup::default();
    let ok = OpenArrival {
        app: App::Wc,
        input_mb: 100.0,
        at_s: 0.0,
    };

    let cases: Vec<Vec<OpenArrival>> = vec![
        Vec::new(),
        vec![OpenArrival {
            input_mb: -5.0,
            ..ok
        }],
        vec![OpenArrival {
            input_mb: f64::NAN,
            ..ok
        }],
        vec![OpenArrival { at_s: -1.0, ..ok }],
        vec![OpenArrival {
            at_s: f64::INFINITY,
            ..ok
        }],
    ];
    for stream in &cases {
        assert!(matches!(
            run_ecost_open_stream(&eng, 2, stream, OpenOptions::default(), &cx, &setup),
            Err(EvalError::InvalidInput { .. })
        ));
    }
    assert!(matches!(
        run_ecost_open_stream(&eng, 0, &[ok], OpenOptions::default(), &cx, &setup),
        Err(EvalError::InvalidInput { .. })
    ));
}
