//! The cache budget changes *retention*, never *values*.
//!
//! A capacity-bounded engine may evict memo entries and re-simulate them
//! on the next probe — that shows up in the hit/miss/eviction counters,
//! and nowhere else. Every metric a bounded engine returns must be
//! bit-identical to what an unbounded engine returns for the same query,
//! because the simulator itself is deterministic and eviction only decides
//! *whether* a query recomputes, not *what* it computes.

use ecost_apps::{App, InputSize};
use ecost_core::engine::EvalEngine;
use ecost_core::CacheBudget;
use ecost_mapreduce::{BlockSize, PairConfig, TuningConfig};
use ecost_sim::Frequency;
use proptest::prelude::*;

const APPS: [App; 3] = [App::Wc, App::St, App::Fp];

fn cfg_from(f: usize, h: usize, m: u32) -> TuningConfig {
    TuningConfig {
        freq: Frequency::ALL[f % Frequency::ALL.len()],
        block: BlockSize::ALL[h % BlockSize::ALL.len()],
        mappers: m,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any interleaving of solo queries against a tightly budgeted engine
    /// (16 entries — guaranteed thrashing across 36 distinct keys) returns
    /// bit-identical results to an unbounded engine, while the budget
    /// itself holds.
    #[test]
    fn bounded_solo_results_are_bit_identical_to_unbounded(
        seq in proptest::collection::vec(
            (0usize..3, 0u8..12, 0usize..4, 0usize..4, 1u32..=8),
            8..24,
        ),
    ) {
        let unbounded = EvalEngine::atom();
        let bounded = EvalEngine::atom().with_cache_budget(CacheBudget {
            solo: Some(16),
            ..CacheBudget::unbounded()
        });
        for (ai, mboff, f, h, m) in seq {
            let p = APPS[ai].profile();
            let mb = 100.0 + f64::from(mboff) * 37.5;
            let cfg = cfg_from(f, h, m);
            let a = unbounded.solo_metrics(p, mb, cfg).expect("unbounded solo");
            let b = bounded.solo_metrics(p, mb, cfg).expect("bounded solo");
            prop_assert_eq!(a.exec_time_s.to_bits(), b.exec_time_s.to_bits());
            prop_assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
            prop_assert_eq!(a.avg_power_w.to_bits(), b.avg_power_w.to_bits());
            prop_assert!(bounded.cached_solo_runs() <= 16);
        }
        // Retention differs even though values never do.
        prop_assert_eq!(bounded.stats().evictions >= 1, true);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The batch-resident sweep writes misses through the bulk
    /// `insert_many` path (grouped shard locks, one eviction delta per
    /// window) instead of per-point `insert_or_keep`. Under a thrashing
    /// 16-entry budget the CLOCK ring evicts during the bulk insert
    /// itself; every returned metric must still be bit-identical to an
    /// unbounded engine, the budget must hold, and the eviction counter
    /// must conserve entries (`resident + evicted == inserted`, where the
    /// sweep inserts exactly its misses).
    #[test]
    fn bounded_bulk_insert_sweep_is_bit_identical_to_unbounded(seed in 0usize..3) {
        let p = APPS[seed].profile();
        let mb = InputSize::Small.per_node_mb();
        let unbounded = EvalEngine::atom();
        let bounded = EvalEngine::atom().with_cache_budget(CacheBudget {
            solo: Some(16),
            ..CacheBudget::unbounded()
        });
        // Both engines run the batch-resident sweep (the engine default):
        // the bounded one exercises CLOCK eviction × bulk inserts.
        for pass in 0..2 {
            let a = unbounded.sweep_solo(p, mb).expect("unbounded sweep");
            let b = bounded.sweep_solo(p, mb).expect("bounded sweep");
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.config, y.config);
                prop_assert_eq!(
                    x.metrics.exec_time_s.to_bits(),
                    y.metrics.exec_time_s.to_bits(),
                    "pass {}: exec time drifted under bulk-insert eviction", pass
                );
                prop_assert_eq!(x.metrics.energy_j.to_bits(), y.metrics.energy_j.to_bits());
            }
            prop_assert!(bounded.cached_solo_runs() <= 16);
        }
        let s = bounded.stats();
        // 160 distinct keys through 16 slots thrash on every pass.
        prop_assert!(s.evictions > 0);
        // Entry conservation across the bulk path: every miss inserted
        // exactly one entry, and each is either still resident or counted
        // evicted — bulk eviction deltas lose nothing.
        prop_assert_eq!(bounded.cached_solo_runs() as u64 + s.evictions, s.misses);
        // The unbounded engine answered pass 2 entirely from memo.
        prop_assert!(s.misses > unbounded.stats().misses);
    }
}

/// Pair-point queries through a thrashing pair-point cache: evicted points
/// recompute to exactly the same metrics, and re-querying the full set a
/// second time still matches the unbounded engine bit for bit.
#[test]
fn bounded_pair_points_are_bit_identical_to_unbounded() {
    let mb = InputSize::Small.per_node_mb();
    let unbounded = EvalEngine::atom();
    let bounded = EvalEngine::atom().with_cache_budget(CacheBudget {
        pair_points: Some(16),
        ..CacheBudget::unbounded()
    });

    let points: Vec<(App, App, PairConfig)> = (0..24)
        .map(|i| {
            let a = APPS[i % 3];
            let b = APPS[(i / 3) % 3];
            let cfg = PairConfig {
                a: cfg_from(i, i / 2, 1 + (i as u32 % 4)),
                b: cfg_from(i + 1, i / 3, 1 + ((i as u32 + 2) % 4)),
            };
            (a, b, cfg)
        })
        .collect();

    for pass in 0..2 {
        for (a, b, cfg) in &points {
            let u = unbounded
                .pair_metrics(a.profile(), mb, b.profile(), mb, *cfg)
                .expect("unbounded pair");
            let v = bounded
                .pair_metrics(a.profile(), mb, b.profile(), mb, *cfg)
                .expect("bounded pair");
            assert_eq!(
                u.makespan_s.to_bits(),
                v.makespan_s.to_bits(),
                "pass {pass}: makespan drifted under eviction"
            );
            assert_eq!(u.energy_j.to_bits(), v.energy_j.to_bits());
            assert!(bounded.cached_pair_points() <= 16);
        }
    }
    let s = bounded.stats();
    assert!(s.evictions > 0, "24 keys through 16 slots must evict");
    // The unbounded engine answered pass 2 from memo alone; the bounded
    // one re-simulated what it evicted. Values stayed identical anyway.
    assert!(s.runs_simulated > unbounded.stats().runs_simulated);
}
