//! Acceptance tests for the fleet layer: single-shard bit-identity with
//! the monolithic calendar driver, arrival conservation across shard
//! counts, worker-thread interleaving invariance, and router behaviour
//! when one shard's circuit breaker opens.

use ecost_apps::App;
use ecost_core::classify::RuleClassifier;
use ecost_core::database::ConfigDatabase;
use ecost_core::engine::EvalEngine;
use ecost_core::fleet::{run_fleet, FleetConfig, FleetRun, FleetService, RoutePolicy};
use ecost_core::mapping::{run_ecost_open_stream, FaultSetup, OpenArrival, OpenOptions};
use ecost_core::pairing::PairingPolicy;
use ecost_core::stp::LktStp;
use ecost_core::{EcostContext, EvalError, ServiceConfig, Testbed};
use ecost_sim::ServiceFaultSpec;
use ecost_telemetry::Recorder;

const SEED: u64 = 7;

struct Fixture {
    db: ConfigDatabase,
    classifier: RuleClassifier,
    lkt: LktStp,
    pairing: PairingPolicy,
}

impl Fixture {
    fn build() -> Fixture {
        let eng = EvalEngine::atom();
        let db = ConfigDatabase::build_subset(
            &eng,
            &[App::Wc, App::St],
            &[ecost_apps::InputSize::Small],
            0.0,
            SEED,
        )
        .expect("db build");
        let classifier = RuleClassifier::fit(&db.signatures);
        let lkt = LktStp::from_database(&db);
        Fixture {
            db,
            classifier,
            lkt,
            pairing: PairingPolicy::default(),
        }
    }

    fn ctx(&self) -> EcostContext<'_> {
        EcostContext {
            db: &self.db,
            stp: &self.lkt,
            classifier: &self.classifier,
            pairing: &self.pairing,
            noise: 0.0,
            seed: SEED,
            pairing_mode: ecost_core::pairing::PairingMode::DecisionTree,
        }
    }
}

/// A staggered two-class arrival stream: enough jobs to keep several
/// epochs busy, cheap enough for a test.
fn stream(count: usize) -> Vec<OpenArrival> {
    (0..count)
        .map(|i| OpenArrival {
            app: if i % 2 == 0 { App::Wc } else { App::St },
            input_mb: 200.0 + 10.0 * (i % 5) as f64,
            at_s: 15.0 * i as f64,
        })
        .collect()
}

/// Engine wall-clock seconds are the one nondeterministic field in a
/// fleet outcome; zero them so whole-struct equality means "byte-equal
/// everywhere it can be".
fn scrubbed(mut f: FleetRun) -> FleetRun {
    f.stats.wall_seconds = 0.0;
    for s in &mut f.shards {
        s.stats.wall_seconds = 0.0;
    }
    f
}

#[test]
fn single_shard_fleet_is_bit_identical_to_the_calendar_driver() {
    let fx = Fixture::build();
    let cx = fx.ctx();
    let arrivals = stream(12);
    let setup = FaultSetup::default();

    let eng = EvalEngine::atom();
    let mono = run_ecost_open_stream(&eng, 3, &arrivals, OpenOptions::default(), &cx, &setup)
        .expect("monolithic driver");

    let cfg = FleetConfig {
        nodes_per_shard: 3,
        ..FleetConfig::rendezvous(1, 3, SEED)
    };
    let fleet = run_fleet(
        &Testbed::atom(),
        &cfg,
        arrivals.iter().copied(),
        &cx,
        &Recorder::noop(),
    )
    .expect("fleet");
    fleet
        .assert_single_shard_identity(&mono)
        .expect("bit-identity");
    // And the raw bits, independently of the assertion helper.
    assert_eq!(
        fleet.run.makespan_s.to_bits(),
        mono.run.makespan_s.to_bits()
    );
    assert_eq!(
        fleet.run.energy_dyn_j.to_bits(),
        mono.run.energy_dyn_j.to_bits()
    );
    assert_eq!(fleet.report, mono.report);
    assert_eq!(fleet.arrivals, 12);
}

#[test]
fn shard_count_conserves_arrivals_under_rendezvous() {
    let fx = Fixture::build();
    let cx = fx.ctx();
    let arrivals = stream(16);

    let mut fingerprints = Vec::new();
    for shards in [2usize, 8] {
        let cfg = FleetConfig::rendezvous(shards, 2, SEED);
        let fleet = run_fleet(
            &Testbed::atom(),
            &cfg,
            arrivals.iter().copied(),
            &cx,
            &Recorder::noop(),
        )
        .expect("fleet");
        // Conservation: every arrival is routed exactly once, whatever
        // the shard count.
        assert_eq!(fleet.arrivals, 16);
        assert_eq!(fleet.shards.iter().map(|s| s.arrivals).sum::<u64>(), 16);
        assert_eq!(fleet.shards.len(), shards);
        assert!(fleet.run.makespan_s.is_finite() && fleet.run.makespan_s > 0.0);
        // Class affinity: two behaviour classes occupy at most two shards.
        assert!(fleet.shards.iter().filter(|s| s.arrivals > 0).count() <= 2);
        fingerprints.push((fleet.arrivals, fleet.report));
    }
    // The conservation fingerprint is shard-count invariant.
    assert_eq!(fingerprints[0], fingerprints[1]);
}

#[test]
fn fleet_results_are_invariant_to_worker_thread_interleaving() {
    let fx = Fixture::build();
    let cx = fx.ctx();
    let arrivals = stream(16);
    let cfg = FleetConfig {
        route: RoutePolicy::LeastOutstanding,
        ..FleetConfig::rendezvous(4, 2, SEED)
    };
    let run_with = |threads: &str| {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let fleet = run_fleet(
            &Testbed::atom(),
            &cfg,
            arrivals.iter().copied(),
            &cx,
            &Recorder::noop(),
        );
        std::env::remove_var("RAYON_NUM_THREADS");
        scrubbed(fleet.expect("fleet"))
    };
    let sequential = run_with("1");
    let parallel = run_with("4");
    assert_eq!(sequential, parallel);
    // Double-run determinism at a fixed thread count, too.
    assert_eq!(parallel, run_with("4"));
}

#[test]
fn open_breaker_on_one_shard_degrades_only_that_shard() {
    let fx = Fixture::build();
    let cx = fx.ctx();
    let arrivals = stream(16);
    // Shard 0's tuning service fails every engine-tier attempt; the other
    // shards are healthy. Default breaker: trips after 5 straight
    // failures.
    let broken = ServiceFaultSpec {
        transient_rate: 1.0,
        transient_burst: 99,
        slow_rate: 0.0,
        slow_factor: 1.0,
        seed: SEED,
    };
    let mut faults = vec![ServiceFaultSpec::healthy(SEED); 4];
    faults[0] = broken;
    let cfg = FleetConfig {
        route: RoutePolicy::LeastOutstanding,
        service: Some(FleetService {
            config: ServiceConfig::default(),
            faults,
        }),
        ..FleetConfig::rendezvous(4, 2, SEED)
    };
    let fleet = run_fleet(
        &Testbed::atom(),
        &cfg,
        arrivals.iter().copied(),
        &cx,
        &Recorder::noop(),
    )
    .expect("a broken shard degrades, it does not abort the fleet");

    assert_eq!(fleet.arrivals, 16);
    let svc0 = fleet.shards[0].service.as_ref().expect("serviced");
    assert!(svc0.breaker_trips > 0, "shard 0's breaker must open");
    for s in &fleet.shards[1..] {
        let svc = s.service.as_ref().expect("serviced");
        assert_eq!(svc.breaker_trips, 0, "healthy shards stay closed");
        assert_eq!(svc.tier_failures, 0);
    }
    let merged = fleet.service.as_ref().expect("merged service report");
    assert_eq!(merged.breaker_trips, svc0.breaker_trips);
    assert_eq!(
        merged.decided,
        fleet
            .shards
            .iter()
            .map(|s| s.service.as_ref().map_or(0, |r| r.decided))
            .sum::<u64>()
    );
    assert!(fleet.run.makespan_s.is_finite() && fleet.run.makespan_s > 0.0);
}

#[test]
fn invalid_fleet_inputs_are_typed_errors() {
    let fx = Fixture::build();
    let cx = fx.ctx();
    let tb = Testbed::atom();
    let rec = Recorder::noop();
    let ok = stream(4);

    let invalid = |cfg: &FleetConfig, arrivals: &[OpenArrival]| {
        matches!(
            run_fleet(&tb, cfg, arrivals.iter().copied(), &cx, &rec),
            Err(EvalError::InvalidInput { .. })
        )
    };

    let base = FleetConfig::rendezvous(2, 2, SEED);
    assert!(invalid(
        &FleetConfig {
            shards: 0,
            ..base.clone()
        },
        &ok
    ));
    assert!(invalid(
        &FleetConfig {
            nodes_per_shard: 0,
            ..base.clone()
        },
        &ok
    ));
    assert!(invalid(
        &FleetConfig {
            epoch_s: 0.0,
            ..base.clone()
        },
        &ok
    ));
    assert!(invalid(
        &FleetConfig {
            epoch_s: f64::NAN,
            ..base.clone()
        },
        &ok
    ));
    // Service fault specs must be one (broadcast) or one per shard.
    assert!(invalid(
        &FleetConfig {
            service: Some(FleetService {
                config: ServiceConfig::default(),
                faults: vec![ServiceFaultSpec::healthy(SEED); 3],
            }),
            ..base.clone()
        },
        &ok
    ));
    // Streams must be non-empty and sorted by arrival time.
    assert!(invalid(&base, &[]));
    let mut unsorted = stream(3);
    unsorted.swap(0, 2);
    assert!(invalid(&base, &unsorted));
}
