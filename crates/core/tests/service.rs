//! Integration tests for the concurrent tuning service: typed failure
//! paths (shed / deadline / retry / breaker), bounded real concurrency,
//! determinism under multi-threaded drive, and the serviced streaming
//! driver's bit-identity with the direct calendar driver.

use ecost_apps::{App, InputSize};
use ecost_core::classify::RuleClassifier;
use ecost_core::database::ConfigDatabase;
use ecost_core::engine::EvalEngine;
use ecost_core::mapping::{
    run_ecost_open_stream, run_ecost_open_stream_serviced, FaultSetup, OpenArrival, OpenOptions,
};
use ecost_core::pairing::PairingPolicy;
use ecost_core::stp::LktStp;
use ecost_core::{
    BreakerConfig, DecisionCosts, DecisionTier, EcostContext, RetryPolicy, ServiceConfig,
    ServiceError, TuningRequest, TuningService,
};
use ecost_sim::{RequestFaults, ServiceFaultSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const SEED: u64 = 7;

fn healthy() -> ServiceFaultSpec {
    ServiceFaultSpec::healthy(SEED)
}

/// A free-decision config: no limits, no deadlines, zero simulated
/// costs — decide() always grants a full sweep.
fn free() -> ServiceConfig {
    ServiceConfig::unlimited()
}

fn burst(n: u32) -> Option<RequestFaults> {
    Some(RequestFaults {
        transient_failures: n,
        slow_factor: 1.0,
    })
}

#[test]
fn invalid_config_is_typed() {
    let eng = EvalEngine::atom();
    let cfg = ServiceConfig {
        max_inflight: Some(0),
        ..ServiceConfig::default()
    };
    match TuningService::new(&eng, cfg, healthy()) {
        Err(ServiceError::InvalidConfig { what }) => assert!(what.contains("max_inflight")),
        other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
    }
    let cfg = ServiceConfig {
        max_inflight: None,
        max_queue: Some(4),
        ..ServiceConfig::default()
    };
    assert!(matches!(
        TuningService::new(&eng, cfg, healthy()).map(|_| ()),
        Err(ServiceError::InvalidConfig { .. })
    ));
}

#[test]
fn duplicate_sequence_numbers_are_rejected_not_deadlocked() {
    let eng = EvalEngine::atom();
    let svc = TuningService::new(&eng, free(), healthy()).expect("service");
    let req = TuningRequest::solo(0, 0.0, f64::INFINITY, App::Wc, 256.0);
    assert!(svc.decide(&req).is_ok());
    match svc.decide(&req) {
        Err(ServiceError::InvalidRequest { what }) => assert!(what.contains("sequence")),
        other => panic!("expected InvalidRequest, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn overloaded_is_typed_and_sheds_immediately() {
    let eng = EvalEngine::atom();
    let cfg = ServiceConfig {
        max_inflight: Some(1),
        max_queue: Some(0),
        deadline_s: f64::INFINITY,
        ..ServiceConfig::default()
    };
    let svc = TuningService::new(&eng, cfg, healthy()).expect("service");
    // First request occupies the single simulated worker for the full
    // sweep's 5 simulated seconds.
    let d = svc
        .decide(&TuningRequest::solo(0, 0.0, f64::INFINITY, App::Wc, 256.0))
        .expect("first request");
    assert_eq!(d.tier, DecisionTier::FullSweep);
    // Second arrives one simulated second later: worker busy, queue
    // bound 0 — shed with the typed error.
    match svc.decide(&TuningRequest::solo(1, 1.0, f64::INFINITY, App::Wc, 256.0)) {
        Err(ServiceError::Overloaded { queued, limit }) => {
            assert_eq!((queued, limit), (0, 0));
        }
        other => panic!("expected Overloaded, got {:?}", other.map(|_| ())),
    }
    let r = svc.report();
    assert_eq!((r.decided, r.shed), (1, 1));
}

#[test]
fn deadline_exceeded_is_typed() {
    let eng = EvalEngine::atom();
    let cfg = ServiceConfig {
        max_inflight: None,
        max_queue: None,
        ..ServiceConfig::default()
    };
    let svc = TuningService::new(&eng, cfg, healthy()).expect("service");
    // Default fallback cost is 0.01 simulated seconds; a 0.001-second
    // budget cannot finish any tier.
    match svc.decide(&TuningRequest::solo(0, 0.0, 0.001, App::Wc, 256.0)) {
        Err(ServiceError::DeadlineExceeded {
            deadline_s,
            spent_s,
        }) => {
            assert_eq!(deadline_s, 0.001);
            assert_eq!(spent_s, 0.0, "rejected before any work was charged");
        }
        other => panic!("expected DeadlineExceeded, got {:?}", other.map(|_| ())),
    }
    assert_eq!(svc.report().deadline_exceeded, 1);
}

#[test]
fn remaining_budget_selects_the_tier() {
    let eng = EvalEngine::atom();
    let cfg = ServiceConfig {
        max_inflight: None,
        max_queue: None,
        ..ServiceConfig::default()
    };
    let svc = TuningService::new(&eng, cfg, healthy()).expect("service");
    // Budget 6 affords the 5-second full sweep; budget 1 only the
    // 0.5-second windowed pass; budget 0.1 only the fallback lookup.
    let d = svc
        .decide(&TuningRequest::solo(0, 0.0, 6.0, App::Wc, 256.0))
        .expect("full");
    assert_eq!(d.tier, DecisionTier::FullSweep);
    let d = svc
        .decide(&TuningRequest::solo(1, 0.0, 1.0, App::Wc, 256.0))
        .expect("windowed");
    assert_eq!(d.tier, DecisionTier::Windowed);
    let d = svc
        .decide(&TuningRequest::solo(2, 0.0, 0.1, App::Wc, 256.0))
        .expect("fallback");
    assert_eq!(d.tier, DecisionTier::ClassDefault);
    let r = svc.report();
    assert_eq!((r.tier_full, r.tier_windowed, r.tier_fallback), (1, 1, 1));
}

#[test]
fn transient_bursts_are_retried_with_seeded_jitter() {
    let eng = EvalEngine::atom();
    let run = || {
        let cfg = ServiceConfig {
            max_inflight: None,
            max_queue: None,
            deadline_s: f64::INFINITY,
            retry: RetryPolicy {
                max_retries: 2,
                backoff_s: 0.5,
                backoff_multiplier: 2.0,
            },
            retry_jitter_frac: 0.5,
            ..ServiceConfig::default()
        };
        let svc = TuningService::new(&eng, cfg, healthy()).expect("service");
        // A burst of 2 sits inside the retry budget: cured on the full
        // tier after exactly 2 retries.
        let mut req = TuningRequest::solo(0, 0.0, f64::INFINITY, App::Wc, 256.0);
        req.faults = burst(2);
        let d = svc.decide(&req).expect("cured");
        assert_eq!(d.tier, DecisionTier::FullSweep);
        assert_eq!(d.retries, 2);
        assert!(
            d.service_s > 3.0 * 5.0,
            "three attempts plus backoff, got {}",
            d.service_s
        );
        // A burst of 3 exhausts the budget on both engine tiers and
        // degrades to class defaults — still an answer, not an error.
        let mut req = TuningRequest::solo(1, 0.0, f64::INFINITY, App::Wc, 256.0);
        req.faults = burst(3);
        let d2 = svc.decide(&req).expect("degraded");
        assert_eq!(d2.tier, DecisionTier::ClassDefault);
        let r = svc.report();
        assert_eq!(r.retries, 2 + 4, "2 cured + 2 per failed engine tier");
        assert_eq!(r.tier_failures, 2);
        (d.service_s, d2.service_s, r)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0.to_bits(), b.0.to_bits(), "jitter must be seeded");
    assert_eq!(a.1.to_bits(), b.1.to_bits());
    assert_eq!(a.2, b.2);
}

#[test]
fn breaker_trips_short_circuits_and_recovers_on_the_simulated_clock() {
    let eng = EvalEngine::atom();
    let cfg = ServiceConfig {
        max_inflight: None,
        max_queue: None,
        deadline_s: f64::INFINITY,
        retry: RetryPolicy::none(),
        retry_jitter_frac: 0.0,
        breaker: BreakerConfig {
            threshold: 2,
            cooldown_s: 10.0,
        },
        costs: DecisionCosts::zero(),
    };
    let svc = TuningService::new(&eng, cfg, healthy()).expect("service");
    let req = |seq, t, f: Option<RequestFaults>| {
        let mut r = TuningRequest::solo(seq, t, f64::INFINITY, App::Wc, 256.0);
        r.faults = f;
        r
    };
    // seq 0 at t=0: both engine tiers fail (no retries) — streak hits
    // the threshold of 2 and trips the breaker at t=0.
    let d = svc.decide(&req(0, 0.0, burst(99))).expect("degraded");
    assert_eq!(d.tier, DecisionTier::ClassDefault);
    assert!(!d.breaker_short_circuit, "this request did the tripping");
    // seq 1 at t=5 (< cooldown): open breaker short-circuits straight
    // to the fallback tier without touching the engine tiers.
    let d = svc.decide(&req(1, 5.0, None)).expect("short-circuited");
    assert_eq!(d.tier, DecisionTier::ClassDefault);
    assert!(d.breaker_short_circuit);
    assert_eq!(d.retries, 0);
    // seq 2 at t=12 (cooldown elapsed): half-open probe fails and
    // re-trips immediately.
    let d = svc.decide(&req(2, 12.0, burst(99))).expect("probe failed");
    assert_eq!(d.tier, DecisionTier::ClassDefault);
    assert!(!d.breaker_short_circuit, "the probe was admitted");
    // seq 3 at t=15: open again after the failed probe.
    let d = svc.decide(&req(3, 15.0, None)).expect("short-circuited");
    assert!(d.breaker_short_circuit);
    // seq 4 at t=25: second cooldown elapsed; a healthy probe closes
    // the breaker and the full tier serves again.
    let d = svc.decide(&req(4, 25.0, None)).expect("probe ok");
    assert_eq!(d.tier, DecisionTier::FullSweep);
    assert!(!d.breaker_short_circuit);
    // seq 5: closed for good.
    let d = svc.decide(&req(5, 26.0, None)).expect("closed");
    assert_eq!(d.tier, DecisionTier::FullSweep);
    let r = svc.report();
    assert_eq!(r.breaker_trips, 2, "initial trip + failed-probe re-trip");
    assert_eq!(r.breaker_short_circuits, 2);
}

/// The headline concurrency claim: many real threads, dense sequence
/// numbers, a hard in-flight limit — the run completes (no deadlock),
/// never exceeds the limit, and produces identical outcomes and
/// counters on a second pass.
#[test]
fn multithreaded_soak_is_bounded_and_deterministic() {
    const REQUESTS: usize = 24;
    const THREADS: usize = 6;
    const INFLIGHT: usize = 2;
    let eng = EvalEngine::atom();
    let schedule: Vec<TuningRequest> = (0..REQUESTS as u64)
        .map(|seq| {
            let t = seq as f64 * 1.3;
            let app = if seq % 2 == 0 { App::Wc } else { App::St };
            if seq % 3 == 0 {
                TuningRequest::pair(seq, t, 30.0, (app, 256.0), (App::St, 256.0))
            } else {
                TuningRequest::solo(seq, t, 30.0, app, 256.0)
            }
        })
        .collect();
    let run = || {
        let cfg = ServiceConfig {
            max_inflight: Some(INFLIGHT),
            max_queue: Some(4),
            deadline_s: 30.0,
            ..ServiceConfig::default()
        };
        let svc = TuningService::new(&eng, cfg, healthy()).expect("service");
        let outcomes = Mutex::new(vec![String::new(); REQUESTS]);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(req) = schedule.get(i) else { break };
                    let s = match svc.decide(req) {
                        Ok(d) => format!(
                            "{}|{:?}|{}|{}",
                            d.tier.name(),
                            d.config,
                            d.queued_s.to_bits(),
                            d.service_s.to_bits()
                        ),
                        Err(e) => format!("err:{e:?}"),
                    };
                    outcomes.lock().expect("no poisoned lock")[i] = s;
                });
            }
        });
        let peak = svc.inflight_peak();
        assert!(
            peak <= INFLIGHT,
            "in-flight peak {peak} exceeded the {INFLIGHT} limit"
        );
        let r = svc.report();
        assert_eq!(
            r.decided + r.shed + r.deadline_exceeded,
            REQUESTS as u64,
            "every request must be accounted for"
        );
        assert!(r.decided > 0);
        (outcomes.into_inner().expect("no poisoned lock"), r)
    };
    let (out_a, rep_a) = run();
    let (out_b, rep_b) = run();
    assert_eq!(out_a, out_b, "outcomes must not depend on thread timing");
    assert_eq!(rep_a, rep_b);
}

/// A zero-fault, no-limit serviced streaming run answers every decision
/// with a free full sweep — bit-identical to the direct calendar driver.
#[test]
fn unlimited_serviced_stream_is_bit_identical_to_direct() {
    let eng = EvalEngine::atom();
    let db =
        ConfigDatabase::build_subset(&eng, &[App::Wc, App::St], &[InputSize::Small], 0.0, SEED)
            .expect("db build");
    let classifier = RuleClassifier::fit(&db.signatures);
    let lkt = LktStp::from_database(&db);
    let pairing = PairingPolicy::default();
    let cx = EcostContext {
        db: &db,
        stp: &lkt,
        classifier: &classifier,
        pairing: &pairing,
        noise: 0.0,
        seed: SEED,
        pairing_mode: ecost_core::pairing::PairingMode::DecisionTree,
    };
    let stream: Vec<OpenArrival> = (0..6)
        .map(|i| OpenArrival {
            app: if i % 2 == 0 { App::Wc } else { App::St },
            input_mb: 200.0 + 50.0 * i as f64,
            at_s: 30.0 * i as f64,
        })
        .collect();
    let setup = FaultSetup::default();
    let direct = run_ecost_open_stream(&eng, 2, &stream, OpenOptions::default(), &cx, &setup)
        .expect("direct");
    let (serviced, svc_report) = run_ecost_open_stream_serviced(
        &eng,
        2,
        &stream,
        OpenOptions::default(),
        &cx,
        &setup,
        ServiceConfig::unlimited(),
        ServiceFaultSpec::healthy(SEED),
    )
    .expect("serviced");
    assert_eq!(
        direct.run.makespan_s.to_bits(),
        serviced.run.makespan_s.to_bits(),
        "makespan must be bit-identical"
    );
    assert_eq!(
        direct.run.energy_dyn_j.to_bits(),
        serviced.run.energy_dyn_j.to_bits(),
        "energy must be bit-identical"
    );
    assert_eq!(direct.report, serviced.report);
    assert_eq!(svc_report.tier_full, svc_report.decided);
    assert_eq!(svc_report.shed, 0);
    assert_eq!(svc_report.deadline_exceeded, 0);
    assert_eq!(svc_report.decision_time_s, 0.0);
}

/// A constrained serviced stream still completes — rejected decisions
/// degrade to class defaults instead of failing the schedule — and its
/// service report shows the pressure.
#[test]
fn constrained_serviced_stream_completes_with_degradations() {
    let eng = EvalEngine::atom();
    let db =
        ConfigDatabase::build_subset(&eng, &[App::Wc, App::St], &[InputSize::Small], 0.0, SEED)
            .expect("db build");
    let classifier = RuleClassifier::fit(&db.signatures);
    let lkt = LktStp::from_database(&db);
    let pairing = PairingPolicy::default();
    let cx = EcostContext {
        db: &db,
        stp: &lkt,
        classifier: &classifier,
        pairing: &pairing,
        noise: 0.0,
        seed: SEED,
        pairing_mode: ecost_core::pairing::PairingMode::DecisionTree,
    };
    let stream: Vec<OpenArrival> = (0..8)
        .map(|i| OpenArrival {
            app: if i % 2 == 0 { App::Wc } else { App::St },
            input_mb: 256.0,
            at_s: i as f64, // 1-second spacing: far faster than decisions
        })
        .collect();
    let setup = FaultSetup::default();
    let svc_cfg = ServiceConfig {
        max_inflight: Some(1),
        max_queue: Some(1),
        deadline_s: 12.0,
        ..ServiceConfig::default()
    };
    let (run, svc_report) = run_ecost_open_stream_serviced(
        &eng,
        2,
        &stream,
        OpenOptions::default(),
        &cx,
        &setup,
        svc_cfg,
        ServiceFaultSpec::healthy(SEED),
    )
    .expect("serviced");
    assert!(run.run.makespan_s.is_finite() && run.run.makespan_s > 0.0);
    assert!(
        svc_report.shed > 0 || svc_report.deadline_exceeded > 0 || svc_report.tier_fallback > 0,
        "pressure must be visible: {svc_report:?}"
    );
    // Two decisions per arrival at most (placement may be re-decided);
    // every decision the service refused became a class-default config.
    assert!(run.report.config_fallbacks > 0 || svc_report.tier_full == svc_report.decided);
}
