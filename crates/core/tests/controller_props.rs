//! Property-based tests of the controller-side data structures: the wait
//! queue's fairness guarantees and the pairing policy's totality.

use ecost_apps::class::ClassPair;
use ecost_apps::AppClass;
use ecost_core::pairing::PairingPolicy;
use ecost_core::WaitQueue;
use proptest::prelude::*;

fn arb_class() -> impl Strategy<Value = AppClass> {
    prop_oneof![
        Just(AppClass::C),
        Just(AppClass::H),
        Just(AppClass::I),
        Just(AppClass::M),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The head is always eligible, every eligible job is either the head or
    /// not longer than it, and indices returned by `eligible` are valid.
    #[test]
    fn eligibility_invariants(
        jobs in prop::collection::vec((arb_class(), 1.0f64..1000.0), 1..12),
        max_skips in 0u32..4,
    ) {
        let mut q = WaitQueue::new(max_skips);
        for (i, (class, est)) in jobs.iter().enumerate() {
            q.push(i, *class, *est);
        }
        let head_est = q.head().expect("non-empty").est_time_s;
        let eligible = q.eligible();
        prop_assert!(eligible.iter().any(|(i, _)| *i == 0), "head always eligible");
        for (i, _) in &eligible {
            prop_assert!(*i < q.len());
            let item = q.peek(*i).expect("eligible index in range");
            prop_assert!(*i == 0 || item.est_time_s <= head_est + 1e-9,
                "leap-forward only for jobs that don't outlast the head");
        }
    }

    /// Under any sequence of greedy "prefer I-class" picks, the head waits
    /// at most `max_skips` selections before it must be chosen — no
    /// starvation.
    #[test]
    fn head_reservation_bounds_starvation(
        jobs in prop::collection::vec((arb_class(), 1.0f64..100.0), 2..16),
        max_skips in 0u32..3,
    ) {
        let mut q = WaitQueue::new(max_skips);
        for (i, (class, est)) in jobs.iter().enumerate() {
            q.push(i, *class, *est);
        }
        let head_id = q.head().expect("non-empty").payload;
        let policy = PairingPolicy::default();
        let mut skips_seen = 0u32;
        while !q.is_empty() {
            let eligible = q.eligible();
            let classes: Vec<AppClass> = eligible.iter().map(|(_, c)| *c).collect();
            let pick = policy.choose(&classes).expect("non-empty");
            let idx = eligible[pick].0;
            let taken = q.take(idx).expect("eligible index in range");
            if taken.payload == head_id {
                prop_assert!(skips_seen <= max_skips,
                    "head skipped {skips_seen} times with allowance {max_skips}");
                break;
            }
            skips_seen += 1;
        }
    }

    /// Queue drains completely and in a permutation of insertion ids.
    #[test]
    fn queue_conserves_jobs(
        jobs in prop::collection::vec((arb_class(), 1.0f64..100.0), 1..16),
    ) {
        let mut q = WaitQueue::new(2);
        for (i, (class, est)) in jobs.iter().enumerate() {
            q.push(i, *class, *est);
        }
        let mut out = Vec::new();
        while !q.is_empty() {
            let eligible = q.eligible();
            // Always take the last eligible (the most adversarial choice).
            let idx = eligible.last().expect("non-empty").0;
            out.push(q.take(idx).expect("eligible index in range").payload);
        }
        out.sort_unstable();
        prop_assert_eq!(out, (0..jobs.len()).collect::<Vec<_>>());
    }

    /// A pairing policy derived from any ranking is a total order over all
    /// four classes and always chooses something from a non-empty slate.
    #[test]
    fn derived_policy_is_total(scores in prop::collection::vec(0.01f64..10.0, 10)) {
        let ranking: Vec<(ClassPair, f64)> = ClassPair::all()
            .into_iter()
            .zip(scores)
            .collect();
        let policy = PairingPolicy::from_ranking(&ranking);
        let mut seen = policy.priority.to_vec();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), 4, "all classes ranked exactly once");
        for class in AppClass::ALL {
            prop_assert!(policy.rank(class) < 4);
        }
        prop_assert!(policy.choose(&[AppClass::M]).is_some());
        prop_assert!(policy.choose(&[]).is_none());
    }
}
