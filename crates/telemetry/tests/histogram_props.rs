//! Histogram edge cases and the merge/concatenation equivalence property.

use ecost_telemetry::{Histogram, Registry, TelemetryError};
use proptest::prelude::*;

const BOUNDS: [f64; 5] = [0.001, 0.01, 0.1, 1.0, 10.0];

#[test]
fn empty_merge_is_identity() {
    let a = Histogram::new(&BOUNDS).expect("bounds");
    let b = Histogram::new(&BOUNDS).expect("bounds");
    a.record(0.5);
    a.merge_from(&b).expect("merge empty");
    assert_eq!(a.count(), 1);
    assert_eq!(a.bucket_counts(), vec![0, 0, 0, 1, 0, 0]);

    // Merging *into* an empty histogram copies the source.
    b.merge_from(&a).expect("merge into empty");
    assert_eq!(a, b);
}

#[test]
fn single_bucket_histogram_overflows() {
    // No finite bounds at all: everything lands in the one overflow bucket.
    let h = Histogram::new(&[]).expect("empty bounds are a single bucket");
    for v in [0.0, 1e-9, 1.0, 1e12, f64::INFINITY] {
        h.record(v);
    }
    assert_eq!(h.bucket_counts(), vec![5]);
    assert_eq!(h.count(), 5);
    // Every quantile of an overflow-only histogram is unbounded.
    assert_eq!(h.quantile(0.0), Some(f64::INFINITY));
    assert_eq!(h.quantile(0.5), Some(f64::INFINITY));
    assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
}

#[test]
fn quantile_on_saturated_buckets() {
    // All mass in one interior bucket: every quantile reports its bound.
    let h = Histogram::new(&BOUNDS).expect("bounds");
    for _ in 0..1000 {
        h.record(0.05); // lands in the (0.01, 0.1] bucket
    }
    for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), Some(0.1), "q={q}");
    }
    // All mass above the last bound: quantiles are unbounded.
    let over = Histogram::new(&BOUNDS).expect("bounds");
    for _ in 0..10 {
        over.record(100.0);
    }
    assert_eq!(over.quantile(0.5), Some(f64::INFINITY));
    // Empty histogram has no quantiles.
    assert_eq!(Histogram::new(&BOUNDS).expect("bounds").quantile(0.5), None);
}

#[test]
fn merge_rejects_mismatched_bounds() {
    let a = Histogram::new(&[1.0, 2.0]).expect("bounds");
    let b = Histogram::new(&[1.0, 3.0]).expect("bounds");
    assert!(matches!(
        a.merge_from(&b),
        Err(TelemetryError::BucketMismatch { .. })
    ));
    // Registry-level merge surfaces the same error with the name attached.
    let ra = Registry::default();
    let rb = Registry::default();
    ra.histogram("h", &[1.0, 2.0]).expect("bounds");
    rb.histogram("h", &[1.0, 3.0]).expect("bounds");
    assert!(matches!(
        ra.merge(&rb),
        Err(TelemetryError::BucketMismatch { name }) if name == "h"
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The fundamental mergeability law: merging two histograms yields
    /// exactly the histogram of the concatenated samples — same bucket
    /// counts, same total count, same (fixed-point) sum, so `PartialEq`
    /// holds outright.
    #[test]
    fn merged_equals_concatenated(
        xs in prop::collection::vec(0.0f64..20.0, 0..100),
        ys in prop::collection::vec(0.0f64..20.0, 0..100),
    ) {
        let hx = Histogram::new(&BOUNDS).expect("bounds");
        let hy = Histogram::new(&BOUNDS).expect("bounds");
        let hcat = Histogram::new(&BOUNDS).expect("bounds");
        for x in &xs { hx.record(*x); hcat.record(*x); }
        for y in &ys { hy.record(*y); hcat.record(*y); }
        hx.merge_from(&hy).expect("same bounds");
        prop_assert_eq!(&hx, &hcat);
        prop_assert_eq!(hx.count(), (xs.len() + ys.len()) as u64);
        // Quantiles agree everywhere, not just the moments.
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            prop_assert_eq!(hx.quantile(q), hcat.quantile(q));
        }
    }
}
