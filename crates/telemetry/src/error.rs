//! Typed errors for the telemetry layer.

use std::fmt;

/// Everything that can go wrong when building or combining instruments.
///
/// Recording itself is infallible by design — hot paths must not branch on
/// `Result` — so errors surface only at construction and merge time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// Histogram bounds are not finite and strictly increasing.
    InvalidBounds,
    /// Two histograms with different bucket bounds were merged, or a
    /// registry name was re-used with different bounds.
    BucketMismatch {
        /// Registry name of the offending histogram, when known.
        name: String,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::InvalidBounds => {
                write!(f, "histogram bounds must be finite and strictly increasing")
            }
            TelemetryError::BucketMismatch { name } => {
                write!(f, "histogram bucket bounds mismatch for `{name}`")
            }
        }
    }
}

impl std::error::Error for TelemetryError {}
