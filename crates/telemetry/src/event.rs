//! The structured event taxonomy and the span model.
//!
//! Everything is stamped with **simulated seconds** — the discrete-event
//! clock of the node simulators and the streaming scheduler — never wall
//! time, so a recorded run is a pure function of its inputs and seed.

/// Identity of a span: which run, node, job and phase the interval covers.
///
/// `run` distinguishes schedules recorded into the same log (e.g. the
/// healthy and the faulted schedule of a comparison); `node`/`job` map to
/// the Chrome-trace process/thread lanes; `phase` is the human-readable
/// lane label ("job", "setup", "map", "reduce", …).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanKey {
    /// Schedule / run identifier.
    pub run: u32,
    /// Cluster node index.
    pub node: u32,
    /// Per-node job handle (unique within a node simulator).
    pub job: u64,
    /// Phase label: "job", "setup", "map", "reduce", …
    ///
    /// A static string rather than `String`: span keys are constructed on
    /// the executor's per-event hot path even when recording is off, so the
    /// key must be buildable without touching the heap. Every phase label
    /// in the stack is a compile-time literal anyway.
    pub phase: &'static str,
}

impl SpanKey {
    /// Convenience constructor.
    pub fn new(run: u32, node: u32, job: u64, phase: &'static str) -> SpanKey {
        SpanKey {
            run,
            node,
            job,
            phase,
        }
    }
}

/// A discrete event with a typed payload.
///
/// Payloads use plain types (strings, numbers) rather than domain types so
/// the telemetry crate stays a dependency-free leaf that every layer of
/// the stack can record into.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A job entered the wait queue.
    JobSubmit {
        /// Application name.
        app: String,
        /// Behaviour class letter (C/M/I/H/L …) assigned by the classifier.
        class: char,
    },
    /// The scheduler placed a job on a node.
    JobPlace {
        /// Application name.
        app: String,
        /// Mapper slots granted by the tuned configuration.
        mappers: u32,
    },
    /// A job left a node simulator with its metrics.
    JobFinish {
        /// Application name.
        app: String,
        /// Simulated execution time, seconds.
        exec_time_s: f64,
    },
    /// A memoized evaluation was served from cache.
    CacheHit {
        /// Which cache: "solo", "pair", "sweep", …
        cache: &'static str,
    },
    /// A memoized evaluation had to simulate.
    CacheMiss {
        /// Which cache: "solo", "pair", "sweep", …
        cache: &'static str,
    },
    /// An injected fault fired on a node.
    FaultFired {
        /// Fault kind, e.g. "node-crash", "node-slowdown", "straggler".
        kind: String,
    },
    /// A fault is scheduled to fire (emitted when a plan is registered).
    FaultPlanned {
        /// Fault kind, e.g. "node-crash", "node-slowdown", "straggler".
        kind: String,
    },
    /// A transient evaluation failure triggered a retry.
    Retry {
        /// Backoff charged to the schedule, seconds.
        backoff_s: f64,
    },
    /// A degraded evaluation fell back to a safe default.
    Fallback {
        /// What fell back, e.g. "engine", "config".
        what: &'static str,
    },
    /// A straggling task was cloned onto spare slots.
    SpeculativeClone {
        /// Extra slots granted to the clone.
        extra_slots: u32,
    },
    /// A displaced job went back to the head of the wait queue.
    Requeue {
        /// Application name.
        app: String,
    },
}

impl Event {
    /// Short stable name used as the Chrome-trace event name.
    pub fn name(&self) -> &'static str {
        match self {
            Event::JobSubmit { .. } => "job-submit",
            Event::JobPlace { .. } => "job-place",
            Event::JobFinish { .. } => "job-finish",
            Event::CacheHit { .. } => "cache-hit",
            Event::CacheMiss { .. } => "cache-miss",
            Event::FaultFired { .. } => "fault-fired",
            Event::FaultPlanned { .. } => "fault-planned",
            Event::Retry { .. } => "retry",
            Event::Fallback { .. } => "fallback",
            Event::SpeculativeClone { .. } => "speculative-clone",
            Event::Requeue { .. } => "requeue",
        }
    }
}

/// One record in the trace log.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A closed interval on the simulated clock.
    Span {
        /// Span identity.
        key: SpanKey,
        /// Interval start, simulated seconds.
        start_s: f64,
        /// Interval end, simulated seconds.
        end_s: f64,
    },
    /// A discrete event.
    Instant {
        /// Timestamp, simulated seconds.
        t_s: f64,
        /// Node the event is attributed to, when node-local.
        node: Option<u32>,
        /// Job the event is attributed to, when job-local.
        job: Option<u64>,
        /// The typed payload.
        event: Event,
    },
    /// A sampled counter track (renders as a Chrome-trace "C" event).
    CounterSample {
        /// Timestamp, simulated seconds.
        t_s: f64,
        /// Track name, e.g. "queue.depth".
        name: String,
        /// Sampled value.
        value: u64,
    },
}

impl TraceEvent {
    /// Timestamp used for canonical ordering (span start for spans).
    pub fn t_s(&self) -> f64 {
        match self {
            TraceEvent::Span { start_s, .. } => *start_s,
            TraceEvent::Instant { t_s, .. } => *t_s,
            TraceEvent::CounterSample { t_s, .. } => *t_s,
        }
    }
}
