//! The [`Recorder`] handle threaded through every layer of the stack.

use crate::event::{Event, SpanKey, TraceEvent};
use crate::metrics::Registry;
use std::sync::{Arc, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[derive(Debug, Default)]
struct Log {
    events: Vec<TraceEvent>,
    /// Open spans, in enter order; exit closes the most recent match
    /// (LIFO), which gives natural nesting.
    open: Vec<(SpanKey, f64)>,
}

/// Cheap, clonable handle for recording metrics and trace events.
///
/// Two flavours:
///
/// * [`Recorder::noop`] (the `Default`): the metrics [`Registry`] is live —
///   counters/gauges/histograms cost exactly the relaxed atomics they are
///   made of — but trace events are dropped *without constructing their
///   payloads* ([`Recorder::emit`] takes a closure for this reason).
/// * [`Recorder::recording`]: additionally appends every span and event to
///   an in-memory log, which [`Recorder::events`] returns in a canonical
///   deterministic order.
///
/// Instrumented code must behave bit-identically under both flavours: the
/// recorder observes the simulation, it never steers it.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    metrics: Registry,
    log: Option<Arc<Mutex<Log>>>,
}

impl Recorder {
    /// Metrics-only recorder (the default): trace events are dropped.
    pub fn noop() -> Recorder {
        Recorder::default()
    }

    /// Recorder that also keeps the full trace event log.
    pub fn recording() -> Recorder {
        Recorder {
            metrics: Registry::default(),
            log: Some(Arc::new(Mutex::new(Log::default()))),
        }
    }

    /// True when trace events are being kept.
    pub fn is_recording(&self) -> bool {
        self.log.is_some()
    }

    /// The metrics registry this recorder writes through to.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Record a discrete event at simulated time `t_s`, attributed to an
    /// optional node/job. The payload closure runs only when recording.
    pub fn emit<F>(&self, t_s: f64, node: Option<u32>, job: Option<u64>, make: F)
    where
        F: FnOnce() -> Event,
    {
        if let Some(log) = &self.log {
            lock(log).events.push(TraceEvent::Instant {
                t_s,
                node,
                job,
                event: make(),
            });
        }
    }

    /// Record a sampled counter track value (e.g. queue depth over time).
    pub fn counter_sample(&self, t_s: f64, name: &str, value: u64) {
        if let Some(log) = &self.log {
            lock(log).events.push(TraceEvent::CounterSample {
                t_s,
                name: name.to_string(),
                value,
            });
        }
    }

    /// Open a span at simulated time `t_s`. Pair with
    /// [`Recorder::span_exit`]; spans left open are closed at the log's
    /// maximum timestamp on export.
    pub fn span_enter(&self, key: SpanKey, t_s: f64) {
        if let Some(log) = &self.log {
            lock(log).open.push((key, t_s));
        }
    }

    /// Close the most recently opened span matching `key` at `t_s`.
    /// A no-op (not an error) when no such span is open, so instrumented
    /// code never has to branch on recorder state.
    pub fn span_exit(&self, key: &SpanKey, t_s: f64) {
        if let Some(log) = &self.log {
            let mut g = lock(log);
            if let Some(pos) = g.open.iter().rposition(|(k, _)| k == key) {
                let (key, start_s) = g.open.remove(pos);
                g.events.push(TraceEvent::Span {
                    key,
                    start_s,
                    end_s: t_s,
                });
            }
        }
    }

    /// Record an already-closed interval directly.
    pub fn span(&self, key: SpanKey, start_s: f64, end_s: f64) {
        if let Some(log) = &self.log {
            lock(log).events.push(TraceEvent::Span {
                key,
                start_s,
                end_s,
            });
        }
    }

    /// Snapshot the trace log in canonical order: sorted by timestamp,
    /// ties broken on the full serialized record. Identical events are
    /// interchangeable, so this yields byte-identical exports even when
    /// events were pushed from parallel workers in a different
    /// interleaving. Spans still open are closed at the log's maximum
    /// timestamp. Empty when the recorder is a no-op.
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(log) = &self.log else {
            return Vec::new();
        };
        let g = lock(log);
        let mut events = g.events.clone();
        let horizon = events
            .iter()
            .map(|e| match e {
                TraceEvent::Span { end_s, .. } => *end_s,
                other => other.t_s(),
            })
            .chain(g.open.iter().map(|(_, t)| *t))
            .fold(0.0f64, f64::max);
        for (key, start_s) in g.open.iter() {
            events.push(TraceEvent::Span {
                key: *key,
                start_s: *start_s,
                end_s: horizon,
            });
        }
        drop(g);
        events.sort_by(|a, b| {
            a.t_s()
                .total_cmp(&b.t_s())
                .then_with(|| format!("{a:?}").cmp(&format!("{b:?}")))
        });
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_keeps_metrics_but_drops_events() {
        let r = Recorder::noop();
        assert!(!r.is_recording());
        r.metrics().counter("c").inc();
        let mut built = false;
        r.emit(1.0, None, None, || {
            built = true;
            Event::Retry { backoff_s: 1.0 }
        });
        assert!(!built, "no-op recorder must not construct payloads");
        assert!(r.events().is_empty());
        assert_eq!(r.metrics().snapshot().counter("c"), 1);
    }

    #[test]
    fn spans_nest_and_close_lifo() {
        let r = Recorder::recording();
        let job = SpanKey::new(0, 1, 7, "job");
        let map = SpanKey::new(0, 1, 7, "map");
        r.span_enter(job, 0.0);
        r.span_enter(map, 1.0);
        r.span_exit(&map, 5.0);
        r.span_exit(&job, 9.0);
        let ev = r.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(
            ev[0],
            TraceEvent::Span {
                key: job,
                start_s: 0.0,
                end_s: 9.0
            }
        );
        assert_eq!(
            ev[1],
            TraceEvent::Span {
                key: map,
                start_s: 1.0,
                end_s: 5.0
            }
        );
    }

    #[test]
    fn open_spans_close_at_horizon_on_export() {
        let r = Recorder::recording();
        r.span_enter(SpanKey::new(0, 0, 1, "job"), 2.0);
        r.emit(10.0, None, None, || Event::Retry { backoff_s: 0.5 });
        let ev = r.events();
        assert!(ev.iter().any(|e| matches!(
            e,
            TraceEvent::Span { end_s, .. } if *end_s == 10.0
        )));
    }

    #[test]
    fn export_order_is_independent_of_push_order() {
        let mk = |order: &[u32]| {
            let r = Recorder::recording();
            for &n in order {
                r.emit(1.0, Some(n), None, || Event::CacheHit { cache: "solo" });
            }
            r.events()
        };
        assert_eq!(mk(&[0, 1, 2]), mk(&[2, 0, 1]));
    }

    #[test]
    fn exit_without_enter_is_a_noop() {
        let r = Recorder::recording();
        r.span_exit(&SpanKey::new(0, 0, 0, "job"), 1.0);
        assert!(r.events().is_empty());
    }
}
