//! Exporters: Chrome `trace_event` JSON, per-node occupancy / Gantt
//! summary, and a text metrics report.
//!
//! All output is built from canonically ordered inputs
//! ([`crate::Recorder::events`] and [`crate::Registry::snapshot`]) with
//! fixed-precision number formatting, so same-seed runs export
//! byte-identical files.

use crate::event::{Event, TraceEvent};
use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;

/// Simulated seconds → Chrome-trace microseconds, fixed precision.
fn ts(t_s: f64) -> String {
    format!("{:.3}", t_s * 1e6)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the typed payload of an [`Event`] as a JSON `args` object.
fn args_json(event: &Event) -> String {
    match event {
        Event::JobSubmit { app, class } => {
            format!(r#"{{"app":"{}","class":"{}"}}"#, esc(app), class)
        }
        Event::JobPlace { app, mappers } => {
            format!(r#"{{"app":"{}","mappers":{}}}"#, esc(app), mappers)
        }
        Event::JobFinish { app, exec_time_s } => {
            format!(
                r#"{{"app":"{}","exec_time_s":{:.6}}}"#,
                esc(app),
                exec_time_s
            )
        }
        Event::CacheHit { cache } | Event::CacheMiss { cache } => {
            format!(r#"{{"cache":"{}"}}"#, esc(cache))
        }
        Event::FaultFired { kind } | Event::FaultPlanned { kind } => {
            format!(r#"{{"kind":"{}"}}"#, esc(kind))
        }
        Event::Retry { backoff_s } => format!(r#"{{"backoff_s":{backoff_s:.6}}}"#),
        Event::Fallback { what } => format!(r#"{{"what":"{}"}}"#, esc(what)),
        Event::SpeculativeClone { extra_slots } => {
            format!(r#"{{"extra_slots":{extra_slots}}}"#)
        }
        Event::Requeue { app } => format!(r#"{{"app":"{}"}}"#, esc(app)),
    }
}

/// Export a canonically ordered event log as Chrome `trace_event` JSON.
///
/// The format is the "JSON Array Format" understood by Perfetto and
/// `chrome://tracing`: spans become complete ("X") events with the node as
/// the process lane and the job as the thread lane; discrete events become
/// instants ("i"); counter samples become counter ("C") tracks. Timestamps
/// are simulated microseconds.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut lines = Vec::with_capacity(events.len());
    for e in events {
        match e {
            TraceEvent::Span {
                key,
                start_s,
                end_s,
            } => {
                let dur = (end_s - start_s).max(0.0);
                lines.push(format!(
                    r#"{{"name":"{}","cat":"span","ph":"X","ts":{},"dur":{},"pid":{},"tid":{},"args":{{"run":{}}}}}"#,
                    esc(key.phase),
                    ts(*start_s),
                    ts(dur),
                    key.node,
                    key.job,
                    key.run
                ));
            }
            TraceEvent::Instant {
                t_s,
                node,
                job,
                event,
            } => {
                let scope = if node.is_some() { "p" } else { "g" };
                lines.push(format!(
                    r#"{{"name":"{}","cat":"event","ph":"i","s":"{}","ts":{},"pid":{},"tid":{},"args":{}}}"#,
                    event.name(),
                    scope,
                    ts(*t_s),
                    node.unwrap_or(0),
                    job.unwrap_or(0),
                    args_json(event)
                ));
            }
            TraceEvent::CounterSample { t_s, name, value } => {
                lines.push(format!(
                    r#"{{"name":"{}","ph":"C","ts":{},"pid":0,"tid":0,"args":{{"value":{}}}}}"#,
                    esc(name),
                    ts(*t_s),
                    value
                ));
            }
        }
    }
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Merge a set of `(start, end)` intervals and return total covered time.
fn union_s(mut iv: Vec<(f64, f64)>) -> f64 {
    iv.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut total = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    for (s, e) in iv {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Per-node occupancy table plus a Gantt listing of every span.
///
/// Occupancy is the union of each node's "job" spans over the trace
/// horizon (the maximum span end), so co-located jobs do not double-count.
pub fn occupancy_summary(events: &[TraceEvent]) -> String {
    let spans: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Span {
                key,
                start_s,
                end_s,
            } => Some((key, *start_s, *end_s)),
            _ => None,
        })
        .collect();
    let horizon = spans.iter().map(|(_, _, e)| *e).fold(0.0f64, f64::max);

    let mut nodes: Vec<u32> = spans.iter().map(|(k, _, _)| k.node).collect();
    nodes.sort_unstable();
    nodes.dedup();

    let mut out = String::new();
    let _ = writeln!(out, "# per-node occupancy (horizon {horizon:.3} s)");
    let _ = writeln!(out, "node  jobs  busy_s      busy_frac");
    for n in &nodes {
        let job_spans: Vec<(f64, f64)> = spans
            .iter()
            .filter(|(k, _, _)| k.node == *n && k.phase == "job")
            .map(|(_, s, e)| (*s, *e))
            .collect();
        let jobs = job_spans.len();
        let busy = union_s(job_spans);
        let frac = if horizon > 0.0 { busy / horizon } else { 0.0 };
        let _ = writeln!(out, "{n:<5} {jobs:<5} {busy:<11.3} {frac:.3}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "# gantt (run node job phase start_s -> end_s)");
    for (k, s, e) in &spans {
        let _ = writeln!(
            out,
            "r{} n{} j{:<3} {:<8} {:>12.3} -> {:>12.3}",
            k.run, k.node, k.job, k.phase, s, e
        );
    }
    out
}

/// Text report over a metrics snapshot: counters, gauges and histograms,
/// one per line, in deterministic name order. Subsumes the old
/// `EngineStats` display — every `engine.*` counter appears here.
pub fn text_report(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# counters");
    for (name, v) in &snapshot.counters {
        let _ = writeln!(out, "{name} = {v}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "# gauges (count / mean / max)");
    for (name, g) in &snapshot.gauges {
        let _ = writeln!(
            out,
            "{name} = {} samples, mean {:.3}, max {}",
            g.count, g.mean, g.max
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "# histograms (count / mean / buckets)");
    for (name, h) in &snapshot.histograms {
        let buckets: Vec<String> = h
            .bounds
            .iter()
            .map(|b| format!("{b:.3}"))
            .chain(std::iter::once("inf".to_string()))
            .zip(h.buckets.iter())
            .map(|(b, c)| format!("<={b}:{c}"))
            .collect();
        let _ = writeln!(
            out,
            "{name} = {} samples, mean {:.6}, [{}]",
            h.count,
            if h.count == 0 {
                0.0
            } else {
                h.sum / h.count as f64
            },
            buckets.join(" ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanKey;
    use crate::metrics::Registry;
    use crate::recorder::Recorder;

    fn sample_events() -> Vec<TraceEvent> {
        let r = Recorder::recording();
        r.span(SpanKey::new(0, 0, 1, "job"), 0.0, 10.0);
        r.span(SpanKey::new(0, 0, 1, "map"), 0.0, 8.0);
        r.span(SpanKey::new(0, 0, 2, "job"), 5.0, 12.0);
        r.emit(3.0, Some(0), Some(1), || Event::FaultFired {
            kind: "straggler".to_string(),
        });
        r.counter_sample(4.0, "queue.depth", 2);
        r.events()
    }

    #[test]
    fn chrome_trace_is_valid_shape_and_deterministic() {
        let a = chrome_trace_json(&sample_events());
        let b = chrome_trace_json(&sample_events());
        assert_eq!(a, b);
        assert!(a.starts_with("{\"displayTimeUnit\""));
        assert!(a.contains(r#""ph":"X""#));
        assert!(a.contains(r#""ph":"i""#));
        assert!(a.contains(r#""ph":"C""#));
        assert!(a.trim_end().ends_with("]}"));
        // Balanced braces — a cheap well-formedness check without a parser.
        let open = a.matches('{').count();
        let close = a.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn occupancy_unions_overlapping_jobs() {
        let s = occupancy_summary(&sample_events());
        // Node 0 runs jobs over [0,10] ∪ [5,12] = 12 s of a 12 s horizon.
        assert!(s.contains("0     2     12.000      1.000"), "{s}");
    }

    #[test]
    fn text_report_lists_all_kinds() {
        let reg = Registry::default();
        reg.counter("engine.runs").add(3);
        reg.gauge("queue.depth").sample(4);
        reg.histogram("stage.map_s", &[1.0])
            .expect("bounds")
            .record(0.5);
        let rep = text_report(&reg.snapshot());
        assert!(rep.contains("engine.runs = 3"));
        assert!(rep.contains("queue.depth = 1 samples, mean 4.000, max 4"));
        assert!(rep.contains("stage.map_s = 1 samples"));
    }

    #[test]
    fn json_escaping_handles_quotes() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
    }
}
