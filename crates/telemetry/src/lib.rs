//! Observability substrate for the ECoST reproduction.
//!
//! The simulation stack has four layers — the hardware substrate
//! (`ecost-sim`), the MapReduce execution model (`ecost-mapreduce`), the
//! controller (`ecost-core`) and the experiment harness (`ecost-bench`) —
//! and until now the only introspection across them was the flat
//! `EngineStats` counter block. This crate provides the shared
//! observability layer they all record into:
//!
//! * a [`Registry`] of named [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   [`Histogram`]s, cheap enough for hot paths (plain atomics, handles
//!   resolved once and cached by the caller);
//! * span-based tracing **on the simulated clock** — [`Recorder::span_enter`]
//!   / [`Recorder::span_exit`] records keyed on (run, node, job, phase),
//!   producing a deterministic event log;
//! * a structured event bus for discrete [`Event`]s (job submit / place /
//!   finish, cache hit / miss, fault fired, retry, fallback, speculative
//!   clone) with typed payloads;
//! * exporters: Chrome `trace_event`-compatible JSON (opens in Perfetto),
//!   a per-node occupancy / Gantt summary, and a text metrics report.
//!
//! The central handle is the [`Recorder`]. Its default ([`Recorder::noop`])
//! keeps the metrics registry live — counters are exactly as cheap as the
//! hand-rolled atomics they replace — but drops all trace events without
//! even constructing their payloads, so instrumented code paths stay
//! bit-identical in output and effectively free when nobody is looking.
//!
//! Timestamps are **simulated seconds only**. Nothing in this crate reads
//! the wall clock, so two runs with the same seed export byte-identical
//! traces (the event log is canonically sorted on export; see
//! [`Recorder::events`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod event;
mod export;
mod metrics;
mod recorder;

pub use error::TelemetryError;
pub use event::{Event, SpanKey, TraceEvent};
pub use export::{chrome_trace_json, occupancy_summary, text_report};
pub use metrics::{
    Counter, Gauge, GaugeStats, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use recorder::Recorder;
