//! Named metric instruments: counters, gauges and fixed-bucket histograms.
//!
//! All instruments are `Arc`-shared handles over atomics: cloning is cheap,
//! recording is a relaxed atomic op, and handles stay valid after the
//! registry that minted them is gone. Callers on hot paths resolve a handle
//! once and cache it — the registry's `Mutex` is touched only at
//! registration and snapshot time.
//!
//! Determinism: every accumulator is an integer (`u64`), including the
//! histogram sample sum, which is kept in fixed-point microseconds. Integer
//! addition is associative, so values recorded from parallel workers (the
//! engine's rayon sweeps) land on the same totals regardless of
//! interleaving, and two same-seed runs snapshot identically.

use crate::error::TelemetryError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Lock a mutex, recovering the data from a poisoned lock (telemetry must
/// never propagate a panic from an unrelated thread).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Monotonic event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sampled instantaneous value (e.g. queue depth): tracks count, sum and
/// max of the samples; the mean is derived.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<GaugeInner>);

#[derive(Debug, Default)]
struct GaugeInner {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// Record one observation.
    pub fn sample(&self, v: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Current aggregate statistics.
    pub fn stats(&self) -> GaugeStats {
        GaugeStats {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            mean: self.mean(),
        }
    }
}

/// Point-in-time aggregate of a [`Gauge`].
#[derive(Clone, Debug, PartialEq)]
pub struct GaugeStats {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Mean observation (0.0 when empty).
    pub mean: f64,
}

/// Fixed-point scale for histogram sample sums: one micro-unit.
const SUM_SCALE: f64 = 1e6;

/// Fixed-bucket histogram with merge support.
///
/// Bucket `i` counts samples `v <= bounds[i]` (with `v > bounds[i-1]`);
/// one extra overflow bucket counts everything above the last bound. The
/// sample sum is kept in fixed-point micro-units so that merging two
/// histograms is *exactly* the histogram of the concatenated samples.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

#[derive(Debug)]
struct HistInner {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    /// Histogram over the given upper bounds. Bounds must be finite and
    /// strictly increasing; an empty slice yields a single overflow bucket.
    pub fn new(bounds: &[f64]) -> Result<Histogram, TelemetryError> {
        let finite = bounds.iter().all(|b| b.is_finite());
        let increasing = bounds.windows(2).all(|w| w[0] < w[1]);
        if !finite || !increasing {
            return Err(TelemetryError::InvalidBounds);
        }
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Ok(Histogram(Arc::new(HistInner {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        })))
    }

    /// Record one sample. Non-finite or negative samples count toward the
    /// total and land in a bucket, but contribute 0 to the sum.
    pub fn record(&self, v: f64) {
        let idx = self.0.bounds.partition_point(|b| v > *b);
        if let Some(bucket) = self.0.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum_micros.fetch_add(to_micros(v), Ordering::Relaxed);
    }

    /// Fold `other` into `self`. Fails unless the bucket bounds are
    /// identical. `other` is left untouched.
    pub fn merge_from(&self, other: &Histogram) -> Result<(), TelemetryError> {
        if self.0.bounds != other.0.bounds {
            return Err(TelemetryError::BucketMismatch {
                name: String::new(),
            });
        }
        for (dst, src) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.0
            .count
            .fetch_add(other.0.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0.sum_micros.fetch_add(
            other.0.sum_micros.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        Ok(())
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of samples (reconstructed from fixed-point micro-units).
    pub fn sum(&self) -> f64 {
        self.0.sum_micros.load(Ordering::Relaxed) as f64 / SUM_SCALE
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// The configured bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Quantile estimate: the upper bound of the bucket containing the
    /// rank-`q` sample. Samples in the overflow bucket have no upper bound,
    /// so a quantile landing there reports `f64::INFINITY`. `None` when the
    /// histogram is empty; `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = ((q * n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return Some(self.0.bounds.get(i).copied().unwrap_or(f64::INFINITY));
            }
        }
        Some(f64::INFINITY)
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.clone(),
            buckets: self.bucket_counts(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Value equality: same bounds, same bucket counts, same count and same
/// fixed-point sum. Two histograms fed the same samples in any order
/// compare equal.
impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.0.bounds == other.0.bounds
            && self.bucket_counts() == other.bucket_counts()
            && self.count() == other.count()
            && self.0.sum_micros.load(Ordering::Relaxed)
                == other.0.sum_micros.load(Ordering::Relaxed)
    }
}

/// Convert a sample to fixed-point micro-units (0 for non-finite or
/// negative samples, saturating well beyond any simulated duration).
fn to_micros(v: f64) -> u64 {
    if v.is_finite() && v > 0.0 {
        (v * SUM_SCALE).round() as u64
    } else {
        0
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; last entry is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: f64,
}

/// Named instrument registry. Cloning shares the underlying store; names
/// are namespaced per instrument kind and iterate in lexicographic order,
/// so snapshots are deterministic.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Get or create the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut g = lock(&self.inner);
        match g.counters.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter::default();
                g.counters.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// Get or create the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut g = lock(&self.inner);
        match g.gauges.get(name) {
            Some(gg) => gg.clone(),
            None => {
                let gg = Gauge::default();
                g.gauges.insert(name.to_string(), gg.clone());
                gg
            }
        }
    }

    /// Get or create the histogram called `name` with the given bucket
    /// bounds. Re-registering an existing name with different bounds is a
    /// [`TelemetryError::BucketMismatch`].
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Result<Histogram, TelemetryError> {
        let mut g = lock(&self.inner);
        if let Some(h) = g.histograms.get(name) {
            if h.bounds() != bounds {
                return Err(TelemetryError::BucketMismatch {
                    name: name.to_string(),
                });
            }
            return Ok(h.clone());
        }
        let h = Histogram::new(bounds)?;
        g.histograms.insert(name.to_string(), h.clone());
        Ok(h)
    }

    /// Fold every instrument of `other` into this registry, creating
    /// same-named instruments as needed. Histogram merges require matching
    /// bounds.
    pub fn merge(&self, other: &Registry) -> Result<(), TelemetryError> {
        // Clone the handle maps out so the two registry locks are never
        // held at once (self and other may share storage).
        let (counters, gauges, histograms) = {
            let g = lock(&other.inner);
            (g.counters.clone(), g.gauges.clone(), g.histograms.clone())
        };
        for (name, src) in counters {
            self.counter(&name).add(src.get());
        }
        for (name, src) in gauges {
            let dst = self.gauge(&name);
            dst.0.count.fetch_add(src.count(), Ordering::Relaxed);
            dst.0.sum.fetch_add(src.sum(), Ordering::Relaxed);
            dst.0.max.fetch_max(src.max(), Ordering::Relaxed);
        }
        for (name, src) in histograms {
            self.histogram(&name, src.bounds())?.merge_from(&src)?;
        }
        Ok(())
    }

    /// Deterministic point-in-time copy of every instrument, sorted by
    /// name within each kind.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = lock(&self.inner);
        MetricsSnapshot {
            counters: g
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: g
                .gauges
                .iter()
                .map(|(n, gg)| (n.clone(), gg.stats()))
                .collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Deterministic point-in-time copy of a [`Registry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, stats)` for every gauge, sorted by name.
    pub gauges: Vec<(String, GaugeStats)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of the counter called `name` (0 when absent — counters that
    /// were never touched and counters at zero are indistinguishable).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Stats of the gauge called `name`, when present.
    pub fn gauge(&self, name: &str) -> Option<&GaugeStats> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::default();
        let c = r.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("x").get(), 5);

        let g = r.gauge("depth");
        g.sample(3);
        g.sample(1);
        g.sample(8);
        assert_eq!(g.count(), 3);
        assert_eq!(g.max(), 8);
        assert!((g.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[1.0, 10.0]).expect("bounds");
        for v in [0.5, 0.9, 5.0, 50.0] {
            h.record(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.25), Some(1.0));
        assert_eq!(h.quantile(0.75), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
        assert!((h.sum() - 56.4).abs() < 1e-6);
    }

    #[test]
    fn invalid_bounds_rejected() {
        assert_eq!(
            Histogram::new(&[1.0, 1.0]),
            Err(TelemetryError::InvalidBounds)
        );
        assert_eq!(
            Histogram::new(&[f64::NAN]),
            Err(TelemetryError::InvalidBounds)
        );
        assert!(Histogram::new(&[]).is_ok());
    }

    #[test]
    fn registry_rejects_rebinding_with_different_bounds() {
        let r = Registry::default();
        r.histogram("h", &[1.0]).expect("first");
        assert!(matches!(
            r.histogram("h", &[2.0]),
            Err(TelemetryError::BucketMismatch { .. })
        ));
    }

    #[test]
    fn registry_merge_accumulates() {
        let a = Registry::default();
        let b = Registry::default();
        a.counter("c").add(2);
        b.counter("c").add(3);
        b.counter("only-b").inc();
        a.gauge("g").sample(10);
        b.gauge("g").sample(4);
        a.histogram("h", &[1.0]).expect("h").record(0.5);
        b.histogram("h", &[1.0]).expect("h").record(2.0);
        a.merge(&b).expect("merge");
        let snap = a.snapshot();
        assert_eq!(snap.counter("c"), 5);
        assert_eq!(snap.counter("only-b"), 1);
        let g = snap.gauge("g").expect("gauge");
        assert_eq!((g.count, g.sum, g.max), (2, 14, 10));
        let (_, h) = &snap.histograms[0];
        assert_eq!(h.buckets, vec![1, 1]);
    }
}
