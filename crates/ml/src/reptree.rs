//! REPTree: a regression tree grown on variance reduction and pruned with
//! Reduced-Error Pruning against a held-out set — a faithful re-creation of
//! the Weka model the paper selects as its best accuracy/complexity
//! trade-off (§7.2).

use crate::dataset::Dataset;
use crate::model::Regressor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tree growth/pruning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RepTreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
    /// Fraction of the training data held out for reduced-error pruning.
    /// Zero disables pruning (pure greedy tree).
    pub prune_fraction: f64,
    /// Seed for the grow/prune split.
    pub seed: u64,
}

impl Default for RepTreeConfig {
    fn default() -> RepTreeConfig {
        RepTreeConfig {
            max_depth: 24,
            min_samples_split: 8,
            min_samples_leaf: 2,
            prune_fraction: 0.25,
            seed: 0x9e37,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Mean of the training rows at this node (used when collapsing).
        value: f64,
        left: usize,
        right: usize,
    },
}

/// The fitted tree.
///
/// ```
/// use ecost_ml::{RepTree, RepTreeConfig, Dataset};
/// use ecost_ml::model::Regressor;
///
/// let mut data = Dataset::new(vec!["x".into()], "y");
/// for i in 0..100 {
///     let x = i as f64;
///     data.push(vec![x], if x < 50.0 { 1.0 } else { 9.0 });
/// }
/// let mut tree = RepTree::new(RepTreeConfig::default());
/// tree.fit(&data);
/// assert_eq!(tree.predict(&[10.0]), 1.0);
/// assert_eq!(tree.predict(&[90.0]), 9.0);
/// ```
#[derive(Debug, Clone)]
pub struct RepTree {
    config: RepTreeConfig,
    nodes: Vec<Node>,
    root: usize,
    n_features: usize,
}

impl RepTree {
    /// New unfitted tree.
    pub fn new(config: RepTreeConfig) -> RepTree {
        RepTree {
            config,
            nodes: Vec::new(),
            root: 0,
            n_features: 0,
        }
    }

    /// Number of reachable nodes after fitting (leaves + splits). Pruned
    /// subtrees stay in the arena but are no longer reachable.
    pub fn node_count(&self) -> usize {
        let (splits, leaves) = self.walk(self.root);
        splits + leaves
    }

    /// Number of reachable leaves after fitting.
    pub fn leaf_count(&self) -> usize {
        self.walk(self.root).1
    }

    /// `(splits, leaves)` reachable from `node`.
    fn walk(&self, node: usize) -> (usize, usize) {
        if self.nodes.is_empty() {
            return (0, 0);
        }
        match self.nodes[node] {
            Node::Leaf { .. } => (0, 1),
            Node::Split { left, right, .. } => {
                let (sl, ll) = self.walk(left);
                let (sr, lr) = self.walk(right);
                (sl + sr + 1, ll + lr)
            }
        }
    }

    fn mean(y: &[f64], idx: &[usize]) -> f64 {
        idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64
    }

    fn build(&mut self, x: &[Vec<f64>], y: &[f64], idx: &[usize], depth: usize) -> usize {
        let value = Self::mean(y, idx);
        let stop = depth >= self.config.max_depth
            || idx.len() < self.config.min_samples_split
            || idx.iter().all(|&i| (y[i] - value).abs() < 1e-12);
        if stop {
            self.nodes.push(Node::Leaf { value });
            return self.nodes.len() - 1;
        }

        // Best split by SSE reduction, scanning sorted values per feature
        // with prefix sums.
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        let base_sse = {
            let m = value;
            idx.iter().map(|&i| (y[i] - m) * (y[i] - m)).sum::<f64>()
        };
        let n = idx.len();
        let min_leaf = self.config.min_samples_leaf.max(1);
        let mut order: Vec<usize> = idx.to_vec();
        #[allow(clippy::needless_range_loop)] // f indexes the inner per-row vecs
        for f in 0..self.n_features {
            order.sort_unstable_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).expect("finite"));
            let mut sum_l = 0.0;
            let mut sq_l = 0.0;
            let total_sum: f64 = order.iter().map(|&i| y[i]).sum();
            let total_sq: f64 = order.iter().map(|&i| y[i] * y[i]).sum();
            for split in 1..n {
                let i = order[split - 1];
                sum_l += y[i];
                sq_l += y[i] * y[i];
                // Cannot split between equal feature values.
                if x[order[split - 1]][f] >= x[order[split]][f] - 1e-15 {
                    continue;
                }
                if split < min_leaf || n - split < min_leaf {
                    continue;
                }
                let nl = split as f64;
                let nr = (n - split) as f64;
                let sum_r = total_sum - sum_l;
                let sq_r = total_sq - sq_l;
                let sse = (sq_l - sum_l * sum_l / nl) + (sq_r - sum_r * sum_r / nr);
                if best.map_or(sse < base_sse - 1e-12, |(_, _, b)| sse < b) {
                    let thr = 0.5 * (x[order[split - 1]][f] + x[order[split]][f]);
                    best = Some((f, thr, sse));
                }
            }
        }

        let Some((feature, threshold, _)) = best else {
            self.nodes.push(Node::Leaf { value });
            return self.nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[i][feature] <= threshold);
        debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
        let left = self.build(x, y, &left_idx, depth + 1);
        let right = self.build(x, y, &right_idx, depth + 1);
        self.nodes.push(Node::Split {
            feature,
            threshold,
            value,
            left,
            right,
        });
        self.nodes.len() - 1
    }

    /// Reduced-error pruning: bottom-up, collapse a split to a leaf whenever
    /// doing so does not increase SSE on the held-out rows routed to it.
    /// Returns the holdout SSE of the (possibly collapsed) subtree.
    fn prune(&mut self, node: usize, x: &[Vec<f64>], y: &[f64], hold: &[usize]) -> f64 {
        match self.nodes[node] {
            Node::Leaf { value } => hold.iter().map(|&i| (y[i] - value) * (y[i] - value)).sum(),
            Node::Split {
                feature,
                threshold,
                value,
                left,
                right,
            } => {
                let (hl, hr): (Vec<usize>, Vec<usize>) =
                    hold.iter().partition(|&&i| x[i][feature] <= threshold);
                let sse_children = self.prune(left, x, y, &hl) + self.prune(right, x, y, &hr);
                let sse_leaf: f64 = hold.iter().map(|&i| (y[i] - value) * (y[i] - value)).sum();
                if sse_leaf <= sse_children + 1e-12 {
                    self.nodes[node] = Node::Leaf { value };
                    sse_leaf
                } else {
                    sse_children
                }
            }
        }
    }
}

impl Regressor for RepTree {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on empty data");
        self.nodes.clear();
        self.n_features = data.num_features();

        // Deterministic grow/prune partition.
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let n_prune = if self.config.prune_fraction > 0.0 && data.len() >= 8 {
            ((data.len() as f64 * self.config.prune_fraction) as usize).clamp(1, data.len() - 2)
        } else {
            0
        };
        let (prune_set, grow_set) = order.split_at(n_prune);
        let grow: Vec<usize> = grow_set.to_vec();
        self.root = self.build(&data.x, &data.y, &grow, 0);
        if !prune_set.is_empty() {
            self.prune(self.root, &data.x, &data.y, prune_set);
        }
    }

    fn predict(&self, row: &[f64]) -> f64 {
        assert!(!self.nodes.is_empty(), "fit before predict");
        assert_eq!(row.len(), self.n_features, "arity mismatch");
        let mut node = self.root;
        loop {
            match self.nodes[node] {
                Node::Leaf { value } => return value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if row[feature] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "REPTree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mean_absolute_percentage_error, rmse};

    fn step_data() -> Dataset {
        // Piecewise-constant target: ideal for trees, hopeless for LR.
        let mut d = Dataset::new(vec!["x".into()], "y");
        for i in 0..200 {
            let x = i as f64 / 10.0;
            let y = if x < 5.0 {
                1.0
            } else if x < 12.0 {
                8.0
            } else {
                3.0
            };
            d.push(vec![x], y);
        }
        d
    }

    #[test]
    fn fits_step_function_exactly() {
        let mut t = RepTree::new(RepTreeConfig::default());
        t.fit(&step_data());
        for (x, want) in [(2.0, 1.0), (7.0, 8.0), (15.0, 3.0)] {
            assert!((t.predict(&[x]) - want).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn beats_linear_regression_on_nonlinear_target() {
        use crate::linreg::LinearRegression;
        let mut d = Dataset::new(vec!["x".into()], "y");
        for i in -40..=40 {
            let x = i as f64 / 4.0;
            d.push(vec![x], x * x + 1.0);
        }
        let mut tree = RepTree::new(RepTreeConfig::default());
        let mut lr = LinearRegression::new();
        tree.fit(&d);
        lr.fit(&d);
        let ape_tree = mean_absolute_percentage_error(&d.y, &tree.predict_all(&d.x));
        let ape_lr = mean_absolute_percentage_error(&d.y, &lr.predict_all(&d.x));
        assert!(ape_tree < 0.3 * ape_lr, "tree {ape_tree} lr {ape_lr}");
    }

    #[test]
    fn pruning_shrinks_tree_under_noise() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut d = Dataset::new(vec!["x".into()], "y");
        for i in 0..400 {
            let x = i as f64 / 40.0;
            let y = if x < 5.0 { 0.0 } else { 10.0 };
            d.push(vec![x], y + rng.gen_range(-1.0..1.0));
        }
        let mut pruned = RepTree::new(RepTreeConfig::default());
        let mut raw = RepTree::new(RepTreeConfig {
            prune_fraction: 0.0,
            ..RepTreeConfig::default()
        });
        pruned.fit(&d);
        raw.fit(&d);
        assert!(
            pruned.leaf_count() < raw.leaf_count(),
            "pruned {} raw {}",
            pruned.leaf_count(),
            raw.leaf_count()
        );
        // And still accurate.
        assert!((pruned.predict(&[2.0]) - 0.0).abs() < 0.5);
        assert!((pruned.predict(&[8.0]) - 10.0).abs() < 0.5);
    }

    #[test]
    fn respects_max_depth() {
        let mut t = RepTree::new(RepTreeConfig {
            max_depth: 1,
            prune_fraction: 0.0,
            ..RepTreeConfig::default()
        });
        t.fit(&step_data());
        // Depth-1 tree has at most 3 nodes.
        assert!(t.node_count() <= 3);
    }

    #[test]
    fn multifeature_split_selects_informative_feature() {
        // Feature 0 is noise; feature 1 determines the target.
        let mut d = Dataset::new(vec!["noise".into(), "signal".into()], "y");
        for i in 0..100 {
            let noise = ((i * 37) % 17) as f64;
            let signal = (i % 2) as f64;
            d.push(vec![noise, signal], 100.0 * signal);
        }
        let mut t = RepTree::new(RepTreeConfig::default());
        t.fit(&d);
        assert!((t.predict(&[3.0, 0.0]) - 0.0).abs() < 1.0);
        assert!((t.predict(&[3.0, 1.0]) - 100.0).abs() < 1.0);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let mut d = Dataset::new(vec!["x".into()], "y");
        for i in 0..50 {
            d.push(vec![i as f64], 7.0);
        }
        let mut t = RepTree::new(RepTreeConfig::default());
        t.fit(&d);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[123.0]), 7.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = step_data();
        let mut a = RepTree::new(RepTreeConfig::default());
        let mut b = RepTree::new(RepTreeConfig::default());
        a.fit(&d);
        b.fit(&d);
        for x in [0.0, 4.9, 5.1, 11.9, 12.1, 19.9] {
            assert_eq!(a.predict(&[x]), b.predict(&[x]));
        }
    }

    #[test]
    fn rmse_small_on_smooth_function() {
        let mut d = Dataset::new(vec!["x".into()], "y");
        for i in 0..500 {
            let x = i as f64 / 50.0;
            d.push(vec![x], (x * 0.8).sin() * 5.0);
        }
        let mut t = RepTree::new(RepTreeConfig::default());
        t.fit(&d);
        let err = rmse(&d.y, &t.predict_all(&d.x));
        assert!(err < 0.5, "rmse {err}");
    }
}
