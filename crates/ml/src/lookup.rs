//! Lookup table keyed by feature similarity (the paper's "LkT" model).
//!
//! Stores `(signature, payload)` entries; a query returns the payload of the
//! nearest stored signature in z-scored feature space. This is exactly
//! LkT-STP's retrieval step: "the classifier chooses the application in the
//! database that best resembles the testing application" and reads off its
//! stored optimal configuration.

use crate::knn::euclidean;
use crate::preprocess::ZScore;

/// Nearest-signature lookup table.
#[derive(Debug, Clone)]
pub struct LookupTable<V> {
    entries: Vec<(Vec<f64>, V)>,
    scaler: Option<ZScore>,
    scaled: Vec<Vec<f64>>,
}

impl<V> LookupTable<V> {
    /// Empty table.
    pub fn new() -> LookupTable<V> {
        LookupTable {
            entries: Vec::new(),
            scaler: None,
            scaled: Vec::new(),
        }
    }

    /// Insert an entry. Call [`LookupTable::build`] after the last insert.
    pub fn insert(&mut self, signature: Vec<f64>, payload: V) {
        if let Some(first) = self.entries.first() {
            assert_eq!(first.0.len(), signature.len(), "signature arity mismatch");
        }
        self.entries.push((signature, payload));
        self.scaler = None;
    }

    /// Fit the internal scaler over the stored signatures. Must be called
    /// after inserts and before queries. A no-op on an empty table — the
    /// caller is expected to check [`LookupTable::is_empty`] before querying
    /// (LkT surfaces that as a typed error).
    pub fn build(&mut self) {
        if self.entries.is_empty() {
            return;
        }
        let rows: Vec<Vec<f64>> = self.entries.iter().map(|(s, _)| s.clone()).collect();
        let scaler = ZScore::fit(&rows);
        self.scaled = scaler.transform_all(&rows);
        self.scaler = Some(scaler);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Payload of the nearest signature, with its distance.
    pub fn query(&self, signature: &[f64]) -> (&V, f64) {
        let scaler = self.scaler.as_ref().expect("build() before query");
        let q = scaler.transform(signature);
        let (idx, dist) = self
            .scaled
            .iter()
            .enumerate()
            .map(|(i, s)| (i, euclidean(s, &q)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        (&self.entries[idx].1, dist)
    }

    /// Iterate over entries.
    pub fn iter(&self) -> impl Iterator<Item = &(Vec<f64>, V)> {
        self.entries.iter()
    }
}

impl<V> Default for LookupTable<V> {
    fn default() -> Self {
        LookupTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_nearest_payload() {
        let mut t = LookupTable::new();
        t.insert(vec![0.0, 0.0], "origin");
        t.insert(vec![10.0, 10.0], "far");
        t.build();
        let (v, d) = t.query(&[1.0, 1.0]);
        assert_eq!(*v, "origin");
        assert!(d > 0.0);
        let (v, _) = t.query(&[9.0, 9.5]);
        assert_eq!(*v, "far");
    }

    #[test]
    fn exact_match_has_zero_distance() {
        let mut t = LookupTable::new();
        t.insert(vec![1.0, 2.0, 3.0], 42u32);
        t.insert(vec![4.0, 5.0, 6.0], 43u32);
        t.build();
        let (v, d) = t.query(&[1.0, 2.0, 3.0]);
        assert_eq!(*v, 42);
        assert!(d < 1e-12);
    }

    #[test]
    #[should_panic(expected = "build() before query")]
    fn query_requires_build() {
        let mut t = LookupTable::new();
        t.insert(vec![1.0], 1u8);
        let _ = t.query(&[1.0]);
    }

    #[test]
    fn scaling_prevents_dominant_feature() {
        let mut t = LookupTable::new();
        // Feature 1 is huge noise; feature 0 carries identity.
        t.insert(vec![0.0, 500_000.0], "a");
        t.insert(vec![0.1, -500_000.0], "a2");
        t.insert(vec![10.0, 500_000.0], "b");
        t.build();
        let (v, _) = t.query(&[9.8, -400_000.0]);
        assert_eq!(*v, "b");
    }
}
