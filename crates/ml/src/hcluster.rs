//! Agglomerative hierarchical clustering (§3.2).
//!
//! The paper groups correlated feature metrics by clustering them in PC
//! space, then keeps one representative per cluster (7 survivors out of 14).
//! This is plain bottom-up agglomeration over Euclidean distance with
//! selectable linkage.

/// Linkage criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance between clusters.
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

/// One merge step of the dendrogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// Indices of the two merged clusters (cluster ids; leaves are
    /// `0..n`, internal nodes continue upward).
    pub left: usize,
    /// Second merged cluster.
    pub right: usize,
    /// Distance at which the merge happened.
    pub distance: f64,
    /// Id assigned to the merged cluster.
    pub id: usize,
}

/// Result of a clustering run.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    /// Number of leaves.
    pub n: usize,
    /// Merges in order of increasing distance.
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Cut the tree into `k` clusters; returns a cluster label per leaf
    /// (labels are arbitrary but consistent, in `0..k`).
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n, "k out of range");
        // Union-find over the first n-k merges.
        let mut parent: Vec<usize> = (0..self.n + self.merges.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for m in self.merges.iter().take(self.n - k) {
            let (a, b) = (find(&mut parent, m.left), find(&mut parent, m.right));
            parent[a] = m.id;
            parent[b] = m.id;
        }
        let mut label_of_root = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(self.n);
        for leaf in 0..self.n {
            let root = find(&mut parent, leaf);
            let next = label_of_root.len();
            let label = *label_of_root.entry(root).or_insert(next);
            labels.push(label);
        }
        labels
    }
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Cluster `points` bottom-up with the given linkage.
pub fn agglomerative(points: &[Vec<f64>], linkage: Linkage) -> Dendrogram {
    let n = points.len();
    assert!(n >= 1, "need at least one point");
    // Active clusters: id → member leaf indices.
    let mut members: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut next_id = n;

    let cluster_dist = |a: &[usize], b: &[usize]| -> f64 {
        let mut best = match linkage {
            Linkage::Single => f64::INFINITY,
            Linkage::Complete => 0.0,
            Linkage::Average => 0.0,
        };
        let mut sum = 0.0;
        for &i in a {
            for &j in b {
                let d = euclid(&points[i], &points[j]);
                match linkage {
                    Linkage::Single => best = best.min(d),
                    Linkage::Complete => best = best.max(d),
                    Linkage::Average => sum += d,
                }
            }
        }
        match linkage {
            Linkage::Average => sum / (a.len() * b.len()) as f64,
            _ => best,
        }
    };

    while members.len() > 1 {
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                let d = cluster_dist(&members[i].1, &members[j].1);
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, d) = best;
        let (rid, right) = members.remove(j);
        let (lid, left) = members.remove(i);
        let mut merged = left;
        merged.extend(right);
        merges.push(Merge {
            left: lid,
            right: rid,
            distance: d,
            id: next_id,
        });
        members.push((next_id, merged));
        next_id += 1;
    }
    Dendrogram { n, merges }
}

/// Convenience: cluster points into `k` groups and pick, per group, the
/// member closest to the group centroid — the paper's "7 most important and
/// distinct" feature selection.
pub fn representatives(points: &[Vec<f64>], k: usize, linkage: Linkage) -> Vec<usize> {
    let dend = agglomerative(points, linkage);
    let labels = dend.cut(k);
    let dim = points[0].len();
    let mut reps = Vec::with_capacity(k);
    for cluster in 0..k {
        let ids: Vec<usize> = (0..points.len())
            .filter(|i| labels[*i] == cluster)
            .collect();
        let mut centroid = vec![0.0; dim];
        for &i in &ids {
            for (c, v) in centroid.iter_mut().zip(&points[i]) {
                *c += v;
            }
        }
        for c in &mut centroid {
            *c /= ids.len() as f64;
        }
        let rep = ids
            .into_iter()
            .min_by(|&a, &b| {
                euclid(&points[a], &centroid)
                    .partial_cmp(&euclid(&points[b], &centroid))
                    .expect("finite")
            })
            .expect("non-empty cluster");
        reps.push(rep);
    }
    reps.sort_unstable();
    reps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            for d in 0..4 {
                pts.push(vec![cx + 0.1 * d as f64, cy - 0.1 * d as f64]);
            }
        }
        pts
    }

    #[test]
    fn recovers_three_blobs() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let labels = agglomerative(&three_blobs(), linkage).cut(3);
            // All members of a blob share a label; blobs differ.
            for blob in 0..3 {
                let l = labels[blob * 4];
                for i in 0..4 {
                    assert_eq!(labels[blob * 4 + i], l, "{linkage:?}");
                }
            }
            assert_ne!(labels[0], labels[4]);
            assert_ne!(labels[4], labels[8]);
        }
    }

    #[test]
    fn cut_k1_is_one_cluster_and_kn_is_all_singletons() {
        let pts = three_blobs();
        let dend = agglomerative(&pts, Linkage::Average);
        let all = dend.cut(1);
        assert!(all.iter().all(|l| *l == all[0]));
        let singles = dend.cut(pts.len());
        let uniq: std::collections::HashSet<_> = singles.iter().collect();
        assert_eq!(uniq.len(), pts.len());
    }

    #[test]
    fn merge_distances_are_nondecreasing_for_single_linkage() {
        let dend = agglomerative(&three_blobs(), Linkage::Single);
        for w in dend.merges.windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-12);
        }
    }

    #[test]
    fn representatives_picks_one_per_blob() {
        let reps = representatives(&three_blobs(), 3, Linkage::Average);
        assert_eq!(reps.len(), 3);
        let blobs: std::collections::HashSet<usize> = reps.iter().map(|r| r / 4).collect();
        assert_eq!(blobs.len(), 3);
    }

    #[test]
    fn single_point_is_its_own_cluster() {
        let dend = agglomerative(&[vec![1.0, 2.0]], Linkage::Complete);
        assert_eq!(dend.cut(1), vec![0]);
        assert!(dend.merges.is_empty());
    }
}
