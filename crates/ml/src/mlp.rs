//! Multilayer perceptron regressor (the paper's "MLP" model).
//!
//! Fully-connected feed-forward network with tanh hidden layers and a linear
//! output, trained by mini-batch SGD with momentum and early stopping on a
//! validation split. Inputs and the target are z-scored internally, so the
//! caller feeds raw features. The paper's MLP is its most accurate and most
//! expensive model (Table 1 / Fig 8) — both properties carry over.

use crate::dataset::Dataset;
use crate::model::Regressor;
use crate::preprocess::ZScore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Network/trainer hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Training epochs (upper bound; early stopping may end sooner).
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Multiplicative learning-rate decay applied per epoch (1.0 = none).
    pub lr_decay: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch: usize,
    /// Fraction of rows held out for early stopping (0 disables).
    pub val_fraction: f64,
    /// Early-stopping patience (epochs without validation improvement).
    pub patience: usize,
    /// Weight-init / shuffle seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> MlpConfig {
        MlpConfig {
            hidden: vec![32, 16],
            epochs: 300,
            learning_rate: 0.01,
            lr_decay: 0.997,
            momentum: 0.9,
            batch: 32,
            val_fraction: 0.15,
            patience: 25,
            seed: 0x3317,
        }
    }
}

/// One dense layer.
#[derive(Debug, Clone)]
struct Layer {
    /// `w[o][i]` weight from input i to output o.
    w: Vec<Vec<f64>>,
    b: Vec<f64>,
    vw: Vec<Vec<f64>>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Layer {
        // Xavier/Glorot uniform.
        let limit = (6.0 / (inputs + outputs) as f64).sqrt();
        let w = (0..outputs)
            .map(|_| (0..inputs).map(|_| rng.gen_range(-limit..limit)).collect())
            .collect();
        Layer {
            w,
            b: vec![0.0; outputs],
            vw: vec![vec![0.0; inputs]; outputs],
            vb: vec![0.0; outputs],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for (wo, bo) in self.w.iter().zip(&self.b) {
            out.push(bo + wo.iter().zip(x).map(|(w, v)| w * v).sum::<f64>());
        }
    }
}

/// The fitted network.
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<Layer>,
    x_scaler: Option<ZScore>,
    y_mean: f64,
    y_std: f64,
    /// Epochs actually trained (after early stopping).
    pub trained_epochs: usize,
}

impl Mlp {
    /// New unfitted network.
    pub fn new(config: MlpConfig) -> Mlp {
        Mlp {
            config,
            layers: Vec::new(),
            x_scaler: None,
            y_mean: 0.0,
            y_std: 1.0,
            trained_epochs: 0,
        }
    }

    /// Forward pass in normalised space; `acts[l]` holds layer `l`'s output
    /// (post-activation), `acts[0]` the input.
    fn forward(&self, x: &[f64], acts: &mut Vec<Vec<f64>>) -> f64 {
        acts.clear();
        acts.push(x.to_vec());
        let last = self.layers.len() - 1;
        let mut buf = Vec::new();
        for (l, layer) in self.layers.iter().enumerate() {
            layer.forward(acts.last().expect("non-empty"), &mut buf);
            if l < last {
                for v in &mut buf {
                    *v = v.tanh();
                }
            }
            acts.push(buf.clone());
        }
        acts.last().expect("non-empty")[0]
    }

    fn sse_normalised(&self, x: &[Vec<f64>], y: &[f64]) -> f64 {
        let mut acts = Vec::new();
        x.iter()
            .zip(y)
            .map(|(xi, yi)| {
                let p = self.forward(xi, &mut acts);
                (p - yi) * (p - yi)
            })
            .sum()
    }
}

impl Regressor for Mlp {
    fn fit(&mut self, data: &Dataset) {
        assert!(data.len() >= 4, "need a few rows to train");
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Normalise inputs and target.
        let scaler = ZScore::fit(&data.x);
        let xs: Vec<Vec<f64>> = scaler.transform_all(&data.x);
        let n = data.len() as f64;
        self.y_mean = data.y.iter().sum::<f64>() / n;
        let var = data
            .y
            .iter()
            .map(|y| (y - self.y_mean).powi(2))
            .sum::<f64>()
            / n;
        self.y_std = var.sqrt().max(1e-12);
        let ys: Vec<f64> = data
            .y
            .iter()
            .map(|y| (y - self.y_mean) / self.y_std)
            .collect();
        self.x_scaler = Some(scaler);

        // Architecture.
        let mut dims = vec![data.num_features()];
        dims.extend(&self.config.hidden);
        dims.push(1);
        self.layers = dims
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();

        // Train/validation split.
        let mut order: Vec<usize> = (0..data.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let n_val = if self.config.val_fraction > 0.0 && data.len() >= 20 {
            ((data.len() as f64 * self.config.val_fraction) as usize).clamp(1, data.len() / 2)
        } else {
            0
        };
        let (val_idx, train_idx) = order.split_at(n_val);
        let val_x: Vec<Vec<f64>> = val_idx.iter().map(|&i| xs[i].clone()).collect();
        let val_y: Vec<f64> = val_idx.iter().map(|&i| ys[i]).collect();
        let mut train: Vec<usize> = train_idx.to_vec();

        let mut best_layers = self.layers.clone();
        let mut best_val = f64::INFINITY;
        let mut stale = 0usize;
        let mut lr = self.config.learning_rate;
        let mu = self.config.momentum;
        let mut acts: Vec<Vec<f64>> = Vec::new();
        let mut deltas: Vec<Vec<f64>> = Vec::new();

        for epoch in 0..self.config.epochs {
            self.trained_epochs = epoch + 1;
            for i in (1..train.len()).rev() {
                train.swap(i, rng.gen_range(0..=i));
            }
            for chunk in train.chunks(self.config.batch.max(1)) {
                // Accumulate gradients over the mini-batch.
                let mut gw: Vec<Vec<Vec<f64>>> = self
                    .layers
                    .iter()
                    .map(|l| vec![vec![0.0; l.w[0].len()]; l.w.len()])
                    .collect();
                let mut gb: Vec<Vec<f64>> =
                    self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
                for &i in chunk {
                    let pred = self.forward(&xs[i], &mut acts);
                    let err = pred - ys[i];
                    // Backprop.
                    deltas.clear();
                    deltas.resize(self.layers.len(), Vec::new());
                    let last = self.layers.len() - 1;
                    deltas[last] = vec![err];
                    for l in (0..last).rev() {
                        let next = &self.layers[l + 1];
                        let dn = deltas[l + 1].clone();
                        let act = &acts[l + 1];
                        let mut d = vec![0.0; self.layers[l].b.len()];
                        for (j, dj) in d.iter_mut().enumerate() {
                            let mut s = 0.0;
                            for (o, dno) in dn.iter().enumerate() {
                                s += next.w[o][j] * dno;
                            }
                            // tanh'(z) = 1 - tanh(z)².
                            *dj = s * (1.0 - act[j] * act[j]);
                        }
                        deltas[l] = d;
                    }
                    for (l, layer) in self.layers.iter().enumerate() {
                        let input = &acts[l];
                        for (o, d) in deltas[l].iter().enumerate() {
                            gb[l][o] += d;
                            for (gwo, inp) in gw[l][o].iter_mut().zip(input) {
                                *gwo += d * inp;
                            }
                            let _ = layer;
                        }
                    }
                }
                // SGD + momentum update.
                let scale = lr / chunk.len() as f64;
                for (l, layer) in self.layers.iter_mut().enumerate() {
                    for o in 0..layer.b.len() {
                        layer.vb[o] = mu * layer.vb[o] - scale * gb[l][o];
                        layer.b[o] += layer.vb[o];
                        for ((vw, w), g) in layer.vw[o]
                            .iter_mut()
                            .zip(layer.w[o].iter_mut())
                            .zip(&gw[l][o])
                        {
                            *vw = mu * *vw - scale * g;
                            *w += *vw;
                        }
                    }
                }
            }
            lr *= self.config.lr_decay;
            if n_val > 0 {
                let val = self.sse_normalised(&val_x, &val_y);
                if val < best_val - 1e-9 {
                    best_val = val;
                    best_layers = self.layers.clone();
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= self.config.patience {
                        break;
                    }
                }
            }
        }
        if n_val > 0 {
            self.layers = best_layers;
        }
    }

    fn predict(&self, row: &[f64]) -> f64 {
        let scaler = self.x_scaler.as_ref().expect("fit before predict");
        let x = scaler.transform(row);
        let mut acts = Vec::new();
        let z = self.forward(&x, &mut acts);
        z * self.y_std + self.y_mean
    }

    fn name(&self) -> &'static str {
        "MLP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{r2_score, rmse};

    fn quick_cfg() -> MlpConfig {
        MlpConfig {
            hidden: vec![16],
            epochs: 400,
            learning_rate: 0.02,
            val_fraction: 0.0,
            ..MlpConfig::default()
        }
    }

    #[test]
    fn learns_linear_function() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], "y");
        for i in 0..120 {
            let a = (i % 11) as f64 - 5.0;
            let b = (i % 7) as f64 - 3.0;
            d.push(vec![a, b], 2.0 * a - 3.0 * b + 1.0);
        }
        let mut mlp = Mlp::new(quick_cfg());
        mlp.fit(&d);
        let r2 = r2_score(&d.y, &mlp.predict_all(&d.x));
        assert!(r2 > 0.98, "r2 {r2}");
    }

    #[test]
    fn learns_nonlinear_function_better_than_lr() {
        use crate::linreg::LinearRegression;
        let mut d = Dataset::new(vec!["x".into()], "y");
        for i in 0..160 {
            let x = i as f64 / 20.0 - 4.0;
            d.push(vec![x], x * x);
        }
        let mut mlp = Mlp::new(MlpConfig {
            hidden: vec![24],
            epochs: 1500,
            learning_rate: 0.02,
            val_fraction: 0.0,
            ..MlpConfig::default()
        });
        let mut lr = LinearRegression::new();
        mlp.fit(&d);
        lr.fit(&d);
        let e_mlp = rmse(&d.y, &mlp.predict_all(&d.x));
        let e_lr = rmse(&d.y, &lr.predict_all(&d.x));
        assert!(e_mlp < 0.25 * e_lr, "mlp {e_mlp} lr {e_lr}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut d = Dataset::new(vec!["x".into()], "y");
        for i in 0..60 {
            d.push(vec![i as f64 / 10.0], (i as f64 / 10.0).sin());
        }
        let mut a = Mlp::new(quick_cfg());
        let mut b = Mlp::new(quick_cfg());
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a.predict(&[1.234]), b.predict(&[1.234]));
        let mut c = Mlp::new(MlpConfig {
            seed: 99,
            ..quick_cfg()
        });
        c.fit(&d);
        assert_ne!(a.predict(&[1.234]), c.predict(&[1.234]));
    }

    #[test]
    fn early_stopping_bounds_epochs() {
        let mut d = Dataset::new(vec!["x".into()], "y");
        for i in 0..100 {
            d.push(vec![i as f64], 5.0); // constant: converges immediately
        }
        let mut mlp = Mlp::new(MlpConfig {
            epochs: 1000,
            val_fraction: 0.2,
            patience: 5,
            ..MlpConfig::default()
        });
        mlp.fit(&d);
        assert!(mlp.trained_epochs < 1000, "{}", mlp.trained_epochs);
        assert!((mlp.predict(&[50.0]) - 5.0).abs() < 0.5);
    }

    #[test]
    fn handles_unnormalised_feature_scales() {
        // One feature in [0,1], another in [0, 1e6]: internal z-scoring must
        // cope.
        let mut d = Dataset::new(vec!["small".into(), "huge".into()], "y");
        for i in 0..100 {
            let s = (i % 10) as f64 / 10.0;
            let h = (i % 7) as f64 * 1e5;
            d.push(vec![s, h], 3.0 * s + h / 1e5);
        }
        let mut mlp = Mlp::new(quick_cfg());
        mlp.fit(&d);
        let r2 = r2_score(&d.y, &mlp.predict_all(&d.x));
        assert!(r2 > 0.95, "r2 {r2}");
    }
}
