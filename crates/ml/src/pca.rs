//! Principal Component Analysis (§3.2 / Fig 1 of the paper).
//!
//! Fitted on z-scored observations; exposes the explained-variance ratios
//! (the paper reports PC1+PC2 covering 85.22 % of variance) and the loadings
//! used to scatter the *features* in PC space (Fig 1 plots each feature by
//! its loading on PC1/PC2, then clusters them).

use crate::linalg::{eigh, LinalgError, Matrix};

/// A fitted PCA.
///
/// ```
/// use ecost_ml::{Pca, ZScore};
///
/// // Two perfectly correlated features: PC1 captures everything.
/// let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
/// let z = ZScore::fit(&rows);
/// let pca = Pca::fit(&z.transform_all(&rows)).unwrap();
/// assert!(pca.explained_variance_ratio()[0] > 0.999);
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    /// Component matrix: row `k` is the k-th principal axis (unit vector in
    /// feature space), sorted by descending explained variance.
    pub components: Matrix,
    /// Eigenvalues of the covariance matrix (variances along components).
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit on observations (rows = samples, columns = features). The data
    /// should already be centred/normalised (see
    /// [`crate::preprocess::ZScore`]).
    pub fn fit(rows: &[Vec<f64>]) -> Result<Pca, LinalgError> {
        assert!(rows.len() >= 2, "need at least two samples");
        let n = rows.len();
        let d = rows[0].len();
        // Centre defensively (cheap, idempotent on z-scored data).
        let mut mean = vec![0.0; d];
        for r in rows {
            for (m, v) in mean.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let centred = Matrix::from_rows(
            &rows
                .iter()
                .map(|r| r.iter().zip(&mean).map(|(v, m)| v - m).collect())
                .collect::<Vec<Vec<f64>>>(),
        );
        let mut cov = centred.gram();
        for i in 0..d {
            for j in 0..d {
                cov[(i, j)] /= (n - 1) as f64;
            }
        }
        let (vals, vecs) = eigh(&cov)?;
        // Numerical noise can produce tiny negative eigenvalues; clamp.
        let explained_variance = vals.into_iter().map(|v| v.max(0.0)).collect();
        Ok(Pca {
            components: vecs,
            explained_variance,
        })
    }

    /// Fraction of total variance captured by each component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total: f64 = self.explained_variance.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.explained_variance.len()];
        }
        self.explained_variance.iter().map(|v| v / total).collect()
    }

    /// Cumulative variance ratio of the first `k` components.
    pub fn cumulative_variance(&self, k: usize) -> f64 {
        self.explained_variance_ratio().iter().take(k).sum()
    }

    /// Project one observation onto the first `k` components.
    pub fn project(&self, row: &[f64], k: usize) -> Vec<f64> {
        (0..k.min(self.components.rows()))
            .map(|c| {
                self.components
                    .row(c)
                    .iter()
                    .zip(row)
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// The loading of feature `f` on component `k` scaled by the component's
    /// standard deviation — the coordinates Fig 1 scatters the *features* at.
    pub fn loading(&self, k: usize, f: usize) -> f64 {
        self.components[(k, f)] * self.explained_variance[k].sqrt()
    }

    /// All features' `(PC-a, PC-b)` loading coordinates.
    pub fn feature_scatter(&self, a: usize, b: usize) -> Vec<(f64, f64)> {
        (0..self.components.cols())
            .map(|f| (self.loading(a, f), self.loading(b, f)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::ZScore;

    /// Correlated 2-feature data: PC1 should capture nearly everything and
    /// point along (1,1)/√2.
    fn correlated() -> Vec<Vec<f64>> {
        (0..50)
            .map(|i| {
                let t = i as f64 / 10.0;
                vec![t, t + 0.01 * ((i * 7 % 13) as f64 - 6.0)]
            })
            .collect()
    }

    #[test]
    fn pc1_captures_correlated_variance() {
        let raw = correlated();
        let z = ZScore::fit(&raw);
        let pca = Pca::fit(&z.transform_all(&raw)).unwrap();
        let ratio = pca.explained_variance_ratio();
        assert!(ratio[0] > 0.99, "{ratio:?}");
        let c = pca.components.row(0);
        assert!((c[0].abs() - c[1].abs()).abs() < 1e-6, "{c:?}");
    }

    #[test]
    fn variance_ratios_sum_to_one() {
        let raw = vec![
            vec![1.0, 10.0, 3.0],
            vec![2.0, -5.0, 8.0],
            vec![0.5, 2.0, -1.0],
            vec![3.0, 7.0, 0.0],
            vec![-1.0, 4.0, 2.0],
        ];
        let pca = Pca::fit(&raw).unwrap();
        let sum: f64 = pca.explained_variance_ratio().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((pca.cumulative_variance(3) - 1.0).abs() < 1e-9);
        assert!(pca.cumulative_variance(1) <= 1.0);
    }

    #[test]
    fn projection_reduces_dimension() {
        let raw = correlated();
        let pca = Pca::fit(&raw).unwrap();
        let p = pca.project(&raw[3], 1);
        assert_eq!(p.len(), 1);
        assert!(p[0].is_finite());
    }

    #[test]
    fn uncorrelated_features_scatter_apart() {
        // Feature 0 and 1 perfectly correlated; feature 2 independent.
        let raw: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let t = (i as f64 * 0.7).sin();
                let u = (i as f64 * 2.3).cos();
                vec![t, t, u]
            })
            .collect();
        let z = ZScore::fit(&raw);
        let pca = Pca::fit(&z.transform_all(&raw)).unwrap();
        let pts = pca.feature_scatter(0, 1);
        let d01 = ((pts[0].0 - pts[1].0).powi(2) + (pts[0].1 - pts[1].1).powi(2)).sqrt();
        let d02 = ((pts[0].0 - pts[2].0).powi(2) + (pts[0].1 - pts[2].1).powi(2)).sqrt();
        assert!(
            d01 < 0.1 * d02,
            "correlated features should sit together: {d01} vs {d02}"
        );
    }
}
