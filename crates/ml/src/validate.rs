//! Model validation utilities: k-fold cross-validation for regressors and a
//! confusion matrix for classifiers. Used by the ablation experiments and
//! the model-selection discussion of §7.2.

use crate::dataset::Dataset;
use crate::model::Regressor;

/// k-fold cross-validated score of a regressor family.
///
/// `make` constructs a fresh model per fold; `score(truth, pred)` reduces a
/// fold to one number (e.g. RMSE or MAPE). Returns per-fold scores.
pub fn cross_validate<M: Regressor>(
    data: &Dataset,
    folds: usize,
    make: impl Fn() -> M,
    score: impl Fn(&[f64], &[f64]) -> f64,
) -> Vec<f64> {
    assert!(folds >= 2, "need at least two folds");
    assert!(data.len() >= folds, "fewer rows than folds");
    let n = data.len();
    let mut out = Vec::with_capacity(folds);
    for fold in 0..folds {
        let lo = fold * n / folds;
        let hi = (fold + 1) * n / folds;
        let mut train = Dataset::new(data.feature_names.clone(), data.target_name.clone());
        let mut test = Dataset::new(data.feature_names.clone(), data.target_name.clone());
        for i in 0..n {
            if (lo..hi).contains(&i) {
                test.push(data.x[i].clone(), data.y[i]);
            } else {
                train.push(data.x[i].clone(), data.y[i]);
            }
        }
        let mut model = make();
        model.fit(&train);
        let pred = model.predict_all(&test.x);
        out.push(score(&test.y, &pred));
    }
    out
}

/// Confusion matrix over `k` classes.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionMatrix {
    k: usize,
    /// `counts[truth][pred]`.
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Empty matrix for `k` classes.
    pub fn new(k: usize) -> ConfusionMatrix {
        ConfusionMatrix {
            k,
            counts: vec![vec![0; k]; k],
        }
    }

    /// Record one (truth, prediction) observation.
    pub fn record(&mut self, truth: usize, pred: usize) {
        assert!(truth < self.k && pred < self.k, "label out of range");
        self.counts[truth][pred] += 1;
    }

    /// Count at `(truth, pred)`.
    pub fn get(&self, truth: usize, pred: usize) -> usize {
        self.counts[truth][pred]
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy (1.0 on an empty matrix).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let hits: usize = (0..self.k).map(|i| self.counts[i][i]).sum();
        hits as f64 / total as f64
    }

    /// Precision of one class (`None` when the class was never predicted).
    pub fn precision(&self, class: usize) -> Option<f64> {
        let predicted: usize = (0..self.k).map(|t| self.counts[t][class]).sum();
        if predicted == 0 {
            None
        } else {
            Some(self.counts[class][class] as f64 / predicted as f64)
        }
    }

    /// Recall of one class (`None` when the class never occurred).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let actual: usize = self.counts[class].iter().sum();
        if actual == 0 {
            None
        } else {
            Some(self.counts[class][class] as f64 / actual as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinearRegression;
    use crate::metrics::rmse;

    #[test]
    fn cross_validation_scores_linear_data_well() {
        let mut d = Dataset::new(vec!["x".into()], "y");
        for i in 0..60 {
            let x = (i % 17) as f64;
            d.push(vec![x], 2.0 * x + 1.0);
        }
        let scores = cross_validate(&d, 5, LinearRegression::new, rmse);
        assert_eq!(scores.len(), 5);
        assert!(scores.iter().all(|s| *s < 1e-6), "{scores:?}");
    }

    #[test]
    fn cross_validation_detects_overfit_candidates() {
        use crate::reptree::{RepTree, RepTreeConfig};
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut d = Dataset::new(vec!["x".into()], "y");
        for i in 0..200 {
            d.push(vec![i as f64], rng.gen_range(-1.0..1.0)); // pure noise
        }
        let unpruned = cross_validate(
            &d,
            4,
            || {
                RepTree::new(RepTreeConfig {
                    prune_fraction: 0.0,
                    min_samples_split: 2,
                    min_samples_leaf: 1,
                    ..RepTreeConfig::default()
                })
            },
            rmse,
        );
        let mean: f64 = unpruned.iter().sum::<f64>() / 4.0;
        // Memorising noise can't beat the noise floor out of sample.
        assert!(mean > 0.45, "{mean}");
    }

    #[test]
    fn confusion_matrix_metrics() {
        let mut cm = ConfusionMatrix::new(3);
        // class 0: 2 hits, 1 miss into class 1.
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(0, 1);
        // class 1: 1 hit.
        cm.record(1, 1);
        // class 2: never predicted correctly.
        cm.record(2, 0);
        assert_eq!(cm.total(), 5);
        assert!((cm.accuracy() - 3.0 / 5.0).abs() < 1e-12);
        assert!((cm.recall(0).expect("occurs") - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.precision(0).expect("predicted") - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.precision(1).expect("predicted") - 0.5).abs() < 1e-12);
        assert_eq!(cm.precision(2), None);
        assert!((cm.recall(2).expect("occurs") - 0.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_vacuously_accurate() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.recall(0), None);
    }
}
