//! Bagged regression-tree ensemble.
//!
//! Not part of the paper's model zoo, but the natural robustness extension
//! for the spiky EDP surfaces REPTree struggles with: `B` trees are grown on
//! bootstrap resamples and averaged. Exposed through the same [`Regressor`]
//! trait so it can be dropped into MLM-STP as a fourth model family (used by
//! the ablation experiments).

use crate::dataset::Dataset;
use crate::model::Regressor;
use crate::reptree::{RepTree, RepTreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ensemble hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BaggedTreesConfig {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree configuration (pruning is usually disabled — averaging is
    /// the regulariser).
    pub tree: RepTreeConfig,
    /// Bootstrap sample fraction.
    pub sample_frac: f64,
    /// Resampling seed.
    pub seed: u64,
}

impl Default for BaggedTreesConfig {
    fn default() -> BaggedTreesConfig {
        BaggedTreesConfig {
            trees: 16,
            tree: RepTreeConfig {
                prune_fraction: 0.0,
                ..RepTreeConfig::default()
            },
            sample_frac: 0.8,
            seed: 0xbadc,
        }
    }
}

/// The fitted ensemble.
#[derive(Debug, Clone)]
pub struct BaggedTrees {
    config: BaggedTreesConfig,
    members: Vec<RepTree>,
}

impl BaggedTrees {
    /// New unfitted ensemble.
    pub fn new(config: BaggedTreesConfig) -> BaggedTrees {
        assert!(config.trees >= 1, "need at least one tree");
        assert!(
            (0.0..=1.0).contains(&config.sample_frac) && config.sample_frac > 0.0,
            "sample_frac in (0, 1]"
        );
        BaggedTrees {
            config,
            members: Vec::new(),
        }
    }

    /// Number of fitted members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True before fitting.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Per-member predictions (spread diagnostics).
    pub fn member_predictions(&self, row: &[f64]) -> Vec<f64> {
        self.members.iter().map(|t| t.predict(row)).collect()
    }
}

impl Regressor for BaggedTrees {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on empty data");
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n = data.len();
        let take = ((n as f64 * self.config.sample_frac) as usize).max(1);
        self.members.clear();
        for b in 0..self.config.trees {
            let mut boot = Dataset::new(data.feature_names.clone(), data.target_name.clone());
            for _ in 0..take {
                let i = rng.gen_range(0..n);
                boot.push(data.x[i].clone(), data.y[i]);
            }
            let mut cfg = self.config.tree.clone();
            cfg.seed = self.config.seed.wrapping_add(b as u64);
            let mut tree = RepTree::new(cfg);
            tree.fit(&boot);
            self.members.push(tree);
        }
    }

    fn predict(&self, row: &[f64]) -> f64 {
        assert!(!self.members.is_empty(), "fit before predict");
        self.members.iter().map(|t| t.predict(row)).sum::<f64>() / self.members.len() as f64
    }

    fn name(&self) -> &'static str {
        "BaggedTrees"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    fn noisy_step(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["x".into()], "y");
        for i in 0..300 {
            let x = i as f64 / 30.0;
            let y = if x < 5.0 { 1.0 } else { 4.0 };
            d.push(vec![x], y + rng.gen_range(-0.8..0.8));
        }
        d
    }

    #[test]
    fn ensemble_smooths_noise_better_than_single_unpruned_tree() {
        let train = noisy_step(1);
        let test = noisy_step(2); // same signal, fresh noise
        let mut single = RepTree::new(RepTreeConfig {
            prune_fraction: 0.0,
            ..RepTreeConfig::default()
        });
        let mut bag = BaggedTrees::new(BaggedTreesConfig::default());
        single.fit(&train);
        bag.fit(&train);
        let e_single = rmse(&test.y, &single.predict_all(&test.x));
        let e_bag = rmse(&test.y, &bag.predict_all(&test.x));
        assert!(e_bag < e_single, "bag {e_bag} single {e_single}");
    }

    #[test]
    fn prediction_is_member_average() {
        let mut bag = BaggedTrees::new(BaggedTreesConfig {
            trees: 4,
            ..BaggedTreesConfig::default()
        });
        bag.fit(&noisy_step(3));
        assert_eq!(bag.len(), 4);
        let row = [2.5];
        let avg: f64 = bag.member_predictions(&row).iter().sum::<f64>() / 4.0;
        assert!((bag.predict(&row) - avg).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = noisy_step(5);
        let mut a = BaggedTrees::new(BaggedTreesConfig::default());
        let mut b = BaggedTrees::new(BaggedTreesConfig::default());
        a.fit(&data);
        b.fit(&data);
        assert_eq!(a.predict(&[4.2]), b.predict(&[4.2]));
    }
}
