//! Common model traits.

use crate::dataset::Dataset;

/// A regression model mapping a feature row to a scalar.
///
/// `Send + Sync` is a supertrait: fitted models are read-only at
/// prediction time and are shared by reference across worker threads.
pub trait Regressor: Send + Sync {
    /// Fit on a dataset. Implementations must be deterministic given the
    /// same data (and, where applicable, the RNG they were constructed with).
    fn fit(&mut self, data: &Dataset);

    /// Predict one row.
    fn predict(&self, row: &[f64]) -> f64;

    /// Predict many rows.
    fn predict_all(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Short model name for reports ("LR", "REPTree", "MLP"…).
    fn name(&self) -> &'static str;
}

/// A classifier mapping a feature row to a label index.
pub trait Classifier {
    /// Fit on rows with label indices.
    fn fit(&mut self, rows: &[Vec<f64>], labels: &[usize]);

    /// Predict a label index for one row.
    fn predict(&self, row: &[f64]) -> usize;

    /// Classification accuracy over a labelled set.
    fn accuracy(&self, rows: &[Vec<f64>], labels: &[usize]) -> f64 {
        if rows.is_empty() {
            return 1.0;
        }
        let hits = rows
            .iter()
            .zip(labels)
            .filter(|(r, l)| self.predict(r) == **l)
            .count();
        hits as f64 / rows.len() as f64
    }
}
