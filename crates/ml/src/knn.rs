//! k-nearest-neighbour classification and nearest-profile search.
//!
//! Backs two pieces of ECoST: the incoming-application classifier (nearest
//! training signatures in z-scored feature space) and LkT-STP's "choose the
//! application in the database that best resembles the testing application"
//! step.

use crate::model::Classifier;
use crate::preprocess::ZScore;

/// Distance between feature rows (Euclidean).
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// k-NN classifier with internal z-scoring.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    scaler: Option<ZScore>,
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

impl KnnClassifier {
    /// New classifier with neighbourhood size `k`.
    pub fn new(k: usize) -> KnnClassifier {
        assert!(k >= 1);
        KnnClassifier {
            k,
            scaler: None,
            rows: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Index of the single nearest training row to `row` (ignores `k`).
    pub fn nearest(&self, row: &[f64]) -> usize {
        let scaler = self.scaler.as_ref().expect("fit before query");
        let q = scaler.transform(row);
        self.rows
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                euclidean(a, &q)
                    .partial_cmp(&euclidean(b, &q))
                    .expect("finite")
            })
            .expect("non-empty training set")
            .0
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, rows: &[Vec<f64>], labels: &[usize]) {
        assert_eq!(rows.len(), labels.len());
        assert!(!rows.is_empty(), "need training data");
        let scaler = ZScore::fit(rows);
        self.rows = scaler.transform_all(rows);
        self.scaler = Some(scaler);
        self.labels = labels.to_vec();
    }

    fn predict(&self, row: &[f64]) -> usize {
        let scaler = self.scaler.as_ref().expect("fit before predict");
        let q = scaler.transform(row);
        let mut dists: Vec<(f64, usize)> = self
            .rows
            .iter()
            .zip(&self.labels)
            .map(|(r, &l)| (euclidean(r, &q), l))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let k = self.k.min(dists.len());
        // Majority vote among the k nearest; ties break toward the closer
        // neighbour (first encountered in sorted order).
        let mut counts: Vec<(usize, usize)> = Vec::new(); // (label, count)
        for (_, l) in dists.iter().take(k) {
            match counts.iter_mut().find(|(cl, _)| cl == l) {
                Some((_, c)) => *c += 1,
                None => counts.push((*l, 1)),
            }
        }
        counts
            .into_iter()
            .max_by_key(|&(_, c)| c)
            .expect("k >= 1")
            .0
    }
}

/// k-nearest-neighbour regressor (inverse-distance-weighted mean), the
/// fourth regressor family mentioned in DESIGN.md's extension list. Plugs
/// into MLM-STP through the [`crate::model::Regressor`] trait.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    k: usize,
    scaler: Option<ZScore>,
    rows: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl KnnRegressor {
    /// New regressor with neighbourhood size `k`.
    pub fn new(k: usize) -> KnnRegressor {
        assert!(k >= 1);
        KnnRegressor {
            k,
            scaler: None,
            rows: Vec::new(),
            targets: Vec::new(),
        }
    }
}

impl crate::model::Regressor for KnnRegressor {
    fn fit(&mut self, data: &crate::dataset::Dataset) {
        assert!(!data.is_empty(), "need training data");
        let scaler = ZScore::fit(&data.x);
        self.rows = scaler.transform_all(&data.x);
        self.scaler = Some(scaler);
        self.targets = data.y.clone();
    }

    fn predict(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("fit before predict");
        let q = scaler.transform(row);
        let mut dists: Vec<(f64, f64)> = self
            .rows
            .iter()
            .zip(&self.targets)
            .map(|(r, &y)| (euclidean(r, &q), y))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let k = self.k.min(dists.len());
        // Inverse-distance weighting; an exact match short-circuits.
        let mut wsum = 0.0;
        let mut ysum = 0.0;
        for &(d, y) in dists.iter().take(k) {
            if d < 1e-12 {
                return y;
            }
            let w = 1.0 / d;
            wsum += w;
            ysum += w * y;
        }
        ysum / wsum
    }

    fn name(&self) -> &'static str {
        "kNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Regressor as _;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (l, (cx, cy)) in [(0.0, 0.0), (10.0, 10.0)].iter().enumerate() {
            for d in 0..5 {
                rows.push(vec![cx + d as f64 * 0.2, cy - d as f64 * 0.2]);
                labels.push(l);
            }
        }
        (rows, labels)
    }

    #[test]
    fn classifies_blobs() {
        let (rows, labels) = blobs();
        let mut knn = KnnClassifier::new(3);
        knn.fit(&rows, &labels);
        assert_eq!(knn.predict(&[0.5, 0.5]), 0);
        assert_eq!(knn.predict(&[9.0, 9.5]), 1);
        assert_eq!(knn.accuracy(&rows, &labels), 1.0);
    }

    #[test]
    fn nearest_returns_training_index() {
        let (rows, labels) = blobs();
        let mut knn = KnnClassifier::new(1);
        knn.fit(&rows, &labels);
        let idx = knn.nearest(&rows[7]);
        assert_eq!(idx, 7);
    }

    #[test]
    fn k1_memorises_training_data() {
        let (rows, labels) = blobs();
        let mut knn = KnnClassifier::new(1);
        knn.fit(&rows, &labels);
        for (r, l) in rows.iter().zip(&labels) {
            assert_eq!(knn.predict(r), *l);
        }
    }

    #[test]
    fn regressor_interpolates_smooth_function() {
        let mut d = crate::dataset::Dataset::new(vec!["x".into()], "y");
        for i in 0..100 {
            let x = i as f64 / 10.0;
            d.push(vec![x], 2.0 * x + 1.0);
        }
        let mut knn = KnnRegressor::new(3);
        knn.fit(&d);
        // Exact training point.
        assert!((knn.predict(&[5.0]) - 11.0).abs() < 1e-9);
        // Between points.
        let p = knn.predict(&[5.05]);
        assert!((p - 11.1).abs() < 0.2, "{p}");
    }

    #[test]
    fn regressor_k1_memorises() {
        let mut d = crate::dataset::Dataset::new(vec!["x".into()], "y");
        d.push(vec![0.0], 7.0);
        d.push(vec![10.0], -3.0);
        let mut knn = KnnRegressor::new(1);
        knn.fit(&d);
        assert_eq!(knn.predict(&[0.1]), 7.0);
        assert_eq!(knn.predict(&[9.0]), -3.0);
        assert_eq!(knn.name(), "kNN");
    }

    #[test]
    fn scaling_makes_features_commensurate() {
        // Feature 1 has a huge scale but carries no signal; without
        // z-scoring it would dominate the distance.
        let rows = vec![
            vec![0.0, 1e6],
            vec![0.1, -1e6],
            vec![10.0, 1e6],
            vec![10.1, -1e6],
        ];
        let labels = vec![0, 0, 1, 1];
        let mut knn = KnnClassifier::new(1);
        knn.fit(&rows, &labels);
        assert_eq!(knn.predict(&[0.05, 0.0]), 0);
        assert_eq!(knn.predict(&[9.9, 0.0]), 1);
    }
}
