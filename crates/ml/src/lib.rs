//! # ecost-ml — from-scratch machine-learning substrate
//!
//! The paper builds its self-tuning prediction (STP) models in Weka: linear
//! regression (LR), a reduced-error-pruning regression tree (REPTree) and a
//! multilayer perceptron (MLP), plus PCA and hierarchical clustering for the
//! feature study of §3.2 and a lookup table (LkT). Nothing of the sort is
//! assumed to exist here — this crate implements all of it on a small dense
//! linear-algebra core:
//!
//! * [`linalg`] — matrices, Cholesky/LU solves, Jacobi eigendecomposition;
//! * [`preprocess`] — z-score scaling, shuffles, train/test splits;
//! * [`pca`] / [`hcluster`] — the Fig 1 pipeline;
//! * [`linreg`], [`reptree`], [`mlp`], [`lookup`], [`knn`] — the models,
//!   behind the common [`model::Regressor`]/[`model::Classifier`] traits;
//! * [`dataset`] / [`metrics`] — row storage with CSV round-trip, APE/RMSE/R².
//!
//! Determinism: anything stochastic (MLP init, shuffles) takes an explicit
//! RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod ensemble;
pub mod hcluster;
pub mod knn;
pub mod linalg;
pub mod linreg;
pub mod lookup;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod pca;
pub mod preprocess;
pub mod reptree;
pub mod validate;

pub use dataset::Dataset;
pub use ensemble::{BaggedTrees, BaggedTreesConfig};
pub use knn::{KnnClassifier, KnnRegressor};
pub use linalg::Matrix;
pub use linreg::LinearRegression;
pub use lookup::LookupTable;
pub use metrics::{mean_absolute_percentage_error, r2_score, rmse};
pub use mlp::{Mlp, MlpConfig};
pub use model::Regressor;
pub use pca::Pca;
pub use preprocess::ZScore;
pub use reptree::{RepTree, RepTreeConfig};
pub use validate::{cross_validate, ConfusionMatrix};
