//! Ordinary least squares linear regression (the paper's "LR" model).
//!
//! Solved by the normal equations with a small ridge term for conditioning.
//! The paper uses LR as the weakest STP model — EDP is strongly non-linear in
//! the tuning knobs, so LR's APE is ~55 % (Table 1); this implementation
//! faithfully reproduces that weakness.

use crate::dataset::Dataset;
use crate::linalg::{solve_spd, Matrix};
use crate::model::Regressor;

/// OLS linear regression with intercept.
#[derive(Debug, Clone, Default)]
pub struct LinearRegression {
    /// Learned weights, one per feature (empty before `fit`).
    pub weights: Vec<f64>,
    /// Learned intercept.
    pub intercept: f64,
    /// Ridge regulariser added to the normal equations' diagonal.
    pub ridge: f64,
}

impl LinearRegression {
    /// Plain OLS (tiny default ridge of 1e-8 for conditioning).
    pub fn new() -> LinearRegression {
        LinearRegression {
            weights: Vec::new(),
            intercept: 0.0,
            ridge: 1e-8,
        }
    }

    /// OLS with an explicit ridge penalty.
    pub fn with_ridge(ridge: f64) -> LinearRegression {
        LinearRegression {
            ridge,
            ..LinearRegression::new()
        }
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "cannot fit on empty data");
        let d = data.num_features();
        // Design matrix with intercept column.
        let rows: Vec<Vec<f64>> = data
            .x
            .iter()
            .map(|r| {
                let mut v = Vec::with_capacity(d + 1);
                v.push(1.0);
                v.extend_from_slice(r);
                v
            })
            .collect();
        let xm = Matrix::from_rows(&rows);
        let mut xtx = xm.gram();
        for i in 0..=d {
            xtx[(i, i)] += self.ridge.max(1e-12);
        }
        let xty = xm.transpose().matvec(&data.y);
        let beta = solve_spd(&xtx, &xty).unwrap_or_else(|_| {
            // Fall back to heavier regularisation on pathological inputs.
            let mut xtx2 = xm.gram();
            for i in 0..=d {
                xtx2[(i, i)] += 1e-3;
            }
            solve_spd(&xtx2, &xty).expect("ridge-stabilised solve")
        });
        self.intercept = beta[0];
        self.weights = beta[1..].to_vec();
    }

    fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "fit before predict");
        self.intercept
            + self
                .weights
                .iter()
                .zip(row)
                .map(|(w, x)| w * x)
                .sum::<f64>()
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> Dataset {
        // y = 3 + 2·x0 − x1
        let mut d = Dataset::new(vec!["x0".into(), "x1".into()], "y");
        for i in 0..30 {
            let x0 = (i % 7) as f64;
            let x1 = (i % 5) as f64 - 2.0;
            d.push(vec![x0, x1], 3.0 + 2.0 * x0 - x1);
        }
        d
    }

    #[test]
    fn recovers_exact_linear_relation() {
        let mut lr = LinearRegression::new();
        lr.fit(&linear_data());
        assert!((lr.intercept - 3.0).abs() < 1e-6);
        assert!((lr.weights[0] - 2.0).abs() < 1e-6);
        assert!((lr.weights[1] + 1.0).abs() < 1e-6);
        assert!((lr.predict(&[10.0, 1.0]) - 22.0).abs() < 1e-5);
    }

    #[test]
    fn underfits_quadratic_data() {
        // LR must be visibly wrong on y = x² — the paper's point.
        let mut d = Dataset::new(vec!["x".into()], "y");
        for i in -10..=10 {
            let x = i as f64;
            d.push(vec![x], x * x);
        }
        let mut lr = LinearRegression::new();
        lr.fit(&d);
        let pred = lr.predict_all(&d.x);
        let err = crate::metrics::rmse(&d.y, &pred);
        assert!(err > 20.0, "rmse {err}");
    }

    #[test]
    fn handles_collinear_features_via_ridge_fallback() {
        // x1 == x0 duplicated: X'X is singular without regularisation.
        let mut d = Dataset::new(vec!["a".into(), "b".into()], "y");
        for i in 0..20 {
            let x = i as f64;
            d.push(vec![x, x], 5.0 * x);
        }
        let mut lr = LinearRegression::new();
        lr.fit(&d);
        let p = lr.predict(&[4.0, 4.0]);
        assert!((p - 20.0).abs() < 1e-3, "{p}");
    }

    #[test]
    fn ridge_shrinks_weights() {
        let mut plain = LinearRegression::new();
        let mut heavy = LinearRegression::with_ridge(1e3);
        let data = linear_data();
        plain.fit(&data);
        heavy.fit(&data);
        assert!(heavy.weights[0].abs() < plain.weights[0].abs());
    }

    #[test]
    fn name_is_lr() {
        assert_eq!(LinearRegression::new().name(), "LR");
    }
}
