//! Small dense linear algebra: row-major matrices, positive-definite and
//! general solves, and a Jacobi symmetric eigendecomposition.
//!
//! Sized for this workspace's needs (≤ a few hundred columns); everything is
//! `O(n³)` textbook code with partial pivoting / symmetric safeguards, not a
//! BLAS.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from rows; panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Gram matrix `Aᵀ·A` (symmetric), computed directly.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += a * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Errors from the solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix is singular (or not positive-definite for Cholesky).
    Singular,
    /// Shape mismatch between operands.
    Shape,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular / not positive definite"),
            LinalgError::Shape => write!(f, "shape mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solve `A·x = b` for symmetric positive-definite `A` via Cholesky.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::Shape);
    }
    // Cholesky: A = L·Lᵀ.
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return Err(LinalgError::Singular);
                }
                l[(i, i)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    // Forward then backward substitution.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[(i, k)] * y[k];
        }
        y[i] = s / l[(i, i)];
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in i + 1..n {
            s -= l[(k, i)] * x[k];
        }
        x[i] = s / l[(i, i)];
    }
    Ok(x)
}

/// Solve `A·x = b` by LU with partial pivoting (general square `A`).
pub fn solve_lu(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::Shape);
    }
    let mut m = a.clone();
    let mut x: Vec<f64> = b.to_vec();
    for col in 0..n {
        // Pivot.
        let (piv, piv_val) = (col..n)
            .map(|r| (r, m[(r, col)].abs()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        if piv_val < 1e-12 {
            return Err(LinalgError::Singular);
        }
        if piv != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(piv, j)];
                m[(piv, j)] = tmp;
            }
            x.swap(col, piv);
        }
        for r in col + 1..n {
            let f = m[(r, col)] / m[(col, col)];
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                let v = m[(col, j)];
                m[(r, j)] -= f * v;
            }
            x[r] -= f * x[col];
        }
    }
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in i + 1..n {
            s -= m[(i, j)] * x[j];
        }
        x[i] = s / m[(i, i)];
    }
    Ok(x)
}

/// Symmetric eigendecomposition by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
/// `eigenvectors.row(k)` is the unit eigenvector of `eigenvalues[k]`.
pub fn eigh(a: &Matrix) -> Result<(Vec<f64>, Matrix), LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::Shape);
    }
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-11 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-14 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].partial_cmp(&m[(i, i)]).expect("finite"));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (k, &i) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(k, r)] = v[(r, i)];
        }
    }
    Ok((eigenvalues, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
        assert_eq!(a.transpose().row(0), &[1.0, 3.0]);
    }

    #[test]
    fn gram_equals_at_a() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![3.0, -1.0, 2.0],
            vec![0.0, 4.0, 1.0],
        ]);
        let g = a.gram();
        let g2 = a.transpose().matmul(&a);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - g2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn spd_solve_recovers_solution() {
        // A = Bᵀ·B + I is SPD.
        let b = Matrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.5, 0.2, 2.0],
        ]);
        let mut a = b.gram();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let x_true = vec![1.0, -2.0, 0.5];
        let rhs = a.matvec(&x_true);
        let x = solve_spd(&a, &rhs).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn spd_solve_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert_eq!(solve_spd(&a, &[1.0, 1.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn lu_solve_handles_permutation() {
        // Needs pivoting: leading zero.
        let a = Matrix::from_rows(&[
            vec![0.0, 2.0, 1.0],
            vec![1.0, 0.0, 3.0],
            vec![2.0, 1.0, 0.0],
        ]);
        let x_true = vec![3.0, -1.0, 2.0];
        let rhs = a.matvec(&x_true);
        let x = solve_lu(&a, &rhs).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn lu_solve_rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(solve_lu(&a, &[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn eigh_diagonalises_known_matrix() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (vals, vecs) = eigh(&a).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
        // Eigenvector of 3 is (1,1)/√2 up to sign.
        let v0 = vecs.row(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn eigh_vectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5, 0.0],
            vec![1.0, 3.0, 0.2, 0.1],
            vec![0.5, 0.2, 2.0, 0.3],
            vec![0.0, 0.1, 0.3, 1.0],
        ]);
        let (vals, vecs) = eigh(&a).unwrap();
        // Descending order.
        for w in vals.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        for i in 0..4 {
            for j in 0..4 {
                let dot: f64 = vecs
                    .row(i)
                    .iter()
                    .zip(vecs.row(j))
                    .map(|(a, b)| a * b)
                    .sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-8, "({i},{j}) dot {dot}");
            }
        }
        // Reconstruct: A·v = λ·v.
        for (k, &val) in vals.iter().enumerate() {
            let av = a.matvec(vecs.row(k));
            for (x, v) in av.iter().zip(vecs.row(k)) {
                assert!((x - val * v).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn eigh_trace_is_preserved() {
        let a = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, 1.0, 0.5],
            vec![1.0, 0.5, 3.0],
        ]);
        let (vals, _) = eigh(&a).unwrap();
        let trace = 5.0 + 1.0 + 3.0;
        assert!((vals.iter().sum::<f64>() - trace).abs() < 1e-9);
    }
}
