//! Error metrics.
//!
//! The paper reports Absolute Percentage Error (Table 1) and relative EDP
//! differences (§7.1); both reduce to the functions here.

/// Mean absolute percentage error `mean(|pred - true| / |true|) · 100`.
///
/// Rows whose true value is (near) zero are skipped, as Weka does.
pub fn mean_absolute_percentage_error(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for (t, p) in truth.iter().zip(pred) {
        if t.abs() > 1e-12 {
            sum += ((p - t) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * sum / n as f64
    }
}

/// Root mean squared error.
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 0.0;
    }
    let mse: f64 = truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / truth.len() as f64;
    mse.sqrt()
}

/// Coefficient of determination R².
pub fn r2_score(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    let n = truth.len() as f64;
    if truth.is_empty() {
        return 1.0;
    }
    let mean: f64 = truth.iter().sum::<f64>() / n;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p) * (t - p)).sum();
    if ss_tot <= 1e-300 {
        if ss_res <= 1e-300 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_metrics() {
        let t = [1.0, 2.0, 4.0];
        assert_eq!(mean_absolute_percentage_error(&t, &t), 0.0);
        assert_eq!(rmse(&t, &t), 0.0);
        assert_eq!(r2_score(&t, &t), 1.0);
    }

    #[test]
    fn mape_known_value() {
        // Errors: 10%, 50% → mean 30%.
        let t = [10.0, 2.0];
        let p = [11.0, 1.0];
        assert!((mean_absolute_percentage_error(&t, &p) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn mape_skips_zero_truth() {
        let t = [0.0, 2.0];
        let p = [5.0, 3.0];
        assert!((mean_absolute_percentage_error(&t, &p) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn rmse_known_value() {
        let t = [0.0, 0.0];
        let p = [3.0, 4.0];
        assert!((rmse(&t, &p) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r2_score(&t, &p).abs() < 1e-12);
    }
}
