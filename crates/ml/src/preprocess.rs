//! Feature preprocessing.
//!
//! The paper normalises counters "to the unit normal distribution" before
//! PCA (§3.2); [`ZScore`] is that transform, fitted on training data and
//! applied to anything that arrives later.

/// Per-column z-score normaliser.
#[derive(Debug, Clone, PartialEq)]
pub struct ZScore {
    /// Column means.
    pub mean: Vec<f64>,
    /// Column standard deviations (zero-variance columns get 1.0 so they map
    /// to 0 rather than NaN).
    pub std: Vec<f64>,
}

impl ZScore {
    /// Fit on rows (each row one observation).
    pub fn fit(rows: &[Vec<f64>]) -> ZScore {
        assert!(!rows.is_empty(), "need data to fit");
        let d = rows[0].len();
        let n = rows.len() as f64;
        let mut mean = vec![0.0; d];
        for r in rows {
            assert_eq!(r.len(), d, "ragged rows");
            for (m, v) in mean.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for r in rows {
            for ((s, v), m) in var.iter_mut().zip(r).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var
            .into_iter()
            .map(|s| {
                let sd = (s / n).sqrt();
                if sd > 1e-12 {
                    sd
                } else {
                    1.0
                }
            })
            .collect();
        ZScore { mean, std }
    }

    /// Transform one row.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.mean.len(), "arity mismatch");
        row.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Transform many rows.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Invert the transform.
    pub fn inverse(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| v * s + m)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalised_columns_have_zero_mean_unit_var() {
        let rows = vec![
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
            vec![4.0, 400.0],
        ];
        let z = ZScore::fit(&rows);
        let t = z.transform_all(&rows);
        for col in 0..2 {
            let mean: f64 = t.iter().map(|r| r[col]).sum::<f64>() / 4.0;
            let var: f64 = t.iter().map(|r| r[col] * r[col]).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let rows = vec![vec![5.0], vec![5.0], vec![5.0]];
        let z = ZScore::fit(&rows);
        assert_eq!(z.transform(&[5.0]), vec![0.0]);
        assert_eq!(z.transform(&[6.0]), vec![1.0]);
    }

    #[test]
    fn inverse_round_trips() {
        let rows = vec![vec![1.0, -2.0], vec![4.0, 7.0], vec![-3.0, 0.5]];
        let z = ZScore::fit(&rows);
        for r in &rows {
            let back = z.inverse(&z.transform(r));
            for (a, b) in back.iter().zip(r) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
