//! Row-oriented dataset with named columns and CSV round-trip.
//!
//! Used for the feature matrices of §6.1 and the model training sets; the
//! CSV writer backs the experiment binaries' output files.

use std::fmt::Write as _;
use std::path::Path;

/// A dataset: named feature columns plus one target column.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature column names.
    pub feature_names: Vec<String>,
    /// Target column name.
    pub target_name: String,
    /// Feature rows (all of length `feature_names.len()`).
    pub x: Vec<Vec<f64>>,
    /// Targets, same length as `x`.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Empty dataset with the given schema.
    pub fn new(feature_names: Vec<String>, target_name: impl Into<String>) -> Dataset {
        Dataset {
            feature_names,
            target_name: target_name.into(),
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Append one row.
    pub fn push(&mut self, features: Vec<f64>, target: f64) {
        assert_eq!(features.len(), self.feature_names.len(), "schema mismatch");
        assert!(features.iter().all(|v| v.is_finite()), "non-finite feature");
        assert!(target.is_finite(), "non-finite target");
        self.x.push(features);
        self.y.push(target);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Split by index: rows `[0, at)` and `[at, len)`.
    pub fn split_at(&self, at: usize) -> (Dataset, Dataset) {
        let mut a = Dataset::new(self.feature_names.clone(), self.target_name.clone());
        let mut b = Dataset::new(self.feature_names.clone(), self.target_name.clone());
        for i in 0..self.len() {
            if i < at {
                a.push(self.x[i].clone(), self.y[i]);
            } else {
                b.push(self.x[i].clone(), self.y[i]);
            }
        }
        (a, b)
    }

    /// Deterministically shuffle rows with the RNG.
    pub fn shuffle<R: rand::Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.x.swap(i, j);
            self.y.swap(i, j);
        }
    }

    /// Render as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let header: Vec<&str> = self
            .feature_names
            .iter()
            .map(String::as_str)
            .chain(std::iter::once(self.target_name.as_str()))
            .collect();
        let _ = writeln!(s, "{}", header.join(","));
        for (row, y) in self.x.iter().zip(&self.y) {
            for v in row {
                let _ = write!(s, "{v},");
            }
            let _ = writeln!(s, "{y}");
        }
        s
    }

    /// Parse the CSV produced by [`Dataset::to_csv`].
    pub fn from_csv(text: &str) -> Result<Dataset, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty csv")?;
        let mut cols: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
        let target_name = cols.pop().ok_or("no columns")?;
        let mut ds = Dataset::new(cols, target_name);
        for (no, line) in lines.enumerate() {
            let vals: Result<Vec<f64>, _> =
                line.split(',').map(|t| t.trim().parse::<f64>()).collect();
            let mut vals = vals.map_err(|e| format!("line {}: {e}", no + 2))?;
            let y = vals
                .pop()
                .ok_or_else(|| format!("line {}: empty", no + 2))?;
            if vals.len() != ds.num_features() {
                return Err(format!("line {}: wrong arity", no + 2));
            }
            ds.push(vals, y);
        }
        Ok(ds)
    }

    /// Write CSV to a file.
    pub fn save_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Read CSV from a file.
    pub fn load_csv(path: impl AsRef<Path>) -> std::io::Result<Dataset> {
        let text = std::fs::read_to_string(path)?;
        Dataset::from_csv(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], "y");
        d.push(vec![1.0, 2.0], 3.0);
        d.push(vec![4.0, 5.0], 6.0);
        d.push(vec![7.0, 8.0], 9.0);
        d
    }

    #[test]
    fn csv_round_trips() {
        let d = sample();
        let d2 = Dataset::from_csv(&d.to_csv()).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn from_csv_rejects_garbage() {
        assert!(Dataset::from_csv("").is_err());
        assert!(Dataset::from_csv("a,b,y\n1,2,three").is_err());
        assert!(Dataset::from_csv("a,b,y\n1,2").is_err());
    }

    #[test]
    fn split_preserves_rows() {
        let d = sample();
        let (a, b) = d.split_at(2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.y[0], 9.0);
        assert_eq!(a.feature_names, d.feature_names);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut d = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        d.shuffle(&mut rng);
        let mut ys = d.y.clone();
        ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(ys, vec![3.0, 6.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "schema mismatch")]
    fn push_checks_arity() {
        let mut d = sample();
        d.push(vec![1.0], 2.0);
    }
}
