//! One function per paper table/figure. Each returns [`Table`]s ready for
//! [`ecost_core::report::emit`].

use crate::harness::{Ctx, NOISE, SEED};
use ecost_apps::catalog::ALL_APPS;
use ecost_apps::class::ClassPair;
use ecost_apps::{App, InputSize, WorkloadScenario};
use ecost_core::engine::EvalEngine;
use ecost_core::features::Testbed;
use ecost_core::mapping::{run_policy, ConfiguredPolicy, EcostContext, MappingPolicy};
use ecost_core::report::{f, Table};
use ecost_core::stp::{encode_row, Stp};
use ecost_core::strategies;
use ecost_mapreduce::{BlockSize, Feature, PairConfig, TuningConfig};
use ecost_ml::model::Regressor;
use ecost_ml::{hcluster, Pca, ZScore};
use ecost_sim::Frequency;
use std::time::Instant;

/// Re-exported from [`ecost_core::report`], where the rendering now lives
/// alongside the other table helpers (it gained the fault/retry/fallback
/// counters of the fault-injection subsystem).
pub use ecost_core::report::{engine_stats_table, telemetry_stats_table};

// ---------------------------------------------------------------- Fig 1 --

/// Fig 1: PCA of the 14 collected feature metrics over all applications ×
/// sizes, plus the hierarchical clustering that selects 7 representatives.
pub fn fig1_pca(ctx: &mut Ctx) -> Vec<Table> {
    // Observations: all 11 apps × 3 sizes, standalone profiling runs.
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for app in ALL_APPS {
        for size in InputSize::ALL {
            rows.push(ctx.signature(app, size).features.as_slice().to_vec());
        }
    }
    let z = ZScore::fit(&rows);
    let pca = Pca::fit(&z.transform_all(&rows)).expect("PCA on normalised counters");
    let ratio = pca.explained_variance_ratio();

    let mut variance = Table::new(
        "Fig 1a: PCA explained variance (paper: PC1+PC2 = 85.22%)",
        &["component", "variance %", "cumulative %"],
    );
    for (k, &r) in ratio.iter().enumerate().take(4) {
        variance.row(&[
            format!("PC{}", k + 1),
            f(100.0 * r, 2),
            f(100.0 * pca.cumulative_variance(k + 1), 2),
        ]);
    }

    // Feature scatter in (PC1, PC2) loading space + clustering to 7 groups.
    let pts: Vec<Vec<f64>> = (0..rows[0].len())
        .map(|feat| vec![pca.loading(0, feat), pca.loading(1, feat)])
        .collect();
    let dend = hcluster::agglomerative(&pts, hcluster::Linkage::Average);
    let labels = dend.cut(7);
    let reps = hcluster::representatives(&pts, 7, hcluster::Linkage::Average);

    let mut scatter = Table::new(
        "Fig 1b: feature loadings on PC1/PC2 with 7-cluster grouping",
        &["feature", "PC1", "PC2", "cluster", "representative"],
    );
    for (i, feat) in Feature::ALL.iter().enumerate() {
        scatter.row(&[
            feat.name().to_string(),
            f(pts[i][0], 3),
            f(pts[i][1], 3),
            labels[i].to_string(),
            if reps.contains(&i) {
                "*".into()
            } else {
                "".into()
            },
        ]);
    }

    let mut selected = Table::new(
        "Fig 1c: selected features (paper keeps CPUuser, CPUiowait, I/O read, I/O write, IPC, MemFootprint, LLC MPKI)",
        &["cluster representative"],
    );
    for &r in &reps {
        selected.row(&[Feature::ALL[r].name().to_string()]);
    }
    vec![variance, scatter, selected]
}

// ---------------------------------------------------------------- Fig 2 --

/// Fig 2: EDP improvement from tuning HDFS block size and frequency
/// individually vs concurrently, as a function of the mapper count. All EDP
/// normalised to (64 MB, 1.2 GHz) per the paper.
pub fn fig2_tuning(ctx: &mut Ctx) -> Vec<Table> {
    let eng = &ctx.engine;
    let idle = eng.idle_w();
    let cores = eng.testbed().node.cores;
    let apps = [App::Wc, App::Gp, App::St, App::Fp];
    let size = InputSize::Medium;

    let mut table = Table::new(
        "Fig 2: EDP improvement vs (64MB, 1.2GHz) baseline — individual vs concurrent tuning",
        &[
            "app",
            "mappers",
            "h-only %",
            "f-only %",
            "h+f %",
            "concurrent gain over best individual %",
        ],
    );
    let mut margins: Vec<f64> = Vec::new();
    for app in apps {
        for m in 1..=cores {
            let edp = |freq: Frequency, block: BlockSize| {
                let cfg = TuningConfig {
                    freq,
                    block,
                    mappers: m,
                };
                eng.solo_metrics(app.profile(), size.per_node_mb(), cfg)
                    .expect("solo sim")
                    .edp_wall(idle)
            };
            let base = edp(Frequency::F1_2, BlockSize::B64);
            let best_h = BlockSize::ALL
                .iter()
                .map(|h| edp(Frequency::F1_2, *h))
                .fold(f64::INFINITY, f64::min);
            let best_f = Frequency::ALL
                .iter()
                .map(|fq| edp(*fq, BlockSize::B64))
                .fold(f64::INFINITY, f64::min);
            let best_hf = Frequency::ALL
                .iter()
                .flat_map(|fq| BlockSize::ALL.iter().map(move |h| (*fq, *h)))
                .map(|(fq, h)| edp(fq, h))
                .fold(f64::INFINITY, f64::min);
            let margin = 100.0 * (1.0 - best_hf / best_h.min(best_f));
            margins.push(margin);
            table.row(&[
                app.name().into(),
                m.to_string(),
                f(100.0 * (1.0 - best_h / base), 1),
                f(100.0 * (1.0 - best_f / base), 1),
                f(100.0 * (1.0 - best_hf / base), 1),
                f(margin, 1),
            ]);
        }
    }
    let (lo, hi) = margins
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &m| {
            (l.min(m), h.max(m))
        });
    let mut summary = Table::new(
        "Fig 2 summary (paper: concurrent beats individual by 3.73%-87.39%, shrinking with mappers)",
        &["metric", "value"],
    );
    summary.row(&["min concurrent gain %".into(), f(lo, 2)]);
    summary.row(&["max concurrent gain %".into(), f(hi, 2)]);
    vec![table, summary]
}

// ---------------------------------------------------------------- Fig 3 --

/// Fig 3: COLAO vs ILAO EDP for every same-size training pair.
pub fn fig3_colao_ilao(ctx: &mut Ctx) -> Vec<Table> {
    let eng = &ctx.engine;
    let idle = eng.idle_w();
    let mut table = Table::new(
        "Fig 3: ILAO/COLAO wall-EDP ratio (>1 = co-location wins; paper max 4.52x at I-I)",
        &["pair", "classes", "size", "ILAO EDP", "COLAO EDP", "gain x"],
    );
    let mut best_gain: (String, f64) = (String::new(), 0.0);
    for (i, &a) in ecost_apps::TRAINING_APPS.iter().enumerate() {
        for &b in &ecost_apps::TRAINING_APPS[i..] {
            for size in InputSize::ALL {
                let mb = size.per_node_mb();
                let il = strategies::ilao(eng, a.profile(), mb, b.profile(), mb).expect("ilao");
                let co = strategies::colao(eng, a.profile(), mb, b.profile(), mb).expect("colao");
                let gain = il.metrics.edp_wall(idle) / co.metrics.edp_wall(idle);
                if gain > best_gain.1 {
                    best_gain = (format!("{}-{} @{size}", a.name(), b.name()), gain);
                }
                table.row(&[
                    format!("{}-{}", a.name(), b.name()),
                    ClassPair::new(a.class(), b.class()).to_string(),
                    size.to_string(),
                    format!("{:.3e}", il.metrics.edp_wall(idle)),
                    format!("{:.3e}", co.metrics.edp_wall(idle)),
                    f(gain, 2),
                ]);
            }
        }
    }
    let mut summary = Table::new("Fig 3 summary", &["metric", "value"]);
    summary.row(&[
        "largest gain".into(),
        format!("{} ({:.2}x)", best_gain.0, best_gain.1),
    ]);
    vec![table, summary]
}

// ---------------------------------------------------------------- Fig 5 --

/// Fig 5: per class pair, the tuned EDP across every core partitioning; the
/// minimum over partitions ranks the pairs and derives the scheduler's
/// class priority.
pub fn fig5_priority(ctx: &mut Ctx) -> Vec<Table> {
    let eng = &ctx.engine;
    let idle = eng.idle_w();
    let size = InputSize::Medium;
    let mb = size.per_node_mb();

    // For every training pair: group its full sweep by partition.
    let mut per_class: std::collections::HashMap<ClassPair, (f64, String, (u32, u32))> =
        std::collections::HashMap::new();
    let mut partition_table = Table::new(
        "Fig 5a: best normalised EDP per core partition (selected pairs)",
        &["pair", "classes", "partition", "EDP/ILAO"],
    );
    for (i, &a) in ecost_apps::TRAINING_APPS.iter().enumerate() {
        for &b in &ecost_apps::TRAINING_APPS[i..] {
            let cp = ClassPair::new(a.class(), b.class());
            let il = strategies::ilao(eng, a.profile(), mb, b.profile(), mb)
                .expect("ilao")
                .metrics
                .edp_wall(idle);
            let sweep = eng
                .pair_sweep(a.profile(), mb, b.profile(), mb)
                .expect("sweep");
            let mut by_part: std::collections::HashMap<(u32, u32), f64> =
                std::collections::HashMap::new();
            for run in sweep.runs().iter() {
                // Report partitions in (a, b) orientation.
                let cfg = if sweep.swapped() {
                    run.config.swapped()
                } else {
                    run.config
                };
                let part = (cfg.a.mappers, cfg.b.mappers);
                let e = run.metrics.edp_wall(idle);
                let slot = by_part.entry(part).or_insert(f64::INFINITY);
                *slot = slot.min(e);
            }
            // Emit the balanced partitions for the figure's solid line.
            for part in [(1u32, 7u32), (2, 6), (4, 4), (6, 2), (7, 1)] {
                if let Some(e) = by_part.get(&part) {
                    partition_table.row(&[
                        format!("{}-{}", a.name(), b.name()),
                        cp.to_string(),
                        format!("{}+{}", part.0, part.1),
                        f(e / il, 3),
                    ]);
                }
            }
            let (best_part, best_edp) = by_part
                .into_iter()
                .min_by(|x, y| x.1.total_cmp(&y.1))
                .expect("non-empty");
            let norm = best_edp / il;
            let entry = per_class
                .entry(cp)
                .or_insert((f64::INFINITY, String::new(), (0, 0)));
            if norm < entry.0 {
                *entry = (norm, format!("{}-{}", a.name(), b.name()), best_part);
            }
        }
    }

    type RankRow = (ClassPair, (f64, String, (u32, u32)));
    let mut ranking: Vec<RankRow> = per_class.into_iter().collect();
    ranking.sort_by(|x, y| x.1 .0.total_cmp(&y.1 .0));
    let mut rank_table = Table::new(
        "Fig 5b: class-pair ranking by lowest normalised EDP (paper: I-I first, M-X last)",
        &["rank", "classes", "best pair", "partition", "EDP/ILAO"],
    );
    let ranking_scores: Vec<(ClassPair, f64)> =
        ranking.iter().map(|(cp, (s, _, _))| (*cp, *s)).collect();
    for (r, (cp, (score, pair, part))) in ranking.iter().enumerate() {
        rank_table.row(&[
            (r + 1).to_string(),
            cp.to_string(),
            pair.clone(),
            format!("{}+{}", part.0, part.1),
            f(*score, 3),
        ]);
    }

    let policy = ecost_core::pairing::PairingPolicy::from_ranking(&ranking_scores);
    let mut policy_table = Table::new(
        "Fig 5c: derived scheduler class priority (paper: I > H/C > M)",
        &["priority", "class"],
    );
    for (i, c) in policy.priority.iter().enumerate() {
        policy_table.row(&[(i + 1).to_string(), c.to_string()]);
    }
    vec![partition_table, rank_table, policy_table]
}

// -------------------------------------------------------------- Table 1 --

/// Table 1: absolute percentage error of the LR / REPTree / MLP models on
/// the training applications, per class pair (errors back in EDP space).
pub fn table1_ape(ctx: &mut Ctx) -> Vec<Table> {
    ctx.models();
    let training = ctx.training().clone();
    let training_mlp = ctx.training_mlp().clone();
    let models = ctx.models();
    let mut table = Table::new(
        "Table 1: APE (%) on training applications (paper avg: LR 55.2, REPTree 4.38, MLP 0.77)",
        &["classes", "LR", "REPTree", "MLP"],
    );
    let mut sums = [0.0_f64; 3];
    let mut pairs: Vec<&ClassPair> = training.keys().collect();
    pairs.sort();
    for cp in &pairs {
        let ds = &training[cp];
        let ds_mlp = &training_mlp[cp];
        let ape_of = |truth_ln: &[f64], pred_ln: Vec<f64>| {
            let truth: Vec<f64> = truth_ln.iter().map(|y| y.exp()).collect();
            let pred: Vec<f64> = pred_ln.iter().map(|p| p.exp()).collect();
            ecost_ml::mean_absolute_percentage_error(&truth, &pred)
        };
        let lr = ape_of(
            &ds.y,
            models.lr.model_for(**cp).expect("model").predict_all(&ds.x),
        );
        let rt = ape_of(
            &ds.y,
            models
                .reptree
                .model_for(**cp)
                .expect("model")
                .predict_all(&ds.x),
        );
        let mlp = ape_of(
            &ds_mlp.y,
            models
                .mlp
                .model_for(**cp)
                .expect("model")
                .predict_all(&ds_mlp.x),
        );
        sums[0] += lr;
        sums[1] += rt;
        sums[2] += mlp;
        table.row(&[cp.to_string(), f(lr, 2), f(rt, 2), f(mlp, 2)]);
    }
    let n = pairs.len() as f64;
    table.row(&[
        "Average".into(),
        f(sums[0] / n, 2),
        f(sums[1] / n, 2),
        f(sums[2] / n, 2),
    ]);
    vec![table]
}

// -------------------------------------------------------------- Table 2 --

/// The test workloads evaluated in Table 2 / §7.1: pairs built from the six
/// unknown applications (optionally mixed with known ones, as the paper
/// allows).
pub fn table2_pairs() -> Vec<(App, App, InputSize)> {
    use App::*;
    use InputSize::*;
    vec![
        (Pr, Pr, Medium),  // H-H
        (Svm, Cf, Medium), // C-M
        (St, Cf, Medium),  // I-M (known I + unknown M)
        (Pr, Cf, Medium),  // H-M
        (St, Pr, Medium),  // I-H
        (Pr, Pr, Large),   // H-H at large input
        (Pr, Fp, Medium),  // H-M (unknown H + known M)
        (Cf, Cf, Medium),  // M-M
        (Km, Hmm, Medium), // C-C
        (Nb, St, Medium),  // C-I
    ]
}

/// Table 2 + §7.1: configurations chosen by each STP technique for unknown
/// pairs, and their EDP error vs the COLAO oracle.
pub fn table2_configs(ctx: &mut Ctx) -> Vec<Table> {
    ctx.models();
    let cores = ctx.tb().node.cores;
    let idle = ctx.engine.idle_w();
    let pairs = table2_pairs();

    let mut table = Table::new(
        "Table 2: configs (f,h,m per app) and EDP error vs COLAO oracle",
        &[
            "pair",
            "classes",
            "size",
            "oracle cfg",
            "LkT cfg",
            "LR cfg",
            "MLP cfg",
            "REPTree cfg",
            "LkT %",
            "LR %",
            "MLP %",
            "REPTree %",
        ],
    );
    let mut sums = [0.0_f64; 4];
    let mut worst = [0.0_f64; 4];
    for &(a, b, size) in &pairs {
        let mb = size.per_node_mb();
        let sig_a = ctx.signature(a, size);
        let sig_b = ctx.signature(b, size);
        let (models, eng) = ctx.models_and_engine();
        let oracle_run = eng
            .best_pair(a.profile(), mb, b.profile(), mb)
            .expect("oracle");
        let oracle_edp = oracle_run.metrics.edp_wall(idle);
        let mut cfgs: Vec<String> =
            vec![oracle_run.config.a.table_row() + " | " + &oracle_run.config.b.table_row()];
        let mut errs: Vec<String> = Vec::new();
        for (i, (_, stp)) in models.all().iter().enumerate() {
            let cfg = stp.choose(&sig_a, &sig_b, cores).expect("stp choice");
            let metrics = eng
                .pair_metrics(a.profile(), mb, b.profile(), mb, cfg)
                .expect("pair sim");
            let err = 100.0 * (metrics.edp_wall(idle) - oracle_edp) / oracle_edp;
            sums[i] += err.max(0.0);
            worst[i] = worst[i].max(err);
            cfgs.push(cfg.a.table_row() + " | " + &cfg.b.table_row());
            errs.push(f(err, 2));
        }
        let mut row = vec![
            format!("{}-{}", a.name(), b.name()),
            ClassPair::new(a.class(), b.class()).to_string(),
            size.to_string(),
        ];
        row.extend(cfgs);
        row.extend(errs);
        table.row(&row);
    }
    let n = pairs.len() as f64;
    let mut summary = Table::new(
        "§7.1 summary: mean/worst EDP error vs COLAO (paper: LkT 8.09, LR 20.37, MLP 3.43, REPTree 3.84)",
        &["technique", "mean error %", "worst error %"],
    );
    for (i, name) in ["LkT", "LR", "MLP", "REPTree"].iter().enumerate() {
        summary.row(&[name.to_string(), f(sums[i] / n, 2), f(worst[i], 2)]);
    }
    vec![table, summary]
}

// ---------------------------------------------------------------- Fig 8 --

/// Fig 8: training and prediction cost of the STP techniques, plus the
/// engine's own account of how much simulation backed them.
pub fn fig8_overhead(ctx: &mut Ctx) -> Vec<Table> {
    ctx.models();
    let cores = ctx.tb().node.cores;
    let pairs = table2_pairs();
    // Measure decision latency over the test pairs.
    let sigs: Vec<_> = pairs
        .iter()
        .map(|&(a, b, size)| (ctx.signature(a, size), ctx.signature(b, size)))
        .collect();
    let models = ctx.models();
    let mut predict_ms: Vec<(String, f64)> = Vec::new();
    for (name, stp) in models.all() {
        let t0 = Instant::now();
        let mut guard = 0u32;
        for (sa, sb) in &sigs {
            let cfg = stp.choose(sa, sb, cores).expect("stp choice");
            guard = guard.wrapping_add(cfg.cores());
        }
        assert!(guard > 0);
        predict_ms.push((
            name.to_string(),
            1e3 * t0.elapsed().as_secs_f64() / sigs.len() as f64,
        ));
    }
    let tt = ctx.train_times();
    let mut table = Table::new(
        "Fig 8: (a) training time, (b) prediction time per decision (paper shape: LR/REPTree ≪ LkT < MLP train; LkT fastest predict, MLP slowest)",
        &["technique", "train s", "predict ms"],
    );
    let train = [
        ("LkT", tt.lkt_s),
        ("LR", tt.lr_s),
        ("MLP", tt.mlp_s),
        ("REPTree", tt.reptree_s),
    ];
    for ((name, tr), (pname, pm)) in train.iter().zip(&predict_ms) {
        assert_eq!(name, pname);
        table.row(&[name.to_string(), f(*tr, 3), f(*pm, 3)]);
    }
    let stats = ctx.engine.stats();
    vec![
        table,
        telemetry_stats_table(
            "Fig 8 addendum: evaluation-engine stats (the offline cost every technique shares)",
            &stats,
            ctx.engine.recorder(),
        ),
    ]
}

// ---------------------------------------------------------------- Fig 9 --

/// Fig 9: EDP of the mapping policies on 1/2/4/8 nodes for WS1–WS8,
/// normalised to the brute-force upper bound.
pub fn fig9_scalability(ctx: &mut Ctx, sizes: &[usize], size: InputSize) -> Vec<Table> {
    ctx.models();
    let db = ctx.db().clone();
    let classifier = ctx.rule_classifier();
    let pairing = ecost_core::pairing::PairingPolicy::default();
    let idle = ctx.engine.idle_w();

    let mut tables = Vec::new();
    let mut ecost_gap_sum = 0.0;
    let mut ecost_gap_n = 0usize;
    for &n in sizes {
        let mut table = Table::new(
            format!("Fig 9: normalised EDP (policy/UB) on {n} node(s), inputs {size}"),
            &[
                "workload", "SM", "MNM1", "MNM2", "SNM", "CBM", "PTM", "ECoST", "UB",
            ],
        );
        for ws in WorkloadScenario::ALL {
            let workload = ws.workload(size);
            let (models, eng) = ctx.models_and_engine();
            let ecx = EcostContext {
                db: &db,
                stp: &models.reptree,
                classifier: &classifier,
                pairing: &pairing,
                noise: NOISE,
                seed: SEED,
                pairing_mode: ecost_core::pairing::PairingMode::DecisionTree,
            };
            // Run everything, then normalise by the envelope: our UB is the
            // better of two brute-force schedules (oracle-streamed, matched
            // pairs), but a heuristic schedule can occasionally edge it out;
            // the paper's UB is by construction the best schedule found, so
            // the denominator is the minimum across all runs.
            let runs: Vec<f64> = MappingPolicy::ALL
                .iter()
                .map(|policy| {
                    let p = ConfiguredPolicy::new(*policy, Some(&ecx)).expect("policy config");
                    run_policy(eng, n, &workload, &p)
                        .expect("cluster run")
                        .edp_wall(idle)
                })
                .collect();
            let ub_edp = runs.iter().copied().fold(f64::INFINITY, f64::min);
            let mut row = vec![ws.label().to_string()];
            for (policy, edp) in MappingPolicy::ALL.iter().zip(&runs) {
                let norm = edp / ub_edp;
                if *policy == MappingPolicy::Ecost {
                    ecost_gap_sum += norm - 1.0;
                    ecost_gap_n += 1;
                }
                row.push(f(norm, 2));
            }
            table.row(&row);
            eprintln!("[fig9] {n} node(s) {} done", ws.label());
        }
        tables.push(table);
    }
    let mut summary = Table::new(
        "Fig 9 summary (paper: ECoST within 4% of UB at 1 node, 8% at 8 nodes)",
        &["metric", "value"],
    );
    summary.row(&[
        "mean ECoST gap over UB %".into(),
        f(100.0 * ecost_gap_sum / ecost_gap_n.max(1) as f64, 2),
    ]);
    tables.push(summary);
    tables
}

// ------------------------------------------------------------ ablations --

/// Ablation (paper §4.2 claim): co-locating more than 2 applications
/// degrades EDP. Eight 5 GB FP-Growth jobs are pushed through one node in
/// batches of k ∈ {1, 2, 4, 8} co-located jobs; beyond 2 the combined
/// working sets exceed DRAM and spill pressure erodes the packing gain.
pub fn ablation_kway(ctx: &mut Ctx) -> Vec<Table> {
    let tb = ctx.tb().clone();
    let idle = ctx.engine.idle_w();
    let jobs_total = 8usize;
    let input_mb = InputSize::Medium.per_node_mb();
    let mut table = Table::new(
        "Ablation: k-way co-location of FP-Growth batches (paper: 2 best, >2 degrades)",
        &[
            "k per batch",
            "makespan s",
            "energy J",
            "wall EDP",
            "vs k=2",
        ],
    );
    let mut edp2 = None;
    for k in [1usize, 2, 4, 8] {
        let m = (tb.node.cores / k as u32).max(1);
        let cfg = TuningConfig {
            freq: Frequency::F2_0,
            block: BlockSize::B512,
            mappers: m,
        };
        let mut makespan = 0.0;
        let mut energy = 0.0;
        for _batch in 0..(jobs_total / k) {
            let jobs: Vec<ecost_mapreduce::JobSpec> = (0..k)
                .map(|_| {
                    ecost_mapreduce::JobSpec::from_profile(App::Fp.profile().clone(), input_mb, cfg)
                })
                .collect();
            let (outs, span) =
                ecost_mapreduce::executor::run_colocated(&tb.node, &tb.fw, jobs).expect("sim");
            makespan += span;
            energy += outs.iter().map(|o| o.metrics.energy_j).sum::<f64>();
        }
        let pm = ecost_mapreduce::PairMetrics {
            makespan_s: makespan,
            energy_j: energy,
        };
        let edp = pm.edp_wall(idle);
        if k == 2 {
            edp2 = Some(edp);
        }
        table.row(&[
            k.to_string(),
            f(makespan, 1),
            f(energy, 0),
            format!("{edp:.3e}"),
            edp2.map_or("-".into(), |e| f(edp / e, 2)),
        ]);
    }
    vec![table]
}

/// Ablation: the per-job I/O-path ceiling is what makes I-I co-location
/// profitable — remove it (cap = disk peak) and the gain should collapse.
pub fn ablation_job_cap(ctx: &mut Ctx) -> Vec<Table> {
    let mut table = Table::new(
        "Ablation: I-I COLAO gain with and without the per-job I/O ceiling",
        &["job I/O cap MB/s", "ILAO/COLAO gain x"],
    );
    let mb = InputSize::Small.per_node_mb();
    for cap in [70.0, 170.0] {
        let mut tb = ctx.tb().clone();
        tb.fw.job_io_cap_mbps = cap;
        // A modified testbed means a separate engine (its memo is keyed by
        // app/input/config, not framework parameters).
        let eng = EvalEngine::new(tb);
        let gain = strategies::colao_over_ilao_gain(&eng, App::St.profile(), App::St.profile(), mb)
            .expect("gain");
        table.row(&[f(cap, 0), f(gain, 2)]);
    }
    vec![table]
}

/// Ablation: value of the Fig 4 pairing decision tree — ECoST with the
/// class-priority tree vs. class-blind FIFO pairing vs. random pairing, on
/// the mixed workload WS8.
pub fn ablation_pairing(ctx: &mut Ctx) -> Vec<Table> {
    use ecost_core::pairing::PairingMode;
    ctx.models();
    let db = ctx.db().clone();
    let classifier = ctx.rule_classifier();
    let pairing = ecost_core::pairing::PairingPolicy::default();
    let idle = ctx.engine.idle_w();
    let workload = WorkloadScenario::Ws8.workload(InputSize::Small);

    let mut table = Table::new(
        "Ablation: partner-selection mode in the ECoST scheduler (WS8, 2 nodes)",
        &["mode", "makespan s", "wall EDP", "vs decision tree"],
    );
    let mut base = None;
    for (label, mode) in [
        ("decision-tree", PairingMode::DecisionTree),
        ("fifo", PairingMode::Fifo),
        ("random", PairingMode::Random(SEED)),
    ] {
        let (models, eng) = ctx.models_and_engine();
        let ecx = EcostContext {
            db: &db,
            stp: &models.reptree,
            classifier: &classifier,
            pairing: &pairing,
            noise: NOISE,
            seed: SEED,
            pairing_mode: mode,
        };
        let p = ConfiguredPolicy::new(MappingPolicy::Ecost, Some(&ecx)).expect("policy config");
        let run = run_policy(eng, 2, &workload, &p).expect("cluster run");
        let edp = run.edp_wall(idle);
        if base.is_none() {
            base = Some(edp);
        }
        table.row(&[
            label.into(),
            f(run.makespan_s, 1),
            format!("{edp:.3e}"),
            f(edp / base.expect("set on first row"), 3),
        ]);
    }
    vec![table]
}

/// Extension: open-queue operation. §5 describes jobs *arriving* to the
/// datacenter; this experiment drives ECoST with Poisson arrivals and
/// sweeps the head-reservation allowance, quantifying the value of the
/// paper's small-job leap-forward rule (allowance 0 = strict FIFO head).
pub fn extension_open_queue(ctx: &mut Ctx) -> Vec<Table> {
    ctx.models();
    let db = ctx.db().clone();
    let classifier = ctx.rule_classifier();
    let pairing = ecost_core::pairing::PairingPolicy::default();
    let idle = ctx.engine.idle_w();
    let workload = WorkloadScenario::Ws8.workload(InputSize::Small);
    let mut rng = ecost_sim::rng::stream(SEED, "arrivals");
    let arrivals = workload.poisson_arrivals(&mut rng, 45.0);

    let mut table = Table::new(
        "Extension: open queue (Poisson arrivals, WS8, 2 nodes) vs head-reservation allowance",
        &["max head skips", "makespan s", "wall EDP", "vs allowance 2"],
    );
    let mut base = None;
    for skips in [0u32, 2, 8] {
        let (models, eng) = ctx.models_and_engine();
        let ecx = EcostContext {
            db: &db,
            stp: &models.reptree,
            classifier: &classifier,
            pairing: &pairing,
            noise: NOISE,
            seed: SEED,
            pairing_mode: ecost_core::pairing::PairingMode::DecisionTree,
        };
        let run = ecost_core::mapping::run_ecost_open(eng, 2, &workload, &arrivals, skips, &ecx)
            .expect("open-queue run");
        let edp = run.edp_wall(idle);
        if skips == 2 {
            base = Some(edp);
        }
        table.row(&[
            skips.to_string(),
            f(run.makespan_s, 1),
            format!("{edp:.3e}"),
            base.map_or("-".into(), |b| f(edp / b, 3)),
        ]);
    }
    vec![table]
}

/// Extension: the §2.1 claim that the methodology transfers to big-core
/// servers — rerun the Fig 3 headline on a Xeon-class node.
pub fn extension_xeon(_ctx: &mut Ctx) -> Vec<Table> {
    let tb = Testbed {
        node: ecost_sim::NodeSpec::xeon_like(),
        fw: ecost_mapreduce::FrameworkSpec {
            job_io_cap_mbps: 180.0,
            ..ecost_mapreduce::FrameworkSpec::default()
        },
    };
    let eng = EvalEngine::new(tb);
    let mb = InputSize::Medium.per_node_mb();
    let mut table = Table::new(
        "Extension: COLAO gain on a Xeon-class node (paper §2.1: results transfer)",
        &["pair", "classes", "gain x"],
    );
    for (a, b) in [
        (App::St, App::St),
        (App::Wc, App::St),
        (App::Wc, App::Wc),
        (App::Fp, App::Fp),
    ] {
        let gain =
            strategies::colao_over_ilao_gain(&eng, a.profile(), b.profile(), mb).expect("gain");
        table.row(&[
            format!("{}-{}", a.name(), b.name()),
            ClassPair::new(a.class(), b.class()).to_string(),
            f(gain, 2),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------- Chaos --

/// Chaos extension: sweep fault schedules × scheduling policy and report
/// the EDP degradation curve plus every fault/degradation counter. Runs
/// against a small LkT subset (3 apps × Small inputs) so the bin is cheap
/// enough for CI. Besides the tables, returns a deterministic JSON
/// document (no wall-clock fields): CI runs the bin twice with the same
/// seed and diffs the two files byte-for-byte to pin scheduler
/// determinism under faults.
pub fn chaos(ctx: &mut Ctx) -> (Vec<Table>, String) {
    use ecost_core::engine::{EvalError, RetryPolicy};
    use ecost_core::mapping::{run_ecost_faulted, run_untuned_faulted, FaultSetup, FaultedRun};
    use ecost_sim::{ClusterSpec, FaultKind, FaultPlan, FaultSpec};
    use std::fmt::Write as _;

    const NODES: usize = 2;
    let eng = &ctx.engine;
    let idle = eng.idle_w();
    let db = ecost_core::database::ConfigDatabase::build_subset(
        eng,
        &[App::Wc, App::St, App::Fp],
        &[InputSize::Small],
        NOISE,
        SEED,
    )
    .expect("subset database");
    let classifier = ecost_core::classify::RuleClassifier::fit(&db.signatures);
    let lkt = ecost_core::stp::LktStp::from_database(&db);
    let pairing = ecost_core::pairing::PairingPolicy::default();
    let ecx = EcostContext {
        db: &db,
        stp: &lkt,
        classifier: &classifier,
        pairing: &pairing,
        noise: NOISE,
        seed: SEED,
        pairing_mode: ecost_core::pairing::PairingMode::DecisionTree,
    };
    let mut workload = ecost_apps::Workload {
        name: "chaos-mix".into(),
        jobs: vec![
            (App::Wc, InputSize::Small),
            (App::St, InputSize::Small),
            (App::Fp, InputSize::Small),
            (App::St, InputSize::Small),
            (App::Wc, InputSize::Small),
            (App::Fp, InputSize::Small),
        ],
    };
    if ctx.quick {
        workload.jobs.truncate(4);
    }
    let retry = RetryPolicy::default();

    // The healthy ECoST run fixes the horizon fault schedules are drawn in.
    let healthy = run_ecost_faulted(
        eng,
        NODES,
        &workload,
        None,
        2,
        &ecx,
        &FaultSetup {
            plan: FaultPlan::none(),
            retry,
        },
    )
    .expect("healthy ECoST run");
    let horizon = healthy.run.makespan_s;
    let cluster = ClusterSpec::atom_cluster(NODES);

    let schedules: Vec<(&str, FaultPlan)> = vec![
        ("none", FaultPlan::none()),
        (
            "one-crash",
            FaultPlan::none().with_event(0.2 * horizon, 1, FaultKind::NodeCrash),
        ),
        (
            "sampled-0.5",
            FaultPlan::sample(&cluster, &FaultSpec::scaled(0.5, horizon), SEED),
        ),
        (
            "sampled-1.0",
            FaultPlan::sample(&cluster, &FaultSpec::scaled(1.0, horizon), SEED),
        ),
    ];

    let mut table = Table::new(
        "Chaos: fault sweep on 2 nodes (LkT subset) — EDP degradation and counters",
        &[
            "policy",
            "faults",
            "outcome",
            "makespan s",
            "wall EDP",
            "vs healthy",
            "crash",
            "requeue",
            "slow",
            "strag",
            "spec",
            "solo fb",
            "cfg fb",
            "retry",
        ],
    );
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"nodes\": {NODES},");
    let _ = writeln!(json, "  \"jobs\": {},", workload.jobs.len());
    let _ = writeln!(json, "  \"horizon_s\": {horizon:.6e},");
    json.push_str("  \"runs\": [\n");

    // Healthy wall EDP per policy, filled by the "none" schedule (first).
    let mut healthy_edp: [Option<f64>; 2] = [None, None];
    let total = schedules.len() * 2;
    let mut emitted = 0usize;
    for (label, plan) in &schedules {
        for (pi, policy) in ["ecost", "untuned"].iter().enumerate() {
            let setup = FaultSetup {
                plan: plan.clone(),
                retry,
            };
            let result: Result<FaultedRun, EvalError> = if pi == 0 {
                run_ecost_faulted(eng, NODES, &workload, None, 2, &ecx, &setup)
            } else {
                run_untuned_faulted(eng, NODES, &workload, None, &setup)
            };
            emitted += 1;
            let comma = if emitted < total { "," } else { "" };
            match result {
                Ok(fr) => {
                    let edp = fr.run.edp_wall(idle);
                    if *label == "none" {
                        healthy_edp[pi] = Some(edp);
                    }
                    let rel = healthy_edp[pi].map(|b| edp / b);
                    let r = &fr.report;
                    table.row(&[
                        policy.to_string(),
                        (*label).to_string(),
                        "ok".into(),
                        f(fr.run.makespan_s, 1),
                        format!("{edp:.3e}"),
                        rel.map_or("-".into(), |v| f(v, 3)),
                        r.crashes.to_string(),
                        r.requeued_jobs.to_string(),
                        r.slowdowns.to_string(),
                        r.stragglers.to_string(),
                        r.speculations.to_string(),
                        r.solo_fallbacks.to_string(),
                        r.config_fallbacks.to_string(),
                        r.retries.to_string(),
                    ]);
                    let _ = writeln!(
                        json,
                        "    {{\"policy\": \"{policy}\", \"faults\": \"{label}\", \
                         \"outcome\": \"ok\", \"makespan_s\": {:.6e}, \"edp_wall\": {:.6e}, \
                         \"crashes\": {}, \"requeued\": {}, \"slowdowns\": {}, \
                         \"stragglers\": {}, \"speculations\": {}, \"solo_fallbacks\": {}, \
                         \"config_fallbacks\": {}, \"retries\": {}, \
                         \"retry_backoff_s\": {:.6e}}}{comma}",
                        fr.run.makespan_s,
                        edp,
                        r.crashes,
                        r.requeued_jobs,
                        r.slowdowns,
                        r.stragglers,
                        r.speculations,
                        r.solo_fallbacks,
                        r.config_fallbacks,
                        r.retries,
                        r.retry_backoff_s,
                    );
                }
                Err(e) => {
                    let mut row = vec![policy.to_string(), (*label).to_string(), "failed".into()];
                    row.extend(std::iter::repeat_n("-".to_string(), 11));
                    table.row(&row);
                    let msg = e.to_string().replace('"', "\\\"");
                    let _ = writeln!(
                        json,
                        "    {{\"policy\": \"{policy}\", \"faults\": \"{label}\", \
                         \"outcome\": \"failed\", \"error\": \"{msg}\"}}{comma}"
                    );
                }
            }
        }
    }
    json.push_str("  ]\n}\n");
    let stats = telemetry_stats_table(
        "Chaos: engine counters after the sweep",
        &eng.stats(),
        eng.recorder(),
    );
    (vec![table, stats], json)
}

/// Sanity metric used by tests: REPTree STP error vs oracle on one pair.
pub fn quick_stp_error(ctx: &mut Ctx, a: App, b: App, size: InputSize) -> f64 {
    ctx.models();
    let cores = ctx.tb().node.cores;
    let idle = ctx.engine.idle_w();
    let mb = size.per_node_mb();
    let sig_a = ctx.signature(a, size);
    let sig_b = ctx.signature(b, size);
    let (models, eng) = ctx.models_and_engine();
    let oracle_run = eng
        .best_pair(a.profile(), mb, b.profile(), mb)
        .expect("oracle");
    let cfg = models
        .reptree
        .choose(&sig_a, &sig_b, cores)
        .expect("stp choice");
    let m = eng
        .pair_metrics(a.profile(), mb, b.profile(), mb, cfg)
        .expect("pair sim");
    (m.edp_wall(idle) - oracle_run.metrics.edp_wall(idle)) / oracle_run.metrics.edp_wall(idle)
}

/// Helper for tests and notebooks: predict-vs-simulate check of one encoded
/// configuration (round-trip of the encode/argmin plumbing).
pub fn predict_one(ctx: &mut Ctx, a: App, b: App, size: InputSize, cfg: PairConfig) -> (f64, f64) {
    ctx.models();
    let idle = ctx.engine.idle_w();
    let sig_a = ctx.signature(a, size);
    let sig_b = ctx.signature(b, size);
    let (models, eng) = ctx.models_and_engine();
    let cp = ClassPair::new(a.class(), b.class());
    let pred = models
        .reptree
        .model_for(cp)
        .expect("model")
        .predict(&encode_row(&sig_a.key(), cfg.a, &sig_b.key(), cfg.b))
        .exp();
    let truth = eng
        .pair_metrics(
            a.profile(),
            size.per_node_mb(),
            b.profile(),
            size.per_node_mb(),
            cfg,
        )
        .expect("pair sim")
        .edp_wall(idle);
    (pred, truth)
}
