//! Shared experiment context: evaluation engine, database, training data,
//! fitted models and their measured costs.

use ecost_apps::{App, InputSize, TRAINING_APPS};
use ecost_core::classify::{KnnAppClassifier, RuleClassifier};
use ecost_core::database::ConfigDatabase;
use ecost_core::engine::EvalEngine;
use ecost_core::features::profile_catalog_app;
use ecost_core::stp::training::{build_training_data, TrainingData};
use ecost_core::stp::{LktStp, MlmStp, Stp};
use ecost_ml::{LinearRegression, Mlp, MlpConfig, RepTree, RepTreeConfig};
use std::time::Instant;

/// Root seed for every experiment (reproducible end to end).
pub const SEED: u64 = ecost_sim::rng::DEFAULT_SEED;

/// Counter measurement noise used throughout (±3 %).
pub const NOISE: f64 = 0.03;

/// Measured wall-clock training costs, seconds (Fig 8's left panel).
#[derive(Debug, Clone, Default)]
pub struct TrainTimes {
    /// LkT: the database construction (exhaustive sweeps).
    pub lkt_s: f64,
    /// Linear regression fits.
    pub lr_s: f64,
    /// REPTree fits.
    pub reptree_s: f64,
    /// MLP fits.
    pub mlp_s: f64,
}

/// The lazily-built experiment context.
pub struct Ctx {
    /// The shared evaluation engine (owns the testbed and every memoized
    /// solo/pair simulation — experiments that re-ask for a sweep the
    /// database build already did get it for free).
    pub engine: EvalEngine,
    /// Quick mode (ECOST_QUICK=1): subsampled training, fewer MLP epochs.
    pub quick: bool,
    db: Option<ConfigDatabase>,
    training: Option<TrainingData>,
    training_mlp: Option<TrainingData>,
    models: Option<Models>,
    train_times: TrainTimes,
}

/// The four fitted STP techniques.
pub struct Models {
    /// Lookup table.
    pub lkt: LktStp,
    /// Linear-regression MLM.
    pub lr: MlmStp<LinearRegression>,
    /// REPTree MLM (the paper's preferred model).
    pub reptree: MlmStp<RepTree>,
    /// MLP MLM.
    pub mlp: MlmStp<Mlp>,
}

impl Models {
    /// The techniques as trait objects, in the paper's reporting order.
    pub fn all(&self) -> [(&str, &dyn Stp); 4] {
        [
            ("LkT", &self.lkt as &dyn Stp),
            ("LR", &self.lr as &dyn Stp),
            ("MLP", &self.mlp as &dyn Stp),
            ("REPTree", &self.reptree as &dyn Stp),
        ]
    }
}

impl Ctx {
    /// Fresh context on the Atom testbed.
    pub fn new() -> Ctx {
        let quick = std::env::var("ECOST_QUICK").is_ok_and(|v| v == "1");
        Ctx {
            engine: EvalEngine::atom(),
            quick,
            db: None,
            training: None,
            training_mlp: None,
            models: None,
            train_times: TrainTimes::default(),
        }
    }

    /// The testbed the engine simulates.
    pub fn tb(&self) -> &ecost_core::features::Testbed {
        self.engine.testbed()
    }

    /// The database (built on first use).
    pub fn db(&mut self) -> &ConfigDatabase {
        if self.db.is_none() {
            eprintln!("[harness] building the §6.2 database (exhaustive training sweeps)…");
            let db = ConfigDatabase::build(&self.engine, NOISE, SEED).expect("database build");
            eprintln!(
                "[harness] database ready: {} pair entries, {} solo entries, {:.1}s",
                db.pairs.len(),
                db.solos.len(),
                db.build_seconds
            );
            // LkT's offline cost is the brute-force sweeping, wherever it
            // happened first (an earlier experiment may have warmed the
            // engine's memo).
            self.train_times.lkt_s = db.build_seconds.max(self.engine.stats().wall_seconds);
            self.db = Some(db);
        }
        self.db.as_ref().expect("just built")
    }

    fn sig_fn(&self) -> impl Fn(App, InputSize) -> [f64; 9] {
        let sigs: Vec<([f64; 9], App, InputSize)> = self
            .db
            .as_ref()
            .expect("db built")
            .solos
            .iter()
            .map(|s| (s.sig, s.app, s.size))
            .collect();
        move |app: App, size: InputSize| -> [f64; 9] {
            sigs.iter()
                .find(|(_, a, s)| *a == app && *s == size)
                .expect("training app profiled in db")
                .0
        }
    }

    /// Per-class-pair training data for LR/REPTree — dense config coverage
    /// (they are cheap to fit and need fine resolution near the optimum).
    pub fn training(&mut self) -> &TrainingData {
        if self.training.is_none() {
            let configs = if self.quick { 400 } else { 3000 };
            self.db();
            let sig_of = self.sig_fn();
            eprintln!("[harness] building dense training data…");
            let data =
                build_training_data(&self.engine, &sig_of, configs, SEED).expect("training build");
            let rows: usize = data.values().map(|d| d.len()).sum();
            eprintln!(
                "[harness] dense training data: {rows} rows / {} class pairs",
                data.len()
            );
            self.training = Some(data);
        }
        self.training.as_ref().expect("just built")
    }

    /// Sub-sampled training data for the MLP (SGD epochs over the full grid
    /// would dominate wall time; the paper's MLP is the slow model too).
    pub fn training_mlp(&mut self) -> &TrainingData {
        if self.training_mlp.is_none() {
            let configs = if self.quick { 200 } else { 1000 };
            self.db();
            let sig_of = self.sig_fn();
            let data = build_training_data(&self.engine, &sig_of, configs, SEED ^ 0x11)
                .expect("training build");
            self.training_mlp = Some(data);
        }
        self.training_mlp.as_ref().expect("just built")
    }

    /// The labelled training signatures → classifier.
    pub fn rule_classifier(&mut self) -> RuleClassifier {
        self.db();
        RuleClassifier::fit(&self.db.as_ref().expect("built").signatures)
    }

    /// k-NN classifier over the same signatures.
    pub fn knn_classifier(&mut self) -> KnnAppClassifier {
        self.db();
        KnnAppClassifier::fit(&self.db.as_ref().expect("built").signatures)
    }

    /// All four fitted STP techniques (trained on first use; timing recorded).
    pub fn models(&mut self) -> &Models {
        if self.models.is_none() {
            let knn = self.knn_classifier();
            let mlp_cfg = if self.quick {
                MlpConfig {
                    hidden: vec![24],
                    epochs: 60,
                    ..MlpConfig::default()
                }
            } else {
                MlpConfig {
                    hidden: vec![64, 32],
                    epochs: 420,
                    learning_rate: 0.02,
                    lr_decay: 0.994,
                    batch: 48,
                    ..MlpConfig::default()
                }
            };
            // Fine-grained trees: the EDP surface is spiky in the knobs
            // (wave-tail quantisation), so resolution beats smoothing.
            let tree_cfg = RepTreeConfig {
                max_depth: 32,
                min_samples_split: 4,
                min_samples_leaf: 1,
                prune_fraction: 0.1,
                ..RepTreeConfig::default()
            };
            self.training();
            self.training_mlp();
            let db = self.db.as_ref().expect("built");
            let training = self.training.as_ref().expect("built");
            let training_mlp = self.training_mlp.as_ref().expect("built");

            eprintln!("[harness] training models…");
            let lkt = LktStp::from_database(db);

            let t0 = Instant::now();
            let lr = MlmStp::train(training, knn.clone(), "LR", LinearRegression::new);
            self.train_times.lr_s = t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let reptree = MlmStp::train(training, knn.clone(), "REPTree", || {
                RepTree::new(tree_cfg.clone())
            });
            self.train_times.reptree_s = t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let mlp = MlmStp::train(training_mlp, knn, "MLP", || Mlp::new(mlp_cfg.clone()));
            self.train_times.mlp_s = t0.elapsed().as_secs_f64();
            eprintln!(
                "[harness] models ready (LR {:.2}s, REPTree {:.2}s, MLP {:.1}s)",
                self.train_times.lr_s, self.train_times.reptree_s, self.train_times.mlp_s
            );

            self.models = Some(Models {
                lkt,
                lr,
                reptree,
                mlp,
            });
        }
        self.models.as_ref().expect("just built")
    }

    /// Models plus the engine, borrowed together (trains on first use) —
    /// for call sites that evaluate model choices through the engine.
    pub fn models_and_engine(&mut self) -> (&Models, &EvalEngine) {
        self.models();
        (self.models.as_ref().expect("just built"), &self.engine)
    }

    /// Measured training times (valid after [`Ctx::models`]).
    pub fn train_times(&self) -> &TrainTimes {
        &self.train_times
    }

    /// Profile a catalog app at the experiment noise/seed.
    pub fn signature(&self, app: App, size: InputSize) -> ecost_core::features::AppSignature {
        profile_catalog_app(&self.engine, app, size, NOISE, SEED).expect("profiling run")
    }

    /// Results directory (`results/` beside the workspace root).
    pub fn results_dir() -> std::path::PathBuf {
        let dir = std::env::var("ECOST_RESULTS").unwrap_or_else(|_| "results".into());
        std::path::PathBuf::from(dir)
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx::new()
    }
}

/// The training apps' class coverage, for report footers.
pub fn training_roster() -> String {
    TRAINING_APPS
        .iter()
        .map(|a| format!("{}[{}]", a.name(), a.class()))
        .collect::<Vec<_>>()
        .join(", ")
}
