//! Typed errors for the experiment binaries.
//!
//! The `src/bin/*` wrappers used to `expect()` on their I/O and simulation
//! paths; they now bubble a [`BenchError`] out of a fallible `run()` and
//! exit non-zero through [`run_main`], so a full disk or a failed
//! evaluation is a diagnosable error message, not a panic backtrace.

use ecost_core::engine::EvalError;
use ecost_sim::SimError;
use std::fmt;
use std::process::ExitCode;

/// Everything that can go wrong in an experiment binary.
#[derive(Debug)]
pub enum BenchError {
    /// Writing results (or creating the results directory) failed.
    Io(std::io::Error),
    /// An evaluation driven through the engine failed.
    Eval(EvalError),
    /// The raw simulator rejected a run.
    Sim(SimError),
    /// Malformed input: an environment variable, argument, or an
    /// experiment invariant (e.g. an empty sweep) that did not hold.
    Invalid(String),
    /// The input exists-but-is-empty case: a gate or report had nothing
    /// to work on (missing trend store, no comparable rows). Mapped by
    /// [`run_main`] to exit code 2 so callers can distinguish "nothing
    /// to check" from a real failure.
    NoData(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Io(e) => write!(f, "i/o error: {e}"),
            BenchError::Eval(e) => write!(f, "evaluation failed: {e}"),
            BenchError::Sim(e) => write!(f, "simulation failed: {e}"),
            BenchError::Invalid(what) => write!(f, "invalid input: {what}"),
            BenchError::NoData(what) => write!(f, "no data: {what}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Io(e) => Some(e),
            BenchError::Eval(e) => Some(e),
            BenchError::Sim(e) => Some(e),
            BenchError::Invalid(_) | BenchError::NoData(_) => None,
        }
    }
}

impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> BenchError {
        BenchError::Io(e)
    }
}

impl From<EvalError> for BenchError {
    fn from(e: EvalError) -> BenchError {
        BenchError::Eval(e)
    }
}

impl From<SimError> for BenchError {
    fn from(e: SimError) -> BenchError {
        BenchError::Sim(e)
    }
}

/// Run an experiment body, mapping `Err` to a one-line diagnostic on
/// stderr and a non-zero exit code. Every `src/bin/*` main delegates here.
///
/// Exit codes: `0` success, `2` for [`BenchError::NoData`] ("nothing to
/// check" — e.g. `trend_check` on a missing trend store or one with no
/// comparable rows), `1` for every other error.
pub fn run_main(name: &str, body: impl FnOnce() -> Result<(), BenchError>) -> ExitCode {
    match body() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e @ BenchError::NoData(_)) => {
            eprintln!("{name}: {e} (exit 2: nothing to gate, not a failure)");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("{name}: {e}");
            ExitCode::FAILURE
        }
    }
}
