//! Experiment harness for the ECoST reproduction.
//!
//! Each paper table/figure has a function in [`experiments`] that computes it
//! and returns renderable tables; the `src/bin/*` binaries are thin wrappers
//! that print them and write `results/<name>.{txt,csv}`. The shared
//! [`harness::Ctx`] builds the expensive artifacts (database, training data,
//! fitted models) once and memoises them across experiments, mirroring the
//! paper's offline phase.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod experiments;
pub mod harness;

pub use error::{run_main, BenchError};
