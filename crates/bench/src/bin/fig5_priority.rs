//! Regenerates the paper artifact `fig5_priority` (see DESIGN.md §5).

use ecost_bench::experiments;
use ecost_bench::harness::Ctx;
use ecost_core::report::emit;
use std::process::ExitCode;

fn main() -> ExitCode {
    ecost_bench::run_main("fig5_priority", || {
        let mut ctx = Ctx::new();
        for (i, table) in experiments::fig5_priority(&mut ctx).iter().enumerate() {
            emit(table, Ctx::results_dir(), &format!("fig5_priority_{i}"))?;
        }
        Ok(())
    })
}
