//! Regenerates the paper artifact `fig3_colao_ilao` (see DESIGN.md §5).

use ecost_bench::experiments;
use ecost_bench::harness::Ctx;
use ecost_core::report::emit;

fn main() {
    let mut ctx = Ctx::new();
    for (i, table) in experiments::fig3_colao_ilao(&mut ctx).iter().enumerate() {
        emit(table, Ctx::results_dir(), &format!("fig3_colao_ilao_{i}")).expect("write results");
    }
}
