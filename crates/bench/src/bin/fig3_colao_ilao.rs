//! Regenerates the paper artifact `fig3_colao_ilao` (see DESIGN.md §5).

use ecost_bench::experiments;
use ecost_bench::harness::Ctx;
use ecost_core::report::emit;
use std::process::ExitCode;

fn main() -> ExitCode {
    ecost_bench::run_main("fig3_colao_ilao", || {
        let mut ctx = Ctx::new();
        for (i, table) in experiments::fig3_colao_ilao(&mut ctx).iter().enumerate() {
            emit(table, Ctx::results_dir(), &format!("fig3_colao_ilao_{i}"))?;
        }
        Ok(())
    })
}
