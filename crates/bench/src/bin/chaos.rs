//! Chaos sweep: fault injection × scheduling policy (see DESIGN.md
//! §"Fault model & degradation").
//!
//! Writes `results/chaos_*.{txt,csv}` plus `results/chaos.json`, a fully
//! deterministic document (no wall-clock fields) that CI generates twice
//! with the same seed and diffs byte-for-byte.

use ecost_bench::experiments;
use ecost_bench::harness::Ctx;
use ecost_core::report::emit;
use std::process::ExitCode;

fn main() -> ExitCode {
    ecost_bench::run_main("chaos", || {
        let mut ctx = Ctx::new();
        let (tables, json) = experiments::chaos(&mut ctx);
        let dir = Ctx::results_dir();
        for (i, table) in tables.iter().enumerate() {
            emit(table, &dir, &format!("chaos_{i}"))?;
        }
        std::fs::create_dir_all(&dir)?;
        std::fs::write(dir.join("chaos.json"), &json)?;
        println!("wrote {}", dir.join("chaos.json").display());
        Ok(())
    })
}
