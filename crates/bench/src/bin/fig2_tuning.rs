//! Regenerates the paper artifact `fig2_tuning` (see DESIGN.md §5).

use ecost_bench::experiments;
use ecost_bench::harness::Ctx;
use ecost_core::report::emit;
use std::process::ExitCode;

fn main() -> ExitCode {
    ecost_bench::run_main("fig2_tuning", || {
        let mut ctx = Ctx::new();
        for (i, table) in experiments::fig2_tuning(&mut ctx).iter().enumerate() {
            emit(table, Ctx::results_dir(), &format!("fig2_tuning_{i}"))?;
        }
        Ok(())
    })
}
