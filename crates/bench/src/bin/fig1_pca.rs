//! Regenerates the paper artifact `fig1_pca` (see DESIGN.md §5).

use ecost_bench::experiments;
use ecost_bench::harness::Ctx;
use ecost_core::report::emit;
use std::process::ExitCode;

fn main() -> ExitCode {
    ecost_bench::run_main("fig1_pca", || {
        let mut ctx = Ctx::new();
        for (i, table) in experiments::fig1_pca(&mut ctx).iter().enumerate() {
            emit(table, Ctx::results_dir(), &format!("fig1_pca_{i}"))?;
        }
        Ok(())
    })
}
