//! Regenerates the paper artifact `fig8_overhead` (see DESIGN.md §5).

use ecost_bench::experiments;
use ecost_bench::harness::Ctx;
use ecost_core::report::emit;
use std::process::ExitCode;

fn main() -> ExitCode {
    ecost_bench::run_main("fig8_overhead", || {
        let mut ctx = Ctx::new();
        for (i, table) in experiments::fig8_overhead(&mut ctx).iter().enumerate() {
            emit(table, Ctx::results_dir(), &format!("fig8_overhead_{i}"))?;
        }
        Ok(())
    })
}
