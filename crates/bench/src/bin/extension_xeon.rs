//! Regenerates the paper artifact `extension_xeon` (see DESIGN.md §5).

use ecost_bench::experiments;
use ecost_bench::harness::Ctx;
use ecost_core::report::emit;
use std::process::ExitCode;

fn main() -> ExitCode {
    ecost_bench::run_main("extension_xeon", || {
        let mut ctx = Ctx::new();
        for (i, table) in experiments::extension_xeon(&mut ctx).iter().enumerate() {
            emit(table, Ctx::results_dir(), &format!("extension_xeon_{i}"))?;
        }
        Ok(())
    })
}
