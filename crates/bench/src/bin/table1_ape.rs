//! Regenerates the paper artifact `table1_ape` (see DESIGN.md §5).

use ecost_bench::experiments;
use ecost_bench::harness::Ctx;
use ecost_core::report::emit;
use std::process::ExitCode;

fn main() -> ExitCode {
    ecost_bench::run_main("table1_ape", || {
        let mut ctx = Ctx::new();
        for (i, table) in experiments::table1_ape(&mut ctx).iter().enumerate() {
            emit(table, Ctx::results_dir(), &format!("table1_ape_{i}"))?;
        }
        Ok(())
    })
}
