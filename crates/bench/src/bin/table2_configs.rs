//! Regenerates the paper artifact `table2_configs` (see DESIGN.md §5).

use ecost_bench::experiments;
use ecost_bench::harness::Ctx;
use ecost_core::report::emit;

fn main() {
    let mut ctx = Ctx::new();
    for (i, table) in experiments::table2_configs(&mut ctx).iter().enumerate() {
        emit(table, Ctx::results_dir(), &format!("table2_configs_{i}")).expect("write results");
    }
}
