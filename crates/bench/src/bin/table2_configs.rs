//! Regenerates the paper artifact `table2_configs` (see DESIGN.md §5).

use ecost_bench::experiments;
use ecost_bench::harness::Ctx;
use ecost_core::report::emit;
use std::process::ExitCode;

fn main() -> ExitCode {
    ecost_bench::run_main("table2_configs", || {
        let mut ctx = Ctx::new();
        for (i, table) in experiments::table2_configs(&mut ctx).iter().enumerate() {
            emit(table, Ctx::results_dir(), &format!("table2_configs_{i}"))?;
        }
        Ok(())
    })
}
